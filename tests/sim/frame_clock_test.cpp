#include "sim/frame_clock.hpp"

#include <gtest/gtest.h>

namespace charisma::sim {
namespace {

TEST(FrameClock, FrameStartTimes) {
  FrameClock clock(2.5e-3, 8);
  EXPECT_DOUBLE_EQ(clock.frame_start(0), 0.0);
  EXPECT_DOUBLE_EQ(clock.frame_start(4), 0.01);
  EXPECT_DOUBLE_EQ(clock.frame_start(800), 2.0);
}

TEST(FrameClock, FrameAtInverse) {
  FrameClock clock(2.5e-3, 8);
  for (common::FrameIndex f : {0, 1, 7, 8, 100, 12345}) {
    EXPECT_EQ(clock.frame_at(clock.frame_start(f)), f);
  }
}

TEST(FrameClock, FrameAtMidFrame) {
  FrameClock clock(2.5e-3, 8);
  EXPECT_EQ(clock.frame_at(2.4e-3), 0);
  EXPECT_EQ(clock.frame_at(2.6e-3), 1);
}

TEST(FrameClock, VoicePhaseCycles) {
  FrameClock clock(2.5e-3, 8);
  EXPECT_EQ(clock.voice_phase(0), 0);
  EXPECT_EQ(clock.voice_phase(7), 7);
  EXPECT_EQ(clock.voice_phase(8), 0);
  EXPECT_EQ(clock.voice_phase(17), 1);
}

TEST(FrameClock, VoicePeriod) {
  FrameClock clock(2.5e-3, 8);
  EXPECT_DOUBLE_EQ(clock.voice_period(), 0.02);
}

}  // namespace
}  // namespace charisma::sim
