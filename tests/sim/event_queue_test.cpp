#include "sim/event_queue.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace charisma::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel fails
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelHeadAdvancesNextTime) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(4.25, [] {});
  const auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 4.25);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));  // tombstone path: id no longer in the heap
}

TEST(EventQueue, CancelInterleavedWithPops) {
  // Tombstoned nodes must be skimmed wherever they surface, including after
  // live events around them have fired.
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId a = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  const EventId b = q.schedule(4.0, [&] { order.push_back(4); });
  q.pop().callback();           // fires 1
  EXPECT_TRUE(q.cancel(a));     // 2 dies in the heap
  EXPECT_TRUE(q.cancel(b));     // 4 dies in the heap
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ScheduledTotalCountsLifetimeSchedules) {
  EventQueue q;
  EXPECT_EQ(q.scheduled_total(), 0u);
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.scheduled_total(), 2u);
  q.cancel(id);
  q.pop();
  EXPECT_EQ(q.scheduled_total(), 2u);  // stat never decrements
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // Insert times in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    q.schedule(static_cast<double>((i * 7919) % 1000), [] {});
  }
  double prev = -1.0;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, prev);
    prev = fired.time;
  }
}

}  // namespace
}  // namespace charisma::sim
