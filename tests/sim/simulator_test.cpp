#include "sim/simulator.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace charisma::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  sim.schedule_at(2.5, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_in(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);  // clock parked at the boundary
  EXPECT_TRUE(sim.has_pending_events());
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilProcessesEventsAtExactBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SelfReschedulingChain) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.schedule_in(0.1, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(sim.now(), 9.9, 1e-9);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count == 5) sim.request_stop();
    sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

// ---- The periodic (self-rescheduling, allocation-free) slot ----

TEST(SimulatorPeriodic, FiresAtFirstThenAtReturnedDelay) {
  Simulator sim;
  std::vector<double> fired;
  sim.set_periodic(1.0, [&]() -> common::Time {
    fired.push_back(sim.now());
    return 0.5;
  });
  EXPECT_TRUE(sim.has_periodic());
  sim.run_until(2.6);
  ASSERT_EQ(fired.size(), 4u);  // 1.0, 1.5, 2.0, 2.5
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[3], 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.6);
  EXPECT_EQ(sim.events_processed(), 4u);
}

TEST(SimulatorPeriodic, VariableDelayDrivesTheNextFiring) {
  Simulator sim;
  std::vector<double> fired;
  sim.set_periodic(0.0, [&]() -> common::Time {
    fired.push_back(sim.now());
    return fired.size() < 2 ? 1.0 : 3.0;  // RMAV-style variable frames
  });
  sim.run_until(5.0);
  ASSERT_EQ(fired.size(), 3u);  // 0.0, 1.0, 4.0
  EXPECT_DOUBLE_EQ(fired[1], 1.0);
  EXPECT_DOUBLE_EQ(fired[2], 4.0);
}

TEST(SimulatorPeriodic, FiresBeforeQueueEventsAtTheSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.set_periodic(1.0, [&]() -> common::Time {
    order.push_back(1);
    return 10.0;
  });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorPeriodic, InterleavesWithQueueEvents) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(0.75, [&] { fired.push_back(-sim.now()); });
  sim.set_periodic(0.5, [&]() -> common::Time {
    fired.push_back(sim.now());
    return 0.5;
  });
  sim.run_until(1.5);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(fired[0], 0.5);
  EXPECT_DOUBLE_EQ(fired[1], -0.75);
  EXPECT_DOUBLE_EQ(fired[2], 1.0);
  EXPECT_DOUBLE_EQ(fired[3], 1.5);
}

TEST(SimulatorPeriodic, BoundaryFiringIsProcessed) {
  Simulator sim;
  int count = 0;
  sim.set_periodic(2.0, [&]() -> common::Time {
    ++count;
    return 1.0;
  });
  sim.run_until(2.0);
  EXPECT_EQ(count, 1);
}

TEST(SimulatorPeriodic, SecondSlotRejected) {
  Simulator sim;
  sim.set_periodic(0.0, [] { return common::Time{1.0}; });
  EXPECT_THROW(sim.set_periodic(0.0, [] { return common::Time{1.0}; }),
               std::logic_error);
}

TEST(SimulatorPeriodic, ValidatesArguments) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.set_periodic(1.0, [] { return common::Time{1.0}; }),
               std::invalid_argument);  // in the past
  EXPECT_THROW(sim.set_periodic(6.0, PeriodicCallback{}),
               std::invalid_argument);  // null tick
}

TEST(SimulatorPeriodic, NonPositiveDelayThrows) {
  Simulator sim;
  sim.set_periodic(0.0, [] { return common::Time{0.0}; });
  EXPECT_THROW(sim.run_until(1.0), std::logic_error);
}

TEST(SimulatorPeriodic, RunForbiddenWithSlotInstalled) {
  Simulator sim;
  sim.set_periodic(0.0, [] { return common::Time{1.0}; });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SimulatorPeriodic, RequestStopHaltsSlot) {
  Simulator sim;
  int count = 0;
  sim.set_periodic(0.0, [&]() -> common::Time {
    if (++count == 3) sim.request_stop();
    return 1.0;
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);  // fired at 0, 1, 2; stop parked the loop there
}

TEST(SimulatorPeriodic, ResumeAfterStopKeepsClockMonotonic) {
  // After request_stop() the clock parks where the loop stopped (not at the
  // boundary): the slot's next firing is still pending before end_time, and
  // a later run_until must dispatch it with time moving forward.
  Simulator sim;
  std::vector<double> fired;
  sim.set_periodic(0.0, [&]() -> common::Time {
    fired.push_back(sim.now());
    if (fired.size() == 3) sim.request_stop();
    return 1.0;
  });
  sim.run_until(100.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(4.0);  // resume: fires at 3 and 4, monotone
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_DOUBLE_EQ(fired[3], 3.0);
  EXPECT_DOUBLE_EQ(fired[4], 4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

}  // namespace
}  // namespace charisma::sim
