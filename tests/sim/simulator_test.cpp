#include "sim/simulator.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace charisma::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  sim.schedule_at(2.5, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_in(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);  // clock parked at the boundary
  EXPECT_TRUE(sim.has_pending_events());
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilProcessesEventsAtExactBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SelfReschedulingChain) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.schedule_in(0.1, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(sim.now(), 9.9, 1e-9);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count == 5) sim.request_stop();
    sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

}  // namespace
}  // namespace charisma::sim
