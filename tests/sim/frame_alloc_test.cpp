// Pins the allocation-free frame loop: steady-state frame advancement must
// perform zero heap allocations. Two layers of evidence:
//
//   * a program-wide operator new/delete override counts every allocation
//     crossing the global heap, and a periodic-slot simulator run is
//     required not to move the counter at all;
//   * the engine-level test reads the instrumented EventQueue stat
//     (queue_events_scheduled) through a real protocol engine and requires
//     the frame loop never to touch the allocating queue path — including
//     RMAV, whose frames have data-dependent durations.
//
// The override lives in this TU but (by the ODR rules for replaceable
// global operators) serves the whole test binary; it only counts, so the
// other suites are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "mac/cellular_world.hpp"
#include "mac/presence.hpp"
#include "mac/scenario.hpp"
#include "mac/site_layout.hpp"
#include "protocols/factory.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

// Over-aligned forms count too, so the zero-allocation assertions keep
// covering e.g. a future alignas(32) SIMD buffer in the frame loop.
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace charisma::sim {
namespace {

TEST(FrameAlloc, PeriodicSlotAdvancesWithoutAllocating) {
  Simulator sim;
  std::uint64_t ticks = 0;
  sim.set_periodic(0.0, [&ticks]() -> common::Time {
    ++ticks;
    return 2.5e-3;
  });
  sim.run_until(1.0);  // warm up: the slot itself was installed above
  const std::uint64_t ticks_before = ticks;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  sim.run_until(11.0);
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after - allocs_before, 0u);
  // 10 s / 2.5 ms, ±1 for floating-point drift at the window edges.
  EXPECT_GE(ticks - ticks_before, 3999u);
  EXPECT_LE(ticks - ticks_before, 4001u);
  EXPECT_EQ(sim.queue_events_scheduled(), 0u);
}

TEST(FrameAlloc, VariableTickPeriodStillAllocationFree) {
  // RMAV/DRMA-style data-dependent frame durations: the returned delay
  // changes every firing and must not cost a reschedule allocation.
  Simulator sim;
  int phase = 0;
  sim.set_periodic(0.0, [&phase]() -> common::Time {
    phase = (phase + 1) % 3;
    return 1e-3 * static_cast<double>(1 + phase);
  });
  sim.run_until(0.5);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.run_until(5.0);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(FrameAlloc, EngineFrameLoopNeverTouchesTheEventQueue) {
  // Full protocol engines, static and variable frame durations: thousands
  // of frames, zero EventQueue nodes (each node would be a heap node and
  // usually a std::function allocation).
  for (auto id :
       {protocols::ProtocolId::kDtdmaFr, protocols::ProtocolId::kRmav,
        protocols::ProtocolId::kCharisma}) {
    mac::ScenarioParams params;
    params.num_voice_users = 6;
    params.num_data_users = 2;
    params.seed = 5;
    auto engine = protocols::make_protocol(id, params);
    engine->run(0.5, 2.0);
    EXPECT_EQ(engine->simulator().queue_events_scheduled(), 0u)
        << protocols::protocol_name(id);
    EXPECT_GT(engine->metrics().frames, 0);
  }
}

TEST(FrameAlloc, SteadyStateWorldEpochsAreAllocationFree) {
  // The sharded coordinator's epoch path end to end: mobility, SiteIndex
  // band queries, shard proposal arenas, pilot blending, the attachment
  // rule, the SNR/SINR planes, and the per-cell frame burns. Static users
  // (speed 0) pin the world plane's steady state — no band churn, no
  // handoffs — and a near-infinite silence keeps the MAC quiet: every
  // protocol's per-frame scratch vector stays empty (an empty std::vector
  // never touches the heap), so the whole epoch must allocate nothing.
  // Active traffic is exercised by the engine-level queue-stat test above;
  // this one pins the world machinery this PR parallelized.
  mac::CellularConfig cfg;
  cfg.num_cells = 4;
  cfg.num_threads = 1;  // the inline dispatch path — no worker handoff
  cfg.num_shards = 3;   // shard arenas live even when dispatch is inline
  cfg.params.num_voice_users = 12;
  cfg.params.num_data_users = 0;
  cfg.params.seed = 7;
  cfg.params.mean_silence_s = 1e9;  // silent after the initial talkspurts
  cfg.pilot_band_radius_m = 700.0;  // sparse bands: SiteIndex runs per epoch
  cfg.mobility.field_width_m = 2000.0;
  cfg.mobility.field_height_m = 400.0;
  cfg.mobility.speed_mps = 0.0;
  cfg.handoff_hysteresis_db = 2.0;
  mac::CellularWorld world(
      cfg, [](const mac::ScenarioParams& params) {
        return protocols::make_protocol(protocols::ProtocolId::kCharisma,
                                        params);
      });
  ASSERT_EQ(world.shard_count(), 3u);
  world.run(0.5, 0.5);  // warmup + one measured window grows all scratch
  // Settling: let the initial talkspurts (mean 1 s) drain so the MAC's
  // per-frame candidate lists are empty in the counted window.
  world.advance(4.0);
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  world.advance(1.0);  // 50 epochs at the default decision interval
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
  // The world actually ran: frames burned for the attached population.
  EXPECT_GT(world.aggregate_metrics().attached_user_frames, 0);
}

TEST(FrameAlloc, SiteIndexRebuildReusesBucketStorage) {
  // Band maintenance keeps its bucket vectors alive across rebuild():
  // clearing in place and growing only. Re-binning the same geometry —
  // and re-binning a smaller one — must cost zero allocations once the
  // first build has established the high-water mark.
  const double width = 4000.0, height = 1000.0;
  mac::SiteLayout big(mac::SiteLayoutConfig{}, /*num_cells=*/8, width,
                      height);
  mac::SiteLayout small(mac::SiteLayoutConfig{}, /*num_cells=*/3, width,
                        height);
  mac::SiteIndex index(big, 600.0);
  std::vector<int> out;
  std::vector<char> scratch;
  index.cells_near({0.5 * width, 0.5 * height}, out, scratch);  // size scratch
  out.reserve(static_cast<std::size_t>(big.num_sites()));
  // One warm cycle through the three grid shapes: re-binning redistributes
  // entries, so some bucket first reaches its high-water capacity here.
  index.rebuild(big, 600.0);
  index.rebuild(small, 600.0);
  index.rebuild(big, 900.0);
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) {
    index.rebuild(big, 600.0);
    index.rebuild(small, 600.0);  // shrink: fewer sites, same storage
    index.rebuild(big, 900.0);    // wider radius: fewer, larger buckets
  }
  out.clear();
  index.cells_near({0.25 * width, 0.75 * height}, out, scratch);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_FALSE(out.empty());
}

TEST(FrameAlloc, RetransmittingDataScenarioStaysAllocationFree) {
  // The ARQ path: a data backlog cycling through pop_head +
  // DataSource::push_front every frame. FR pins the single-arrival span
  // overload in transmit_data_fixed; VR pins the batch path through the
  // engine's reused retx_scratch_. A deep fade (mean SNR -30 dB) makes
  // every attempt fail while a huge CSI error still talks the VR
  // transmitter into trying modes it cannot sustain, so the backlog never
  // drains: the deque's front cursor oscillates in place and the warm
  // frame loop must not allocate at all. Arrivals are quiesced (1e9 s
  // interarrival) and the backlog seeded by hand, so no push_back crosses
  // a block boundary inside the counted window either.
  for (auto id :
       {protocols::ProtocolId::kDtdmaFr, protocols::ProtocolId::kDtdmaVr}) {
    SCOPED_TRACE(protocols::protocol_name(id));
    mac::ScenarioParams params;
    params.num_voice_users = 0;
    params.num_data_users = 2;
    params.seed = 11;
    params.channel.mean_snr_db = -30.0;     // PER ~= 1 in every mode
    params.csi_error_sigma_db = 15.0;       // VR still believes it can send
    params.mean_data_interarrival_s = 1e9;  // no bursts, ever
    auto engine = protocols::make_protocol(id, params);
    engine->run(0.2, 0.3);  // attach users, materialize traffic streams
    // 256 is a multiple of the libstdc++ deque block (64 doubles), so the
    // seeded push_front leaves the front cursor's in-block offset where
    // the empty deque put it — away from a block edge.
    const std::vector<common::Time> backlog(256, 0.1);
    for (auto& u : engine->users()) {
      u.data().push_front(backlog);
    }
    engine->run(0.0, 1.0);  // contend, queue up, grow scratch high water
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    engine->run(0.0, 1.0);
    // run() itself installs one std::function periodic slot — a per-call
    // constant. The 400-frame retransmission loop inside must add nothing.
    EXPECT_LE(g_allocations.load(std::memory_order_relaxed) - before, 1u);
    // The pin is vacuous unless the retransmission cycle actually ran. FR
    // attempts every granted slot; VR only when its (badly mistaken) CSI
    // estimate picks a mode, so its floor is lower.
    EXPECT_GT(engine->metrics().data_retransmissions,
              id == protocols::ProtocolId::kDtdmaFr ? 2000 : 50);
    EXPECT_EQ(engine->metrics().data_delivered, 0);
  }
}

}  // namespace
}  // namespace charisma::sim
