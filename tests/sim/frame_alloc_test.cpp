// Pins the allocation-free frame loop: steady-state frame advancement must
// perform zero heap allocations. Two layers of evidence:
//
//   * a program-wide operator new/delete override counts every allocation
//     crossing the global heap, and a periodic-slot simulator run is
//     required not to move the counter at all;
//   * the engine-level test reads the instrumented EventQueue stat
//     (queue_events_scheduled) through a real protocol engine and requires
//     the frame loop never to touch the allocating queue path — including
//     RMAV, whose frames have data-dependent durations.
//
// The override lives in this TU but (by the ODR rules for replaceable
// global operators) serves the whole test binary; it only counts, so the
// other suites are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "mac/scenario.hpp"
#include "protocols/factory.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

// Over-aligned forms count too, so the zero-allocation assertions keep
// covering e.g. a future alignas(32) SIMD buffer in the frame loop.
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace charisma::sim {
namespace {

TEST(FrameAlloc, PeriodicSlotAdvancesWithoutAllocating) {
  Simulator sim;
  std::uint64_t ticks = 0;
  sim.set_periodic(0.0, [&ticks]() -> common::Time {
    ++ticks;
    return 2.5e-3;
  });
  sim.run_until(1.0);  // warm up: the slot itself was installed above
  const std::uint64_t ticks_before = ticks;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  sim.run_until(11.0);
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after - allocs_before, 0u);
  // 10 s / 2.5 ms, ±1 for floating-point drift at the window edges.
  EXPECT_GE(ticks - ticks_before, 3999u);
  EXPECT_LE(ticks - ticks_before, 4001u);
  EXPECT_EQ(sim.queue_events_scheduled(), 0u);
}

TEST(FrameAlloc, VariableTickPeriodStillAllocationFree) {
  // RMAV/DRMA-style data-dependent frame durations: the returned delay
  // changes every firing and must not cost a reschedule allocation.
  Simulator sim;
  int phase = 0;
  sim.set_periodic(0.0, [&phase]() -> common::Time {
    phase = (phase + 1) % 3;
    return 1e-3 * static_cast<double>(1 + phase);
  });
  sim.run_until(0.5);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.run_until(5.0);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(FrameAlloc, EngineFrameLoopNeverTouchesTheEventQueue) {
  // Full protocol engines, static and variable frame durations: thousands
  // of frames, zero EventQueue nodes (each node would be a heap node and
  // usually a std::function allocation).
  for (auto id :
       {protocols::ProtocolId::kDtdmaFr, protocols::ProtocolId::kRmav,
        protocols::ProtocolId::kCharisma}) {
    mac::ScenarioParams params;
    params.num_voice_users = 6;
    params.num_data_users = 2;
    params.seed = 5;
    auto engine = protocols::make_protocol(id, params);
    engine->run(0.5, 2.0);
    EXPECT_EQ(engine->simulator().queue_events_scheduled(), 0u)
        << protocols::protocol_name(id);
    EXPECT_GT(engine->metrics().frames, 0);
  }
}

}  // namespace
}  // namespace charisma::sim
