#include "channel/shadowing.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace charisma::channel {
namespace {

TEST(Shadowing, StationaryMoments) {
  common::RngStream rng(1);
  LogNormalShadowing shadow(4.0, 1.0, 2.5e-3, rng);
  double sum = 0.0, sum2 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    shadow.step(rng);
    sum += shadow.db_value();
    sum2 += shadow.db_value() * shadow.db_value();
  }
  const double mean = sum / n;
  // The process is strongly autocorrelated (tau=1s vs 2.5ms steps), so the
  // effective sample count is n/800; tolerances account for that.
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 4.0, 0.5);
}

TEST(Shadowing, AutocorrelationTimeConstant) {
  common::RngStream rng(2);
  const double tau = 0.1;
  const double dt = 1e-3;
  LogNormalShadowing shadow(6.0, tau, dt, rng);
  // lag-k autocorrelation should be exp(-k*dt/tau).
  const int lag = 100;  // exp(-1) ~ 0.368
  std::vector<double> values;
  for (int i = 0; i < 200000; ++i) {
    shadow.step(rng);
    values.push_back(shadow.db_value());
  }
  double c0 = 0.0, ck = 0.0;
  const auto n = static_cast<int>(values.size()) - lag;
  for (int i = 0; i < n; ++i) {
    c0 += values[static_cast<std::size_t>(i)] * values[static_cast<std::size_t>(i)];
    ck += values[static_cast<std::size_t>(i)] *
          values[static_cast<std::size_t>(i + lag)];
  }
  EXPECT_NEAR(ck / c0, std::exp(-1.0), 0.08);
}

TEST(Shadowing, LinearGainMatchesDb) {
  common::RngStream rng(3);
  LogNormalShadowing shadow(8.0, 1.0, 1e-3, rng);
  for (int i = 0; i < 100; ++i) {
    shadow.step(rng);
    EXPECT_NEAR(shadow.linear_gain(), std::pow(10.0, shadow.db_value() / 10.0),
                1e-12);
  }
}

TEST(Shadowing, ZeroSigmaIsDeterministicUnity) {
  common::RngStream rng(4);
  LogNormalShadowing shadow(0.0, 1.0, 1e-3, rng);
  for (int i = 0; i < 100; ++i) {
    shadow.step(rng);
    EXPECT_NEAR(shadow.linear_gain(), 1.0, 1e-12);
  }
}

TEST(Shadowing, InvalidArguments) {
  common::RngStream rng(5);
  EXPECT_THROW(LogNormalShadowing(-1.0, 1.0, 1e-3, rng), std::invalid_argument);
  EXPECT_THROW(LogNormalShadowing(4.0, 0.0, 1e-3, rng), std::invalid_argument);
  EXPECT_THROW(LogNormalShadowing(4.0, 1.0, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::channel
