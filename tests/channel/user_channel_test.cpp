#include "channel/user_channel.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::channel {
namespace {

ChannelConfig test_config() {
  ChannelConfig cfg;
  cfg.mean_snr_db = 16.0;
  cfg.shadow_sigma_db = 3.0;
  cfg.doppler_hz = 100.0;
  cfg.diversity_branches = 4;
  cfg.sample_interval = 2.5e-3;
  return cfg;
}

TEST(UserChannel, MeanSnrNearLinkBudget) {
  UserChannel ch(test_config(), common::RngStream(1));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 1; i <= n; ++i) {
    ch.advance_to(static_cast<double>(i) * 2.5e-3);
    sum += ch.snr_linear();
  }
  // E[snr] = mean * E[fading]=1 * E[shadow] where E[10^(N(0,sigma)/10)]
  // = exp((sigma*ln10/10)^2/2) ~ 1.27 for sigma=3dB.
  const double shadow_mean = std::exp(std::pow(3.0 * std::log(10.0) / 10.0, 2) / 2.0);
  EXPECT_NEAR(sum / n, common::from_db(16.0) * shadow_mean,
              common::from_db(16.0) * 0.25);
}

TEST(UserChannel, TimeMustNotGoBackwards) {
  UserChannel ch(test_config(), common::RngStream(2));
  ch.advance_to(1.0);
  EXPECT_THROW(ch.advance_to(0.5), std::logic_error);
}

TEST(UserChannel, StateConstantWithinGridStep) {
  UserChannel ch(test_config(), common::RngStream(3));
  ch.advance_to(0.1);
  const double snr = ch.snr_linear();
  ch.advance_to(0.1 + 1e-3);  // less than one 2.5 ms step further
  EXPECT_DOUBLE_EQ(ch.snr_linear(), snr);
}

TEST(UserChannel, IndependentUsersDecorrelated) {
  UserChannel a(test_config(), common::RngStream(4));
  UserChannel b(test_config(), common::RngStream(5));
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  const int n = 20000;
  for (int i = 1; i <= n; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    a.advance_to(t);
    b.advance_to(t);
    const double fa = a.fading_power();
    const double fb = b.fading_power();
    sum_a += fa;
    sum_b += fb;
    sum_ab += fa * fb;
    sum_a2 += fa * fa;
    sum_b2 += fb * fb;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
  const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
  EXPECT_LT(std::fabs(cov / std::sqrt(var_a * var_b)), 0.1);
}

TEST(UserChannel, SnrDbConsistent) {
  UserChannel ch(test_config(), common::RngStream(6));
  ch.advance_to(0.25);
  EXPECT_NEAR(ch.snr_db(), common::to_db(ch.snr_linear()), 1e-12);
}

TEST(UserChannel, DeterministicGivenSeed) {
  UserChannel a(test_config(), common::RngStream(7));
  UserChannel b(test_config(), common::RngStream(7));
  for (int i = 1; i <= 100; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    a.advance_to(t);
    b.advance_to(t);
    EXPECT_DOUBLE_EQ(a.snr_linear(), b.snr_linear());
  }
}

TEST(UserChannel, StepBoundaryRoundingTolerantOfAccumulatedTime) {
  // Frame clocks build t by summing frame durations that are not exact
  // binary fractions, so the accumulated t drifts a few ulp below n * dt.
  // The floor(t/dt + 1e-9) epsilon must land both clocks on the same grid
  // step; without it the accumulated clock falls one step behind and every
  // subsequent draw diverges.
  const double dt = 2.5e-3;
  UserChannel exact(test_config(), common::RngStream(10));
  UserChannel accumulated(test_config(), common::RngStream(10));
  double t = 0.0;
  for (int i = 1; i <= 4000; ++i) {
    t += dt;  // rounds; at i=3 already t != i * dt exactly
    exact.advance_to(static_cast<double>(i) * dt);
    accumulated.advance_to(t);
    ASSERT_DOUBLE_EQ(exact.snr_linear(), accumulated.snr_linear()) << i;
  }
}

TEST(UserChannel, StepBoundarySlightlyUnderMultipleRoundsUp) {
  // A target a hair under an exact multiple of dt (floating-point noise,
  // not a genuinely earlier time) must still advance to that step.
  const double dt = 2.5e-3;
  UserChannel a(test_config(), common::RngStream(11));
  UserChannel b(test_config(), common::RngStream(11));
  const double boundary = 100.0 * dt;
  a.advance_to(boundary);
  b.advance_to(boundary * (1.0 - 1e-12));
  EXPECT_DOUBLE_EQ(a.snr_linear(), b.snr_linear());
  // ...while a target clearly inside the previous step lands one step
  // short (same seed, same single-jump path, different stride).
  UserChannel c(test_config(), common::RngStream(11));
  c.advance_to(boundary - 0.6 * dt);
  EXPECT_NE(c.snr_linear(), a.snr_linear());
}

TEST(ChannelConfig, DopplerForSpeed) {
  // 50 km/h at 2 GHz: fd = v fc / c ~ 92.6 Hz.
  const double fd = ChannelConfig::doppler_for_speed(
      common::km_per_hour(50.0), 2.0e9);
  EXPECT_NEAR(fd, 92.6, 0.5);
  EXPECT_THROW(ChannelConfig::doppler_for_speed(-1.0, 2e9),
               std::invalid_argument);
  EXPECT_THROW(ChannelConfig::doppler_for_speed(10.0, 0.0),
               std::invalid_argument);
}

TEST(UserChannel, HigherDopplerDecorrelatesFaster) {
  auto slow_cfg = test_config();
  slow_cfg.doppler_hz = 20.0;
  auto fast_cfg = test_config();
  fast_cfg.doppler_hz = 200.0;
  UserChannel slow(slow_cfg, common::RngStream(8));
  UserChannel fast(fast_cfg, common::RngStream(9));
  double slow_diff = 0.0, fast_diff = 0.0;
  double prev_slow = 0.0, prev_fast = 0.0;
  for (int i = 1; i <= 20000; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    slow.advance_to(t);
    fast.advance_to(t);
    if (i > 1) {
      slow_diff += std::fabs(slow.fading_power() - prev_slow);
      fast_diff += std::fabs(fast.fading_power() - prev_fast);
    }
    prev_slow = slow.fading_power();
    prev_fast = fast.fading_power();
  }
  EXPECT_LT(slow_diff, fast_diff);
}

}  // namespace
}  // namespace charisma::channel
