#include "channel/fading.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::channel {
namespace {

TEST(Jakes, UnitMeanPower) {
  common::RngStream rng(1);
  JakesFadingGenerator gen(100.0, 16, rng);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += gen.power_gain(static_cast<double>(i) * 1e-3);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.1);
}

TEST(Jakes, RayleighEnvelopeDistribution) {
  // P(|h|^2 < x) should match 1 - exp(-x) for the unit-mean Rayleigh power.
  common::RngStream rng(2);
  // Average over several independent generators to suppress the
  // finite-oscillator correlation of a single realization.
  int below_half = 0, below_two = 0;
  const int gens = 40, samples = 2000;
  for (int g = 0; g < gens; ++g) {
    JakesFadingGenerator gen(100.0, 16, rng);
    for (int i = 0; i < samples; ++i) {
      const double p = gen.power_gain(static_cast<double>(i) * 2e-3);
      if (p < 0.5) ++below_half;
      if (p < 2.0) ++below_two;
    }
  }
  const double n = gens * samples;
  EXPECT_NEAR(below_half / n, 1.0 - std::exp(-0.5), 0.03);
  EXPECT_NEAR(below_two / n, 1.0 - std::exp(-2.0), 0.03);
}

TEST(Jakes, AutocorrelationFollowsBesselJ0) {
  // The Clarke-model autocorrelation of the complex gain is J0(2 pi fd tau).
  common::RngStream rng(3);
  const double fd = 100.0;
  const double tau = 2e-3;  // J0(2 pi * 0.2) ~ 0.6425
  double corr_sum = 0.0;
  const int gens = 60;
  for (int g = 0; g < gens; ++g) {
    JakesFadingGenerator gen(fd, 32, rng);
    double acc = 0.0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) * 5e-3;
      const auto h0 = gen.gain(t);
      const auto h1 = gen.gain(t + tau);
      acc += h0.real() * h1.real() + h0.imag() * h1.imag();
    }
    corr_sum += acc / n;
  }
  const double expected = common::bessel_j0(2.0 * M_PI * fd * tau);
  EXPECT_NEAR(corr_sum / gens, expected, 0.08);
}

TEST(Jakes, InvalidArguments) {
  common::RngStream rng(4);
  EXPECT_THROW(JakesFadingGenerator(0.0, 16, rng), std::invalid_argument);
  EXPECT_THROW(JakesFadingGenerator(100.0, 4, rng), std::invalid_argument);
}

TEST(ArBranch, StationaryUnitPower) {
  common::RngStream rng(5);
  ArFadingBranch branch(0.8, rng);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    branch.step(rng);
    sum += branch.power();
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(ArBranch, RhoValidation) {
  common::RngStream rng(6);
  EXPECT_THROW(ArFadingBranch(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(ArFadingBranch(1.0, rng), std::invalid_argument);
  EXPECT_NO_THROW(ArFadingBranch(0.0, rng));
}

TEST(ArBranch, HighRhoMeansSlowChange) {
  common::RngStream rng_a(7), rng_b(7);
  ArFadingBranch slow(0.99, rng_a), fast(0.10, rng_b);
  double slow_diff = 0.0, fast_diff = 0.0;
  double prev_slow = slow.power(), prev_fast = fast.power();
  for (int i = 0; i < 5000; ++i) {
    slow.step(rng_a);
    fast.step(rng_b);
    slow_diff += std::fabs(slow.power() - prev_slow);
    fast_diff += std::fabs(fast.power() - prev_fast);
    prev_slow = slow.power();
    prev_fast = fast.power();
  }
  EXPECT_LT(slow_diff, fast_diff * 0.5);
}

// ---- Closed-form k-step jump: statistical equivalence with k single steps ----

TEST(ArJump, StationaryUnitPower) {
  common::RngStream rng(30);
  ArFadingBranch branch(0.9, rng);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    branch.jump(5, rng);
    sum += branch.power();
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(ArJump, LagKAutocorrelationIsRhoToTheK) {
  // E[h[n] conj(h[n+k])] = rho^k E[|h|^2] = rho^k for the stationary AR(1).
  common::RngStream rng(31);
  const double rho = 0.95;
  const int k = 8;
  ArFadingBranch branch(rho, rng);
  double corr = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto before = branch.state();
    branch.jump(k, rng);
    const auto after = branch.state();
    corr += before.real() * after.real() + before.imag() * after.imag();
  }
  EXPECT_NEAR(corr / n, std::pow(rho, k), 0.01);
}

TEST(ArJump, DistributionMatchesKSingleSteps) {
  // Same rho, one branch jumped by k, one stepped k times: the sampled
  // power distributions must agree (mean, variance, and two CDF points).
  common::RngStream rng_jump(32), rng_step(33);
  const double rho = 0.8;
  const int k = 6;
  ArFadingBranch jumped(rho, rng_jump), stepped(rho, rng_step);
  const int n = 60000;
  double mean_j = 0.0, mean_s = 0.0, var_j = 0.0, var_s = 0.0;
  int below_half_j = 0, below_half_s = 0, below_two_j = 0, below_two_s = 0;
  for (int i = 0; i < n; ++i) {
    jumped.jump(k, rng_jump);
    for (int s = 0; s < k; ++s) stepped.step(rng_step);
    const double pj = jumped.power();
    const double ps = stepped.power();
    mean_j += pj;
    mean_s += ps;
    var_j += pj * pj;
    var_s += ps * ps;
    if (pj < 0.5) ++below_half_j;
    if (ps < 0.5) ++below_half_s;
    if (pj < 2.0) ++below_two_j;
    if (ps < 2.0) ++below_two_s;
  }
  mean_j /= n;
  mean_s /= n;
  EXPECT_NEAR(mean_j, mean_s, 0.03);
  EXPECT_NEAR(var_j / n - mean_j * mean_j, var_s / n - mean_s * mean_s, 0.08);
  EXPECT_NEAR(static_cast<double>(below_half_j) / n,
              static_cast<double>(below_half_s) / n, 0.015);
  EXPECT_NEAR(static_cast<double>(below_two_j) / n,
              static_cast<double>(below_two_s) / n, 0.015);
}

TEST(ArJump, ZeroStepIsIdentityAndNegativeThrows) {
  common::RngStream rng(34);
  ArFadingBranch branch(0.7, rng);
  const auto before = branch.state();
  branch.jump(0, rng);
  EXPECT_EQ(branch.state(), before);
  EXPECT_THROW(branch.jump(-1, rng), std::invalid_argument);
}

TEST(DiversityJump, GammaMarginalMoments) {
  // The jump must preserve the Gamma(L) effective-power marginal.
  common::RngStream rng(35);
  const int branches = 4;
  DiversityFadingProcess proc(branches, 0.5, rng);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    proc.jump(3, rng);
    const double p = proc.power_gain();
    sum += p;
    sum2 += p * p;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(sum2 / n - mean * mean, 1.0 / branches, 0.03);
}

TEST(ArRho, ExponentialForm) {
  EXPECT_NEAR(ar_rho_for(100.0, 2.5e-3), std::exp(-0.25), 1e-12);
  EXPECT_NEAR(ar_rho_for(20.0, 2.5e-3), std::exp(-0.05), 1e-12);
  EXPECT_THROW(ar_rho_for(0.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(ar_rho_for(100.0, 0.0), std::invalid_argument);
}

TEST(Diversity, GammaMarginalMoments) {
  // Mean 1, variance 1/L for L averaged unit-exponential branch powers.
  common::RngStream rng(8);
  const int branches = 4;
  DiversityFadingProcess proc(branches, 0.5, rng);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    proc.step(rng);
    const double p = proc.power_gain();
    sum += p;
    sum2 += p * p;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 1.0 / branches, 0.03);
}

TEST(Diversity, TailMatchesGammaQ) {
  // P(X > x) for Gamma(shape 4, scale 1/4) = Q(4, 4x).
  common::RngStream rng(9);
  DiversityFadingProcess proc(4, 0.3, rng);
  int above = 0;
  const int n = 200000;
  const double x = 2.0;
  for (int i = 0; i < n; ++i) {
    proc.step(rng);
    if (proc.power_gain() > x) ++above;
  }
  const double expected = common::gamma_upper_regularized(4, 4.0 * x);
  EXPECT_NEAR(static_cast<double>(above) / n, expected, 0.002);
}

TEST(Diversity, BranchCountValidation) {
  common::RngStream rng(10);
  EXPECT_THROW(DiversityFadingProcess(0, 0.5, rng), std::invalid_argument);
  DiversityFadingProcess single(1, 0.5, rng);
  EXPECT_EQ(single.branches(), 1);
}

}  // namespace
}  // namespace charisma::channel
