#include "channel/csi.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::channel {
namespace {

TEST(CsiEstimate, DefaultInvalid) {
  CsiEstimate est;
  EXPECT_FALSE(est.valid());
  EXPECT_TRUE(est.expired(0.0, 1.0));
}

TEST(CsiEstimate, ExpiryWindow) {
  CsiEstimate est{10.0, 5.0};
  EXPECT_TRUE(est.valid());
  EXPECT_FALSE(est.expired(5.0, 0.005));
  EXPECT_FALSE(est.expired(5.005, 0.005));  // exactly at the validity edge
  EXPECT_TRUE(est.expired(5.006, 0.005));
}

TEST(CsiEstimator, NoiselessIsExact) {
  CsiEstimator estimator(0.0, 5e-3);
  common::RngStream rng(1);
  const auto est = estimator.estimate(42.0, 1.0, rng);
  EXPECT_DOUBLE_EQ(est.snr_linear, 42.0);
  EXPECT_DOUBLE_EQ(est.estimated_at, 1.0);
}

TEST(CsiEstimator, NoiseSigmaInDb) {
  CsiEstimator estimator(1.0, 5e-3);
  common::RngStream rng(2);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto est = estimator.estimate(10.0, 0.0, rng);
    const double err_db = common::to_db(est.snr_linear / 10.0);
    sum += err_db;
    sum2 += err_db * err_db;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 1.0, 0.02);
}

TEST(CsiEstimator, Validation) {
  EXPECT_THROW(CsiEstimator(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(CsiEstimator(0.5, 0.0), std::invalid_argument);
}

TEST(CsiEstimator, ValidityAccessor) {
  CsiEstimator estimator(0.5, 5e-3);
  EXPECT_DOUBLE_EQ(estimator.validity(), 5e-3);
  EXPECT_DOUBLE_EQ(estimator.error_sigma_db(), 0.5);
}

}  // namespace
}  // namespace charisma::channel
