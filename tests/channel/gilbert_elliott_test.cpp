#include "channel/gilbert_elliott.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace charisma::channel {
namespace {

GilbertElliottConfig test_config() {
  GilbertElliottConfig cfg;
  cfg.good_error_rate = 1e-3;
  cfg.bad_error_rate = 0.4;
  cfg.mean_good_dwell = 0.05;
  cfg.mean_bad_dwell = 0.01;
  return cfg;
}

TEST(GilbertElliott, StationaryBadFraction) {
  const auto cfg = test_config();
  GilbertElliottChannel ch(cfg, common::RngStream(1));
  long bad_steps = 0;
  const long steps = 400000;
  for (long i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * cfg.sample_interval);
    if (ch.in_bad_state()) ++bad_steps;
  }
  EXPECT_NEAR(static_cast<double>(bad_steps) / static_cast<double>(steps),
              cfg.bad_state_fraction(), 0.01);
}

TEST(GilbertElliott, AverageErrorRateMatchesFormula) {
  const auto cfg = test_config();
  GilbertElliottChannel ch(cfg, common::RngStream(2));
  common::RngStream draw(3);
  long failures = 0;
  const long steps = 300000;
  for (long i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * cfg.sample_interval);
    if (!ch.transmit_packet(draw)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / static_cast<double>(steps),
              cfg.average_error_rate(), 0.01);
}

TEST(GilbertElliott, ErrorsComeInBursts) {
  // Consecutive-step error correlation must far exceed the i.i.d. value.
  const auto cfg = test_config();
  GilbertElliottChannel ch(cfg, common::RngStream(4));
  common::RngStream draw(5);
  long pair_both = 0, pairs = 0, errors = 0;
  bool prev_error = false;
  const long steps = 300000;
  for (long i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * cfg.sample_interval);
    const bool error = !ch.transmit_packet(draw);
    if (error) ++errors;
    if (i > 1) {
      ++pairs;
      if (error && prev_error) ++pair_both;
    }
    prev_error = error;
  }
  const double p = static_cast<double>(errors) / static_cast<double>(steps);
  const double p_joint =
      static_cast<double>(pair_both) / static_cast<double>(pairs);
  EXPECT_GT(p_joint, 2.0 * p * p);  // strongly super-independent
}

TEST(GilbertElliott, DwellTimesMatchMeans) {
  const auto cfg = test_config();
  GilbertElliottChannel ch(cfg, common::RngStream(6));
  double bad_time = 0.0;
  long bad_entries = 0;
  bool was_bad = ch.in_bad_state();
  const long steps = 1000000;
  for (long i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * cfg.sample_interval);
    if (ch.in_bad_state()) {
      bad_time += cfg.sample_interval;
      if (!was_bad) ++bad_entries;
    }
    was_bad = ch.in_bad_state();
  }
  ASSERT_GT(bad_entries, 1000);
  EXPECT_NEAR(bad_time / static_cast<double>(bad_entries),
              cfg.mean_bad_dwell, cfg.mean_bad_dwell * 0.15);
}

TEST(GilbertElliott, StateConstantWithinStep) {
  const auto cfg = test_config();
  GilbertElliottChannel ch(cfg, common::RngStream(7));
  ch.advance_to(1.0);
  const bool state = ch.in_bad_state();
  ch.advance_to(1.0 + cfg.sample_interval / 3.0);
  EXPECT_EQ(ch.in_bad_state(), state);
}

TEST(GilbertElliott, TimeMustNotGoBackwards) {
  GilbertElliottChannel ch(test_config(), common::RngStream(8));
  ch.advance_to(1.0);
  EXPECT_THROW(ch.advance_to(0.5), std::logic_error);
}

TEST(GilbertElliott, Validation) {
  auto cfg = test_config();
  cfg.bad_error_rate = 1.5;
  EXPECT_THROW(GilbertElliottChannel(cfg, common::RngStream(9)),
               std::invalid_argument);
  cfg = test_config();
  cfg.mean_good_dwell = 0.0;
  EXPECT_THROW(GilbertElliottChannel(cfg, common::RngStream(9)),
               std::invalid_argument);
}

TEST(GilbertElliott, Deterministic) {
  GilbertElliottChannel a(test_config(), common::RngStream(10));
  GilbertElliottChannel b(test_config(), common::RngStream(10));
  for (long i = 1; i <= 10000; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    a.advance_to(t);
    b.advance_to(t);
    ASSERT_EQ(a.in_bad_state(), b.in_bad_state());
  }
}

}  // namespace
}  // namespace charisma::channel
