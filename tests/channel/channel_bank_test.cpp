#include "channel/channel_bank.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "channel/user_channel.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::channel {
namespace {

ChannelConfig test_config(double mean_snr_db = 16.0) {
  ChannelConfig cfg;
  cfg.mean_snr_db = mean_snr_db;
  cfg.shadow_sigma_db = 3.0;
  cfg.doppler_hz = 100.0;
  cfg.diversity_branches = 4;
  cfg.sample_interval = 2.5e-3;
  return cfg;
}

TEST(ChannelBank, MatchesStandaloneUserChannel) {
  // Per-user streams: a user advanced inside a populated bank must see
  // exactly the channel it would see standalone — results are independent
  // of population size.
  ChannelBank bank;
  bank.reserve(3);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    bank.add_user(test_config(), common::RngStream(s));
  }
  UserChannel solo(test_config(), common::RngStream(2));
  for (int i = 1; i <= 200; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    bank.advance_all_to(t);
    solo.advance_to(t);
    ASSERT_DOUBLE_EQ(bank.snr_linear(1), solo.snr_linear());
    ASSERT_DOUBLE_EQ(bank.fading_power(1), solo.fading_power());
    ASSERT_DOUBLE_EQ(bank.shadow_db(1), solo.shadow_db());
  }
}

TEST(ChannelBank, BatchedAdvanceEqualsPerUserAdvance) {
  ChannelBank batched, individual;
  for (std::uint64_t s = 10; s < 18; ++s) {
    batched.add_user(test_config(), common::RngStream(s));
    individual.add_user(test_config(), common::RngStream(s));
  }
  for (int i = 1; i <= 100; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    batched.advance_all_to(t);
    for (std::size_t u = 0; u < individual.size(); ++u) {
      individual.advance_user_to(u, t);
    }
    for (std::size_t u = 0; u < batched.size(); ++u) {
      ASSERT_DOUBLE_EQ(batched.snr_linear(u), individual.snr_linear(u));
    }
  }
}

TEST(ChannelBank, StationaryMomentsUnderStridedAdvance) {
  // Advancing frame-by-frame and in large strides must both preserve the
  // stationary unit-mean fading power (the k-step jump is exact, not an
  // approximation).
  for (int stride : {1, 7, 64}) {
    ChannelBank bank;
    bank.add_user(test_config(),
                  common::RngStream(100 + static_cast<std::uint64_t>(stride)));
    double sum = 0.0;
    const int n = 60000;
    for (int i = 1; i <= n; ++i) {
      bank.advance_user_to(0, static_cast<double>(i) * stride * 2.5e-3);
      sum += bank.fading_power(0);
    }
    EXPECT_NEAR(sum / n, 1.0, 0.05) << "stride " << stride;
  }
}

TEST(ChannelBank, ShadowingStationarySigmaUnderStridedAdvance) {
  ChannelBank bank;
  bank.add_user(test_config(), common::RngStream(7));
  double sum = 0.0, sum2 = 0.0;
  const int n = 40000;
  // 0.25 s strides: well past the 1 s shadowing tau would need many steps
  // in the legacy walk; here each is one O(1) jump.
  for (int i = 1; i <= n; ++i) {
    bank.advance_user_to(0, static_cast<double>(i) * 0.25);
    const double s = bank.shadow_db(0);
    sum += s;
    sum2 += s * s;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 3.0, 0.15);
}

TEST(ChannelBank, MixedConfigsKeepPerUserBudgets) {
  ChannelBank bank;
  auto slow = test_config(10.0);
  slow.shadow_sigma_db = 0.0;  // isolate the link-budget ratio
  bank.add_user(slow, common::RngStream(1));
  auto fast = test_config(20.0);
  fast.shadow_sigma_db = 0.0;
  fast.doppler_hz = 200.0;  // second parameter group
  bank.add_user(fast, common::RngStream(2));
  bank.advance_all_to(1.0);
  EXPECT_DOUBLE_EQ(bank.config(0).mean_snr_db, 10.0);
  EXPECT_DOUBLE_EQ(bank.config(1).mean_snr_db, 20.0);
  // SNR must scale with the per-user link budget on average; smoke-check
  // the ratio of long-run means.
  double sum0 = 0.0, sum1 = 0.0;
  const int n = 50000;
  for (int i = 1; i <= n; ++i) {
    bank.advance_all_to(1.0 + static_cast<double>(i) * 2.5e-3);
    sum0 += bank.snr_linear(0);
    sum1 += bank.snr_linear(1);
  }
  EXPECT_NEAR(sum1 / sum0, common::from_db(10.0), 0.5);
}

TEST(ChannelBank, TimeMustNotGoBackwards) {
  ChannelBank bank;
  bank.add_user(test_config(), common::RngStream(3));
  bank.advance_user_to(0, 1.0);
  EXPECT_THROW(bank.advance_user_to(0, 0.5), std::logic_error);
  EXPECT_THROW(bank.advance_all_to(0.5), std::logic_error);
}

TEST(ChannelBank, RepeatAdvanceIsIdempotent) {
  ChannelBank bank;
  bank.add_user(test_config(), common::RngStream(4));
  bank.advance_user_to(0, 0.1);
  const double snr = bank.snr_linear(0);
  bank.advance_user_to(0, 0.1);
  bank.advance_all_to(0.1 + 1e-3);  // within the same 2.5 ms grid step
  EXPECT_DOUBLE_EQ(bank.snr_linear(0), snr);
}

TEST(ChannelBank, SetMeanSnrRescalesWithoutDisturbingState) {
  // The mobility fast path: re-anchoring the link budget must not touch
  // the fading/shadowing state or consume any RNG draw — a bank whose mean
  // is edited mid-run stays draw-for-draw identical to an untouched twin.
  ChannelBank moved, still;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    moved.add_user(test_config(), common::RngStream(s));
    still.add_user(test_config(), common::RngStream(s));
  }
  for (int i = 1; i <= 100; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    moved.advance_all_to(t);
    still.advance_all_to(t);
    // Wiggle every user's mean each step, then restore user 0's.
    for (std::size_t u = 0; u < moved.size(); ++u) {
      moved.set_mean_snr_db(u, 16.0 + static_cast<double>(i % 7) - 3.0);
    }
    moved.set_mean_snr_db(0, 16.0);
    for (std::size_t u = 0; u < moved.size(); ++u) {
      ASSERT_DOUBLE_EQ(moved.fading_power(u), still.fading_power(u));
      ASSERT_DOUBLE_EQ(moved.shadow_db(u), still.shadow_db(u));
    }
    // User 0's mean was restored, so its SNR matches the untouched twin.
    ASSERT_DOUBLE_EQ(moved.snr_linear(0), still.snr_linear(0));
  }
}

TEST(ChannelBank, SetMeanSnrMovesTheMean) {
  ChannelBank bank;
  bank.add_user(test_config(16.0), common::RngStream(1));
  const double before = bank.snr_linear(0);
  bank.set_mean_snr_db(0, 26.0);
  EXPECT_DOUBLE_EQ(bank.mean_snr_db(0), 26.0);
  EXPECT_NEAR(bank.snr_linear(0) / before, 10.0, 1e-9);
  EXPECT_THROW(bank.set_mean_snr_db(7, 10.0), std::out_of_range);
}

TEST(ChannelBank, SnrDbAllMatchesScalarReads) {
  // The bulk pilot plane computes the same quantity as snr_db() in the dB
  // domain (no exp/log10 round trip); values agree to rounding.
  ChannelBank bank;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    bank.add_user(test_config(10.0 + static_cast<double>(s)),
                  common::RngStream(s));
  }
  bank.advance_all_to(0.25);
  std::vector<double> bulk(bank.size());
  bank.snr_db_all(bulk);
  for (std::size_t u = 0; u < bank.size(); ++u) {
    EXPECT_NEAR(bulk[u], bank.snr_db(u), 1e-9) << "user " << u;
  }
  std::vector<double> too_short(bank.size() - 1);
  EXPECT_THROW(bank.snr_db_all(too_short), std::invalid_argument);
}

TEST(ChannelBank, SetMeanSnrDbAllMatchesScalarWrites) {
  ChannelBank bulk, scalar;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    bulk.add_user(test_config(), common::RngStream(s));
    scalar.add_user(test_config(), common::RngStream(s));
  }
  bulk.advance_all_to(0.1);
  scalar.advance_all_to(0.1);
  std::vector<double> db;
  for (std::size_t u = 0; u < bulk.size(); ++u) {
    db.push_back(5.0 + 3.0 * static_cast<double>(u));
    scalar.set_mean_snr_db(u, db.back());
  }
  bulk.set_mean_snr_db_all(db);
  for (std::size_t u = 0; u < bulk.size(); ++u) {
    ASSERT_DOUBLE_EQ(bulk.mean_snr_db(u), scalar.mean_snr_db(u));
    ASSERT_DOUBLE_EQ(bulk.snr_linear(u), scalar.snr_linear(u));  // exact
    ASSERT_DOUBLE_EQ(bulk.config(u).mean_snr_db, db[u]);
  }
  // Bulk re-anchoring is the same no-RNG fast path as the scalar call: the
  // next advance stays draw-for-draw aligned.
  bulk.advance_all_to(0.2);
  scalar.advance_all_to(0.2);
  for (std::size_t u = 0; u < bulk.size(); ++u) {
    ASSERT_DOUBLE_EQ(bulk.fading_power(u), scalar.fading_power(u));
    ASSERT_DOUBLE_EQ(bulk.shadow_db(u), scalar.shadow_db(u));
  }
  std::vector<double> too_short(bulk.size() - 1);
  EXPECT_THROW(bulk.set_mean_snr_db_all(too_short), std::invalid_argument);
}

TEST(ChannelBank, SetInterferenceLeavesStateAndDrawsUntouched) {
  // The interference plane is the same kind of no-RNG fast path as
  // set_mean_snr_db_all: feeding a fresh penalty plane every step must
  // not touch the fading/shadowing state or consume a draw, and a user
  // whose penalty is restored to 0 reads bit-identically to a bank that
  // never saw interference.
  ChannelBank loaded, clean;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    loaded.add_user(test_config(), common::RngStream(s));
    clean.add_user(test_config(), common::RngStream(s));
  }
  std::vector<double> penalty(loaded.size());
  for (int i = 1; i <= 100; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    loaded.advance_all_to(t);
    clean.advance_all_to(t);
    for (std::size_t u = 0; u < penalty.size(); ++u) {
      penalty[u] = static_cast<double>((i + static_cast<int>(u)) % 5);
    }
    penalty[0] = 0.0;
    loaded.set_interference_db_all(penalty);
    for (std::size_t u = 0; u < loaded.size(); ++u) {
      ASSERT_DOUBLE_EQ(loaded.fading_power(u), clean.fading_power(u));
      ASSERT_DOUBLE_EQ(loaded.shadow_db(u), clean.shadow_db(u));
      ASSERT_DOUBLE_EQ(loaded.interference_db(u), penalty[u]);
    }
    // User 0 carries no penalty: its SINR is the untouched twin's SNR,
    // bit for bit.
    ASSERT_DOUBLE_EQ(loaded.snr_linear(0), clean.snr_linear(0));
    ASSERT_DOUBLE_EQ(loaded.snr_db(0), clean.snr_db(0));
  }
  // After 100 steps of penalty churn the innovation streams are still
  // draw-for-draw aligned.
  loaded.advance_all_to(0.5);
  clean.advance_all_to(0.5);
  for (std::size_t u = 0; u < loaded.size(); ++u) {
    ASSERT_DOUBLE_EQ(loaded.fading_power(u), clean.fading_power(u));
    ASSERT_DOUBLE_EQ(loaded.shadow_db(u), clean.shadow_db(u));
  }
}

TEST(ChannelBank, InterferenceLowersSnrByThePenalty) {
  ChannelBank bank;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    bank.add_user(test_config(), common::RngStream(s));
  }
  bank.advance_all_to(0.25);
  std::vector<double> baseline(bank.size());
  bank.snr_db_all(baseline);
  double previous_snr = bank.snr_db(1);
  for (double db : {1.5, 4.0, 9.0}) {
    std::vector<double> penalty(bank.size(), db);
    bank.set_interference_db_all(penalty);
    // SINR == SNR - penalty in dB, for both the bulk plane and the
    // scalar read; monotone: a larger penalty always reads lower.
    std::vector<double> sinr(bank.size());
    bank.snr_db_all(sinr);
    for (std::size_t u = 0; u < bank.size(); ++u) {
      EXPECT_DOUBLE_EQ(sinr[u], baseline[u] - db);
      EXPECT_NEAR(bank.snr_db(u), baseline[u] - db, 1e-9);
    }
    EXPECT_LT(bank.snr_db(1), previous_snr);
    previous_snr = bank.snr_db(1);
  }
  // Restoring a zero plane restores the interference-free reads exactly.
  std::vector<double> zero(bank.size(), 0.0);
  bank.set_interference_db_all(zero);
  std::vector<double> restored(bank.size());
  bank.snr_db_all(restored);
  for (std::size_t u = 0; u < bank.size(); ++u) {
    EXPECT_EQ(restored[u], baseline[u]);  // bitwise
    EXPECT_EQ(bank.interference_db(u), 0.0);
  }
  std::vector<double> too_short(bank.size() - 1);
  EXPECT_THROW(bank.set_interference_db_all(too_short),
               std::invalid_argument);
}

TEST(ChannelBank, InvalidConfigsThrow) {
  ChannelBank bank;
  auto bad_branches = test_config();
  bad_branches.diversity_branches = 0;
  EXPECT_THROW(bank.add_user(bad_branches, common::RngStream(1)),
               std::invalid_argument);
  auto bad_sigma = test_config();
  bad_sigma.shadow_sigma_db = -1.0;
  EXPECT_THROW(bank.add_user(bad_sigma, common::RngStream(1)),
               std::invalid_argument);
  auto bad_dt = test_config();
  bad_dt.sample_interval = 0.0;
  EXPECT_THROW(bank.add_user(bad_dt, common::RngStream(1)),
               std::invalid_argument);
  auto bad_doppler = test_config();
  bad_doppler.doppler_hz = 0.0;
  EXPECT_THROW(bank.add_user(bad_doppler, common::RngStream(1)),
               std::invalid_argument);
}

TEST(ChannelBank, RangeWritesMatchAllWritesWithVacancies) {
  // The shard-safe strip APIs: feeding a bank through uneven contiguous
  // row ranges must land exactly where the _all batch write lands, with
  // vacant (free-list) rows skipped by both paths.
  ChannelBank a, b;
  constexpr std::size_t kUsers = 8;
  for (std::uint64_t s = 1; s <= kUsers; ++s) {
    a.add_user(test_config(), common::RngStream(s));
    b.add_user(test_config(), common::RngStream(s));
  }
  a.release_user(2);
  b.release_user(2);
  a.release_user(5);
  b.release_user(5);
  for (int i = 1; i <= 50; ++i) {
    const double t = static_cast<double>(i) * 2.5e-3;
    a.advance_all_to(t);
    b.advance_all_to(t);
  }
  std::vector<double> mean(kUsers), interf(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    mean[u] = 10.0 + static_cast<double>(u);
    interf[u] = 0.25 * static_cast<double>(u);
  }
  a.set_mean_snr_db_all({mean.data(), mean.size()});
  a.set_interference_db_all({interf.data(), interf.size()});
  // Three uneven strips covering [0, 8), vacant rows inside the strips.
  b.set_mean_snr_db_range(0, {mean.data(), 3});
  b.set_mean_snr_db_range(3, {mean.data() + 3, 2});
  b.set_mean_snr_db_range(5, {mean.data() + 5, 3});
  b.set_interference_db_range(0, {interf.data(), 4});
  b.set_interference_db_range(4, {interf.data() + 4, 4});
  for (std::size_t u = 0; u < kUsers; ++u) {
    if (u == 2 || u == 5) continue;  // vacant
    EXPECT_EQ(a.snr_db(u), b.snr_db(u)) << "slot " << u;
    EXPECT_EQ(a.mean_snr_db(u), b.mean_snr_db(u)) << "slot " << u;
    EXPECT_EQ(a.interference_db(u), b.interference_db(u)) << "slot " << u;
  }
}

TEST(ChannelBank, SnrDbRangeMatchesSnrDbAllAndSkipsVacantRows) {
  ChannelBank bank;
  constexpr std::size_t kUsers = 6;
  for (std::uint64_t s = 1; s <= kUsers; ++s) {
    bank.add_user(test_config(), common::RngStream(s));
  }
  bank.release_user(1);
  for (int i = 1; i <= 20; ++i) {
    bank.advance_all_to(static_cast<double>(i) * 2.5e-3);
  }
  std::vector<double> mean(kUsers, 14.0);
  bank.set_mean_snr_db_all({mean.data(), mean.size()});
  std::vector<double> all(kUsers, -777.0), ranged(kUsers, -777.0);
  bank.snr_db_all({all.data(), all.size()});
  bank.snr_db_range(0, {ranged.data(), 4});
  bank.snr_db_range(4, {ranged.data() + 4, 2});
  for (std::size_t u = 0; u < kUsers; ++u) {
    if (u == 1) {
      EXPECT_EQ(ranged[u], -777.0);  // vacant: the caller's entry survives
    } else {
      EXPECT_EQ(ranged[u], all[u]) << "slot " << u;
    }
  }
}

TEST(ChannelBank, SnrDbRangeThrowsOnLazyBank) {
  // Lazy materialization walks bank-wide bookkeeping — not safe from
  // concurrent strip tasks, so the range read refuses outright.
  ChannelBank bank;
  bank.add_user(test_config(), common::RngStream(1));
  bank.set_lazy(true);
  std::vector<double> out(1, 0.0);
  EXPECT_THROW(bank.snr_db_range(0, {out.data(), 1}), std::logic_error);
}

TEST(ChannelBank, RangeApisRejectOutOfRangeSpans) {
  ChannelBank bank;
  bank.add_user(test_config(), common::RngStream(1));
  std::vector<double> v(2, 0.0);
  EXPECT_THROW(bank.set_mean_snr_db_range(0, {v.data(), 2}),
               std::out_of_range);
  EXPECT_THROW(bank.set_interference_db_range(1, {v.data(), 1}),
               std::out_of_range);
  EXPECT_THROW(bank.snr_db_range(1, {v.data(), 1}), std::out_of_range);
}

}  // namespace
}  // namespace charisma::channel
