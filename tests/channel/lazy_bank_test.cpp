// The lazy-materialization contract of ChannelBank (this PR's tentpole):
//
//  * k deferred clock moves + one materialization IS one k-jump — bitwise,
//    per diversity branch, RNG cursor included (the property that makes the
//    closed-form jump an *implementation detail* of lazy mode);
//  * the strip-mined kernel is width-invariant: scalar (W=1) and SIMD
//    (W=4/8) strips produce bit-identical state, so CHARISMA_SIMD is purely
//    a speed knob;
//  * the touch set is an optimization, not an obligation: scattered
//    on-read materialization equals one batched declaration, bitwise;
//  * the materialization counters account for every user-frame exactly.
#include "channel/channel_bank.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace charisma::channel {
namespace {

constexpr double kDt = 2.5e-3;

ChannelConfig test_config(double doppler_hz = 100.0, int branches = 4) {
  ChannelConfig cfg;
  cfg.mean_snr_db = 16.0;
  cfg.shadow_sigma_db = 3.0;
  cfg.doppler_hz = doppler_hz;
  cfg.diversity_branches = branches;
  cfg.sample_interval = kDt;
  return cfg;
}

ChannelBank make_bank(int users, std::uint64_t seed0,
                      bool mixed_population = false) {
  ChannelBank bank;
  bank.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u) {
    // Mixed population: two parameter groups and two branch counts, so the
    // strip batcher must split runs at every key change.
    const auto cfg = mixed_population
                         ? test_config(u % 2 == 0 ? 100.0 : 220.0,
                                       u % 3 == 0 ? 2 : 4)
                         : test_config();
    bank.add_user(cfg, common::RngStream(seed0 + static_cast<std::uint64_t>(u)));
  }
  return bank;
}

// NOTE: fading_power/shadow_db/snr_linear are materializing reads on a lazy
// bank, so comparing two banks is itself a (bitwise-neutral) touch — callers
// must compare users both banks have already materialized, or bulk-advance
// first, for the current_step assertion to be meaningful.
void expect_user_bitwise_equal(const ChannelBank& a, const ChannelBank& b,
                               std::size_t u) {
  SCOPED_TRACE("user " + std::to_string(u));
  ASSERT_EQ(a.current_step(u), b.current_step(u));
  for (int br = 0; br < a.config(u).diversity_branches; ++br) {
    SCOPED_TRACE("branch " + std::to_string(br));
    EXPECT_EQ(a.fade_re(u, br), b.fade_re(u, br));  // exact, not NEAR
    EXPECT_EQ(a.fade_im(u, br), b.fade_im(u, br));
  }
  EXPECT_EQ(a.fading_power(u), b.fading_power(u));
  EXPECT_EQ(a.shadow_db(u), b.shadow_db(u));
  EXPECT_EQ(a.snr_linear(u), b.snr_linear(u));
  EXPECT_EQ(a.rng_cursor(u), b.rng_cursor(u));
}

void expect_users_bitwise_equal(const ChannelBank& a, const ChannelBank& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    expect_user_bitwise_equal(a, b, u);
  }
}

TEST(LazyBank, DeferredClockPlusMaterializeEqualsOneJump) {
  // For every stride k in 1..257: k O(1) clock moves followed by the first
  // read must equal the single eager k-jump — the same closed-form step,
  // the same innovation draws, the same RNG cursor afterwards.
  for (int k = 1; k <= 257; ++k) {
    SCOPED_TRACE("k = " + std::to_string(k));
    auto lazy = make_bank(3, 40);
    auto eager = make_bank(3, 40);
    lazy.set_lazy(true);
    for (int i = 1; i <= k; ++i) {
      lazy.set_time(static_cast<double>(i) * kDt);
    }
    // First read materializes: one jump of stride k.
    ASSERT_GT(lazy.fading_power(1), 0.0);
    eager.advance_user_to(1, static_cast<double>(k) * kDt);

    ASSERT_EQ(lazy.current_step(1), static_cast<std::int64_t>(k));
    for (int br = 0; br < 4; ++br) {
      ASSERT_EQ(lazy.fade_re(1, br), eager.fade_re(1, br)) << "branch " << br;
      ASSERT_EQ(lazy.fade_im(1, br), eager.fade_im(1, br)) << "branch " << br;
    }
    ASSERT_EQ(lazy.fading_power(1), eager.fading_power(1));
    ASSERT_EQ(lazy.shadow_db(1), eager.shadow_db(1));
    ASSERT_EQ(lazy.snr_linear(1), eager.snr_linear(1));
    ASSERT_EQ(lazy.rng_cursor(1), eager.rng_cursor(1));
    // Untouched neighbours were never materialized by the per-user read.
    ASSERT_EQ(lazy.current_step(0), 0);
    ASSERT_EQ(lazy.current_step(2), 0);
  }
}

TEST(LazyBank, BulkAdvanceEqualsLazyMaterializeAll) {
  // advance_all_to is already one k-jump per user, so "clock move + full
  // materialization" and the eager bulk call are the same operation — the
  // one place lazy and eager schedules coincide bitwise.
  auto lazy = make_bank(6, 90, /*mixed_population=*/true);
  auto eager = make_bank(6, 90, /*mixed_population=*/true);
  lazy.set_lazy(true);
  for (double t : {5 * kDt, 6 * kDt, 70 * kDt}) {
    lazy.set_time(t);
    lazy.materialize_all();
    eager.advance_all_to(t);
    expect_users_bitwise_equal(lazy, eager);
  }
}

TEST(LazyBank, StripWidthsBitIdentical) {
  // Scalar and SIMD strips over a mixed population with heterogeneous
  // touch windows (so strides differ per user and strips are partial) must
  // agree on every bit of state, every frame.
  const int n = 23;  // not a multiple of any strip width
  auto w1 = make_bank(n, 7, /*mixed_population=*/true);
  auto w4 = make_bank(n, 7, /*mixed_population=*/true);
  auto w8 = make_bank(n, 7, /*mixed_population=*/true);
  for (ChannelBank* bank : {&w1, &w4, &w8}) bank->set_lazy(true);
  w1.set_strip_width(1);
  w4.set_strip_width(4);
  w8.set_strip_width(8);

  std::vector<common::UserId> ids;
  for (int f = 1; f <= 60; ++f) {
    const double t = static_cast<double>(f) * kDt;
    if (f % 10 == 0) {
      // Bulk checkpoint: the strips chew through the accumulated
      // heterogeneous strides; afterwards everyone is comparable.
      for (ChannelBank* bank : {&w1, &w4, &w8}) bank->advance_all_to(t);
      expect_users_bitwise_equal(w1, w4);
      expect_users_bitwise_equal(w1, w8);
    } else {
      // Rotating, variable-length window: users accrue different strides.
      // Only the touched users are compared mid-stream — lazy reads
      // materialize, so comparing an untouched user would itself advance
      // the banks (see expect_user_bitwise_equal).
      ids.clear();
      const int len = 1 + (f % 7);
      for (int i = 0; i < len; ++i) {
        ids.push_back(static_cast<common::UserId>((f + i * 3) % n));
      }
      for (ChannelBank* bank : {&w1, &w4, &w8}) {
        bank->advance_users_to(ids, t);
      }
      for (common::UserId id : ids) {
        expect_user_bitwise_equal(w1, w4, static_cast<std::size_t>(id));
        expect_user_bitwise_equal(w1, w8, static_cast<std::size_t>(id));
      }
    }
  }
}

TEST(LazyBank, OnReadMatchesBatchedTouch) {
  // Declaring a frame's read set up front is an optimization only:
  // scattered per-read materialization (here in reverse order, mid-frame)
  // must land on exactly the same state and RNG cursors.
  const int n = 12;
  auto on_read = make_bank(n, 300);
  auto batched = make_bank(n, 300);
  on_read.set_lazy(true);
  batched.set_lazy(true);
  for (int f = 1; f <= 25; ++f) {
    const double t = static_cast<double>(f) * kDt;
    std::vector<common::UserId> touched;
    for (int u = f % 3; u < n; u += 3) {
      touched.push_back(static_cast<common::UserId>(u));
    }
    batched.advance_users_to(touched, t);
    on_read.set_time(t);
    for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
      ASSERT_GT(on_read.snr_linear(static_cast<std::size_t>(*it)), 0.0);
    }
  }
  // Settle stragglers, then compare the whole population.
  on_read.materialize_all();
  batched.materialize_all();
  expect_users_bitwise_equal(on_read, batched);
}

TEST(LazyBank, CounterAccounting) {
  // 8 users, 10 frames: user 0 touched every frame, the rest settled once
  // at the end. Every user-frame of evolution must be accounted: frames =
  // 8 * 10 = 80; events = 10 (user 0) + 7 (one deferred jump each) = 17.
  auto bank = make_bank(8, 500);
  bank.set_lazy(true);
  const common::UserId zero[] = {0};
  for (int f = 1; f <= 9; ++f) {
    bank.advance_users_to(zero, static_cast<double>(f) * kDt);
  }
  bank.advance_all_to(10 * kDt);
  const auto stats = bank.lazy_stats();
  EXPECT_EQ(stats.jump_frames, 80);
  EXPECT_EQ(stats.jump_events, 17);

  // Eager banks report stride exactly 1: events == frames.
  auto eager = make_bank(8, 500);
  for (int f = 1; f <= 10; ++f) {
    eager.advance_all_to(static_cast<double>(f) * kDt);
  }
  const auto eager_stats = eager.lazy_stats();
  EXPECT_EQ(eager_stats.jump_events, 80);
  EXPECT_EQ(eager_stats.jump_frames, 80);
}

TEST(LazyBank, SharedCoeffCacheBitwiseStable) {
  // The process-wide rho^k memo must be invisible: a bank whose irregular
  // strides were already cached by an earlier bank (cache hits) produces
  // exactly the realization of the bank that computed them (cache misses).
  const std::vector<int> strides = {1, 3, 17, 64, 255, 2, 19};
  auto run = [&](std::uint64_t seed0) {
    auto bank = make_bank(5, seed0, /*mixed_population=*/true);
    double t = 0.0;
    for (int k : strides) {
      t += static_cast<double>(k) * kDt;
      bank.advance_all_to(t);
    }
    return bank;
  };
  const auto first = run(1234);   // warms the shared cache
  const auto second = run(1234);  // identical schedule, cache hits
  expect_users_bitwise_equal(first, second);
}

TEST(LazyBank, GuardsAndErrors) {
  auto bank = make_bank(4, 800);
  bank.set_lazy(true);
  bank.set_time(5 * kDt);
  EXPECT_THROW(bank.set_time(4 * kDt), std::logic_error);
  const common::UserId bogus[] = {99};
  EXPECT_THROW(bank.materialize_users(bogus), std::out_of_range);
  EXPECT_THROW(bank.set_strip_width(3), std::invalid_argument);
  // Duplicates in a touch set are fine (second materialization no-ops).
  const common::UserId dupes[] = {0, 0, 1};
  EXPECT_NO_THROW(bank.materialize_users(dupes));

  // Eager semantics preserved: a user advanced ahead of a later bulk
  // advance still trips the legacy backwards-time guard.
  auto eager = make_bank(2, 900);
  eager.advance_user_to(0, 10 * kDt);
  EXPECT_THROW(eager.advance_all_to(5 * kDt), std::logic_error);
}

}  // namespace
}  // namespace charisma::channel
