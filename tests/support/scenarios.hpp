// Shared scenario builders for protocol and integration tests. Scenarios
// are deliberately small (few users, short horizons) to keep the suite
// fast while still exercising every protocol path.
#pragma once

#include "mac/scenario.hpp"

namespace charisma::testing {

/// A small mixed scenario under the default calibrated radio environment.
inline mac::ScenarioParams small_mixed(int voice, int data, bool queue = true,
                                       std::uint64_t seed = 1) {
  mac::ScenarioParams p;
  p.num_voice_users = voice;
  p.num_data_users = data;
  p.request_queue = queue;
  p.seed = seed;
  return p;
}

/// An idealized radio: enormous SNR, no shadowing, no estimation noise —
/// every transmission succeeds and every mode ladder tops out. Isolates
/// MAC-layer behaviour from channel randomness.
inline mac::ScenarioParams ideal_channel(int voice, int data,
                                         bool queue = true,
                                         std::uint64_t seed = 1) {
  auto p = small_mixed(voice, data, queue, seed);
  p.channel.mean_snr_db = 40.0;
  p.channel.shadow_sigma_db = 0.0;
  p.csi_error_sigma_db = 0.0;
  return p;
}

/// A dead radio: SNR far below every adaptation threshold. Exercises the
/// outage paths (wasted slots, deferral, deadline drops).
inline mac::ScenarioParams outage_channel(int voice, int data,
                                          bool queue = true,
                                          std::uint64_t seed = 1) {
  auto p = small_mixed(voice, data, queue, seed);
  p.channel.mean_snr_db = -20.0;
  p.channel.shadow_sigma_db = 0.0;
  return p;
}

}  // namespace charisma::testing
