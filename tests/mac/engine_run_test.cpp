// ProtocolEngine::run window semantics: durations are relative to now(),
// so repeated runs are window-monotonic — each call continues the same
// simulation and measures a fresh, non-empty window. (A second run with an
// absolute warmup at or before now() used to return a zero-frame window
// whose rate helpers divided by zero.)
#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

using protocols::ProtocolId;

TEST(EngineRunWindows, RepeatedRunsEachMeasureTheirOwnWindow) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         testing::small_mixed(8, 2));
  const auto& first = engine->run(0.5, 1.0);
  EXPECT_GT(first.frames, 0);
  EXPECT_NEAR(first.measured_time, 1.0, 0.05);
  EXPECT_NEAR(engine->now(), 1.5, 0.05);

  // The historical failure mode: warmup (0.5) <= now() (1.5) made both
  // run_until calls no-ops and returned zero frames.
  const auto& second = engine->run(0.5, 1.0);
  EXPECT_GT(second.frames, 0);
  EXPECT_NEAR(second.measured_time, 1.0, 0.05);
  EXPECT_NEAR(engine->now(), 3.0, 0.05);
  EXPECT_GE(second.voice_generated, 0);
}

TEST(EngineRunWindows, ZeroWarmupRepeatedRunStillMeasures) {
  auto engine = protocols::make_protocol(ProtocolId::kDtdmaFr,
                                         testing::small_mixed(8, 2));
  (void)engine->run(0.0, 1.0);
  const auto& again = engine->run(0.0, 1.0);
  EXPECT_GT(again.frames, 0);
  EXPECT_NEAR(engine->now(), 2.0, 0.05);
}

TEST(EngineRunWindows, InvalidDurationsThrow) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         testing::small_mixed(4, 0));
  EXPECT_THROW(engine->run(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(engine->run(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(engine->run(1.0, -1.0), std::invalid_argument);
}

TEST(EngineRunWindows, AdvanceByAccumulatesWithoutReset) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         testing::small_mixed(8, 0));
  engine->advance_by(1.0);
  const auto frames_first = engine->metrics().frames;
  EXPECT_GT(frames_first, 0);
  engine->advance_by(1.0);
  EXPECT_GT(engine->metrics().frames, frames_first);
  EXPECT_NEAR(engine->now(), 2.0, 0.05);
  // Non-positive advances are no-ops.
  engine->advance_by(0.0);
  engine->advance_by(-1.0);
  EXPECT_NEAR(engine->now(), 2.0, 0.05);
}

}  // namespace
}  // namespace charisma::mac
