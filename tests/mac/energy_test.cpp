#include "mac/energy.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

using protocols::ProtocolId;
using ::charisma::testing::ideal_channel;
using ::charisma::testing::outage_channel;
using ::charisma::testing::small_mixed;

TEST(EnergyModel, BurstEnergyScales) {
  EnergyModel model;
  model.tx_power_w = 2.0;
  // 1000 symbols at 1 Msym/s = 1 ms at 2 W = 2 mJ.
  EXPECT_NEAR(model.burst_energy_j(1000.0, 1e6), 2e-3, 1e-12);
  EXPECT_NEAR(model.burst_energy_j(0.0, 1e6), 0.0, 1e-15);
}

TEST(Energy, IdealChannelWastesAlmostNothing) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         ideal_channel(10, 2));
  const auto& m = engine->run(2.0, 5.0);
  EXPECT_GT(m.total_energy_j(), 0.0);
  // Only collided request minislots can be wasted on a perfect channel.
  EXPECT_LT(m.energy_waste_ratio(), 0.05);
}

TEST(Energy, DeadChannelWastesEverythingItSpends) {
  // The fixed PHY transmits blindly into the dead channel: all info-slot
  // energy is wasted — the paper's motivation 2 in its purest form.
  auto engine = protocols::make_protocol(ProtocolId::kDtdmaFr,
                                         outage_channel(10, 0));
  const auto& m = engine->run(2.0, 5.0);
  ASSERT_GT(m.energy_info_j, 0.0);
  EXPECT_GT(m.energy_waste_ratio(), 0.9);
}

TEST(Energy, AdaptivePhyStaysSilentInOutage) {
  // D-TDMA/VR detects the outage and never keys the transmitter in its
  // reserved slots: info-slot energy stays zero.
  auto engine = protocols::make_protocol(ProtocolId::kDtdmaVr,
                                         outage_channel(10, 0));
  const auto& m = engine->run(2.0, 5.0);
  EXPECT_DOUBLE_EQ(m.energy_info_j, 0.0);
}

TEST(Energy, CharismaBeatsFixedPhyPerPacket) {
  const auto params = small_mixed(80, 5, true, 21);
  auto charisma_eng = protocols::make_protocol(ProtocolId::kCharisma, params);
  auto fr = protocols::make_protocol(ProtocolId::kDtdmaFr, params);
  const auto& mc = charisma_eng->run(3.0, 8.0);
  const auto& mf = fr->run(3.0, 8.0);
  EXPECT_LT(mc.energy_waste_ratio(), mf.energy_waste_ratio());
  EXPECT_LT(mc.energy_per_delivered_packet_mj(),
            mf.energy_per_delivered_packet_mj());
}

TEST(Energy, PilotEnergyOnlyForCharismaPolling) {
  const auto params = small_mixed(40, 0, true, 23);
  auto charisma_eng = protocols::make_protocol(ProtocolId::kCharisma, params);
  auto rama = protocols::make_protocol(ProtocolId::kRama, params);
  const auto& mc = charisma_eng->run(3.0, 6.0);
  const auto& mr = rama->run(3.0, 6.0);
  EXPECT_GT(mc.energy_pilot_j, 0.0);
  EXPECT_DOUBLE_EQ(mr.energy_pilot_j, 0.0);
}

TEST(Energy, ComponentsSumToTotal) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         small_mixed(30, 5));
  const auto& m = engine->run(2.0, 5.0);
  EXPECT_NEAR(m.total_energy_j(),
              m.energy_request_j + m.energy_info_j + m.energy_pilot_j, 1e-12);
  EXPECT_LE(m.energy_wasted_j, m.total_energy_j() + 1e-12);
  EXPECT_GE(m.energy_wasted_j, 0.0);
}

TEST(Energy, ZeroPowerMeansZeroEnergy) {
  auto params = small_mixed(10, 2);
  params.energy.tx_power_w = 0.0;
  auto engine = protocols::make_protocol(ProtocolId::kCharisma, params);
  const auto& m = engine->run(1.0, 3.0);
  EXPECT_DOUBLE_EQ(m.total_energy_j(), 0.0);
}

TEST(Energy, EveryProtocolAccountsEnergy) {
  for (auto id : protocols::all_protocols()) {
    auto engine = protocols::make_protocol(id, small_mixed(20, 5));
    const auto& m = engine->run(1.5, 4.0);
    EXPECT_GT(m.total_energy_j(), 0.0) << protocols::protocol_name(id);
    EXPECT_LE(m.energy_wasted_j, m.total_energy_j() + 1e-12)
        << protocols::protocol_name(id);
  }
}

TEST(AckLoss, LostAcksAreCountedAndRetried) {
  auto params = small_mixed(30, 5, true, 25);
  params.ack_loss_prob = 0.3;
  auto engine = protocols::make_protocol(ProtocolId::kCharisma, params);
  const auto& m = engine->run(2.0, 6.0);
  EXPECT_GT(m.acks_lost, 0);
  // The system keeps functioning (devices retry on timeout).
  EXPECT_GT(m.voice_delivered, 0);
}

TEST(AckLoss, OffByDefault) {
  auto engine = protocols::make_protocol(ProtocolId::kDtdmaFr,
                                         small_mixed(30, 5));
  const auto& m = engine->run(2.0, 5.0);
  EXPECT_EQ(m.acks_lost, 0);
}

TEST(AckLoss, DegradesServiceMonotonically) {
  auto clean = small_mixed(60, 0, true, 27);
  auto lossy = clean;
  lossy.ack_loss_prob = 0.5;
  auto a = protocols::make_protocol(ProtocolId::kDtdmaFr, clean);
  auto b = protocols::make_protocol(ProtocolId::kDtdmaFr, lossy);
  const double loss_clean = a->run(3.0, 8.0).voice_loss_rate();
  const double loss_lossy = b->run(3.0, 8.0).voice_loss_rate();
  EXPECT_GT(loss_lossy, loss_clean);
}

TEST(AckLoss, InvalidProbabilityRejected) {
  auto params = small_mixed(5, 0);
  params.ack_loss_prob = 1.0;
  EXPECT_THROW(protocols::make_protocol(ProtocolId::kCharisma, params),
               std::invalid_argument);
  params.ack_loss_prob = -0.1;
  EXPECT_THROW(protocols::make_protocol(ProtocolId::kCharisma, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::mac
