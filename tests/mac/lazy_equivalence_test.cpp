// Engine/world-level contract of the opt-in lazy channel (suite name is
// load-bearing: the lazy_equivalence_smoke ctest runs
// --gtest_filter=LazyEquivalence* in every build config, TSan/ASan
// included). The lazy realization is pinned invariant to the SIMD strip
// width and to the worker thread count; the eager default keeps reporting
// a materialization stride of exactly 1.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

ScenarioParams tiny_params(std::uint64_t seed) {
  ScenarioParams p;
  p.num_voice_users = 12;
  p.num_data_users = 4;
  p.seed = seed;
  p.lazy_channel = true;
  return p;
}

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

CellularConfig lazy_world_config(unsigned threads, std::uint64_t seed = 7) {
  CellularConfig cfg;
  cfg.num_cells = 3;
  cfg.num_threads = threads;
  cfg.params = tiny_params(seed);
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1500.0;
  cfg.mobility.field_height_m = 300.0;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

TEST(LazyEquivalence, StripWidthInvariantPerProtocol) {
  // Every protocol's lazy run must be independent of the materialization
  // kernel's strip width — the full-engine restatement of the bank-level
  // StripWidthsBitIdentical property, covering each protocol's touch-set
  // hooks and on-read stragglers.
  for (auto id : protocols::all_protocols()) {
    SCOPED_TRACE(protocols::protocol_name(id));
    auto run = [&](int width) {
      auto engine = protocols::make_protocol(id, tiny_params(31));
      engine->channel_bank().set_strip_width(width);
      return engine->run(0.3, 1.0);
    };
    const auto scalar = run(1);
    ASSERT_GT(scalar.frames, 0);
    ASSERT_GT(scalar.voice_generated, 0);
    EXPECT_TRUE(scalar == run(8));
    EXPECT_TRUE(scalar == run(4));
  }
}

TEST(LazyEquivalence, LazyWorldSerialVsParallel) {
  // Thread-count invariance survives lazy materialization: the per-cell
  // banks stay share-nothing and each user's innovation stream is private,
  // so who materializes when cannot depend on scheduling.
  CellularWorld serial(lazy_world_config(1),
                       factory_for(protocols::ProtocolId::kCharisma));
  serial.run(0.4, 1.2);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CellularWorld parallel(lazy_world_config(threads),
                           factory_for(protocols::ProtocolId::kCharisma));
    parallel.run(0.4, 1.2);
    EXPECT_EQ(serial.handoffs(), parallel.handoffs());
    EXPECT_TRUE(reference == parallel.aggregate_metrics());
  }
}

TEST(LazyEquivalence, LazyWorldWithBarringSerialVsParallel) {
  // The closed-loop barring controller adds channel reads on the
  // contention path; the guarantee must hold with it engaged too.
  auto make = [](unsigned threads) {
    auto cfg = lazy_world_config(threads, /*seed=*/17);
    cfg.params.barring.enabled = true;
    return cfg;
  };
  CellularWorld serial(make(1), factory_for(protocols::ProtocolId::kRmav));
  serial.run(0.4, 1.2);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  CellularWorld parallel(make(3), factory_for(protocols::ProtocolId::kRmav));
  parallel.run(0.4, 1.2);
  EXPECT_TRUE(reference == parallel.aggregate_metrics());
}

TEST(LazyEquivalence, LazyVsEagerSanity) {
  // Lazy is a different (equally exact) realization, so metrics are not
  // bitwise comparable — but a fixed-cadence protocol generates traffic on
  // the same frame boundaries either way, and only lazy may skip
  // user-frames.
  auto lazy_params = tiny_params(11);
  auto eager_params = tiny_params(11);
  eager_params.lazy_channel = false;

  auto lazy =
      protocols::make_protocol(protocols::ProtocolId::kDtdmaFr, lazy_params);
  auto eager =
      protocols::make_protocol(protocols::ProtocolId::kDtdmaFr, eager_params);
  const auto& lm = lazy->run(0.3, 1.5);
  const auto& em = eager->run(0.3, 1.5);

  ASSERT_GT(em.voice_generated, 0);
  EXPECT_EQ(lm.frames, em.frames);
  EXPECT_EQ(lm.measured_time, em.measured_time);
  EXPECT_EQ(lm.voice_generated, em.voice_generated);
  EXPECT_EQ(lm.data_generated, em.data_generated);

  EXPECT_EQ(em.users_skipped_frames, 0);
  EXPECT_EQ(em.mean_materialization_stride(), 1.0);
  // Eager accounting closes exactly: one jump per user per frame.
  EXPECT_EQ(em.users_advanced_frames,
            static_cast<std::int64_t>(em.frames) *
                eager_params.total_users());
  EXPECT_GT(lm.users_advanced_frames, 0);
  EXPECT_GT(lm.users_skipped_frames, 0);
  EXPECT_GT(lm.mean_materialization_stride(), 1.0);
}

}  // namespace
}  // namespace charisma::mac
