#include "mac/metrics.hpp"

#include <gtest/gtest.h>

namespace charisma::mac {
namespace {

TEST(Metrics, ZeroSafeDerived) {
  ProtocolMetrics m;
  EXPECT_DOUBLE_EQ(m.voice_loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.data_throughput_per_frame(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_data_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.slot_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(m.request_success_ratio(), 0.0);
}

TEST(Metrics, VoiceLossComposition) {
  ProtocolMetrics m;
  m.voice_generated = 1000;
  m.voice_delivered = 960;
  m.voice_dropped_deadline = 30;
  m.voice_error_lost = 10;
  EXPECT_DOUBLE_EQ(m.voice_loss_rate(), 0.04);
  EXPECT_DOUBLE_EQ(m.voice_drop_rate(), 0.03);
  EXPECT_DOUBLE_EQ(m.voice_error_rate(), 0.01);
}

TEST(Metrics, DataThroughputPerFrame) {
  ProtocolMetrics m;
  m.frames = 400;
  m.data_delivered = 1000;
  EXPECT_DOUBLE_EQ(m.data_throughput_per_frame(), 2.5);
}

TEST(Metrics, DelayAccumulator) {
  ProtocolMetrics m;
  m.data_delay_s.add(0.1);
  m.data_delay_s.add(0.3);
  EXPECT_DOUBLE_EQ(m.mean_data_delay_s(), 0.2);
}

TEST(Metrics, SlotRatios) {
  ProtocolMetrics m;
  m.info_slots_offered = 100;
  m.info_slots_assigned = 60;
  m.info_slots_wasted = 15;
  EXPECT_DOUBLE_EQ(m.slot_utilization(), 0.6);
  EXPECT_DOUBLE_EQ(m.slot_waste_ratio(), 0.15);
}

TEST(Metrics, RequestSuccessRatio) {
  ProtocolMetrics m;
  m.request_slots = 120;
  m.request_successes = 30;
  EXPECT_DOUBLE_EQ(m.request_success_ratio(), 0.25);
}

TEST(Metrics, JainIndexKnownValues) {
  ProtocolMetrics m;
  m.per_user_delivered = {10, 10, 10, 10};
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 1.0, 1e-12);
  m.per_user_delivered = {40, 0, 0, 0};
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 0.25, 1e-12);
  m.per_user_delivered = {10, 20, 30, 40};
  // (100)^2 / (4 * 3000) = 10000/12000.
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 10000.0 / 12000.0, 1e-12);
  // Sub-range selection.
  EXPECT_NEAR(m.jain_fairness_index(2, 3), 4900.0 / (2.0 * 2500.0), 1e-12);
}

TEST(Metrics, JainIndexDegenerateCases) {
  ProtocolMetrics m;
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 5), 1.0);  // no ledger
  m.per_user_delivered = {0, 0, 0};
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 2), 1.0);  // nothing delivered
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(2, 1), 1.0);  // inverted range
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 99), 1.0); // out of range
}

// Fills every additive field with a distinct value so a merge() that
// forgets a field (old or newly added) shows up as a mismatch.
ProtocolMetrics populated(int base) {
  ProtocolMetrics m;
  m.frames = base + 1;
  m.measured_time = base + 0.5;
  m.voice_generated = base + 2;
  m.voice_delivered = base + 3;
  m.voice_dropped_deadline = base + 4;
  m.voice_error_lost = base + 5;
  m.voice_dropped_handoff = base + 6;
  m.data_generated = base + 7;
  m.data_delivered = base + 8;
  m.data_tx_attempts = base + 9;
  m.data_retransmissions = base + 10;
  m.data_delay_s.add(base * 0.01 + 0.1);
  m.handoffs_in = base + 11;
  m.handoffs_out = base + 12;
  m.attached_user_frames = base + 13;
  m.interference_db.add(base * 0.1 + 1.0);
  m.request_slots = base + 14;
  m.request_successes = base + 15;
  m.request_collisions = base + 16;
  m.request_idle = base + 17;
  m.info_slots_offered = base + 18;
  m.info_slots_assigned = base + 19;
  m.info_slots_wasted = base + 20;
  m.csi_polls = base + 21;
  m.csi_stale_allocations = base + 22;
  m.acks_lost = base + 23;
  m.energy_request_j = base + 0.25;
  m.energy_info_j = base + 0.5;
  m.energy_pilot_j = base + 0.75;
  m.energy_wasted_j = base + 0.125;
  m.outage_evictions = base + 24;
  m.voice_dropped_outage = base + 25;
  m.barring_checks = base + 26;
  m.barring_barred_voice = base + 27;
  m.barring_barred_data = base + 28;
  m.barring_factor_voice.add(base * 0.01 + 0.5);
  m.barring_factor_data.add(base * 0.01 + 0.25);
  m.per_user_delivered = {base + 1, base + 2};
  return m;
}

TEST(Metrics, MergeWithDefaultIsIdentity) {
  // merge(default-constructed) must leave every field — including the PR 6
  // outage/barring counters — bit-identical; this is what makes an idle
  // cell's contribution to the world aggregate a no-op.
  const auto reference = populated(10);
  auto merged = populated(10);
  merged.merge(ProtocolMetrics{});
  EXPECT_TRUE(merged == reference);

  ProtocolMetrics from_empty;
  from_empty.merge(reference);
  EXPECT_EQ(from_empty.outage_evictions, reference.outage_evictions);
  EXPECT_EQ(from_empty.voice_dropped_outage, reference.voice_dropped_outage);
  EXPECT_EQ(from_empty.barring_checks, reference.barring_checks);
  EXPECT_EQ(from_empty.barring_barred_voice, reference.barring_barred_voice);
  EXPECT_EQ(from_empty.barring_barred_data, reference.barring_barred_data);
  EXPECT_EQ(from_empty.barring_factor_voice.count(),
            reference.barring_factor_voice.count());
  EXPECT_EQ(from_empty.barring_factor_data.count(),
            reference.barring_factor_data.count());
}

TEST(Metrics, MergeIsOrderInsensitive) {
  // a.merge(b) and b.merge(a) must agree on every additive field: the
  // world aggregates cells in index order, but nothing may depend on it.
  auto ab = populated(0);
  ab.merge(populated(100));
  auto ba = populated(100);
  ba.merge(populated(0));
  EXPECT_EQ(ab.voice_generated, ba.voice_generated);
  EXPECT_EQ(ab.outage_evictions, ba.outage_evictions);
  EXPECT_EQ(ab.voice_dropped_outage, ba.voice_dropped_outage);
  EXPECT_EQ(ab.barring_checks, ba.barring_checks);
  EXPECT_EQ(ab.barring_barred_voice, ba.barring_barred_voice);
  EXPECT_EQ(ab.barring_barred_data, ba.barring_barred_data);
  EXPECT_EQ(ab.barring_factor_voice.count(), ba.barring_factor_voice.count());
  EXPECT_DOUBLE_EQ(ab.barring_factor_voice.mean(),
                   ba.barring_factor_voice.mean());
  EXPECT_DOUBLE_EQ(ab.energy_info_j, ba.energy_info_j);
  EXPECT_EQ(ab.data_delay_s.count(), ba.data_delay_s.count());
}

TEST(Metrics, OutageLossAndBarringDerived) {
  ProtocolMetrics m;
  m.voice_generated = 1000;
  m.voice_delivered = 950;
  m.voice_dropped_deadline = 20;
  m.voice_error_lost = 10;
  m.voice_dropped_outage = 20;
  // Outage drops count against the caller just like deadline drops.
  EXPECT_DOUBLE_EQ(m.voice_loss_rate(), 0.05);
  EXPECT_DOUBLE_EQ(m.voice_outage_drop_rate(), 0.02);

  EXPECT_DOUBLE_EQ(m.effective_barring_probability(), 0.0);  // zero-safe
  m.barring_checks = 200;
  m.barring_barred_voice = 30;
  m.barring_barred_data = 20;
  EXPECT_DOUBLE_EQ(m.effective_barring_probability(), 0.25);
}

TEST(Metrics, ResetClearsEverything) {
  ProtocolMetrics m;
  m.frames = 10;
  m.voice_generated = 5;
  m.data_delay_s.add(1.0);
  m.csi_polls = 3;
  m.reset();
  EXPECT_EQ(m.frames, 0);
  EXPECT_EQ(m.voice_generated, 0);
  EXPECT_EQ(m.csi_polls, 0);
  EXPECT_EQ(m.data_delay_s.count(), 0);
}

}  // namespace
}  // namespace charisma::mac
