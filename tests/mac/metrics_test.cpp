#include "mac/metrics.hpp"

#include <gtest/gtest.h>

namespace charisma::mac {
namespace {

TEST(Metrics, ZeroSafeDerived) {
  ProtocolMetrics m;
  EXPECT_DOUBLE_EQ(m.voice_loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.data_throughput_per_frame(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_data_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.slot_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(m.request_success_ratio(), 0.0);
}

TEST(Metrics, VoiceLossComposition) {
  ProtocolMetrics m;
  m.voice_generated = 1000;
  m.voice_delivered = 960;
  m.voice_dropped_deadline = 30;
  m.voice_error_lost = 10;
  EXPECT_DOUBLE_EQ(m.voice_loss_rate(), 0.04);
  EXPECT_DOUBLE_EQ(m.voice_drop_rate(), 0.03);
  EXPECT_DOUBLE_EQ(m.voice_error_rate(), 0.01);
}

TEST(Metrics, DataThroughputPerFrame) {
  ProtocolMetrics m;
  m.frames = 400;
  m.data_delivered = 1000;
  EXPECT_DOUBLE_EQ(m.data_throughput_per_frame(), 2.5);
}

TEST(Metrics, DelayAccumulator) {
  ProtocolMetrics m;
  m.data_delay_s.add(0.1);
  m.data_delay_s.add(0.3);
  EXPECT_DOUBLE_EQ(m.mean_data_delay_s(), 0.2);
}

TEST(Metrics, SlotRatios) {
  ProtocolMetrics m;
  m.info_slots_offered = 100;
  m.info_slots_assigned = 60;
  m.info_slots_wasted = 15;
  EXPECT_DOUBLE_EQ(m.slot_utilization(), 0.6);
  EXPECT_DOUBLE_EQ(m.slot_waste_ratio(), 0.15);
}

TEST(Metrics, RequestSuccessRatio) {
  ProtocolMetrics m;
  m.request_slots = 120;
  m.request_successes = 30;
  EXPECT_DOUBLE_EQ(m.request_success_ratio(), 0.25);
}

TEST(Metrics, JainIndexKnownValues) {
  ProtocolMetrics m;
  m.per_user_delivered = {10, 10, 10, 10};
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 1.0, 1e-12);
  m.per_user_delivered = {40, 0, 0, 0};
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 0.25, 1e-12);
  m.per_user_delivered = {10, 20, 30, 40};
  // (100)^2 / (4 * 3000) = 10000/12000.
  EXPECT_NEAR(m.jain_fairness_index(0, 3), 10000.0 / 12000.0, 1e-12);
  // Sub-range selection.
  EXPECT_NEAR(m.jain_fairness_index(2, 3), 4900.0 / (2.0 * 2500.0), 1e-12);
}

TEST(Metrics, JainIndexDegenerateCases) {
  ProtocolMetrics m;
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 5), 1.0);  // no ledger
  m.per_user_delivered = {0, 0, 0};
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 2), 1.0);  // nothing delivered
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(2, 1), 1.0);  // inverted range
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(0, 99), 1.0); // out of range
}

TEST(Metrics, ResetClearsEverything) {
  ProtocolMetrics m;
  m.frames = 10;
  m.voice_generated = 5;
  m.data_delay_s.add(1.0);
  m.csi_polls = 3;
  m.reset();
  EXPECT_EQ(m.frames, 0);
  EXPECT_EQ(m.voice_generated, 0);
  EXPECT_EQ(m.csi_polls, 0);
  EXPECT_EQ(m.data_delay_s.count(), 0);
}

}  // namespace
}  // namespace charisma::mac
