#include "mac/contention.hpp"

#include <gtest/gtest.h>
#include <map>

#include "common/rng.hpp"

namespace charisma::mac {
namespace {

class ContentionFixture : public ::testing::Test {
 protected:
  common::RngStream& rng_for(common::UserId id) {
    auto [it, _] = rngs_.try_emplace(id, common::RngStream(
                                             static_cast<std::uint64_t>(id) + 100));
    return it->second;
  }
  std::function<common::RngStream&(common::UserId)> rng_fn() {
    return [this](common::UserId id) -> common::RngStream& {
      return rng_for(id);
    };
  }
  std::map<common::UserId, common::RngStream> rngs_;
};

TEST_F(ContentionFixture, EmptyCandidatesAllIdle) {
  const auto outcome = run_request_phase({}, 5, [](auto) { return 0.3; },
                                         rng_fn());
  EXPECT_TRUE(outcome.winners.empty());
  EXPECT_EQ(outcome.tally.idle, 5);
  EXPECT_EQ(outcome.tally.minislots, 5);
}

TEST_F(ContentionFixture, SingleGreedyCandidateWinsFirstSlot) {
  const auto outcome = run_request_phase({7}, 5, [](auto) { return 1.0; },
                                         rng_fn());
  ASSERT_EQ(outcome.winners.size(), 1u);
  EXPECT_EQ(outcome.winners[0], 7);
  EXPECT_EQ(outcome.tally.successes, 1);
  EXPECT_EQ(outcome.tally.idle, 4);  // pool empty afterwards
}

TEST_F(ContentionFixture, TwoGreedyCandidatesAlwaysCollide) {
  const auto outcome = run_request_phase({1, 2}, 10, [](auto) { return 1.0; },
                                         rng_fn());
  EXPECT_TRUE(outcome.winners.empty());
  EXPECT_EQ(outcome.tally.collisions, 10);
  // Both transmitted (for backoff bookkeeping).
  EXPECT_EQ(outcome.transmitted.size(), 2u);
}

TEST_F(ContentionFixture, WinnersAreUnique) {
  std::vector<common::UserId> candidates;
  for (int i = 0; i < 8; ++i) candidates.push_back(i);
  const auto outcome = run_request_phase(candidates, 50,
                                         [](auto) { return 0.25; }, rng_fn());
  std::set<common::UserId> unique(outcome.winners.begin(),
                                  outcome.winners.end());
  EXPECT_EQ(unique.size(), outcome.winners.size());
}

TEST_F(ContentionFixture, TallySumsToMinislots) {
  std::vector<common::UserId> candidates{0, 1, 2, 3, 4};
  const auto outcome = run_request_phase(candidates, 12,
                                         [](auto) { return 0.3; }, rng_fn());
  EXPECT_EQ(outcome.tally.successes + outcome.tally.collisions +
                outcome.tally.idle,
            12);
  EXPECT_EQ(static_cast<int>(outcome.winners.size()), outcome.tally.successes);
}

TEST_F(ContentionFixture, TransmittedSupersetOfWinners) {
  std::vector<common::UserId> candidates{0, 1, 2, 3, 4, 5};
  const auto outcome = run_request_phase(candidates, 12,
                                         [](auto) { return 0.4; }, rng_fn());
  for (common::UserId w : outcome.winners) {
    EXPECT_NE(std::find(outcome.transmitted.begin(), outcome.transmitted.end(),
                        w),
              outcome.transmitted.end());
  }
}

TEST_F(ContentionFixture, ZeroPermissionNeverTransmits) {
  std::vector<common::UserId> candidates{0, 1, 2};
  const auto outcome = run_request_phase(candidates, 8,
                                         [](auto) { return 0.0; }, rng_fn());
  EXPECT_TRUE(outcome.winners.empty());
  EXPECT_TRUE(outcome.transmitted.empty());
  EXPECT_EQ(outcome.tally.idle, 8);
}

TEST_F(ContentionFixture, PerClassPermissions) {
  // User 0 greedy, others silent: user 0 wins the first slot.
  std::vector<common::UserId> candidates{0, 1, 2};
  const auto outcome = run_request_phase(
      candidates, 4, [](common::UserId id) { return id == 0 ? 1.0 : 0.0; },
      rng_fn());
  ASSERT_EQ(outcome.winners.size(), 1u);
  EXPECT_EQ(outcome.winners[0], 0);
}

TEST_F(ContentionFixture, NegativeMinislotsThrow) {
  EXPECT_THROW(run_request_phase({1}, -1, [](auto) { return 0.5; }, rng_fn()),
               std::invalid_argument);
}

TEST_F(ContentionFixture, SuccessRateNearTheory) {
  // With k contenders at permission p, P(success per slot) =
  // k p (1-p)^(k-1) while the pool is intact. Use a single slot per phase
  // so the pool never shrinks.
  const double p = 0.3;
  const int k = 4;
  std::vector<common::UserId> candidates;
  for (int i = 0; i < k; ++i) candidates.push_back(i);
  int successes = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto outcome =
        run_request_phase(candidates, 1, [p](auto) { return p; }, rng_fn());
    successes += outcome.tally.successes;
  }
  const double expected = k * p * std::pow(1.0 - p, k - 1);
  EXPECT_NEAR(static_cast<double>(successes) / trials, expected, 0.01);
}

TEST_F(ContentionFixture, DrainsEntirePoolGivenEnoughSlots) {
  std::vector<common::UserId> candidates{0, 1, 2, 3};
  const auto outcome = run_request_phase(candidates, 400,
                                         [](auto) { return 0.3; }, rng_fn());
  EXPECT_EQ(outcome.winners.size(), 4u);
}

}  // namespace
}  // namespace charisma::mac
