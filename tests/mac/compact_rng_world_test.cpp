// World-level bit-identity of traffic_rng=compact: swapping the per-user
// traffic/MAC streams from mt19937_64 to ~24-byte splitmix64 counters must
// leave the CellularWorld's determinism guarantee untouched — serial vs
// parallel vs shard counts all agree bit for bit, exactly as
// world_determinism_test.cpp pins for the default mt streams. The compact
// world is a *different* realization than mt (different raw bits), which a
// sanity test below also locks in the expected direction.
#include <gtest/gtest.h>

#include <string>

#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

/// The 7-cell hexagonal reuse-3 world of world_determinism_test.cpp with
/// sparse pilot bands (so band admit/release exercises the shells'
/// deferred ensure_traffic under compact streams) and the interference
/// plane active — the heaviest serial-plane configuration — running
/// entirely on compact per-user streams.
CellularConfig compact_world_config(unsigned shards, unsigned threads,
                                    std::uint64_t seed = 23) {
  CellularConfig cfg;
  cfg.num_cells = 7;
  cfg.num_threads = threads;
  cfg.num_shards = shards;
  cfg.params.num_voice_users = 10;
  cfg.params.num_data_users = 4;
  cfg.params.seed = seed;
  cfg.params.traffic_rng = common::RngKind::kCompact;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.layout.kind = SiteLayoutConfig::Kind::kHex;
  cfg.layout.site_spacing_m = 600.0;
  cfg.layout.reuse_factor = 3;
  cfg.interference_activity = 0.45;
  cfg.pilot_band_radius_m = 700.0;
  const auto [width, height] = SiteLayout::hex_field_extent(7, 600.0);
  cfg.mobility.field_width_m = width;
  cfg.mobility.field_height_m = height;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

void expect_identical(const ProtocolMetrics& a, const ProtocolMetrics& b) {
  // Spot-check the load-bearing counters for diagnosable failures, then
  // the defaulted operator== catches every remaining field.
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.voice_generated, b.voice_generated);
  EXPECT_EQ(a.voice_delivered, b.voice_delivered);
  EXPECT_EQ(a.data_generated, b.data_generated);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.data_retransmissions, b.data_retransmissions);
  EXPECT_EQ(a.request_successes, b.request_successes);
  EXPECT_EQ(a.request_collisions, b.request_collisions);
  EXPECT_EQ(a.handoffs_in, b.handoffs_in);
  EXPECT_EQ(a.energy_info_j, b.energy_info_j);
  EXPECT_EQ(a.interference_db.mean(), b.interference_db.mean());  // exact
  EXPECT_TRUE(a == b);
}

void expect_worlds_identical(CellularWorld& serial, CellularWorld& parallel) {
  ASSERT_EQ(serial.num_cells(), parallel.num_cells());
  EXPECT_EQ(serial.handoffs(), parallel.handoffs());
  for (int c = 0; c < serial.num_cells(); ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    expect_identical(serial.cell_metrics(c), parallel.cell_metrics(c));
  }
  expect_identical(serial.aggregate_metrics(), parallel.aggregate_metrics());
  for (int u = 0; u < serial.cell(0).params().total_users(); ++u) {
    EXPECT_EQ(serial.attached_cell(static_cast<common::UserId>(u)),
              parallel.attached_cell(static_cast<common::UserId>(u)));
  }
}

class CompactRngWorld : public ::testing::TestWithParam<protocols::ProtocolId> {
};

TEST_P(CompactRngWorld, BitIdenticalAcrossThreadAndShardCounts) {
  // The acceptance sweep: threads in {1, 2, 4, hardware} x shards in
  // {2, 3, 4, match-threads} — every pair must reproduce the serial
  // single-shard world bit for bit under compact per-user streams.
  CellularWorld serial(compact_world_config(/*shards=*/1, /*threads=*/1),
                       factory_for(GetParam()));
  serial.run(0.3, 1.2);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  ASSERT_GT(reference.interference_db.count(), 0);
  for (unsigned shards : {2u, 3u, 4u, 0u}) {  // 0 = match the thread count
    for (unsigned threads : {1u, 2u, 4u, 0u}) {  // 0 = hardware concurrency
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      CellularWorld parallel(compact_world_config(shards, threads),
                             factory_for(GetParam()));
      parallel.run(0.3, 1.2);
      expect_worlds_identical(serial, parallel);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, CompactRngWorld,
                         ::testing::Values(protocols::ProtocolId::kCharisma,
                                           protocols::ProtocolId::kRmav),
                         [](const auto& info) {
                           std::string name =
                               protocols::protocol_name(info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(CompactRngWorldExtra, CompactIsADifferentRealizationThanMt) {
  // compact is statistically equivalent but must NOT accidentally alias
  // the mt realization (that would mean some code path still draws from
  // mt while claiming to be compact, or vice versa). Both worlds carry
  // comparable traffic; the exact counters differ.
  auto run_with = [](common::RngKind kind) {
    auto cfg = compact_world_config(/*shards=*/1, /*threads=*/1);
    cfg.params.traffic_rng = kind;
    CellularWorld world(cfg, factory_for(protocols::ProtocolId::kCharisma));
    world.run(0.3, 1.2);
    return world.aggregate_metrics();
  };
  const auto mt = run_with(common::RngKind::kMt);
  const auto compact = run_with(common::RngKind::kCompact);
  ASSERT_GT(mt.voice_generated, 0);
  ASSERT_GT(compact.voice_generated, 0);
  EXPECT_FALSE(mt == compact);
  // Same offered-load ballpark: the voice processes share means, so the
  // generated-packet counts agree within a loose factor.
  const double ratio = static_cast<double>(compact.voice_generated) /
                       static_cast<double>(mt.voice_generated);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(CompactRngWorldExtra, DefaultScenarioStaysMt) {
  // The opt-in contract: a ScenarioParams that never mentions traffic_rng
  // must keep drawing the historical mt streams.
  ScenarioParams params;
  EXPECT_EQ(params.traffic_rng, common::RngKind::kMt);
}

}  // namespace
}  // namespace charisma::mac
