#include "mac/mobile_user.hpp"

#include <gtest/gtest.h>

namespace charisma::mac {
namespace {

ScenarioParams test_params() {
  ScenarioParams p;
  p.num_voice_users = 1;
  p.num_data_users = 1;
  p.seed = 42;
  return p;
}

TEST(MobileUser, VoiceConstruction) {
  MobileUser u(0, ServiceType::kVoice, test_params());
  EXPECT_TRUE(u.is_voice());
  EXPECT_FALSE(u.is_data());
  EXPECT_EQ(u.id(), 0);
  // Voice source is wired with the scenario's traffic parameters.
  EXPECT_DOUBLE_EQ(u.voice().config().mean_talkspurt_s, 1.0);
  EXPECT_DOUBLE_EQ(u.voice().config().voice_period, 0.02);
}

TEST(MobileUser, DataConstruction) {
  MobileUser u(5, ServiceType::kData, test_params());
  EXPECT_TRUE(u.is_data());
  EXPECT_DOUBLE_EQ(u.data().config().mean_burst_packets, 100.0);
}

TEST(MobileUser, IndependentStreamsAcrossUsers) {
  auto params = test_params();
  MobileUser a(0, ServiceType::kVoice, params);
  MobileUser b(1, ServiceType::kVoice, params);
  // Different user ids draw different MAC randomness despite one seed.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.rng().uniform() == b.rng().uniform()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(MobileUser, ReproducibleAcrossConstructions) {
  auto params = test_params();
  MobileUser a(0, ServiceType::kVoice, params);
  MobileUser b(0, ServiceType::kVoice, params);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.rng().uniform(), b.rng().uniform());
  }
  a.channel().advance_to(0.1);
  b.channel().advance_to(0.1);
  EXPECT_DOUBLE_EQ(a.channel().snr_linear(), b.channel().snr_linear());
}

TEST(MobileUser, BackoffDynamics) {
  MobileUser u(0, ServiceType::kData, test_params());
  EXPECT_DOUBLE_EQ(u.backoff_scale(), 1.0);
  u.note_contention_collision();
  EXPECT_DOUBLE_EQ(u.backoff_scale(), 0.5);
  u.note_contention_collision();
  EXPECT_DOUBLE_EQ(u.backoff_scale(), 0.25);
  u.note_contention_success();
  EXPECT_DOUBLE_EQ(u.backoff_scale(), 1.0);
}

TEST(MobileUser, BackoffFloor) {
  MobileUser u(0, ServiceType::kData, test_params());
  for (int i = 0; i < 20; ++i) u.note_contention_collision();
  EXPECT_DOUBLE_EQ(u.backoff_scale(), 1.0 / 64.0);
}

}  // namespace
}  // namespace charisma::mac
