// Parallel == serial, bit for bit: the CellularWorld's cells are
// share-nothing and the cross-cell steps run between the pool's barriers,
// so the number of worker threads must not change a single counter. These
// tests pin that property across protocols and cell counts — they are what
// lets the bench hand out 1×..N× thread sweeps as the *same* experiment.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

CellularConfig world_config(int cells, unsigned threads,
                            std::uint64_t seed = 7) {
  CellularConfig cfg;
  cfg.num_cells = cells;
  cfg.num_threads = threads;
  cfg.params.num_voice_users = 10;
  cfg.params.num_data_users = 4;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 500.0 * cells;
  cfg.mobility.field_height_m = 300.0;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

/// A 7-cell hexagonal reuse-3 world with the uplink interference (SINR)
/// plane active — the post-barrier load aggregation and the per-cell
/// interference rows must preserve the same bit-identical guarantee.
CellularConfig hex_world_config(unsigned threads, std::uint64_t seed = 23) {
  CellularConfig cfg;
  cfg.num_cells = 7;
  cfg.num_threads = threads;
  cfg.params.num_voice_users = 10;
  cfg.params.num_data_users = 4;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.layout.kind = SiteLayoutConfig::Kind::kHex;
  cfg.layout.site_spacing_m = 600.0;
  cfg.layout.reuse_factor = 3;
  cfg.interference_activity = 0.45;
  const auto [width, height] = SiteLayout::hex_field_extent(7, 600.0);
  cfg.mobility.field_width_m = width;
  cfg.mobility.field_height_m = height;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

void expect_identical(const ProtocolMetrics& a, const ProtocolMetrics& b) {
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.measured_time, b.measured_time);  // exact, not NEAR
  EXPECT_EQ(a.voice_generated, b.voice_generated);
  EXPECT_EQ(a.voice_delivered, b.voice_delivered);
  EXPECT_EQ(a.voice_dropped_deadline, b.voice_dropped_deadline);
  EXPECT_EQ(a.voice_error_lost, b.voice_error_lost);
  EXPECT_EQ(a.voice_dropped_handoff, b.voice_dropped_handoff);
  EXPECT_EQ(a.data_generated, b.data_generated);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.data_tx_attempts, b.data_tx_attempts);
  EXPECT_EQ(a.data_retransmissions, b.data_retransmissions);
  EXPECT_EQ(a.data_delay_s.count(), b.data_delay_s.count());
  EXPECT_EQ(a.data_delay_s.mean(), b.data_delay_s.mean());
  EXPECT_EQ(a.handoffs_in, b.handoffs_in);
  EXPECT_EQ(a.handoffs_out, b.handoffs_out);
  EXPECT_EQ(a.attached_user_frames, b.attached_user_frames);
  EXPECT_EQ(a.outage_evictions, b.outage_evictions);
  EXPECT_EQ(a.voice_dropped_outage, b.voice_dropped_outage);
  EXPECT_EQ(a.barring_checks, b.barring_checks);
  EXPECT_EQ(a.barring_barred_voice, b.barring_barred_voice);
  EXPECT_EQ(a.barring_barred_data, b.barring_barred_data);
  EXPECT_EQ(a.barring_factor_voice.count(), b.barring_factor_voice.count());
  EXPECT_EQ(a.barring_factor_voice.mean(), b.barring_factor_voice.mean());
  EXPECT_EQ(a.barring_factor_data.count(), b.barring_factor_data.count());
  EXPECT_EQ(a.barring_factor_data.mean(), b.barring_factor_data.mean());
  EXPECT_EQ(a.interference_db.count(), b.interference_db.count());
  EXPECT_EQ(a.interference_db.mean(), b.interference_db.mean());  // exact
  EXPECT_EQ(a.request_slots, b.request_slots);
  EXPECT_EQ(a.request_successes, b.request_successes);
  EXPECT_EQ(a.request_collisions, b.request_collisions);
  EXPECT_EQ(a.request_idle, b.request_idle);
  EXPECT_EQ(a.info_slots_offered, b.info_slots_offered);
  EXPECT_EQ(a.info_slots_assigned, b.info_slots_assigned);
  EXPECT_EQ(a.info_slots_wasted, b.info_slots_wasted);
  EXPECT_EQ(a.csi_polls, b.csi_polls);
  EXPECT_EQ(a.csi_stale_allocations, b.csi_stale_allocations);
  EXPECT_EQ(a.acks_lost, b.acks_lost);
  EXPECT_EQ(a.energy_request_j, b.energy_request_j);
  EXPECT_EQ(a.energy_info_j, b.energy_info_j);
  EXPECT_EQ(a.energy_pilot_j, b.energy_pilot_j);
  EXPECT_EQ(a.energy_wasted_j, b.energy_wasted_j);
  EXPECT_EQ(a.per_user_delivered, b.per_user_delivered);
  // Catch-all behind the diagnostic per-field checks above: the defaulted
  // ProtocolMetrics::operator== covers every field, histogram included, so
  // a counter added later cannot silently escape this test.
  EXPECT_TRUE(a == b);
}

void expect_worlds_identical(CellularWorld& serial, CellularWorld& parallel) {
  ASSERT_EQ(serial.num_cells(), parallel.num_cells());
  EXPECT_EQ(serial.handoffs(), parallel.handoffs());
  for (int c = 0; c < serial.num_cells(); ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    expect_identical(serial.cell_metrics(c), parallel.cell_metrics(c));
  }
  const auto ma = serial.aggregate_metrics();
  const auto mb = parallel.aggregate_metrics();
  expect_identical(ma, mb);
  for (int u = 0; u < serial.cell(0).params().total_users(); ++u) {
    EXPECT_EQ(serial.attached_cell(static_cast<common::UserId>(u)),
              parallel.attached_cell(static_cast<common::UserId>(u)));
  }
}

class WorldDeterminism
    : public ::testing::TestWithParam<protocols::ProtocolId> {};

TEST_P(WorldDeterminism, ThreeCellsSerialVsFourThreads) {
  auto serial_cfg = world_config(/*cells=*/3, /*threads=*/1);
  auto parallel_cfg = world_config(/*cells=*/3, /*threads=*/4);
  CellularWorld serial(serial_cfg, factory_for(GetParam()));
  CellularWorld parallel(parallel_cfg, factory_for(GetParam()));
  serial.run(0.5, 2.0);
  parallel.run(0.5, 2.0);
  ASSERT_GT(serial.aggregate_metrics().voice_generated, 0);
  expect_worlds_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Protocols, WorldDeterminism,
                         ::testing::Values(protocols::ProtocolId::kCharisma,
                                           protocols::ProtocolId::kDtdmaFr,
                                           protocols::ProtocolId::kRmav),
                         [](const auto& info) {
                           // protocol_name has '/' and '-'; test names
                           // must be identifiers.
                           std::string name =
                               protocols::protocol_name(info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

/// Hexagonal layout + interference plane, threads in {1, 2, 4, hardware}:
/// the extension of the PR 4 guarantee this PR's tentpole must preserve.
/// Two protocols so both fixed-frame and variable-frame epoch shapes run
/// over the SINR plane.
class HexWorldDeterminism
    : public ::testing::TestWithParam<protocols::ProtocolId> {};

TEST_P(HexWorldDeterminism, InterferenceBitIdenticalAcrossThreadCounts) {
  CellularWorld serial(hex_world_config(/*threads=*/1),
                       factory_for(GetParam()));
  serial.run(0.3, 1.2);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  // The interference plane actually ran: one sample per cell per epoch,
  // and a reuse-3 cluster carrying load sees a non-zero mean penalty.
  ASSERT_GT(reference.interference_db.count(), 0);
  ASSERT_GT(reference.interference_db.mean(), 0.0);
  for (unsigned threads : {2u, 4u, 0u}) {  // 0 = hardware concurrency
    SCOPED_TRACE("threads " + std::to_string(threads));
    CellularWorld parallel(hex_world_config(threads), factory_for(GetParam()));
    parallel.run(0.3, 1.2);
    expect_worlds_identical(serial, parallel);
  }
}

TEST_P(HexWorldDeterminism, SparseBandBitIdenticalAcrossThreadCounts) {
  // Band smaller than the layout (radius 700 m on 600 m site spacing, so
  // membership churns with mobility) plus an outage window: the band
  // admit/release traffic runs on the coordinator in user-id order, so
  // the free-list state — and therefore every downstream draw — must stay
  // bit-identical at any thread count.
  auto make = [](unsigned threads) {
    auto cfg = hex_world_config(threads);
    cfg.pilot_band_radius_m = 700.0;
    // Darken cell 5 — the cell this seed's 14-user population actually
    // occupies during the window, so the eviction path provably fires.
    cfg.outages.push_back({5, 0.5, 0.9});
    return cfg;
  };
  CellularWorld serial(make(1), factory_for(GetParam()));
  serial.run(0.3, 1.2);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  ASSERT_GT(reference.outage_evictions, 0);  // the fault fired
  for (unsigned threads : {2u, 4u, 0u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CellularWorld parallel(make(threads), factory_for(GetParam()));
    parallel.run(0.3, 1.2);
    expect_worlds_identical(serial, parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, HexWorldDeterminism,
                         ::testing::Values(protocols::ProtocolId::kCharisma,
                                           protocols::ProtocolId::kRmav),
                         [](const auto& info) {
                           std::string name =
                               protocols::protocol_name(info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(WorldDeterminismExtra, FourCellsThreadCountSweep) {
  // threads = 1, 2, 3, 8 must all agree on a 4-cell CHARISMA world,
  // including oversubscription (more threads than cells).
  auto make = [](unsigned threads) {
    auto cfg = world_config(/*cells=*/4, threads, /*seed=*/11);
    CellularWorld world(cfg,
                        factory_for(protocols::ProtocolId::kCharisma));
    world.run(0.4, 1.2);
    return world.aggregate_metrics();
  };
  const auto serial = make(1);
  ASSERT_GT(serial.voice_generated, 0);
  for (unsigned threads : {2u, 3u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    expect_identical(serial, make(threads));
  }
}

TEST(WorldDeterminismExtra, BarringOutageAndFlashCrowdBitIdentical) {
  // The PR 6 robustness layer all at once: closed-loop barring in every
  // engine, a mid-run cell outage (eviction + forced re-attach + filter
  // restart on recovery), and a flash-crowd traffic spike. All of it runs
  // inside per-cell engines or between the pool's barriers, so the
  // thread-count-invariance guarantee must survive unchanged.
  auto make = [](unsigned threads) {
    auto cfg = world_config(/*cells=*/3, threads, /*seed=*/17);
    cfg.params.barring.enabled = true;
    cfg.params.data_mmpp_rate_ratio = 4.0;
    cfg.params.data_mmpp_mean_sojourn_s = 0.5;
    cfg.outages.push_back({1, 0.8, 1.4});
    cfg.modulation.kind = traffic::TrafficModulationConfig::Kind::kFlashCrowd;
    cfg.modulation.epicenter_x_m = 750.0;
    cfg.modulation.epicenter_y_m = 150.0;
    cfg.modulation.radius_m = 400.0;
    cfg.modulation.rate_multiplier = 5.0;
    cfg.modulation.start = 0.5;
    cfg.modulation.end = 1.8;
    return cfg;
  };
  CellularWorld serial(make(1), factory_for(protocols::ProtocolId::kCharisma));
  serial.run(0.4, 1.6);
  const auto reference = serial.aggregate_metrics();
  ASSERT_GT(reference.voice_generated, 0);
  // The fault actually fired: someone was evicted from the dark cell.
  ASSERT_GT(reference.outage_evictions, 0);
  for (unsigned threads : {2u, 3u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CellularWorld parallel(make(threads),
                           factory_for(protocols::ProtocolId::kCharisma));
    parallel.run(0.4, 1.6);
    expect_worlds_identical(serial, parallel);
  }
}

TEST(WorldDeterminismExtra, ShardCountSweepBitIdentical) {
  // The tentpole guarantee of the sharded coordinator: shard count and
  // thread count are pure performance knobs. With every serial-plane
  // feature active at once — sparse pilot bands (admit/release churn on
  // the engine free lists), the uplink interference plane, closed-loop
  // barring, and a mid-run outage — the metrics must stay bit-identical
  // for any (shards, threads) pair, including shards > threads,
  // shards < threads, and the hardware-concurrency defaults (0).
  auto make = [](unsigned shards, unsigned threads) {
    auto cfg = hex_world_config(threads, /*seed=*/29);
    cfg.num_shards = shards;
    cfg.pilot_band_radius_m = 700.0;
    // The load it takes to actually engage closed-loop barring (checks
    // are only counted while a class factor sits below 1): a heavy
    // population plus a touchy controller band.
    cfg.params.num_voice_users = 30;
    cfg.params.num_data_users = 8;
    cfg.params.barring.enabled = true;
    cfg.params.barring.target_high = 0.05;
    cfg.params.barring.target_low = 0.02;
    cfg.outages.push_back({2, 0.5, 0.9});
    CellularWorld world(cfg, factory_for(protocols::ProtocolId::kCharisma));
    world.run(0.3, 1.2);
    return world.aggregate_metrics();
  };
  const auto reference = make(/*shards=*/1, /*threads=*/1);
  ASSERT_GT(reference.voice_generated, 0);
  ASSERT_GT(reference.outage_evictions, 0);
  ASSERT_GT(reference.interference_db.count(), 0);
  ASSERT_GT(reference.barring_checks, 0);
  for (unsigned shards : {2u, 3u, 4u, 0u}) {  // 0 = match thread count
    for (unsigned threads : {1u, 2u, 4u, 0u}) {  // 0 = hardware
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      expect_identical(reference, make(shards, threads));
    }
  }
}

TEST(WorldDeterminismExtra, HardwareThreadsMatchesSerial) {
  // num_threads = 0 (hardware concurrency, whatever this host has) is the
  // bench's default sweep end point; it must be the same experiment too.
  auto cfg0 = world_config(/*cells=*/3, /*threads=*/0, /*seed=*/3);
  auto cfg1 = world_config(/*cells=*/3, /*threads=*/1, /*seed=*/3);
  CellularWorld hardware(cfg0, factory_for(protocols::ProtocolId::kDtdmaFr));
  CellularWorld serial(cfg1, factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_GE(hardware.thread_count(), 1u);
  hardware.run(0.3, 1.0);
  serial.run(0.3, 1.0);
  expect_worlds_identical(serial, hardware);
}

}  // namespace
}  // namespace charisma::mac
