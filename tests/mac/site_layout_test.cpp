// Site geometry invariants: hex ring structure, reuse-pattern co-channel
// partitioning, wrap-around images, and — critically — bit-identical
// backward compatibility of the default line layout with the historical
// CellularWorld::place_sites() positions.
#include "mac/site_layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

SiteLayoutConfig hex_config(double spacing = 500.0, int reuse = 1,
                            bool wrap = false) {
  SiteLayoutConfig cfg;
  cfg.kind = SiteLayoutConfig::Kind::kHex;
  cfg.site_spacing_m = spacing;
  cfg.reuse_factor = reuse;
  cfg.wrap_around = wrap;
  return cfg;
}

/// Distance from every site to its nearest other site.
double nearest_neighbor_m(const SiteLayout& layout, int site) {
  double best = std::numeric_limits<double>::infinity();
  for (int s = 0; s < layout.num_sites(); ++s) {
    if (s == site) continue;
    best = std::min(best,
                    distance_m(layout.position(site), layout.position(s)));
  }
  return best;
}

TEST(SiteLayout, HexRingCounts) {
  EXPECT_EQ(SiteLayout::hex_sites_for_rings(0), 1);
  EXPECT_EQ(SiteLayout::hex_sites_for_rings(1), 7);
  EXPECT_EQ(SiteLayout::hex_sites_for_rings(2), 19);
  EXPECT_EQ(SiteLayout::hex_sites_for_rings(3), 37);
  for (int n : {1, 7, 19, 37}) {
    EXPECT_TRUE(SiteLayout::is_full_ring_count(n)) << n;
  }
  for (int n : {2, 3, 6, 8, 18, 20}) {
    EXPECT_FALSE(SiteLayout::is_full_ring_count(n)) << n;
  }
  // A full-ring request generates exactly that many sites; a partial
  // count takes a spiral prefix.
  for (int n : {1, 7, 19, 5, 12}) {
    SiteLayout layout(hex_config(), n, 10000.0, 10000.0);
    EXPECT_EQ(layout.num_sites(), n);
  }
}

TEST(SiteLayout, HexNearestNeighborEqualsSpacing) {
  const double spacing = 500.0;
  SiteLayout layout(hex_config(spacing), 19, 10000.0, 10000.0);
  for (int s = 0; s < layout.num_sites(); ++s) {
    EXPECT_NEAR(nearest_neighbor_m(layout, s), spacing, 1e-9) << "site " << s;
  }
  // And no two sites coincide or crowd closer than the spacing.
  for (int a = 0; a < layout.num_sites(); ++a) {
    for (int b = a + 1; b < layout.num_sites(); ++b) {
      EXPECT_GE(distance_m(layout.position(a), layout.position(b)),
                spacing - 1e-9);
    }
  }
}

TEST(SiteLayout, HexGridIsCentredOnTheField) {
  SiteLayout layout(hex_config(400.0), 7, 3000.0, 2000.0);
  EXPECT_DOUBLE_EQ(layout.position(0).x, 1500.0);
  EXPECT_DOUBLE_EQ(layout.position(0).y, 1000.0);
}

TEST(SiteLayout, HexReusePartition) {
  const double spacing = 500.0;
  for (int reuse : {3, 4, 7}) {
    SCOPED_TRACE("reuse " + std::to_string(reuse));
    SiteLayout layout(hex_config(spacing, reuse), 19, 10000.0, 10000.0);
    std::set<int> channels;
    for (int s = 0; s < layout.num_sites(); ++s) {
      channels.insert(layout.reuse_channel(s));
      EXPECT_GE(layout.reuse_channel(s), 0);
      EXPECT_LT(layout.reuse_channel(s), reuse);
    }
    // 19 sites exercise every channel of these small patterns.
    EXPECT_EQ(static_cast<int>(channels.size()), reuse);
    // Adjacent sites never share a channel, and co-channel sites keep the
    // canonical sqrt(reuse) * spacing separation.
    const double cochannel_min = std::sqrt(static_cast<double>(reuse)) *
                                 spacing;
    for (int a = 0; a < layout.num_sites(); ++a) {
      for (int b = a + 1; b < layout.num_sites(); ++b) {
        const double d = distance_m(layout.position(a), layout.position(b));
        if (layout.co_channel(a, b)) {
          EXPECT_GE(d, cochannel_min - 1e-6) << "sites " << a << "," << b;
        }
        if (d < spacing + 1e-9) {
          EXPECT_FALSE(layout.co_channel(a, b))
              << "adjacent sites " << a << "," << b << " share a channel";
        }
      }
    }
  }
}

TEST(SiteLayout, ReuseOneMakesEverySiteAnInterferer) {
  SiteLayout layout(hex_config(500.0, 1), 7, 10000.0, 10000.0);
  for (int s = 0; s < 7; ++s) {
    EXPECT_EQ(layout.co_channel_interferers(s).size(), 6u);
  }
  // One channel per cell in a 7-site reuse-7 cluster: nobody interferes.
  SiteLayout isolated(hex_config(500.0, 7), 7, 10000.0, 10000.0);
  for (int s = 0; s < 7; ++s) {
    EXPECT_TRUE(isolated.co_channel_interferers(s).empty());
  }
}

TEST(SiteLayout, LineBackwardCompatibility) {
  // The default line layout (spacing 0) must reproduce the historical
  // placement bit for bit: sites at ((c + 0.5) * width / n, height / 2).
  for (int cells : {2, 3}) {
    const double width = 500.0 * cells;
    const double height = 300.0;
    SiteLayout layout(SiteLayoutConfig{}, cells, width, height);
    ASSERT_EQ(layout.num_sites(), cells);
    const double step = width / static_cast<double>(cells);
    for (int c = 0; c < cells; ++c) {
      EXPECT_EQ(layout.position(c).x, (static_cast<double>(c) + 0.5) * step);
      EXPECT_EQ(layout.position(c).y, height * 0.5);
      EXPECT_EQ(layout.reuse_channel(c), 0);
    }
    EXPECT_FALSE(layout.wraps());
  }
  // And CellularWorld, built with an all-default layout config, exposes
  // exactly those positions (the PR 3 scenarios are untouched).
  CellularConfig cfg;
  cfg.num_cells = 3;
  cfg.params.num_voice_users = 4;
  cfg.params.seed = 5;
  cfg.mobility.field_width_m = 1500.0;
  cfg.mobility.field_height_m = 300.0;
  CellularWorld world(cfg, [](const ScenarioParams& p) {
    return protocols::make_protocol(protocols::ProtocolId::kDtdmaFr, p);
  });
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(world.site_position(c).x,
              (static_cast<double>(c) + 0.5) * 500.0);
    EXPECT_EQ(world.site_position(c).y, 150.0);
  }
}

TEST(SiteLayout, LineReuseIsRoundRobin) {
  SiteLayoutConfig cfg;
  cfg.reuse_factor = 3;
  SiteLayout layout(cfg, 7, 7000.0, 1000.0);
  for (int c = 0; c < 7; ++c) {
    EXPECT_EQ(layout.reuse_channel(c), c % 3);
  }
  EXPECT_EQ(layout.co_channel_interferers(0), (std::vector<int>{3, 6}));
}

TEST(SiteLayout, ExplicitLineSpacingIsCentred) {
  SiteLayoutConfig cfg;
  cfg.site_spacing_m = 400.0;
  SiteLayout layout(cfg, 3, 3000.0, 1000.0);
  EXPECT_DOUBLE_EQ(layout.position(0).x, 1100.0);
  EXPECT_DOUBLE_EQ(layout.position(1).x, 1500.0);
  EXPECT_DOUBLE_EQ(layout.position(2).x, 1900.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(layout.position(c).y, 500.0);
  }
}

TEST(SiteLayout, WrapAroundImages) {
  SiteLayout flat(hex_config(500.0, 1, false), 7, 10000.0, 10000.0);
  SiteLayout wrapped(hex_config(500.0, 1, true), 7, 10000.0, 10000.0);
  EXPECT_EQ(flat.wrap_offsets().size(), 1u);
  ASSERT_EQ(wrapped.wrap_offsets().size(), 7u);
  EXPECT_TRUE(wrapped.wraps());
  // Every translation image sits sqrt(num_sites) spacings away — the
  // cluster tiling lattice.
  for (std::size_t i = 1; i < wrapped.wrap_offsets().size(); ++i) {
    const Vec2 t = wrapped.wrap_offsets()[i];
    EXPECT_NEAR(std::hypot(t.x, t.y), std::sqrt(7.0) * 500.0, 1e-6);
  }
  // The wrap metric never exceeds the flat one, and shrinks the distance
  // from a point beyond one edge of the cluster to a site on the
  // opposite edge.
  const Vec2 far{wrapped.position(0).x + 3.0 * 500.0,
                 wrapped.position(0).y};
  for (int s = 0; s < 7; ++s) {
    EXPECT_LE(wrapped.distance_sq(far, s), flat.distance_sq(far, s) + 1e-9);
  }
  bool some_shorter = false;
  for (int s = 0; s < 7; ++s) {
    if (wrapped.distance_sq(far, s) < flat.distance_sq(far, s) - 1e-9) {
      some_shorter = true;
    }
  }
  EXPECT_TRUE(some_shorter);
}

TEST(SiteLayout, RhombicNumbers) {
  for (int n : {1, 3, 4, 7, 9, 12, 13, 16, 19, 21}) {
    EXPECT_TRUE(SiteLayout::is_rhombic_number(n)) << n;
  }
  for (int n : {2, 5, 6, 8, 10, 11, 14, 15}) {
    EXPECT_FALSE(SiteLayout::is_rhombic_number(n)) << n;
  }
}

TEST(SiteLayout, HexFieldExtentCoversTheGrid) {
  const double spacing = 500.0;
  const auto [width, height] = SiteLayout::hex_field_extent(19, spacing);
  SiteLayout layout(hex_config(spacing), 19, width, height);
  for (int s = 0; s < layout.num_sites(); ++s) {
    const Vec2 p = layout.position(s);
    EXPECT_GE(p.x, spacing - 1e-9);
    EXPECT_LE(p.x, width - spacing + 1e-9);
    EXPECT_GE(p.y, spacing - 1e-9);
    EXPECT_LE(p.y, height - spacing + 1e-9);
  }
}

TEST(SiteLayout, Validation) {
  // Hex without a spacing.
  EXPECT_THROW(SiteLayout(hex_config(0.0), 7, 1000.0, 1000.0),
               std::invalid_argument);
  // Non-rhombic hex reuse factor.
  EXPECT_THROW(SiteLayout(hex_config(500.0, 5), 7, 1000.0, 1000.0),
               std::invalid_argument);
  // Wrap-around outside a full-ring cluster, or on a line.
  EXPECT_THROW(SiteLayout(hex_config(500.0, 1, true), 5, 1000.0, 1000.0),
               std::invalid_argument);
  // Wrap-inconsistent reuse patterns: the cluster translation would fold
  // co-channel cells onto non-co-channel distances.
  EXPECT_THROW(SiteLayout(hex_config(500.0, 3, true), 7, 10000.0, 10000.0),
               std::invalid_argument);
  EXPECT_THROW(SiteLayout(hex_config(500.0, 7, true), 19, 10000.0, 10000.0),
               std::invalid_argument);
  // ... but one-channel-per-cell patterns (no co-channel pair) and
  // factors whose sublattice contains the cluster lattice wrap fine.
  EXPECT_NO_THROW(
      SiteLayout(hex_config(500.0, 7, true), 7, 10000.0, 10000.0));
  EXPECT_NO_THROW(
      SiteLayout(hex_config(500.0, 19, true), 19, 10000.0, 10000.0));
  SiteLayoutConfig line;
  line.wrap_around = true;
  EXPECT_THROW(SiteLayout(line, 3, 1000.0, 1000.0), std::invalid_argument);
  // Degenerate inputs.
  EXPECT_THROW(SiteLayout(SiteLayoutConfig{}, 0, 1000.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(SiteLayout(SiteLayoutConfig{}, 2, 0.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(SiteLayout::hex_field_extent(0, 500.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::mac
