// Overload survival (PR 6): the closed-loop barring layer, the cell-outage
// fault model, and — first and foremost — the guarantee that none of it
// costs anything when switched off. The golden constants below were
// captured from the tree *before* the barring/outage code existed; with
// barring disabled and no outage schedule, today's tree must reproduce
// them bit for bit (hexfloat, not approximately).
#include <gtest/gtest.h>

#include "mac/barring.hpp"
#include "mac/cellular_world.hpp"
#include "mac/load_estimator.hpp"
#include "mac/scenario.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

using protocols::ProtocolId;

// ------------------------------------------------------------- estimator

TEST(LoadEstimator, RejectsBadAlpha) {
  EXPECT_THROW(LoadEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(LoadEstimator(-0.1), std::invalid_argument);
  EXPECT_THROW(LoadEstimator(1.5), std::invalid_argument);
  EXPECT_NO_THROW(LoadEstimator(1.0));
}

TEST(LoadEstimator, FirstObservationSeedsDirectly) {
  LoadEstimator est(0.25);
  EXPECT_EQ(est.windows_observed(), 0);
  est.observe({40.0, 0.6, 10.0, 3.0});
  // No zero history dragged through the warmup: the state IS the sample.
  EXPECT_DOUBLE_EQ(est.level().attached_users, 40.0);
  EXPECT_DOUBLE_EQ(est.level().collision_ratio, 0.6);
  EXPECT_EQ(est.windows_observed(), 1);
}

TEST(LoadEstimator, EwmaConvergesTowardNewLevel) {
  LoadEstimator est(0.5);
  est.observe({0.0, 0.8, 0.0, 0.0});
  est.observe({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(est.level().collision_ratio, 0.4);
  est.observe({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(est.level().collision_ratio, 0.2);
}

TEST(LoadEstimator, OverloadIndexClampedAndQueueAware) {
  LoadEstimator est(1.0);
  est.observe({10.0, 0.2, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(est.overload_index(), 0.2);  // pure collision ratio
  // A queue deeper than the population saturates the queue term at +0.5.
  est.observe({10.0, 0.9, 100.0, 0.0});
  EXPECT_DOUBLE_EQ(est.overload_index(), 1.0);  // clamped at 1
  est.observe({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(est.overload_index(), 0.0);
}

// ------------------------------------------------------------ controller

TEST(BarringController, RejectsInvalidConfig) {
  BarringConfig cfg;
  cfg.target_low = 0.5;
  cfg.target_high = 0.4;  // inverted band
  EXPECT_THROW(BarringController{cfg}, std::invalid_argument);
  cfg = BarringConfig{};
  cfg.step_down = 1.2;  // "down" step that goes up
  EXPECT_THROW(BarringController{cfg}, std::invalid_argument);
  cfg = BarringConfig{};
  cfg.voice_floor = cfg.min_factor / 2.0;  // voice below the common floor
  EXPECT_THROW(BarringController{cfg}, std::invalid_argument);
}

TEST(BarringController, MimdStepsWithHysteresis) {
  BarringConfig cfg;
  BarringController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), 1.0);

  LoadEstimator hot(1.0);
  hot.observe({50.0, 0.9, 0.0, 0.0});  // far above target_high
  ctl.update(hot);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), cfg.step_down);
  ctl.update(hot);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), cfg.step_down * cfg.step_down);

  LoadEstimator mid(1.0);
  mid.observe({50.0, 0.25, 0.0, 0.0});  // inside the band: hold
  const double held = ctl.raw_factor();
  ctl.update(mid);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), held);

  LoadEstimator cool(1.0);
  cool.observe({50.0, 0.0, 0.0, 0.0});  // below target_low: relax
  ctl.update(cool);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), held * cfg.step_up);
  for (int i = 0; i < 100; ++i) ctl.update(cool);
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), 1.0);  // clamped at fully open
}

TEST(BarringController, ClassFloorsVoiceGentlerThanData) {
  BarringConfig cfg;
  BarringController ctl(cfg);
  LoadEstimator hot(1.0);
  hot.observe({50.0, 1.0, 50.0, 0.0});
  for (int i = 0; i < 200; ++i) ctl.update(hot);
  // Fully tightened: the raw factor sits on the common floor, data tracks
  // factor^exponent (also floored), and voice keeps its higher floor.
  EXPECT_DOUBLE_EQ(ctl.raw_factor(), cfg.min_factor);
  EXPECT_DOUBLE_EQ(ctl.voice_factor(), cfg.voice_floor);
  EXPECT_DOUBLE_EQ(ctl.data_factor(), cfg.min_factor);
  EXPECT_GT(ctl.voice_factor(), ctl.data_factor());
}

// ---------------------------------------------------- legacy golden pin
// Captured from commit 2e77484's tree (pre-barring, pre-outage) with the
// throwaway harness described in the PR. Integer counters via EXPECT_EQ,
// accumulated doubles via exact hexfloat equality: if the disabled path
// draws one extra RNG value or adds one x*1.0 in a different order, these
// fail.

TEST(OverloadSurvivalGolden, SingleCellCharismaBitForBit) {
  ScenarioParams p;
  p.num_voice_users = 20;
  p.num_data_users = 5;
  p.request_queue = true;
  p.seed = 3;
  ASSERT_FALSE(p.barring.enabled);  // the default IS the legacy path
  auto eng = protocols::make_protocol(ProtocolId::kCharisma, p);
  const auto& m = eng->run(1.0, 3.0);
  EXPECT_EQ(m.frames, 1200);
  EXPECT_EQ(m.voice_generated, 1371);
  EXPECT_EQ(m.voice_delivered, 1370);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
  EXPECT_EQ(m.voice_error_lost, 1);
  EXPECT_EQ(m.data_generated, 1029);
  EXPECT_EQ(m.data_delivered, 1029);
  EXPECT_EQ(m.request_slots, 14400);
  EXPECT_EQ(m.request_successes, 42);
  EXPECT_EQ(m.request_collisions, 0);
  EXPECT_EQ(m.attached_user_frames, 30000);
  EXPECT_EQ(m.energy_info_j, 0x1.9611a7b9610f4p-3);
  EXPECT_EQ(m.energy_request_j, 0x1.da922f50dc55dp-12);
  EXPECT_EQ(m.data_delay_s.count(), 1029);
  EXPECT_EQ(m.data_delay_s.mean(), 0x1.a82b3a9a95c51p-7);
  // And the new books stay empty when the features are off.
  EXPECT_EQ(m.barring_checks, 0);
  EXPECT_EQ(m.barring_barred_voice, 0);
  EXPECT_EQ(m.barring_barred_data, 0);
  EXPECT_EQ(m.outage_evictions, 0);
  EXPECT_EQ(m.voice_dropped_outage, 0);
  EXPECT_DOUBLE_EQ(eng->barring_voice_factor(), 1.0);
  EXPECT_DOUBLE_EQ(eng->barring_data_factor(), 1.0);
}

TEST(OverloadSurvivalGolden, SingleCellDtdmaFrBitForBit) {
  ScenarioParams p;
  p.num_voice_users = 20;
  p.num_data_users = 5;
  p.request_queue = true;
  p.seed = 3;
  auto eng = protocols::make_protocol(ProtocolId::kDtdmaFr, p);
  const auto& m = eng->run(1.0, 3.0);
  EXPECT_EQ(m.frames, 1200);
  EXPECT_EQ(m.voice_generated, 1371);
  EXPECT_EQ(m.voice_delivered, 1362);
  EXPECT_EQ(m.voice_error_lost, 9);
  EXPECT_EQ(m.data_delivered, 1029);
  EXPECT_EQ(m.energy_info_j, 0x1.0bb25136bb20ap-2);
  EXPECT_EQ(m.energy_request_j, 0x1.da922f50dc55dp-12);
  EXPECT_EQ(m.data_delay_s.mean(), 0x1.ef75f43cc8745p-6);
}

TEST(OverloadSurvivalGolden, ThreeCellWorldCharismaBitForBit) {
  CellularConfig cfg;
  cfg.num_cells = 3;
  cfg.num_threads = 1;
  cfg.params.num_voice_users = 10;
  cfg.params.num_data_users = 4;
  cfg.params.seed = 7;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1500.0;
  cfg.mobility.field_height_m = 300.0;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  ASSERT_TRUE(cfg.outages.empty());  // the default IS the legacy path
  CellularWorld world(cfg, [](const ScenarioParams& p) {
    return protocols::make_protocol(ProtocolId::kCharisma, p);
  });
  world.run(0.5, 2.0);
  const auto m = world.aggregate_metrics();
  EXPECT_EQ(m.frames, 2403);
  EXPECT_EQ(m.voice_generated, 263);
  EXPECT_EQ(m.voice_delivered, 263);
  EXPECT_EQ(m.voice_dropped_handoff, 1);
  EXPECT_EQ(m.data_generated, 286);
  EXPECT_EQ(m.data_delivered, 364);
  EXPECT_EQ(m.request_slots, 28836);
  EXPECT_EQ(m.request_successes, 16);
  EXPECT_EQ(m.handoffs_in, 5);
  EXPECT_EQ(m.handoffs_out, 5);
  EXPECT_EQ(m.attached_user_frames, 11214);
  EXPECT_EQ(world.handoffs(), 5);
  EXPECT_EQ(m.energy_info_j, 0x1.73a4316f3a43cp-5);
  EXPECT_EQ(m.energy_request_j, 0x1.6993f349cc727p-13);
  EXPECT_EQ(m.data_delay_s.count(), 364);
  EXPECT_EQ(m.data_delay_s.mean(), 0x1.8613946c79f94p-5);
  EXPECT_EQ(m.outage_evictions, 0);
  EXPECT_EQ(m.voice_dropped_outage, 0);
  EXPECT_EQ(m.barring_checks, 0);
}

// ------------------------------------------------- graceful degradation

// The coarse-threshold acceptance test: at 5x nominal load the
// contention-bound protocols (PRMA contends with whole packets; RMAV
// funnels everyone through one competitive slot) collapse, and closing the
// barring loop must buy back a strictly lower voice loss. CHARISMA itself
// is deliberately absent: its minislot request phase keeps collisions near
// zero even at 10x (the loss there is info-slot capacity, which no
// admission policy can mint), and the golden pins above prove barring
// leaves it untouched.
TEST(OverloadSurvival, BarringCutsVoiceLossAtFiveTimesLoad) {
  struct Case {
    ProtocolId id;
    double margin;  // required absolute loss improvement
  };
  for (const Case c : {Case{ProtocolId::kPrma, 0.005},
                       Case{ProtocolId::kRmav, 0.02}}) {
    SCOPED_TRACE(protocols::protocol_name(c.id));
    double loss[2];
    double barred[2];
    for (bool barring : {false, true}) {
      ScenarioParams p;
      p.num_voice_users = 300;  // 5x the 60-user nominal operating point
      p.num_data_users = 50;
      p.seed = 5;
      p.barring.enabled = barring;
      auto eng = protocols::make_protocol(c.id, p);
      const auto& m = eng->run(2.0, 4.0);
      loss[barring] = m.voice_loss_rate();
      barred[barring] = m.effective_barring_probability();
      if (barring) {
        // The loop actually engaged: factors tightened, users were barred.
        EXPECT_LT(eng->barring_voice_factor(), 1.0);
        EXPECT_GT(m.barring_checks, 0);
        EXPECT_GT(m.barring_factor_voice.count(), 0);
      }
    }
    EXPECT_DOUBLE_EQ(barred[0], 0.0);
    EXPECT_GT(barred[1], 0.0);
    EXPECT_LT(loss[1], loss[0] - c.margin)
        << "barring-on loss " << loss[1] << " vs barring-off " << loss[0];
  }
}

// ------------------------------------------------------ outage recovery

TEST(OverloadSurvival, OutageDropsInFlightVoiceAndCountsIt) {
  // A starved link (12 dB budget) keeps voice packets pending long enough
  // that the eviction at outage onset catches some in flight; they must
  // land in voice_dropped_outage and count against voice_loss_rate.
  CellularConfig cfg;
  cfg.num_cells = 3;
  cfg.num_threads = 1;
  cfg.params.num_voice_users = 60;
  cfg.params.num_data_users = 6;
  cfg.params.seed = 7;
  cfg.params.channel.mean_snr_db = 12.0;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1500.0;
  cfg.mobility.field_height_m = 300.0;
  cfg.mobility.speed_mps = common::km_per_hour(50.0);
  cfg.handoff_hysteresis_db = 2.0;
  cfg.outages.push_back({1, 0.5, 1.0});
  CellularWorld world(cfg, [](const ScenarioParams& p) {
    return protocols::make_protocol(ProtocolId::kCharisma, p);
  });
  world.run(0.0, 2.0);
  const auto m = world.aggregate_metrics();
  EXPECT_GT(m.outage_evictions, 0);
  EXPECT_GE(m.voice_dropped_outage, 1);
  EXPECT_GT(m.voice_outage_drop_rate(), 0.0);
  EXPECT_EQ(m.handoffs_in, m.handoffs_out + m.outage_evictions);
}

TEST(OverloadSurvival, RecoveryReconvergesToNeverFailedSteadyState) {
  // Two identically-seeded worlds; one suffers a cell-1 outage during the
  // first measurement window. After recovery, a second (fresh) window must
  // look like the never-failed world's: same population served, loss back
  // within tolerance, no residual evictions. This is what "graceful"
  // means — the fault leaves no permanent scar.
  auto make = [](bool with_outage) {
    CellularConfig cfg;
    cfg.num_cells = 3;
    cfg.num_threads = 1;
    cfg.params.num_voice_users = 30;
    cfg.params.num_data_users = 6;
    cfg.params.seed = 7;
    cfg.params.channel.mean_snr_db = 26.0;
    cfg.params.channel.shadow_sigma_db = 6.0;
    cfg.mobility.field_width_m = 1500.0;
    cfg.mobility.field_height_m = 300.0;
    cfg.mobility.speed_mps = common::km_per_hour(50.0);
    cfg.handoff_hysteresis_db = 2.0;
    if (with_outage) cfg.outages.push_back({1, 1.0, 1.5});
    return std::make_unique<CellularWorld>(
        cfg, [](const ScenarioParams& p) {
          return protocols::make_protocol(ProtocolId::kCharisma, p);
        });
  };

  auto healthy = make(false);
  auto faulted = make(true);
  // Phase 1 covers the fault window [1.0, 1.5).
  healthy->run(0.5, 1.5);
  faulted->run(0.5, 1.5);
  ASSERT_GT(faulted->aggregate_metrics().outage_evictions, 0);
  ASSERT_FALSE(faulted->cell_dark(1));

  // Phase 2: a fresh window starting 0.5 s after recovery.
  healthy->run(0.0, 1.5);
  faulted->run(0.0, 1.5);
  const auto h = healthy->aggregate_metrics();
  const auto f = faulted->aggregate_metrics();

  EXPECT_EQ(f.outage_evictions, 0);  // the fault is fully in the past
  EXPECT_EQ(f.voice_dropped_outage, 0);
  EXPECT_GT(f.voice_delivered, 0);
  EXPECT_NEAR(f.voice_loss_rate(), h.voice_loss_rate(), 0.02);
  // Same offered load shape (sources were never detached, only re-homed).
  EXPECT_NEAR(static_cast<double>(f.voice_generated),
              static_cast<double>(h.voice_generated),
              0.2 * static_cast<double>(h.voice_generated));

  // The recovered cell is serving again and everyone is attached somewhere.
  int total = 0;
  for (int c = 0; c < 3; ++c) total += faulted->attached_count(c);
  EXPECT_EQ(total, 36);
  EXPECT_GT(faulted->attached_count(1), 0);
}

}  // namespace
}  // namespace charisma::mac
