// Property test: SiteIndex band queries against a brute-force
// O(sites-per-query) reference, across line/hex layouts, wrap on/off, and
// band radii from degenerate (every query falls back to the nearest site)
// to all-covering — including positions exactly on bucket edges and on the
// range circle, where a binning bug would first show.
#include "mac/presence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "mac/site_layout.hpp"

namespace charisma::mac {
namespace {

// The contract cells_near implements: every site within the radius under
// the wrap metric, ascending; radius <= 0 is the all-cells band; an empty
// result falls back to the nearest site (lowest id on exact ties).
std::vector<int> brute_force(const SiteLayout& layout, const Vec2& p,
                             double radius_m) {
  std::vector<int> out;
  const int sites = layout.num_sites();
  if (radius_m <= 0.0) {
    for (int s = 0; s < sites; ++s) out.push_back(s);
    return out;
  }
  const double r_sq = radius_m * radius_m;
  for (int s = 0; s < sites; ++s) {
    if (layout.distance_sq(p, s) <= r_sq) out.push_back(s);
  }
  if (out.empty()) {
    int best = 0;
    double best_sq = layout.distance_sq(p, 0);
    for (int s = 1; s < sites; ++s) {
      const double d = layout.distance_sq(p, s);
      if (d < best_sq) {
        best_sq = d;
        best = s;
      }
    }
    out.push_back(best);
  }
  return out;
}

// Deterministic probe cloud: every site, points exactly on each site's
// range circle, exact bucket-grid corners (multiples of the radius from
// the layout's min corner — the index's bucket origin), field corners,
// out-of-field probes, and a seeded uniform scatter.
std::vector<Vec2> probe_points(const SiteLayout& layout, double radius_m,
                               double width_m, double height_m) {
  std::vector<Vec2> pts;
  double min_x = layout.position(0).x;
  double min_y = layout.position(0).y;
  for (int s = 0; s < layout.num_sites(); ++s) {
    const Vec2 site = layout.position(s);
    min_x = std::min(min_x, site.x);
    min_y = std::min(min_y, site.y);
    pts.push_back(site);
    if (radius_m > 0.0) {
      pts.push_back({site.x + radius_m, site.y});  // exactly on the circle
      pts.push_back({site.x, site.y - radius_m});
      pts.push_back({site.x - 0.5 * radius_m, site.y + 0.5 * radius_m});
    }
  }
  if (radius_m > 0.0) {
    for (int i = 0; i <= 4; ++i) {
      for (int j = 0; j <= 2; ++j) {
        // Exact bucket-edge positions: the index bins at radius_m-wide
        // buckets anchored at the min site corner.
        pts.push_back({min_x + i * radius_m, min_y + j * radius_m});
      }
    }
  }
  pts.push_back({0.0, 0.0});
  pts.push_back({width_m, height_m});
  pts.push_back({-0.25 * width_m, 0.5 * height_m});   // outside the bbox
  pts.push_back({1.25 * width_m, 1.5 * height_m});
  common::RngStream rng(0xBADBEEF);
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(-0.1 * width_m, 1.1 * width_m),
                   rng.uniform(-0.1 * height_m, 1.1 * height_m)});
  }
  return pts;
}

void expect_matches_brute_force(const SiteLayout& layout, double radius_m,
                                double width_m, double height_m) {
  SiteIndex index(layout, radius_m);
  std::vector<int> got;
  std::vector<char> scratch;
  for (const Vec2& p : probe_points(layout, radius_m, width_m, height_m)) {
    const auto want = brute_force(layout, p, radius_m);
    got.clear();
    index.cells_near(p, got);
    EXPECT_EQ(got, want) << "radius " << radius_m << " at (" << p.x << ", "
                         << p.y << ")";
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    // The concurrency-safe overload (per-shard scratch) must agree and
    // leave the scratch all-zero for the next query.
    got.clear();
    index.cells_near(p, got, scratch);
    EXPECT_EQ(got, want);
    EXPECT_TRUE(std::all_of(scratch.begin(), scratch.end(),
                            [](char c) { return c == 0; }));
  }
}

TEST(SiteIndexProperty, LineLayoutMatchesBruteForce) {
  const double width = 4000.0, height = 1000.0;
  SiteLayout layout(SiteLayoutConfig{}, /*num_cells=*/8, width, height);
  // Degenerate (pure nearest-site fallback), sub-spacing, roughly one
  // spacing (500 m here), a few spacings, and all-covering.
  for (double r : {1e-3, 220.0, 500.0, 1400.0, 1e6}) {
    expect_matches_brute_force(layout, r, width, height);
  }
  expect_matches_brute_force(layout, 0.0, width, height);  // all-cells mode
}

TEST(SiteIndexProperty, HexLayoutMatchesBruteForce) {
  SiteLayoutConfig cfg;
  cfg.kind = SiteLayoutConfig::Kind::kHex;
  cfg.site_spacing_m = 1000.0;
  const auto [width, height] = SiteLayout::hex_field_extent(19, 1000.0);
  SiteLayout layout(cfg, /*num_cells=*/19, width, height);
  for (double r : {1e-3, 650.0, 1000.0, 2400.0, 1e6}) {
    expect_matches_brute_force(layout, r, width, height);
  }
  expect_matches_brute_force(layout, 0.0, width, height);
}

TEST(SiteIndexProperty, WrappedHexMatchesBruteForce) {
  SiteLayoutConfig cfg;
  cfg.kind = SiteLayoutConfig::Kind::kHex;
  cfg.site_spacing_m = 1000.0;
  cfg.wrap_around = true;
  const auto [width, height] = SiteLayout::hex_field_extent(19, 1000.0);
  SiteLayout layout(cfg, /*num_cells=*/19, width, height);
  ASSERT_TRUE(layout.wraps());
  for (double r : {1e-3, 650.0, 1200.0, 3000.0}) {
    expect_matches_brute_force(layout, r, width, height);
  }
}

TEST(SiteIndexProperty, NearestSiteFallbackPrefersLowestIdOnTies) {
  // A probe equidistant from sites 0 and 1 with a degenerate radius must
  // fall back to site 0 (strict-less argmin keeps the first).
  const double width = 2000.0, height = 1000.0;
  SiteLayout layout(SiteLayoutConfig{}, /*num_cells=*/2, width, height);
  const Vec2 a = layout.position(0);
  const Vec2 b = layout.position(1);
  const Vec2 mid{0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
  SiteIndex index(layout, 1e-3);
  std::vector<int> got;
  index.cells_near(mid, got);
  EXPECT_EQ(got, std::vector<int>{0});
}

TEST(SiteIndexProperty, RebuildReusesStorageAndStaysCorrect) {
  // Shrinking then re-growing the geometry through rebuild() must leave
  // queries exactly as correct as a freshly-built index at each step.
  const double width = 4000.0, height = 1000.0;
  SiteLayout big(SiteLayoutConfig{}, /*num_cells=*/8, width, height);
  SiteLayout small(SiteLayoutConfig{}, /*num_cells=*/3, width, height);
  SiteIndex index(big, 600.0);
  std::vector<int> got;
  index.rebuild(small, 900.0);
  for (const Vec2& p : probe_points(small, 900.0, width, height)) {
    got.clear();
    index.cells_near(p, got);
    EXPECT_EQ(got, brute_force(small, p, 900.0));
  }
  index.rebuild(big, 600.0);
  for (const Vec2& p : probe_points(big, 600.0, width, height)) {
    got.clear();
    index.cells_near(p, got);
    EXPECT_EQ(got, brute_force(big, p, 600.0));
  }
  // Radius flips across the all-cells sentinel both ways.
  index.rebuild(big, 0.0);
  got.clear();
  index.cells_near({0.5 * width, 0.5 * height}, got);
  EXPECT_EQ(static_cast<int>(got.size()), big.num_sites());
  index.rebuild(big, 600.0);
  got.clear();
  index.cells_near(big.position(2), got);
  EXPECT_EQ(got, brute_force(big, big.position(2), 600.0));
}

}  // namespace
}  // namespace charisma::mac
