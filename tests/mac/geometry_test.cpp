#include "mac/geometry.hpp"

#include <gtest/gtest.h>

namespace charisma::mac {
namespace {

TEST(Geometry, DefaultBudget) {
  FrameGeometry g;
  EXPECT_TRUE(g.valid());
  // 12 minislots + 10 info slots + 4 pilot minislots.
  EXPECT_EQ(g.frame_symbols(), 12 * 16 + 10 * 160 + 4 * 16);
  EXPECT_NEAR(g.symbol_rate(), g.frame_symbols() / 2.5e-3, 1e-6);
}

TEST(Geometry, VoicePeriodIsEightFrames) {
  FrameGeometry g;
  EXPECT_NEAR(g.voice_period(), 0.02, 1e-12);
}

TEST(Geometry, SlotDurations) {
  FrameGeometry g;
  EXPECT_NEAR(g.slot_duration() * g.symbol_rate(), 160.0, 1e-9);
  EXPECT_NEAR(g.minislot_duration() * g.symbol_rate(), 16.0, 1e-9);
  // All subframes fit exactly in the frame.
  EXPECT_NEAR(g.num_request_slots * g.minislot_duration() +
                  g.num_info_slots * g.slot_duration() +
                  g.num_pilot_slots * g.minislot_duration(),
              g.frame_duration, 1e-12);
}

TEST(Geometry, ValidityChecks) {
  FrameGeometry g;
  g.num_info_slots = 0;
  EXPECT_FALSE(g.valid());
  g = FrameGeometry{};
  g.frame_duration = -1.0;
  EXPECT_FALSE(g.valid());
  g = FrameGeometry{};
  g.packet_bits = 0;
  EXPECT_FALSE(g.valid());
  g = FrameGeometry{};
  g.num_pilot_slots = 0;  // pilot subframe may be empty
  EXPECT_TRUE(g.valid());
}

}  // namespace
}  // namespace charisma::mac
