// Sparse presence (PR 8 tentpole): the world holds per-(user, cell) state
// only inside each user's pilot band, yet with the band covering every
// site it must reproduce the pre-refactor dense users×cells world BIT FOR
// BIT — interference, barring, and a mid-run cell outage included. The
// golden pins below were captured from the dense implementation
// immediately before the refactor (hexfloat, so the doubles are exact);
// any drift in RNG stream consumption, iteration order, or floating-point
// expression shape fails these tests.
//
// The partial-band tests then exercise what the dense world never had:
// band admit/release churn from mobility, row recycling through the
// ChannelBank free list, re-admission under fresh per-visit seeds, and
// fault injection (a cell outage forcing evictions while bands move) —
// all under per-epoch row-count/leak invariants and the serial-vs-parallel
// bit-identity guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

std::string protocol_test_name(protocols::ProtocolId id) {
  std::string name = protocols::protocol_name(id);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

/// The pinned scenario: a 7-cell hexagonal reuse-3 cluster with the SINR
/// plane, closed-loop barring, vehicular users, and a mid-run outage of
/// cell 2 — every world-level subsystem at once. `band_radius_m` 0 is the
/// all-cells band (dense semantics); 700 m keeps a band of at most the
/// 7-cell neighbourhood (site spacing 600 m) so membership churns as
/// users move.
CellularConfig pin_config(unsigned threads, double band_radius_m) {
  CellularConfig cfg;
  cfg.num_cells = 7;
  cfg.num_threads = threads;
  cfg.params.num_voice_users = 18;
  cfg.params.num_data_users = 5;
  cfg.params.seed = 29;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.params.barring.enabled = true;
  cfg.layout.kind = SiteLayoutConfig::Kind::kHex;
  cfg.layout.site_spacing_m = 600.0;
  cfg.layout.reuse_factor = 3;
  cfg.interference_activity = 0.45;
  cfg.pilot_band_radius_m = band_radius_m;
  const auto [width, height] = SiteLayout::hex_field_extent(7, 600.0);
  cfg.mobility.field_width_m = width;
  cfg.mobility.field_height_m = height;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  cfg.outages.push_back({2, 0.5, 0.9});
  return cfg;
}

// ---------------------------------------------------------------- pins

struct GoldenPins {
  protocols::ProtocolId protocol;
  std::int64_t voice_generated, voice_delivered;
  std::int64_t data_generated, data_delivered;
  std::int64_t handoffs_in, handoffs_out, outage_evictions;
  std::int64_t voice_dropped_outage, barring_checks;
  std::int64_t request_collisions, attached_user_frames;
  std::int64_t world_handoffs;
  double interference_db_mean;
  double data_delay_mean_s;
  double energy_info_j;
  double barring_factor_voice_mean;
};

// Captured from the dense (users×cells) world at commit c28b9eb, i.e. the
// implementation this PR replaced, at pin_config / run(0.3, 1.2).
const GoldenPins kDenseGolden[] = {
    {protocols::ProtocolId::kCharisma,
     /*voice_generated=*/194, /*voice_delivered=*/128,
     /*data_generated=*/136, /*data_delivered=*/136,
     /*handoffs_in=*/17, /*handoffs_out=*/13, /*outage_evictions=*/4,
     /*voice_dropped_outage=*/0, /*barring_checks=*/3,
     /*request_collisions=*/0, /*attached_user_frames=*/11063,
     /*world_handoffs=*/13,
     /*interference_db_mean=*/0x1.fc4d466a243ep+1,
     /*data_delay_mean_s=*/0x1.06a039d36d007p-8,
     /*energy_info_j=*/0x1.54bead054beb2p-6,
     /*barring_factor_voice_mean=*/0x1.bc35076d9a002p-1},
    {protocols::ProtocolId::kRmav,
     /*voice_generated=*/193, /*voice_delivered=*/99,
     /*data_generated=*/136, /*data_delivered=*/134,
     /*handoffs_in=*/19, /*handoffs_out=*/15, /*outage_evictions=*/4,
     /*voice_dropped_outage=*/0, /*barring_checks=*/0,
     /*request_collisions=*/14, /*attached_user_frames=*/14287,
     /*world_handoffs=*/15,
     /*interference_db_mean=*/0x1.fbe18f9835c2cp+1,
     /*data_delay_mean_s=*/0x1.4cf8a5e7ea607p-7,
     /*energy_info_j=*/0x1.116f3a43170fbp-1,
     /*barring_factor_voice_mean=*/0x1p+0},
    {protocols::ProtocolId::kPrma,
     /*voice_generated=*/194, /*voice_delivered=*/93,
     /*data_generated=*/136, /*data_delivered=*/106,
     /*handoffs_in=*/17, /*handoffs_out=*/13, /*outage_evictions=*/4,
     /*voice_dropped_outage=*/0, /*barring_checks=*/0,
     /*request_collisions=*/0, /*attached_user_frames=*/11063,
     /*world_handoffs=*/13,
     /*interference_db_mean=*/0x1.fc4d466a243ep+1,
     /*data_delay_mean_s=*/0x1.72c3e9968234ap-5,
     /*energy_info_j=*/0x1.3611a7b96114bp-3,
     /*barring_factor_voice_mean=*/0x1p+0},
};

class SparsePresenceGolden : public ::testing::TestWithParam<GoldenPins> {};

TEST_P(SparsePresenceGolden, AllCoveringBandReproducesDenseBitForBit) {
  const GoldenPins& pins = GetParam();
  // threads 0 = hardware concurrency; shards 0 = match the thread count.
  // The hexfloat pins below predate the sharded coordinator, so every
  // (threads, shards) pair — serial, sharded-on-one-thread, and the
  // hardware defaults — must reproduce the historical serial plane's bits.
  struct Grid { unsigned threads, shards; };
  for (const Grid g : {Grid{1u, 1u}, Grid{1u, 2u}, Grid{2u, 1u},
                       Grid{2u, 2u}, Grid{4u, 3u}, Grid{0u, 0u}}) {
    SCOPED_TRACE("threads " + std::to_string(g.threads) + " shards " +
                 std::to_string(g.shards));
    auto cfg = pin_config(g.threads, /*band_radius_m=*/0.0);
    cfg.num_shards = g.shards;
    CellularWorld world(cfg, factory_for(pins.protocol));
    world.run(0.3, 1.2);
    const auto m = world.aggregate_metrics();
    EXPECT_EQ(m.voice_generated, pins.voice_generated);
    EXPECT_EQ(m.voice_delivered, pins.voice_delivered);
    EXPECT_EQ(m.data_generated, pins.data_generated);
    EXPECT_EQ(m.data_delivered, pins.data_delivered);
    EXPECT_EQ(m.handoffs_in, pins.handoffs_in);
    EXPECT_EQ(m.handoffs_out, pins.handoffs_out);
    EXPECT_EQ(m.outage_evictions, pins.outage_evictions);
    EXPECT_EQ(m.voice_dropped_outage, pins.voice_dropped_outage);
    EXPECT_EQ(m.barring_checks, pins.barring_checks);
    EXPECT_EQ(m.request_collisions, pins.request_collisions);
    EXPECT_EQ(m.attached_user_frames, pins.attached_user_frames);
    EXPECT_EQ(world.handoffs(), pins.world_handoffs);
    // Exact double equality — the hexfloat pins are the dense world's bits.
    EXPECT_EQ(m.interference_db.mean(), pins.interference_db_mean);
    EXPECT_EQ(m.data_delay_s.mean(), pins.data_delay_mean_s);
    EXPECT_EQ(m.energy_info_j, pins.energy_info_j);
    EXPECT_EQ(m.barring_factor_voice.mean(), pins.barring_factor_voice_mean);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SparsePresenceGolden,
                         ::testing::ValuesIn(kDenseGolden),
                         [](const auto& info) {
                           return protocol_test_name(info.param.protocol);
                         });

// ----------------------------------------------------- band invariants

/// The no-leak contract, checked from both ends: every cell's engine band
/// matches its bank's active row count (a released row never lingers, an
/// admitted one is never double-booked), the per-user band lists sum to
/// the same total, every user is band-resident where it is attached, and
/// the O(1) attached counters sum to the population.
void expect_band_invariants(CellularWorld& world) {
  const int users = world.cell(0).params().total_users();
  std::size_t rows_from_cells = 0;
  int attached_total = 0;
  for (int c = 0; c < world.num_cells(); ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    auto& cell = world.cell(c);
    EXPECT_EQ(cell.band_size(), cell.channel_bank().active_count());
    rows_from_cells += cell.band_size();
    attached_total += world.attached_count(c);
  }
  EXPECT_EQ(attached_total, users);
  std::size_t rows_from_users = 0;
  for (int u = 0; u < users; ++u) {
    const auto uid = static_cast<common::UserId>(u);
    const auto cells = world.band_cells(uid);
    rows_from_users += cells.size();
    const int attached = world.attached_cell(uid);
    EXPECT_TRUE(std::find(cells.begin(), cells.end(), attached) !=
                cells.end())
        << "user " << u << " attached to cell " << attached
        << " outside its band";
    EXPECT_TRUE(world.cell(attached).band_resident(uid));
  }
  EXPECT_EQ(rows_from_cells, rows_from_users);
}

TEST(SparsePresencePartialBand, EpochInvariantsAndHandoffConservation) {
  // A band smaller than the layout: membership churns with mobility, rows
  // are released and recycled. Step the world epoch-window by epoch-window
  // across the outage and check the row/leak invariants and the handoff
  // conservation law after every window.
  CellularWorld world(pin_config(/*threads=*/1, /*band_radius_m=*/700.0),
                      factory_for(protocols::ProtocolId::kCharisma));
  expect_band_invariants(world);
  std::int64_t handoffs_in = 0, handoffs_out = 0, evictions = 0;
  bool saw_partial_band = false;
  for (int window = 0; window < 15; ++window) {
    SCOPED_TRACE("window " + std::to_string(window));
    world.run(0.0, 0.1);  // covers [0, 1.5): outage of cell 2 at [0.5, 0.9)
    expect_band_invariants(world);
    const auto m = world.aggregate_metrics();
    // Conservation: every arrival is a departure from somewhere — a
    // voluntary handoff or an outage eviction.
    EXPECT_EQ(m.handoffs_in, m.handoffs_out + m.outage_evictions);
    handoffs_in += m.handoffs_in;
    handoffs_out += m.handoffs_out;
    evictions += m.outage_evictions;
    std::size_t rows = 0;
    for (int c = 0; c < world.num_cells(); ++c) {
      rows += world.cell(c).band_size();
    }
    const auto dense_rows =
        static_cast<std::size_t>(world.cell(0).params().total_users()) *
        static_cast<std::size_t>(world.num_cells());
    EXPECT_LT(rows, dense_rows);  // actually sparse, not silently dense
    saw_partial_band = saw_partial_band || rows < dense_rows;
  }
  EXPECT_TRUE(saw_partial_band);
  EXPECT_EQ(handoffs_in, handoffs_out + evictions);
  EXPECT_GT(handoffs_in, 0) << "no handoffs at all — scenario too static";
  // The fault fired: the dark cell evicted somebody while bands churned.
  EXPECT_GT(evictions, 0);
}

TEST(SparsePresencePartialBand, MobilityReentersBandsUnderFreshSeeds) {
  // Row recycling end to end: track (user, cell) residency across epoch
  // windows and require that some user leaves a cell's band and later
  // re-enters it (the release → free-list → re-admit-under-visit-seed
  // path). Deterministic: seed-pinned scenario, vehicular speed, a band
  // barely wider than one site spacing.
  auto cfg = pin_config(/*threads=*/1, /*band_radius_m=*/650.0);
  // Deliberately unphysical speed: each user crosses several cells and
  // turns at many waypoints within the window, so leave-then-return paths
  // occur by construction. The lifecycle code cannot tell speeds apart.
  cfg.mobility.speed_mps = common::km_per_hour(2000.0);
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  const int users = world.cell(0).params().total_users();
  std::map<std::pair<int, int>, int> state;  // (user, cell) -> 1=in, 2=left
  int reentries = 0;
  for (int window = 0; window < 40; ++window) {
    world.run(0.0, 0.1);
    expect_band_invariants(world);
    std::set<std::pair<int, int>> now;
    for (int u = 0; u < users; ++u) {
      for (int c : world.band_cells(static_cast<common::UserId>(u))) {
        now.insert({u, c});
      }
    }
    for (auto& [key, phase] : state) {
      const bool resident = now.count(key) != 0;
      if (phase == 1 && !resident) phase = 2;            // left the band
      else if (phase == 2 && resident) { phase = 1; ++reentries; }
    }
    for (const auto& key : now) state.emplace(key, 1);
  }
  EXPECT_GT(reentries, 0)
      << "no (user, cell) band re-entry in 2 s of vehicular mobility — "
         "the re-admission path went unexercised";
}

TEST(SparsePresencePartialBand, SerialAndParallelBitIdentical) {
  // The share-nothing guarantee with band churn live: admits/releases are
  // coordinator-ordered, so thread count must not change a single bit.
  for (const auto id :
       {protocols::ProtocolId::kCharisma, protocols::ProtocolId::kRmav,
        protocols::ProtocolId::kPrma}) {
    SCOPED_TRACE(std::string("protocol ") + protocols::protocol_name(id));
    CellularWorld serial(pin_config(/*threads=*/1, /*band_radius_m=*/700.0),
                         factory_for(id));
    serial.run(0.3, 1.2);
    const auto reference = serial.aggregate_metrics();
    ASSERT_GT(reference.voice_generated, 0);
    for (unsigned threads : {2u, 4u, 0u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      auto cfg = pin_config(threads, /*band_radius_m=*/700.0);
      // Decouple the shard count from the thread count too: band churn
      // (the admit/release order feeding the row free lists) must not see
      // the shard boundaries either.
      cfg.num_shards = (threads == 2u) ? 5u : 0u;
      CellularWorld parallel(cfg, factory_for(id));
      parallel.run(0.3, 1.2);
      EXPECT_TRUE(parallel.aggregate_metrics() == reference);
      EXPECT_EQ(parallel.handoffs(), serial.handoffs());
      for (int u = 0; u < serial.cell(0).params().total_users(); ++u) {
        EXPECT_EQ(parallel.attached_cell(static_cast<common::UserId>(u)),
                  serial.attached_cell(static_cast<common::UserId>(u)));
      }
    }
  }
}

TEST(SparsePresenceFaultInjection, OutageEvictsAcrossBandsWithoutLeaks) {
  // Fault injection against the band lifecycle: two staggered outages
  // force evictions while bands churn — users get thrown onto neighbours
  // that may be at the edge of (or beyond) their geometric band, which
  // the attached-cell pin must keep resident; recovery then releases the
  // pinned rows. Invariants every epoch window; conservation at the end.
  auto cfg = pin_config(/*threads=*/1, /*band_radius_m=*/700.0);
  cfg.outages.clear();
  cfg.outages.push_back({2, 0.4, 0.8});
  cfg.outages.push_back({0, 0.9, 1.3});
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kCharisma));
  std::int64_t evictions = 0, handoffs_in = 0, handoffs_out = 0;
  for (int window = 0; window < 16; ++window) {
    SCOPED_TRACE("window " + std::to_string(window));
    world.run(0.0, 0.1);
    expect_band_invariants(world);
    const auto m = world.aggregate_metrics();
    EXPECT_EQ(m.handoffs_in, m.handoffs_out + m.outage_evictions);
    evictions += m.outage_evictions;
    handoffs_in += m.handoffs_in;
    handoffs_out += m.handoffs_out;
    // Nobody sits attached to a dark cell after the epoch — unless every
    // cell in their band is dark too (a coverage hole has no lit target;
    // the eviction fires once a lit neighbour enters the band).
    for (int u = 0; u < world.cell(0).params().total_users(); ++u) {
      const auto uid = static_cast<common::UserId>(u);
      if (!world.cell_dark(world.attached_cell(uid))) continue;
      for (int c : world.band_cells(uid)) {
        EXPECT_TRUE(world.cell_dark(c))
            << "user " << u << " stayed on a dark cell with lit cell " << c
            << " in band";
      }
    }
  }
  EXPECT_GT(evictions, 0) << "no eviction — the injected faults never bit";
  EXPECT_EQ(handoffs_in, handoffs_out + evictions);
}

}  // namespace
}  // namespace charisma::mac
