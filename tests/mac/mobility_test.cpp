#include "mac/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace charisma::mac {
namespace {

MobilityConfig cv_config(double speed_mps = 10.0) {
  MobilityConfig cfg;
  cfg.model = MobilityConfig::Model::kConstantVelocity;
  cfg.field_width_m = 1000.0;
  cfg.field_height_m = 500.0;
  cfg.speed_mps = speed_mps;
  return cfg;
}

MobilityConfig rwp_config(double speed_mps = 10.0) {
  auto cfg = cv_config(speed_mps);
  cfg.model = MobilityConfig::Model::kRandomWaypoint;
  return cfg;
}

bool in_field(const Vec2& p, const MobilityConfig& cfg) {
  return p.x >= 0.0 && p.x <= cfg.field_width_m && p.y >= 0.0 &&
         p.y <= cfg.field_height_m;
}

TEST(Mobility, PositionsStayInsideTheField) {
  for (const auto& cfg : {cv_config(30.0), rwp_config(30.0)}) {
    MobilityModel model(cfg, 20, common::RngStream(7));
    for (int step = 1; step <= 200; ++step) {
      model.advance_to(step * 0.5);
      for (int u = 0; u < model.size(); ++u) {
        ASSERT_TRUE(in_field(model.position(u), cfg));
      }
    }
  }
}

TEST(Mobility, ConstantVelocityMovesAtConfiguredSpeed) {
  const auto cfg = cv_config(20.0);
  MobilityModel model(cfg, 5, common::RngStream(3));
  for (int u = 0; u < model.size(); ++u) {
    const Vec2 v = model.velocity(u);
    EXPECT_NEAR(std::hypot(v.x, v.y), 20.0, 1e-9);
  }
  // Over a short step (no reflection for interior users), displacement
  // equals speed * dt.
  const Vec2 before = model.position(0);
  const Vec2 v = model.velocity(0);
  model.advance_to(0.01);
  const Vec2 after = model.position(0);
  EXPECT_NEAR(after.x - before.x, v.x * 0.01, 1e-6);
  EXPECT_NEAR(after.y - before.y, v.y * 0.01, 1e-6);
}

TEST(Mobility, ReflectionPreservesSpeed) {
  const auto cfg = cv_config(50.0);
  MobilityModel model(cfg, 10, common::RngStream(11));
  model.advance_to(120.0);  // plenty of wall bounces
  for (int u = 0; u < model.size(); ++u) {
    const Vec2 v = model.velocity(u);
    EXPECT_NEAR(std::hypot(v.x, v.y), 50.0, 1e-9);
  }
}

TEST(Mobility, RandomWaypointActuallyMoves) {
  const auto cfg = rwp_config(15.0);
  MobilityModel model(cfg, 8, common::RngStream(5));
  std::vector<Vec2> before;
  for (int u = 0; u < model.size(); ++u) before.push_back(model.position(u));
  model.advance_to(10.0);
  double total_moved = 0.0;
  for (int u = 0; u < model.size(); ++u) {
    total_moved += distance_m(before[static_cast<std::size_t>(u)],
                              model.position(u));
  }
  EXPECT_GT(total_moved, 0.0);
}

TEST(Mobility, ZeroSpeedFreezesEveryone) {
  auto cfg = rwp_config(0.0);
  MobilityModel model(cfg, 4, common::RngStream(9));
  const Vec2 before = model.position(2);
  model.advance_to(100.0);
  const Vec2 after = model.position(2);
  EXPECT_DOUBLE_EQ(before.x, after.x);
  EXPECT_DOUBLE_EQ(before.y, after.y);
}

TEST(Mobility, Deterministic) {
  MobilityModel a(rwp_config(25.0), 6, common::RngStream(42));
  MobilityModel b(rwp_config(25.0), 6, common::RngStream(42));
  a.advance_to(33.0);
  b.advance_to(33.0);
  for (int u = 0; u < a.size(); ++u) {
    EXPECT_DOUBLE_EQ(a.position(u).x, b.position(u).x);
    EXPECT_DOUBLE_EQ(a.position(u).y, b.position(u).y);
  }
}

TEST(Mobility, TimeMustNotGoBackwards) {
  MobilityModel model(cv_config(), 2, common::RngStream(1));
  model.advance_to(5.0);
  EXPECT_THROW(model.advance_to(4.0), std::logic_error);
}

TEST(Mobility, Validation) {
  auto cfg = cv_config();
  cfg.field_width_m = 0.0;
  EXPECT_THROW(MobilityModel(cfg, 3, common::RngStream(1)),
               std::invalid_argument);
  EXPECT_THROW(MobilityModel(cv_config(), -1, common::RngStream(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::mac
