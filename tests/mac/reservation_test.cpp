#include "mac/reservation.hpp"

#include <gtest/gtest.h>

namespace charisma::mac {
namespace {

TEST(Reservation, ReserveAssignsLowestFreeSlot) {
  ReservationGrid grid(8, 10);
  EXPECT_EQ(grid.reserve(3, 100).value(), 0);
  EXPECT_EQ(grid.reserve(3, 101).value(), 1);
  EXPECT_EQ(grid.reserve(4, 102).value(), 0);
}

TEST(Reservation, PhaseFullReturnsNullopt) {
  ReservationGrid grid(2, 2);
  EXPECT_TRUE(grid.reserve(0, 1).has_value());
  EXPECT_TRUE(grid.reserve(0, 2).has_value());
  EXPECT_FALSE(grid.reserve(0, 3).has_value());
  // Other phase unaffected.
  EXPECT_TRUE(grid.reserve(1, 3).has_value());
}

TEST(Reservation, DoubleReserveFails) {
  ReservationGrid grid(8, 10);
  EXPECT_TRUE(grid.reserve(0, 5).has_value());
  EXPECT_FALSE(grid.reserve(1, 5).has_value());
}

TEST(Reservation, ReleaseFreesSlot) {
  ReservationGrid grid(2, 1);
  EXPECT_TRUE(grid.reserve(0, 7).has_value());
  EXPECT_FALSE(grid.reserve(0, 8).has_value());
  grid.release(7);
  EXPECT_FALSE(grid.has_reservation(7));
  EXPECT_TRUE(grid.reserve(0, 8).has_value());
}

TEST(Reservation, ReleaseUnknownIsNoop) {
  ReservationGrid grid(2, 2);
  EXPECT_NO_THROW(grid.release(99));
}

TEST(Reservation, DueInPhaseSlotOrder) {
  ReservationGrid grid(4, 5);
  grid.reserve(2, 10);
  grid.reserve(2, 11);
  grid.reserve(2, 12);
  grid.release(11);
  const auto due = grid.due_in_phase(2);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 10);
  EXPECT_EQ(due[1], 12);
  EXPECT_TRUE(grid.due_in_phase(0).empty());
}

TEST(Reservation, PositionLookup) {
  ReservationGrid grid(8, 10);
  grid.reserve(5, 42);
  const auto pos = grid.position(42);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->phase, 5);
  EXPECT_EQ(pos->slot, 0);
  EXPECT_FALSE(grid.position(43).has_value());
}

TEST(Reservation, ReserveAtSpecificSlot) {
  ReservationGrid grid(8, 10);
  EXPECT_TRUE(grid.reserve_at(1, 7, 20));
  EXPECT_EQ(grid.user_at(1, 7), 20);
  EXPECT_FALSE(grid.reserve_at(1, 7, 21));  // occupied
  EXPECT_FALSE(grid.reserve_at(2, 3, 20));  // user already holds one
}

TEST(Reservation, UserAtEmpty) {
  ReservationGrid grid(2, 2);
  EXPECT_EQ(grid.user_at(0, 0), common::kNoUser);
}

TEST(Reservation, OccupancyCounts) {
  ReservationGrid grid(4, 3);
  grid.reserve(0, 1);
  grid.reserve(0, 2);
  grid.reserve(1, 3);
  EXPECT_EQ(grid.occupied_in_phase(0), 2);
  EXPECT_EQ(grid.free_in_phase(0), 1);
  EXPECT_EQ(grid.occupied_total(), 3);
}

TEST(Reservation, BoundsChecking) {
  ReservationGrid grid(4, 3);
  EXPECT_THROW(grid.reserve(-1, 1), std::out_of_range);
  EXPECT_THROW(grid.reserve(4, 1), std::out_of_range);
  EXPECT_THROW(grid.due_in_phase(9), std::out_of_range);
  EXPECT_THROW(grid.user_at(0, 3), std::out_of_range);
  EXPECT_THROW(grid.reserve_at(0, -1, 1), std::out_of_range);
}

TEST(Reservation, InvalidDimensions) {
  EXPECT_THROW(ReservationGrid(0, 5), std::invalid_argument);
  EXPECT_THROW(ReservationGrid(5, 0), std::invalid_argument);
}

TEST(Reservation, FullGridCapacity) {
  ReservationGrid grid(8, 10);
  int admitted = 0;
  for (int u = 0; u < 100; ++u) {
    if (grid.reserve(u % 8, u).has_value()) ++admitted;
  }
  EXPECT_EQ(admitted, 80);  // phases * slots positions
  EXPECT_EQ(grid.occupied_total(), 80);
}

}  // namespace
}  // namespace charisma::mac
