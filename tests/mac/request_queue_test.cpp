#include "mac/request_queue.hpp"

#include <gtest/gtest.h>
#include <limits>

namespace charisma::mac {
namespace {

PendingRequest voice_request(common::UserId user, double deadline) {
  PendingRequest r;
  r.user = user;
  r.type = RequestType::kVoice;
  r.deadline = deadline;
  return r;
}

PendingRequest data_request(common::UserId user) {
  PendingRequest r;
  r.user = user;
  r.type = RequestType::kData;
  r.deadline = std::numeric_limits<double>::infinity();
  return r;
}

TEST(RequestQueue, PushAndContains) {
  RequestQueue q;
  EXPECT_TRUE(q.empty());
  q.push(voice_request(1, 1.0));
  EXPECT_TRUE(q.contains(1));
  EXPECT_FALSE(q.contains(2));
  EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, RemoveByUser) {
  RequestQueue q;
  q.push(voice_request(1, 1.0));
  q.push(data_request(2));
  q.remove(1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_TRUE(q.contains(2));
}

TEST(RequestQueue, PurgeExpiredVoiceOnly) {
  RequestQueue q;
  q.push(voice_request(1, 0.5));   // expires
  q.push(voice_request(2, 2.0));   // survives
  q.push(data_request(3));         // data never expires
  const int purged = q.purge_expired_voice(1.0);
  EXPECT_EQ(purged, 1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_TRUE(q.contains(2));
  EXPECT_TRUE(q.contains(3));
}

TEST(RequestQueue, PurgeAtExactDeadline) {
  RequestQueue q;
  q.push(voice_request(1, 1.0));
  EXPECT_EQ(q.purge_expired_voice(1.0), 1);  // deadline reached => dead
}

TEST(RequestQueue, AgeAllIncrementsWaiting) {
  RequestQueue q;
  q.push(voice_request(1, 5.0));
  q.push(data_request(2));
  q.age_all();
  q.age_all();
  for (const auto& r : q.entries()) {
    EXPECT_EQ(r.frames_waited, 2);
  }
}

TEST(RequestQueue, FifoOrderPreserved) {
  RequestQueue q;
  for (int i = 0; i < 5; ++i) q.push(data_request(i));
  int expected = 0;
  for (const auto& r : q.entries()) {
    EXPECT_EQ(r.user, expected++);
  }
}

TEST(RequestQueue, ClearEmpties) {
  RequestQueue q;
  q.push(data_request(1));
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace charisma::mac
