#include "mac/cellular_world.hpp"

#include <gtest/gtest.h>

#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

/// A compact two-cell world tuned so a short test run sees real handoffs:
/// small field, vehicular speed, strong shadowing, modest hysteresis.
CellularConfig small_world(int voice = 8, int data = 2,
                           std::uint64_t seed = 1) {
  CellularConfig cfg;
  cfg.num_cells = 2;
  cfg.params.num_voice_users = voice;
  cfg.params.num_data_users = data;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1000.0;
  cfg.mobility.field_height_m = 200.0;
  cfg.mobility.speed_mps = common::km_per_hour(120.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

TEST(CellularWorld, ExecutesHandoffsAtVehicularSpeed) {
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(1.0, 5.0);
  EXPECT_GT(world.handoffs(), 0);
  const auto aggregate = world.aggregate_metrics();
  // Every handoff leaves one cell and enters another.
  EXPECT_EQ(aggregate.handoffs_out, world.handoffs());
  EXPECT_EQ(aggregate.handoffs_in, aggregate.handoffs_out);
  EXPECT_GT(aggregate.handoff_rate_hz(), 0.0);
}

TEST(CellularWorld, EveryUserPresentInExactlyOneCell) {
  auto cfg = small_world();
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kCharisma));
  world.run(0.5, 2.0);
  for (int u = 0; u < cfg.params.total_users(); ++u) {
    int present_count = 0;
    for (int c = 0; c < world.num_cells(); ++c) {
      if (world.cell(c).user(static_cast<common::UserId>(u)).present()) {
        ++present_count;
        EXPECT_EQ(world.attached_cell(static_cast<common::UserId>(u)), c);
      }
    }
    EXPECT_EQ(present_count, 1);
  }
}

TEST(CellularWorld, VoicePacketsConservedAcrossCells) {
  auto cfg = small_world(10, 0);
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(1.0, 5.0);
  const auto m = world.aggregate_metrics();
  ASSERT_GT(m.voice_generated, 0);
  const auto accounted = m.voice_delivered + m.voice_error_lost +
                         m.voice_dropped_deadline + m.voice_dropped_handoff;
  // At most one in-flight packet per voice user at each window edge.
  EXPECT_LE(accounted, m.voice_generated + cfg.params.num_voice_users);
  EXPECT_GE(accounted, m.voice_generated - cfg.params.num_voice_users);
}

TEST(CellularWorld, PerCellLoadSumsToPopulation) {
  auto cfg = small_world();
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 2.0);
  // Fixed-frame protocol: every cell processes the same number of frames,
  // and each frame every user is attached somewhere, so the mean attached
  // loads sum to the population.
  double total_load = 0.0;
  for (int c = 0; c < world.num_cells(); ++c) {
    total_load += world.cell_metrics(c).mean_attached_users();
  }
  EXPECT_NEAR(total_load, static_cast<double>(cfg.params.total_users()),
              0.05 * cfg.params.total_users());
}

TEST(CellularWorld, InfiniteHysteresisMeansNoHandoffs) {
  auto cfg = small_world();
  cfg.handoff_hysteresis_db = 200.0;
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 3.0);
  EXPECT_EQ(world.handoffs(), 0);
  const auto m = world.aggregate_metrics();
  EXPECT_EQ(m.voice_dropped_handoff, 0);
}

TEST(CellularWorld, Deterministic) {
  auto cfg = small_world();
  CellularWorld a(cfg, factory_for(protocols::ProtocolId::kCharisma));
  CellularWorld b(cfg, factory_for(protocols::ProtocolId::kCharisma));
  a.run(0.5, 2.0);
  b.run(0.5, 2.0);
  const auto ma = a.aggregate_metrics();
  const auto mb = b.aggregate_metrics();
  EXPECT_EQ(a.handoffs(), b.handoffs());
  EXPECT_EQ(ma.voice_generated, mb.voice_generated);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(CellularWorld, SingleCellNeverHandsOff) {
  auto cfg = small_world();
  cfg.num_cells = 1;
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 2.0);
  EXPECT_EQ(world.handoffs(), 0);
  EXPECT_GT(world.aggregate_metrics().voice_generated, 0);
}

TEST(CellularWorld, PathLossFallsWithDistance) {
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_GT(world.mean_snr_at_distance_db(100.0),
            world.mean_snr_at_distance_db(400.0));
  // Clamped below min_distance: standing on the site is finite.
  EXPECT_EQ(world.mean_snr_at_distance_db(0.0),
            world.mean_snr_at_distance_db(5.0));
}

TEST(CellularWorld, Validation) {
  auto cfg = small_world();
  cfg.num_cells = 0;
  EXPECT_THROW(
      CellularWorld(cfg, factory_for(protocols::ProtocolId::kDtdmaFr)),
      std::invalid_argument);
  EXPECT_THROW(CellularWorld(small_world(), EngineFactory{}),
               std::invalid_argument);
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_THROW(world.run(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(world.run(0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::mac
