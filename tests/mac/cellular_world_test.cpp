#include "mac/cellular_world.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "protocols/factory.hpp"

namespace charisma::mac {
namespace {

EngineFactory factory_for(protocols::ProtocolId id) {
  return [id](const ScenarioParams& params) {
    return protocols::make_protocol(id, params);
  };
}

/// A compact two-cell world tuned so a short test run sees real handoffs:
/// small field, vehicular speed, strong shadowing, modest hysteresis.
CellularConfig small_world(int voice = 8, int data = 2,
                           std::uint64_t seed = 1) {
  CellularConfig cfg;
  cfg.num_cells = 2;
  cfg.params.num_voice_users = voice;
  cfg.params.num_data_users = data;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1000.0;
  cfg.mobility.field_height_m = 200.0;
  cfg.mobility.speed_mps = common::km_per_hour(120.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

TEST(CellularWorld, ExecutesHandoffsAtVehicularSpeed) {
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(1.0, 5.0);
  EXPECT_GT(world.handoffs(), 0);
  const auto aggregate = world.aggregate_metrics();
  // Every handoff leaves one cell and enters another.
  EXPECT_EQ(aggregate.handoffs_out, world.handoffs());
  EXPECT_EQ(aggregate.handoffs_in, aggregate.handoffs_out);
  EXPECT_GT(aggregate.handoff_rate_hz(), 0.0);
}

TEST(CellularWorld, EveryUserPresentInExactlyOneCell) {
  auto cfg = small_world();
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kCharisma));
  world.run(0.5, 2.0);
  for (int u = 0; u < cfg.params.total_users(); ++u) {
    int present_count = 0;
    for (int c = 0; c < world.num_cells(); ++c) {
      if (world.cell(c).user(static_cast<common::UserId>(u)).present()) {
        ++present_count;
        EXPECT_EQ(world.attached_cell(static_cast<common::UserId>(u)), c);
      }
    }
    EXPECT_EQ(present_count, 1);
  }
}

TEST(CellularWorld, VoicePacketsConservedAcrossCells) {
  auto cfg = small_world(10, 0);
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(1.0, 5.0);
  const auto m = world.aggregate_metrics();
  ASSERT_GT(m.voice_generated, 0);
  const auto accounted = m.voice_delivered + m.voice_error_lost +
                         m.voice_dropped_deadline + m.voice_dropped_handoff;
  // At most one in-flight packet per voice user at each window edge.
  EXPECT_LE(accounted, m.voice_generated + cfg.params.num_voice_users);
  EXPECT_GE(accounted, m.voice_generated - cfg.params.num_voice_users);
}

TEST(CellularWorld, PerCellLoadSumsToPopulation) {
  auto cfg = small_world();
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 2.0);
  // Fixed-frame protocol: every cell processes the same number of frames,
  // and each frame every user is attached somewhere, so the mean attached
  // loads sum to the population.
  double total_load = 0.0;
  for (int c = 0; c < world.num_cells(); ++c) {
    total_load += world.cell_metrics(c).mean_attached_users();
  }
  EXPECT_NEAR(total_load, static_cast<double>(cfg.params.total_users()),
              0.05 * cfg.params.total_users());
}

TEST(CellularWorld, InfiniteHysteresisMeansNoHandoffs) {
  auto cfg = small_world();
  cfg.handoff_hysteresis_db = 200.0;
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 3.0);
  EXPECT_EQ(world.handoffs(), 0);
  const auto m = world.aggregate_metrics();
  EXPECT_EQ(m.voice_dropped_handoff, 0);
}

TEST(CellularWorld, Deterministic) {
  auto cfg = small_world();
  CellularWorld a(cfg, factory_for(protocols::ProtocolId::kCharisma));
  CellularWorld b(cfg, factory_for(protocols::ProtocolId::kCharisma));
  a.run(0.5, 2.0);
  b.run(0.5, 2.0);
  const auto ma = a.aggregate_metrics();
  const auto mb = b.aggregate_metrics();
  EXPECT_EQ(a.handoffs(), b.handoffs());
  EXPECT_EQ(ma.voice_generated, mb.voice_generated);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(CellularWorld, SingleCellNeverHandsOff) {
  auto cfg = small_world();
  cfg.num_cells = 1;
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.5, 2.0);
  EXPECT_EQ(world.handoffs(), 0);
  EXPECT_GT(world.aggregate_metrics().voice_generated, 0);
}

TEST(CellularWorld, PathLossFallsWithDistance) {
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_GT(world.mean_snr_at_distance_db(100.0),
            world.mean_snr_at_distance_db(400.0));
  // Clamped below min_distance: standing on the site is finite.
  EXPECT_EQ(world.mean_snr_at_distance_db(0.0),
            world.mean_snr_at_distance_db(5.0));
}

/// A 7-cell hexagonal world with the interference plane on (activity and
/// reuse configurable).
CellularConfig hex_world(double activity, int reuse,
                         std::uint64_t seed = 9) {
  CellularConfig cfg;
  cfg.num_cells = 7;
  cfg.params.num_voice_users = 10;
  cfg.params.num_data_users = 2;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.layout.kind = SiteLayoutConfig::Kind::kHex;
  cfg.layout.site_spacing_m = 600.0;
  cfg.layout.reuse_factor = reuse;
  cfg.interference_activity = activity;
  const auto [width, height] = SiteLayout::hex_field_extent(7, 600.0);
  cfg.mobility.field_width_m = width;
  cfg.mobility.field_height_m = height;
  cfg.mobility.speed_mps = common::km_per_hour(100.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

TEST(CellularWorldInterference, SinrNeverExceedsSnr) {
  // The SINR penalty is non-negative on every (user, cell) link — the
  // interference plane can only degrade a link, never improve it — and a
  // loaded reuse-1 cluster degrades at least one link strictly.
  CellularWorld world(hex_world(/*activity=*/0.45, /*reuse=*/1),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  ASSERT_TRUE(world.interference_enabled());
  world.run(0.2, 1.0);
  const int users = world.cell(0).params().total_users();
  double max_penalty = 0.0;
  for (int c = 0; c < world.num_cells(); ++c) {
    for (int u = 0; u < users; ++u) {
      const double penalty =
          world.interference_db(static_cast<common::UserId>(u), c);
      EXPECT_GE(penalty, 0.0) << "user " << u << " cell " << c;
      max_penalty = std::max(max_penalty, penalty);
    }
  }
  EXPECT_GT(max_penalty, 0.0);
  const auto m = world.aggregate_metrics();
  EXPECT_GT(m.interference_db.count(), 0);
  EXPECT_GT(m.mean_interference_db(), 0.0);
}

TEST(CellularWorldInterference, OwnChannelPerCellMatchesDisabledBitForBit) {
  // reuse -> infinity limit: with one channel per cell there is no
  // co-channel neighbour, every penalty is exactly 0.0, and the world is
  // bit-identical to one with the interference plane disabled — metrics,
  // handoffs and attachments alike (only the interference accumulator's
  // sample count may differ, by construction).
  auto with_plane = hex_world(/*activity=*/0.45, /*reuse=*/7);
  auto without = with_plane;
  without.interference_activity = 0.0;
  CellularWorld a(with_plane, factory_for(protocols::ProtocolId::kCharisma));
  CellularWorld b(without, factory_for(protocols::ProtocolId::kCharisma));
  // One channel per cell in the 7-site cluster: nobody is anybody's
  // interferer.
  for (int c = 0; c < a.num_cells(); ++c) {
    ASSERT_TRUE(a.layout().co_channel_interferers(c).empty());
  }
  a.run(0.3, 1.0);
  b.run(0.3, 1.0);
  EXPECT_EQ(a.handoffs(), b.handoffs());
  const int users = a.cell(0).params().total_users();
  for (int u = 0; u < users; ++u) {
    EXPECT_EQ(a.attached_cell(static_cast<common::UserId>(u)),
              b.attached_cell(static_cast<common::UserId>(u)));
    for (int c = 0; c < a.num_cells(); ++c) {
      EXPECT_EQ(a.interference_db(static_cast<common::UserId>(u), c), 0.0);
    }
  }
  auto ma = a.aggregate_metrics();
  auto mb = b.aggregate_metrics();
  EXPECT_GT(ma.voice_generated, 0);
  EXPECT_GT(ma.interference_db.count(), 0);   // the plane did run ...
  EXPECT_EQ(ma.interference_db.mean(), 0.0);  // ... and recorded only zeros
  ma.interference_db = {};
  mb.interference_db = {};
  EXPECT_TRUE(ma == mb);
}

TEST(CellularWorldInterference, PenaltyIsMonotoneInNeighborLoad) {
  // The pure per-(user, cell) penalty under the world's own layout and
  // path-loss constants: zero at zero load, monotone non-decreasing in
  // every co-channel load, indifferent to non-co-channel load — which is
  // exactly "higher neighbour load => lower pilot at a fixed position",
  // since the pilot is snr_db minus this penalty.
  const SiteLayout layout(
      [] {
        SiteLayoutConfig cfg;
        cfg.kind = SiteLayoutConfig::Kind::kHex;
        cfg.site_spacing_m = 600.0;
        cfg.reuse_factor = 3;
        return cfg;
      }(),
      // 19 sites: with reuse 3 the centre site's co-channel partners sit
      // in ring 2 (sqrt(3) spacings away), so its interferer set is
      // non-empty — in a 7-site cluster it would be.
      19, 4000.0, 4000.0);
  // Any positive path-loss constants work for the property; these are
  // roughly the world's defaults (26 dB at 200 m, exponent 3.5).
  const double c_db = 106.5;
  const double half_k = 7.6;
  const double min_d_sq = 100.0;
  const int serving = 0;
  const auto interferers = layout.co_channel_interferers(serving);
  ASSERT_FALSE(interferers.empty());
  const Vec2 positions[] = {{2000.0, 2000.0}, {2300.0, 1800.0},
                            {1500.0, 2600.0}};
  for (const Vec2& p : positions) {
    std::vector<double> load(static_cast<std::size_t>(layout.num_sites()),
                             0.0);
    EXPECT_EQ(interference_penalty_db(layout, serving, load, p, c_db,
                                      half_k, min_d_sq),
              0.0);  // exactly: idle neighbourhood leaves SINR == SNR
    double previous = 0.0;
    for (double level : {0.1, 0.4, 0.8, 1.0}) {
      for (const int s : interferers) {
        load[static_cast<std::size_t>(s)] = level;
      }
      const double penalty = interference_penalty_db(
          layout, serving, load, p, c_db, half_k, min_d_sq);
      EXPECT_GT(penalty, previous);
      previous = penalty;
    }
    // Load on a non-co-channel site (or the serving site itself) changes
    // nothing.
    const double baseline = previous;
    for (int s = 0; s < layout.num_sites(); ++s) {
      if (s != serving && layout.co_channel(s, serving)) continue;
      auto bumped = load;
      bumped[static_cast<std::size_t>(s)] = 1.0;
      EXPECT_EQ(interference_penalty_db(layout, serving, bumped, p, c_db,
                                        half_k, min_d_sq),
                baseline);
    }
  }
}

TEST(CellularWorldInterference, WorldPenaltyMatchesReferenceFormula) {
  // The world stages per-cell contribution rows and sums them in a second
  // barrier phase; this pins that optimisation to the reference
  // semantics: penalty(u, c) = 10·log10(1 + Σ load(s)·INR_s(u)) over c's
  // co-channel sites, with INR from the world's own path-loss curve.
  // Static users + infinite hysteresis freeze attachments, so the loads
  // the last epoch used are exactly the ones the accessors report.
  auto cfg = hex_world(/*activity=*/0.45, /*reuse=*/1);
  cfg.mobility.speed_mps = 0.0;
  cfg.handoff_hysteresis_db = 200.0;
  CellularWorld world(cfg, factory_for(protocols::ProtocolId::kDtdmaFr));
  world.run(0.1, 0.4);
  EXPECT_EQ(world.handoffs(), 0);
  const int users = world.cell(0).params().total_users();
  for (int c = 0; c < world.num_cells(); ++c) {
    for (int u = 0; u < users; ++u) {
      const Vec2 pos = world.mobility().position(u);
      double inr = 0.0;
      for (const int s : world.layout().co_channel_interferers(c)) {
        if (world.cell_load(s) <= 0.0) continue;
        const double d = std::sqrt(world.layout().distance_sq(pos, s));
        inr += world.cell_load(s) *
               common::from_db(world.mean_snr_at_distance_db(d));
      }
      EXPECT_NEAR(world.interference_db(static_cast<common::UserId>(u), c),
                  common::to_db(1.0 + inr), 1e-9)
          << "user " << u << " cell " << c;
    }
  }
}

TEST(CellularWorldInterference, ValidationAndDefaults) {
  auto cfg = hex_world(0.45, 3);
  cfg.interference_activity = 1.5;  // activity is a duty-cycle fraction
  EXPECT_THROW(
      CellularWorld(cfg, factory_for(protocols::ProtocolId::kDtdmaFr)),
      std::invalid_argument);
  // Legacy configs leave the plane off.
  CellularWorld legacy(small_world(),
                       factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_FALSE(legacy.interference_enabled());
  EXPECT_EQ(legacy.aggregate_metrics().interference_db.count(), 0);
}

TEST(CellularWorld, Validation) {
  auto cfg = small_world();
  cfg.num_cells = 0;
  EXPECT_THROW(
      CellularWorld(cfg, factory_for(protocols::ProtocolId::kDtdmaFr)),
      std::invalid_argument);
  EXPECT_THROW(CellularWorld(small_world(), EngineFactory{}),
               std::invalid_argument);
  CellularWorld world(small_world(),
                      factory_for(protocols::ProtocolId::kDtdmaFr));
  EXPECT_THROW(world.run(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(world.run(0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::mac
