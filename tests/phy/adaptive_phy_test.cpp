#include "phy/adaptive_phy.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::phy {
namespace {

TEST(AdaptivePhy, PacketsPerSlotLadder) {
  const auto phy = AdaptivePhy::abicm6();
  // 160-symbol slot, 160-bit packets: floor(bits_per_symbol) packets.
  EXPECT_EQ(phy.packets_per_slot(0), 0);  // 0.5 bit/sym: half a packet
  EXPECT_EQ(phy.packets_per_slot(1), 1);
  EXPECT_EQ(phy.packets_per_slot(2), 2);
  EXPECT_EQ(phy.packets_per_slot(3), 3);
  EXPECT_EQ(phy.packets_per_slot(4), 4);
  EXPECT_EQ(phy.packets_per_slot(5), 5);
}

TEST(AdaptivePhy, PacketsPerSlotScalesWithSlotSize) {
  PhyConfig cfg;
  cfg.slot_symbols = 320;
  cfg.packet_bits = 160;
  const auto phy = AdaptivePhy::abicm6(cfg);
  EXPECT_EQ(phy.packets_per_slot(0), 1);  // 0.5*320/160
  EXPECT_EQ(phy.packets_per_slot(5), 10);
}

TEST(AdaptivePhy, SelectModeHonorsMargin) {
  PhyConfig cfg;
  cfg.selection_margin_db = 2.0;
  const auto phy = AdaptivePhy::abicm6(cfg);
  const auto no_margin = AdaptivePhy::abicm6();
  const double snr = no_margin.table().mode(2).threshold_linear;
  EXPECT_EQ(no_margin.select_mode(snr).value(), 2);
  EXPECT_EQ(phy.select_mode(snr).value(), 1);
}

TEST(AdaptivePhy, OutageBelowRange) {
  const auto phy = AdaptivePhy::abicm6();
  EXPECT_FALSE(phy.select_mode(common::from_db(0.0)).has_value());
  EXPECT_DOUBLE_EQ(phy.normalized_throughput(std::nullopt), 0.0);
}

TEST(AdaptivePhy, TransmitStatisticsMatchPer) {
  const auto phy = AdaptivePhy::abicm6();
  common::RngStream rng(1);
  // At 1 dB below the mode-3 threshold the PER is substantial; verify the
  // empirical failure rate tracks packet_error_rate().
  const double snr = phy.table().mode(3).threshold_linear *
                     common::from_db(-1.0);
  const double per = phy.packet_error_rate(3, snr);
  int failures = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (!phy.transmit_packet(3, snr, rng)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, per, 0.01);
}

TEST(AdaptivePhy, NearZeroLossAtTargetOperatingPoint) {
  const auto phy = AdaptivePhy::abicm6();
  common::RngStream rng(2);
  const double snr = phy.table().mode(2).threshold_linear * 2.0;  // +3 dB
  int failures = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (!phy.transmit_packet(2, snr, rng)) ++failures;
  }
  EXPECT_LT(failures, 5);
}

TEST(AdaptivePhy, ConfigValidation) {
  PhyConfig bad;
  bad.slot_symbols = 0;
  EXPECT_THROW(AdaptivePhy::abicm6(bad), std::invalid_argument);
  bad = PhyConfig{};
  bad.packet_bits = -1;
  EXPECT_THROW(AdaptivePhy::abicm6(bad), std::invalid_argument);
}

TEST(AdaptivePhy, StaleCsiModeMismatchRaisesPer) {
  // Granting a high mode while the true channel sits at a lower mode's SNR
  // must produce a sharply elevated PER — the mechanism that makes stale
  // CSI costly (paper §5.3.3).
  const auto phy = AdaptivePhy::abicm6();
  const double true_snr = phy.table().mode(1).threshold_linear;
  const double per_right = phy.packet_error_rate(1, true_snr);
  const double per_wrong = phy.packet_error_rate(4, true_snr);
  EXPECT_LT(per_right, 1e-2);
  EXPECT_GT(per_wrong, 0.5);
}

}  // namespace
}  // namespace charisma::phy
