#include "phy/fixed_phy.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace charisma::phy {
namespace {

TEST(FixedPhy, StandardParameters) {
  const auto phy = FixedPhy::standard();
  EXPECT_DOUBLE_EQ(phy.bits_per_symbol(), 1.0);
  EXPECT_EQ(phy.packets_per_slot(), 1);
  EXPECT_EQ(phy.packet_bits(), 160);
  EXPECT_DOUBLE_EQ(phy.ber_reference_db(), 7.0);
}

TEST(FixedPhy, BerAtReferenceEqualsTarget) {
  const FixedPhy phy(9.5, 1e-5, 160);
  EXPECT_NEAR(phy.ber(common::from_db(9.5)), 1e-5, 1e-8);
}

TEST(FixedPhy, PerMonotoneDecreasing) {
  const FixedPhy phy(9.5, 1e-5, 160);
  double prev = 1.1;
  for (double db = -10.0; db <= 25.0; db += 0.5) {
    const double per = phy.packet_error_rate(common::from_db(db));
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(FixedPhy, DeepFadeLosesEverything) {
  const FixedPhy phy(9.5, 1e-5, 160);
  EXPECT_NEAR(phy.packet_error_rate(common::from_db(-10.0)), 1.0, 1e-9);
}

TEST(FixedPhy, GoodChannelLosesNothing) {
  const FixedPhy phy(9.5, 1e-5, 160);
  EXPECT_LT(phy.packet_error_rate(common::from_db(20.0)), 1e-9);
}

TEST(FixedPhy, TransmitStatisticsMatchPer) {
  const FixedPhy phy(9.5, 1e-5, 160);
  common::RngStream rng(1);
  const double snr = common::from_db(6.0);
  const double per = phy.packet_error_rate(snr);
  ASSERT_GT(per, 0.01);
  int failures = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!phy.transmit_packet(snr, rng)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, per, 0.01);
}

TEST(FixedPhy, Validation) {
  EXPECT_THROW(FixedPhy(9.5, 0.0, 160), std::invalid_argument);
  EXPECT_THROW(FixedPhy(9.5, 0.5, 160), std::invalid_argument);
  EXPECT_THROW(FixedPhy(9.5, 1e-5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::phy
