#include "phy/modes.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"

namespace charisma::phy {
namespace {

TEST(ModeTable, Abicm6Shape) {
  const auto table = ModeTable::abicm6(1e-5);
  ASSERT_EQ(table.size(), 6);
  EXPECT_DOUBLE_EQ(table.mode(0).bits_per_symbol, 0.5);
  EXPECT_DOUBLE_EQ(table.mode(5).bits_per_symbol, 5.0);
  EXPECT_DOUBLE_EQ(table.target_ber(), 1e-5);
}

TEST(ModeTable, ThresholdsStrictlyIncreasing) {
  const auto table = ModeTable::abicm6(1e-5);
  for (int i = 1; i < table.size(); ++i) {
    EXPECT_GT(table.mode(i).threshold_db, table.mode(i - 1).threshold_db);
    EXPECT_GT(table.mode(i).bits_per_symbol, table.mode(i - 1).bits_per_symbol);
  }
}

TEST(ModeTable, BerAtThresholdEqualsTarget) {
  const auto table = ModeTable::abicm6(1e-5);
  for (const auto& mode : table.modes()) {
    EXPECT_NEAR(mode.ber(mode.threshold_linear), 1e-5, 1e-8)
        << "mode " << mode.index;
  }
}

TEST(ModeTable, BerMonotoneDecreasingInSnr) {
  const auto table = ModeTable::abicm6(1e-5);
  const auto& mode = table.mode(2);
  double prev = 1.0;
  for (double db = -10.0; db <= 30.0; db += 1.0) {
    const double b = mode.ber(common::from_db(db));
    EXPECT_LE(b, prev + 1e-15);
    prev = b;
  }
}

TEST(ModeTable, BerCapsAtHalf) {
  const auto table = ModeTable::abicm6(1e-5);
  EXPECT_DOUBLE_EQ(table.mode(0).ber(0.0), 0.5);
  EXPECT_DOUBLE_EQ(table.mode(0).ber(-1.0), 0.5);
}

TEST(ModeTable, PerApproximatesBitsTimesBerWhenSmall) {
  const auto table = ModeTable::abicm6(1e-5);
  const auto& mode = table.mode(3);
  const double snr = mode.threshold_linear;  // BER = 1e-5
  EXPECT_NEAR(mode.per(snr, 160), 160 * 1e-5, 2e-6);
}

TEST(ModeTable, PerAtTerribleSnrIsOne) {
  const auto table = ModeTable::abicm6(1e-5);
  EXPECT_NEAR(table.mode(5).per(0.01, 160), 1.0, 1e-9);
}

TEST(ModeTable, SelectionBoundaries) {
  const auto table = ModeTable::abicm6(1e-5);
  // Below the lowest threshold: outage.
  EXPECT_FALSE(table.select(common::from_db(1.0)).has_value());
  // Exactly at a threshold selects that mode.
  EXPECT_EQ(table.select(table.mode(0).threshold_linear).value(), 0);
  EXPECT_EQ(table.select(table.mode(3).threshold_linear).value(), 3);
  // Far above everything selects the top mode.
  EXPECT_EQ(table.select(common::from_db(40.0)).value(), 5);
}

TEST(ModeTable, SelectionMarginBacksOff) {
  const auto table = ModeTable::abicm6(1e-5);
  const double snr = table.mode(3).threshold_linear;
  EXPECT_EQ(table.select(snr, 0.0).value(), 3);
  // With 2 dB margin the same SNR only supports mode 2.
  EXPECT_EQ(table.select(snr, 2.0).value(), 2);
}

TEST(ModeTable, NormalizedThroughput) {
  const auto table = ModeTable::abicm6(1e-5);
  EXPECT_DOUBLE_EQ(table.normalized_throughput(std::nullopt), 0.0);
  EXPECT_DOUBLE_EQ(table.normalized_throughput(4), 4.0);
}

TEST(ModeTable, CustomValidation) {
  EXPECT_THROW(ModeTable::custom({}, {}, 1e-5), std::invalid_argument);
  EXPECT_THROW(ModeTable::custom({1.0}, {1.0, 2.0}, 1e-5),
               std::invalid_argument);
  EXPECT_THROW(ModeTable::custom({1.0, 2.0}, {5.0, 4.0}, 1e-5),
               std::invalid_argument);
  EXPECT_THROW(ModeTable::custom({2.0, 1.0}, {4.0, 5.0}, 1e-5),
               std::invalid_argument);
  EXPECT_THROW(ModeTable::custom({1.0}, {4.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(ModeTable::custom({1.0}, {4.0}, 0.5), std::invalid_argument);
}

TEST(ModeTable, ModeIndexOutOfRange) {
  const auto table = ModeTable::abicm6(1e-5);
  EXPECT_THROW(table.mode(-1), std::out_of_range);
  EXPECT_THROW(table.mode(6), std::out_of_range);
}

class ModeTableTargetBer : public ::testing::TestWithParam<double> {};

TEST_P(ModeTableTargetBer, ConstantBerAcrossLadder) {
  const double target = GetParam();
  const auto table = ModeTable::abicm6(target);
  for (const auto& mode : table.modes()) {
    EXPECT_NEAR(mode.ber(mode.threshold_linear) / target, 1.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ModeTableTargetBer,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-6));

}  // namespace
}  // namespace charisma::phy
