#include "experiment/runner.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::experiment {
namespace {

RunSpec small_spec(int voice, int data) {
  RunSpec spec;
  spec.params = ::charisma::testing::small_mixed(voice, data);
  spec.warmup_s = 1.0;
  spec.measure_s = 3.0;
  spec.replications = 2;
  return spec;
}

TEST(Runner, ReplicationSeedsDiffer) {
  const auto s0 = replication_seed(1, 0, 0);
  const auto s1 = replication_seed(1, 0, 1);
  const auto s2 = replication_seed(1, 1, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  EXPECT_NE(s1, s2);
}

TEST(Runner, SeedsAreProtocolIndependent) {
  // Common random numbers: the seed depends only on (base, point, rep).
  EXPECT_EQ(replication_seed(42, 3, 1), replication_seed(42, 3, 1));
}

TEST(Runner, SeedsChainWithoutPackingCollisions) {
  // The old scheme derived from `point_key * 1024 + rep`, so
  // (point 0, rep 1024) and (point 1, rep 0) shared a world.
  EXPECT_NE(replication_seed(1, 0, 1024), replication_seed(1, 1, 0));
}

TEST(Runner, SeedSequencesPinned) {
  // The chained derive_seed(derive_seed(base, point), rep) sequences —
  // regenerate these constants (and say so in the commit) if you *mean* to
  // change every replication's world.
  EXPECT_EQ(replication_seed(1, 0, 0), 6791897765849424158ULL);
  EXPECT_EQ(replication_seed(1, 0, 1), 17405687883870564846ULL);
  EXPECT_EQ(replication_seed(1, 1, 0), 8614008028692990056ULL);
  EXPECT_EQ(replication_seed(42, 3, 1), 8857862703798441688ULL);
  EXPECT_EQ(replication_seed(7, 5, 2), 2531847342662758353ULL);
}

TEST(Runner, AggregatesAcrossReplications) {
  const auto result =
      run_replications(protocols::ProtocolId::kCharisma, small_spec(10, 2));
  EXPECT_EQ(result.replications, 2);
  EXPECT_EQ(result.voice_loss.count(), 2);
  EXPECT_EQ(result.protocol, "CHARISMA");
  EXPECT_EQ(result.num_voice_users, 10);
  EXPECT_EQ(result.num_data_users, 2);
  EXPECT_GT(result.voice_loss_pooled.trials(), 0);
}

TEST(Runner, CommonRandomNumbersAcrossProtocols) {
  // Same point key => both protocols simulate the same user worlds, so the
  // generated-traffic counts match closely.
  auto spec = small_spec(10, 0);
  spec.replications = 1;
  const auto a =
      run_replications(protocols::ProtocolId::kDtdmaFr, spec, /*point=*/7);
  const auto b =
      run_replications(protocols::ProtocolId::kRama, spec, /*point=*/7);
  EXPECT_GT(a.voice_loss_pooled.trials(), 100);
  EXPECT_NEAR(static_cast<double>(a.voice_loss_pooled.trials()),
              static_cast<double>(b.voice_loss_pooled.trials()),
              0.02 * static_cast<double>(a.voice_loss_pooled.trials()));
}

TEST(Runner, ResultAddComputesDerivedMetrics) {
  ReplicatedResult result;
  mac::ProtocolMetrics m;
  m.frames = 100;
  m.voice_generated = 1000;
  m.voice_delivered = 990;
  m.voice_dropped_deadline = 6;
  m.voice_error_lost = 4;
  m.data_delivered = 250;
  result.add(m);
  EXPECT_EQ(result.replications, 1);
  EXPECT_DOUBLE_EQ(result.voice_loss.mean(), 0.01);
  EXPECT_DOUBLE_EQ(result.data_throughput.mean(), 2.5);
  EXPECT_EQ(result.voice_loss_pooled.successes(), 10);
  EXPECT_EQ(result.voice_loss_pooled.trials(), 1000);
}

}  // namespace
}  // namespace charisma::experiment
