#include "experiment/handoff_study.hpp"

#include <gtest/gtest.h>

namespace charisma::experiment {
namespace {

HandoffConfig two_station_config() {
  HandoffConfig cfg;
  cfg.num_stations = 2;
  cfg.channel.mean_snr_db = 10.0;
  cfg.channel.shadow_sigma_db = 6.0;  // strong shadowing: handoffs matter
  cfg.station_offset_db = {0.0, 0.0};
  return cfg;
}

TEST(Handoff, StrongestPilotBeatsStaticAttachment) {
  const auto cfg = two_station_config();
  const auto fixed = run_handoff_study(cfg, AttachmentPolicy::kNearest,
                                       60.0, 1);
  const auto adaptive = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 1);
  EXPECT_GT(adaptive.mean_snr_db, fixed.mean_snr_db);
  EXPECT_LE(adaptive.outage_fraction, fixed.outage_fraction);
}

TEST(Handoff, NearestPolicyNeverHandsOff) {
  const auto result = run_handoff_study(two_station_config(),
                                        AttachmentPolicy::kNearest, 20.0, 2);
  EXPECT_DOUBLE_EQ(result.handoffs_per_second, 0.0);
}

TEST(Handoff, StrongestPilotHandsOffOccasionally) {
  const auto result = run_handoff_study(
      two_station_config(), AttachmentPolicy::kStrongestPilot, 60.0, 3);
  EXPECT_GT(result.handoffs_per_second, 0.0);
  // Hysteresis keeps the rate civilized (well below one per second).
  EXPECT_LT(result.handoffs_per_second, 5.0);
}

TEST(Handoff, HysteresisReducesHandoffRate) {
  auto cfg = two_station_config();
  cfg.hysteresis_db = 0.5;
  const auto eager = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 4);
  cfg.hysteresis_db = 6.0;
  const auto reluctant = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 4);
  EXPECT_GT(eager.handoffs_per_second, reluctant.handoffs_per_second);
}

TEST(Handoff, AsymmetricOffsetsFavorStrongStation) {
  auto cfg = two_station_config();
  cfg.station_offset_db = {0.0, 6.0};
  const auto result = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 5);
  // Attached mostly to the +6 dB station: mean must exceed the weak one's.
  EXPECT_GT(result.mean_snr_db, 11.0);
}

TEST(Handoff, Deterministic) {
  const auto a = run_handoff_study(two_station_config(),
                                   AttachmentPolicy::kStrongestPilot, 30.0, 9);
  const auto b = run_handoff_study(two_station_config(),
                                   AttachmentPolicy::kStrongestPilot, 30.0, 9);
  EXPECT_DOUBLE_EQ(a.mean_snr_db, b.mean_snr_db);
  EXPECT_DOUBLE_EQ(a.handoffs_per_second, b.handoffs_per_second);
}

TEST(Handoff, Validation) {
  auto cfg = two_station_config();
  cfg.num_stations = 0;
  EXPECT_THROW(run_handoff_study(cfg, AttachmentPolicy::kNearest, 10.0, 1),
               std::invalid_argument);
  cfg = two_station_config();
  cfg.station_offset_db = {0.0};  // size mismatch
  EXPECT_THROW(run_handoff_study(cfg, AttachmentPolicy::kNearest, 10.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::experiment
