#include "experiment/handoff_study.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace charisma::experiment {
namespace {

// ---- The attachment rule itself ----

// The rule takes a std::span (CellularWorld passes rows of its flat pilot
// plane); spell the literal pilot sets out as vectors.
std::vector<double> pilots(std::initializer_list<double> db) { return db; }

TEST(HysteresisRule, StaysAttachedWithinMargin) {
  EXPECT_EQ(strongest_with_hysteresis(pilots({10.0, 12.0}), 0, 3.0), 0);
  EXPECT_EQ(strongest_with_hysteresis(pilots({10.0, 13.5}), 0, 3.0), 1);
}

TEST(HysteresisRule, ThreeStationRegression) {
  // Regression for the old rule, which compared each challenger against the
  // running best instead of the attached pilot: a weaker challenger scanned
  // earlier raised the bar and blocked the strongest station.
  //
  // Attached to station 2 at 0 dB; stations 0 (6 dB) and 1 (9 dB) both
  // clear the 5 dB hysteresis. The old scan moved best to station 0, then
  // required station 1 to beat 6 + 5 = 11 dB and kept the weaker target.
  EXPECT_EQ(strongest_with_hysteresis(pilots({6.0, 9.0, 0.0}), 2, 5.0), 1);
  // Same shape with the attached station scanned first: the old rule
  // compared station 2 against station 1 + hysteresis and refused a
  // perfectly eligible stronger pilot.
  EXPECT_EQ(strongest_with_hysteresis(pilots({0.0, 5.5, 6.0}), 0, 5.0), 2);
}

TEST(HysteresisRule, AlwaysPicksStrongestEligiblePilot) {
  // Property: the result is either the attached station (when nobody
  // clears the margin) or the globally strongest pilot among the stations
  // that do clear it — never an intermediate challenger.
  common::RngStream rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = 2 + rng.uniform_int(6);
    std::vector<double> pilots;
    for (int s = 0; s < n; ++s) pilots.push_back(rng.uniform(-20.0, 20.0));
    const int attached = rng.uniform_int(n);
    const double margin = rng.uniform(0.0, 8.0);
    const int chosen = strongest_with_hysteresis(pilots, attached, margin);

    const double bar = pilots[static_cast<std::size_t>(attached)] + margin;
    std::vector<int> eligible;
    for (int s = 0; s < n; ++s) {
      if (s != attached && pilots[static_cast<std::size_t>(s)] > bar) {
        eligible.push_back(s);
      }
    }
    if (eligible.empty()) {
      EXPECT_EQ(chosen, attached);
    } else {
      const int strongest = *std::max_element(
          eligible.begin(), eligible.end(), [&](int a, int b) {
            return pilots[static_cast<std::size_t>(a)] <
                   pilots[static_cast<std::size_t>(b)];
          });
      EXPECT_EQ(chosen, strongest);
    }
  }
}

TEST(HysteresisRule, Validation) {
  EXPECT_THROW(strongest_with_hysteresis(pilots({}), 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(strongest_with_hysteresis(pilots({1.0}), 1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(strongest_with_hysteresis(pilots({1.0}), -1, 1.0),
               std::invalid_argument);
}

HandoffConfig two_station_config() {
  HandoffConfig cfg;
  cfg.num_stations = 2;
  cfg.channel.mean_snr_db = 10.0;
  cfg.channel.shadow_sigma_db = 6.0;  // strong shadowing: handoffs matter
  cfg.station_offset_db = {0.0, 0.0};
  return cfg;
}

TEST(Handoff, StrongestPilotBeatsStaticAttachment) {
  const auto cfg = two_station_config();
  const auto fixed = run_handoff_study(cfg, AttachmentPolicy::kNearest,
                                       60.0, 1);
  const auto adaptive = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 1);
  EXPECT_GT(adaptive.mean_snr_db, fixed.mean_snr_db);
  EXPECT_LE(adaptive.outage_fraction, fixed.outage_fraction);
}

TEST(Handoff, NearestPolicyNeverHandsOff) {
  const auto result = run_handoff_study(two_station_config(),
                                        AttachmentPolicy::kNearest, 20.0, 2);
  EXPECT_DOUBLE_EQ(result.handoffs_per_second, 0.0);
}

TEST(Handoff, StrongestPilotHandsOffOccasionally) {
  const auto result = run_handoff_study(
      two_station_config(), AttachmentPolicy::kStrongestPilot, 60.0, 3);
  EXPECT_GT(result.handoffs_per_second, 0.0);
  // Hysteresis keeps the rate civilized (well below one per second).
  EXPECT_LT(result.handoffs_per_second, 5.0);
}

TEST(Handoff, HysteresisReducesHandoffRate) {
  auto cfg = two_station_config();
  cfg.hysteresis_db = 0.5;
  const auto eager = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 4);
  cfg.hysteresis_db = 6.0;
  const auto reluctant = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 4);
  EXPECT_GT(eager.handoffs_per_second, reluctant.handoffs_per_second);
}

TEST(Handoff, AsymmetricOffsetsFavorStrongStation) {
  auto cfg = two_station_config();
  cfg.station_offset_db = {0.0, 6.0};
  const auto result = run_handoff_study(
      cfg, AttachmentPolicy::kStrongestPilot, 60.0, 5);
  // Attached mostly to the +6 dB station: mean must exceed the weak one's.
  EXPECT_GT(result.mean_snr_db, 11.0);
}

TEST(Handoff, Deterministic) {
  const auto a = run_handoff_study(two_station_config(),
                                   AttachmentPolicy::kStrongestPilot, 30.0, 9);
  const auto b = run_handoff_study(two_station_config(),
                                   AttachmentPolicy::kStrongestPilot, 30.0, 9);
  EXPECT_DOUBLE_EQ(a.mean_snr_db, b.mean_snr_db);
  EXPECT_DOUBLE_EQ(a.handoffs_per_second, b.handoffs_per_second);
}

TEST(Handoff, Validation) {
  auto cfg = two_station_config();
  cfg.num_stations = 0;
  EXPECT_THROW(run_handoff_study(cfg, AttachmentPolicy::kNearest, 10.0, 1),
               std::invalid_argument);
  cfg = two_station_config();
  cfg.station_offset_db = {0.0};  // size mismatch
  EXPECT_THROW(run_handoff_study(cfg, AttachmentPolicy::kNearest, 10.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::experiment
