#include "experiment/parallel.hpp"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>

namespace charisma::experiment {
namespace {

TEST(Parallel, RunsAllJobs) {
  ParallelRunner runner(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back([&counter] { counter.fetch_add(1); });
  }
  runner.run(jobs);
  EXPECT_EQ(counter.load(), 100);
}

TEST(Parallel, EmptyJobListIsNoop) {
  ParallelRunner runner(2);
  EXPECT_NO_THROW(runner.run({}));
}

TEST(Parallel, DefaultsToHardwareConcurrency) {
  ParallelRunner runner(0);
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(Parallel, EachJobRunsExactlyOnce) {
  ParallelRunner runner(3);
  std::vector<std::atomic<int>> counts(50);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.push_back([&counts, i] { counts[static_cast<std::size_t>(i)].fetch_add(1); });
  }
  runner.run(jobs);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, ExceptionPropagates) {
  ParallelRunner runner(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    jobs.push_back([] {});
  }
  EXPECT_THROW(runner.run(jobs), std::runtime_error);
}

TEST(Parallel, ThrowingJobShortCircuitsSingleThread) {
  // With one worker the schedule is deterministic: job 0 fails, and no
  // further job may be claimed afterwards.
  ParallelRunner runner(1);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    jobs.push_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(runner.run(jobs), std::runtime_error);
  EXPECT_EQ(completed.load(), 0);
}

TEST(Parallel, ThrowingJobsShortCircuitMultiThread) {
  // Every job throws, so each worker's first claimed job raises the failed
  // flag and stops that worker: at most one execution per worker, never
  // the whole grid.
  ParallelRunner runner(4);
  std::atomic<int> attempted{0};
  std::vector<std::function<void()>> jobs(100, [&attempted] {
    attempted.fetch_add(1);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(runner.run(jobs), std::runtime_error);
  EXPECT_LE(attempted.load(), 4);
}

TEST(Parallel, SingleThreadWorks) {
  ParallelRunner runner(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs(20, [&counter] { counter.fetch_add(1); });
  runner.run(jobs);
  EXPECT_EQ(counter.load(), 20);
}

TEST(Parallel, MoreThreadsThanJobs) {
  ParallelRunner runner(16);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs(3, [&counter] { counter.fetch_add(1); });
  runner.run(jobs);
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace charisma::experiment
