#include "experiment/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace charisma::experiment {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  pool.for_each(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPool, ZeroItemsIsNoop) {
  WorkerPool pool(3);
  EXPECT_NO_THROW(pool.for_each(0, [](std::size_t) { FAIL(); }));
}

TEST(WorkerPool, DefaultsToHardwareConcurrency) {
  WorkerPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.for_each(seen.size(),
                [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, ReusableAcrossManyEpochs) {
  // The world calls for_each 50 times per simulated second; the pool must
  // survive thousands of wake/barrier cycles without losing workers.
  WorkerPool pool(4);
  std::atomic<std::int64_t> total{0};
  constexpr int kEpochs = 2000;
  constexpr std::size_t kCells = 5;
  for (int e = 0; e < kEpochs; ++e) {
    pool.for_each(kCells, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kEpochs) * kCells);
}

TEST(WorkerPool, ExceptionPropagatesToCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.for_each(16,
                             [](std::size_t i) {
                               if (i == 3) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

TEST(WorkerPool, PoolSurvivesAnException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.for_each(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // A failed round must not poison the next one.
  std::atomic<int> count{0};
  pool.for_each(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(WorkerPool, MoreThreadsThanItems) {
  WorkerPool pool(8);
  std::atomic<int> count{0};
  pool.for_each(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(WorkerPool, BarrierMakesResultsVisibleWithoutSync) {
  // for_each is a full barrier: plain (non-atomic) per-index writes must be
  // visible to the caller afterwards.
  WorkerPool pool(4);
  std::vector<double> out(64, 0.0);
  pool.for_each(out.size(),
                [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(WorkerPoolRange, CoversEveryElementExactlyOnceInShardOrder) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(103);
  std::vector<std::atomic<int>> shard_of(103);
  pool.for_each_range(hits.size(), 5,
                      [&](std::size_t s, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1);
                          shard_of[i].store(static_cast<int>(s));
                        }
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Contiguous ascending ranges: shard ids are non-decreasing over the
  // elements.
  for (std::size_t i = 1; i < shard_of.size(); ++i) {
    EXPECT_GE(shard_of[i].load(), shard_of[i - 1].load());
  }
}

TEST(WorkerPoolRange, DecompositionMatchesFormulaAtAnyThreadCount) {
  // The shard boundaries must depend only on (total, shards) — never on
  // the pool's thread count — or the world's proposal merge order would
  // vary with the host.
  constexpr std::size_t kTotal = 97;
  constexpr std::size_t kShards = 4;
  for (unsigned threads : {1u, 2u, 8u}) {
    WorkerPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(kShards);
    pool.for_each_range(kTotal, kShards,
                        [&](std::size_t s, std::size_t begin,
                            std::size_t end) { ranges[s] = {begin, end}; });
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(ranges[s].first, s * kTotal / kShards);
      EXPECT_EQ(ranges[s].second, (s + 1) * kTotal / kShards);
    }
  }
}

TEST(WorkerPoolRange, MoreShardsThanElementsDropsEmptyShards) {
  WorkerPool pool(4);
  std::atomic<int> shards_run{0};
  std::vector<std::atomic<int>> hits(3);
  pool.for_each_range(hits.size(), 10,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        shards_run.fetch_add(1);
                        for (std::size_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1);
                        }
                      });
  EXPECT_EQ(shards_run.load(), 3);  // clamped to total
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolRange, ZeroTotalIsNoop) {
  WorkerPool pool(3);
  EXPECT_NO_THROW(pool.for_each_range(
      0, 4, [](std::size_t, std::size_t, std::size_t) { FAIL(); }));
}

TEST(WorkerPoolRange, SingleThreadRunsInlineOnCaller) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  pool.for_each_range(30, 3,
                      [&](std::size_t s, std::size_t, std::size_t) {
                        seen[s] = std::this_thread::get_id();
                      });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(WorkerPoolRange, ExceptionPropagatesAndPoolSurvives) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.for_each_range(100, 4,
                          [](std::size_t s, std::size_t, std::size_t) {
                            if (s == 2) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // A failed range round must poison neither plain rounds nor later range
  // rounds.
  std::atomic<int> count{0};
  pool.for_each(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
  std::atomic<int> covered{0};
  pool.for_each_range(50, 4,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        covered.fetch_add(static_cast<int>(end - begin));
                      });
  EXPECT_EQ(covered.load(), 50);
}

TEST(WorkerPoolRange, InterleavesWithPlainForEach) {
  // The world alternates range rounds (user shards) and plain rounds
  // (cells) every epoch; the two dispatch modes must not leak state into
  // each other.
  WorkerPool pool(4);
  for (int e = 0; e < 100; ++e) {
    std::atomic<int> range_sum{0};
    pool.for_each_range(64, 4,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          range_sum.fetch_add(static_cast<int>(end - begin));
                        });
    EXPECT_EQ(range_sum.load(), 64);
    std::atomic<int> plain_sum{0};
    pool.for_each(5, [&](std::size_t) { plain_sum.fetch_add(1); });
    EXPECT_EQ(plain_sum.load(), 5);
  }
}

}  // namespace
}  // namespace charisma::experiment
