#include "experiment/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace charisma::experiment {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  pool.for_each(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPool, ZeroItemsIsNoop) {
  WorkerPool pool(3);
  EXPECT_NO_THROW(pool.for_each(0, [](std::size_t) { FAIL(); }));
}

TEST(WorkerPool, DefaultsToHardwareConcurrency) {
  WorkerPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.for_each(seen.size(),
                [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, ReusableAcrossManyEpochs) {
  // The world calls for_each 50 times per simulated second; the pool must
  // survive thousands of wake/barrier cycles without losing workers.
  WorkerPool pool(4);
  std::atomic<std::int64_t> total{0};
  constexpr int kEpochs = 2000;
  constexpr std::size_t kCells = 5;
  for (int e = 0; e < kEpochs; ++e) {
    pool.for_each(kCells, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kEpochs) * kCells);
}

TEST(WorkerPool, ExceptionPropagatesToCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.for_each(16,
                             [](std::size_t i) {
                               if (i == 3) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

TEST(WorkerPool, PoolSurvivesAnException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.for_each(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // A failed round must not poison the next one.
  std::atomic<int> count{0};
  pool.for_each(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(WorkerPool, MoreThreadsThanItems) {
  WorkerPool pool(8);
  std::atomic<int> count{0};
  pool.for_each(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(WorkerPool, BarrierMakesResultsVisibleWithoutSync) {
  // for_each is a full barrier: plain (non-atomic) per-index writes must be
  // visible to the caller afterwards.
  WorkerPool pool(4);
  std::vector<double> out(64, 0.0);
  pool.for_each(out.size(),
                [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

}  // namespace
}  // namespace charisma::experiment
