#include "experiment/sweep.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::experiment {
namespace {

SweepConfig small_sweep() {
  SweepConfig config;
  config.spec.params = ::charisma::testing::small_mixed(0, 0);
  config.spec.warmup_s = 0.5;
  config.spec.measure_s = 2.0;
  config.spec.replications = 1;
  config.axis = SweepAxis::kVoiceUsers;
  config.x_values = {5, 10};
  config.protocols_to_run = {protocols::ProtocolId::kCharisma,
                             protocols::ProtocolId::kDtdmaFr};
  return config;
}

TEST(Sweep, ProducesFullGrid) {
  ParallelRunner runner(2);
  const auto cells = run_sweep(small_sweep(), runner);
  EXPECT_EQ(cells.size(), 4u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.result.num_voice_users, cell.x);
    EXPECT_EQ(cell.result.replications, 1);
  }
}

TEST(Sweep, AxisSelectsUserClass) {
  auto config = small_sweep();
  config.axis = SweepAxis::kDataUsers;
  config.x_values = {3};
  ParallelRunner runner(1);
  const auto cells = run_sweep(config, runner);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.result.num_data_users, 3);
    EXPECT_EQ(cell.result.num_voice_users, 0);
  }
}

TEST(Sweep, EmptyGridRejected) {
  ParallelRunner runner(1);
  auto config = small_sweep();
  config.x_values.clear();
  EXPECT_THROW(run_sweep(config, runner), std::invalid_argument);
  config = small_sweep();
  config.protocols_to_run.clear();
  EXPECT_THROW(run_sweep(config, runner), std::invalid_argument);
}

TEST(Sweep, SeriesExtraction) {
  ParallelRunner runner(2);
  const auto cells = run_sweep(small_sweep(), runner);
  const auto series =
      series_of(cells, protocols::ProtocolId::kCharisma,
                [](const ReplicatedResult& r) { return r.voice_loss.mean(); });
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].first, 5);
  EXPECT_EQ(series[1].first, 10);
}

TEST(Sweep, DeterministicAcrossRuns) {
  ParallelRunner runner(2);
  const auto a = run_sweep(small_sweep(), runner);
  const auto b = run_sweep(small_sweep(), runner);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].result.voice_loss.mean(),
                     b[i].result.voice_loss.mean());
  }
}

}  // namespace
}  // namespace charisma::experiment
