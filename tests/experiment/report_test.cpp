#include "experiment/report.hpp"

#include <gtest/gtest.h>

namespace charisma::experiment {
namespace {

TEST(Report, HistogramClipWarningFiresAboveThreshold) {
  common::Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 97; ++i) h.add(0.5);
  h.add(-1.0);
  h.add(2.0);
  h.add(3.0);  // 3% clipped
  const auto warning = histogram_clip_warning(h, "data delay");
  ASSERT_TRUE(warning.has_value());
  EXPECT_NE(warning->find("data delay"), std::string::npos);
  EXPECT_NE(warning->find("clipped"), std::string::npos);
}

TEST(Report, HistogramClipWarningSilentWhenHealthy) {
  common::Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 200; ++i) h.add(0.5);
  h.add(2.0);  // 0.5% clipped: below the 1% default
  EXPECT_FALSE(histogram_clip_warning(h, "delay").has_value());
  common::Histogram empty(0.0, 1.0, 10);
  EXPECT_FALSE(histogram_clip_warning(empty, "delay").has_value());
}

TEST(Report, CapacityInterpolatesCrossing) {
  // Series crosses 0.01 between x=60 (0.005) and x=80 (0.015): midpoint 70.
  std::vector<std::pair<int, double>> series{{40, 0.002}, {60, 0.005},
                                             {80, 0.015}};
  const auto cap = capacity_at_threshold(series, 0.01);
  ASSERT_TRUE(cap.has_value());
  EXPECT_NEAR(*cap, 70.0, 1e-9);
}

TEST(Report, CapacityBelowFirstPoint) {
  std::vector<std::pair<int, double>> series{{10, 0.05}, {20, 0.2}};
  EXPECT_FALSE(capacity_at_threshold(series, 0.01).has_value());
}

TEST(Report, NoiseSpikeDoesNotTruncateCapacity) {
  // A single noisy point above the threshold in an otherwise-flat
  // sub-threshold series must not be read as the knee: the isotonic fit
  // averages it away.
  std::vector<std::pair<int, double>> series{
      {10, 0.007}, {40, 0.012}, {70, 0.007}, {100, 0.008}, {130, 0.009}};
  const auto cap = capacity_at_threshold(series, 0.01);
  ASSERT_TRUE(cap.has_value());
  EXPECT_GT(*cap, 100.0);
}

TEST(Report, IsotonicPreservesGenuineKnee) {
  std::vector<std::pair<int, double>> series{
      {10, 0.002}, {40, 0.003}, {70, 0.005}, {100, 0.02}, {130, 0.2}};
  const auto cap = capacity_at_threshold(series, 0.01);
  ASSERT_TRUE(cap.has_value());
  EXPECT_GT(*cap, 70.0);
  EXPECT_LT(*cap, 100.0);
}

TEST(Report, CapacityNeverCrossed) {
  std::vector<std::pair<int, double>> series{{10, 0.001}, {50, 0.004}};
  const auto cap = capacity_at_threshold(series, 0.01);
  ASSERT_TRUE(cap.has_value());
  EXPECT_DOUBLE_EQ(*cap, 50.0);
}

TEST(Report, CapacityHandlesUnsortedInput) {
  std::vector<std::pair<int, double>> series{{80, 0.015}, {40, 0.002},
                                             {60, 0.005}};
  const auto cap = capacity_at_threshold(series, 0.01);
  ASSERT_TRUE(cap.has_value());
  EXPECT_NEAR(*cap, 70.0, 1e-9);
}

TEST(Report, CapacityEmptySeries) {
  EXPECT_FALSE(capacity_at_threshold({}, 0.01).has_value());
}

TEST(Report, FigureTableLaysOutProtocols) {
  std::vector<SweepCell> cells;
  for (int x : {10, 20}) {
    for (auto p : {protocols::ProtocolId::kCharisma,
                   protocols::ProtocolId::kRama}) {
      SweepCell cell;
      cell.x = x;
      cell.protocol = p;
      mac::ProtocolMetrics m;
      m.frames = 100;
      m.voice_generated = 100;
      m.voice_dropped_deadline = x;  // loss = x/100
      cell.result.add(m);
      cells.push_back(cell);
    }
  }
  const auto table = figure_table(
      "Fig. test", "N_v", cells,
      {protocols::ProtocolId::kCharisma, protocols::ProtocolId::kRama},
      [](const ReplicatedResult& r) { return r.voice_loss.mean(); },
      [](double v) { return common::TextTable::num(v, 2); });
  const std::string s = table.to_string();
  EXPECT_NE(s.find("CHARISMA"), std::string::npos);
  EXPECT_NE(s.find("RAMA"), std::string::npos);
  EXPECT_NE(s.find("0.10"), std::string::npos);
  EXPECT_NE(s.find("0.20"), std::string::npos);
}

TEST(Report, CapacityTableBuilds) {
  std::vector<SweepCell> cells;
  for (int x : {10, 20, 30}) {
    SweepCell cell;
    cell.x = x;
    cell.protocol = protocols::ProtocolId::kCharisma;
    mac::ProtocolMetrics m;
    m.voice_generated = 1000;
    m.voice_dropped_deadline = x;  // 1%, 2%, 3%
    cell.result.add(m);
    cells.push_back(cell);
  }
  const auto table = capacity_table(
      "capacity", cells, {protocols::ProtocolId::kCharisma},
      [](const ReplicatedResult& r) { return r.voice_loss.mean(); }, 0.02,
      "2% loss");
  const std::string s = table.to_string();
  EXPECT_NE(s.find("CHARISMA"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
}

}  // namespace
}  // namespace charisma::experiment
