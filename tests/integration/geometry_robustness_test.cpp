// Geometry robustness: every protocol must function and keep its
// accounting invariants under unusual frame geometries — tiny slot
// budgets, oversized request phases, long voice periods — not just the
// calibrated defaults.
#include <gtest/gtest.h>
#include <tuple>

#include "../support/scenarios.hpp"
#include "protocols/factory.hpp"

namespace charisma {
namespace {

using protocols::ProtocolId;

struct GeometryCase {
  const char* name;
  int request_slots;
  int info_slots;
  int pilot_slots;
  int frames_per_voice_period;
};

const GeometryCase kGeometries[] = {
    {"tiny", 3, 2, 1, 8},
    {"wide", 24, 16, 8, 8},
    {"long_period", 12, 10, 4, 16},
    {"no_pilots", 12, 10, 0, 8},
};

using RobustnessParam = std::tuple<ProtocolId, int /*geometry index*/>;

class GeometryRobustness : public ::testing::TestWithParam<RobustnessParam> {};

TEST_P(GeometryRobustness, RunsAndConserves) {
  const auto [id, geometry_index] = GetParam();
  const auto& geometry = kGeometries[static_cast<std::size_t>(geometry_index)];

  auto params = testing::small_mixed(12, 4, true, 31);
  params.geometry.num_request_slots = geometry.request_slots;
  params.geometry.num_info_slots = geometry.info_slots;
  params.geometry.num_pilot_slots = geometry.pilot_slots;
  params.geometry.frames_per_voice_period = geometry.frames_per_voice_period;

  auto engine = protocols::make_protocol(id, params);
  const auto& m = engine->run(1.0, 3.0);

  EXPECT_GT(m.frames, 0);
  EXPECT_GT(m.voice_generated, 0);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
  EXPECT_LE(m.info_slots_wasted, m.info_slots_assigned);
  EXPECT_EQ(m.data_tx_attempts, m.data_delivered + m.data_retransmissions);
  EXPECT_GE(m.voice_loss_rate(), 0.0);
  EXPECT_LE(m.voice_loss_rate(), 1.0);
  // Something must be deliverable even on the tiny geometry at this small
  // population.
  EXPECT_GT(m.voice_delivered + m.data_delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometryRobustness,
    ::testing::Combine(::testing::ValuesIn(protocols::all_protocols()),
                       ::testing::Values(0, 1, 2, 3)),
    [](const ::testing::TestParamInfo<RobustnessParam>& info) {
      std::string name = protocols::protocol_name(std::get<0>(info.param));
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c));
      });
      return name + "_" +
             kGeometries[static_cast<std::size_t>(std::get<1>(info.param))]
                 .name;
    });

TEST(GeometryRobustness, RmavFrameDurationBounded) {
  // RMAV frames are bounded by n * Pmax slots (paper Sec. 3.2); the mean
  // frame duration over a saturated run must respect it.
  auto params = testing::small_mixed(0, 20, true, 33);
  auto engine = protocols::make_protocol(ProtocolId::kRmav, params);
  const auto& m = engine->run(2.0, 6.0);
  const double mean_frame =
      m.measured_time / static_cast<double>(m.frames);
  const double slot = 160.0 / params.geometry.symbol_rate();
  EXPECT_LE(mean_frame, 20.0 * 10.0 * slot + slot);
}

TEST(GeometryRobustness, VoicePeriodScalesDeadlines) {
  // Doubling the voice period halves the per-period pressure: a lone user
  // should still lose nothing.
  auto params = testing::ideal_channel(1, 0);
  params.geometry.frames_per_voice_period = 16;  // 40 ms period/deadline
  auto engine = protocols::make_protocol(ProtocolId::kCharisma, params);
  const auto& m = engine->run(2.0, 12.0);
  // A single on-off source over 12 s: a handful of talkspurts.
  EXPECT_GT(m.voice_generated, 10);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
  EXPECT_EQ(m.voice_error_lost, 0);
}

}  // namespace
}  // namespace charisma
