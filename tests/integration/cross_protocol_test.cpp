// Cross-protocol relationships the paper asserts — verified on the common
// platform with common random numbers.
#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "core/charisma.hpp"
#include "protocols/factory.hpp"

namespace charisma {
namespace {

using protocols::ProtocolId;
using ::charisma::testing::small_mixed;

mac::ProtocolMetrics run_one(ProtocolId id, const mac::ScenarioParams& params,
                             double warmup = 4.0, double measure = 10.0) {
  auto engine = protocols::make_protocol(id, params);
  return engine->run(warmup, measure);
}

TEST(CrossProtocol, SameWorldAcrossProtocols) {
  // The common-platform property: with one seed, every protocol faces the
  // same generated traffic (up to measurement-window edge effects).
  const auto params = small_mixed(15, 3, true, 99);
  std::vector<std::int64_t> generated;
  for (auto id : protocols::all_protocols()) {
    generated.push_back(run_one(id, params, 2.0, 5.0).voice_generated);
  }
  for (std::size_t i = 1; i < generated.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(generated[i]),
                static_cast<double>(generated[0]),
                0.02 * static_cast<double>(generated[0]) + 16.0);
  }
}

TEST(CrossProtocol, CharismaHasLowestVoiceLossAtModerateLoad) {
  // Fig. 11's headline: CHARISMA outperforms every baseline.
  const auto params = small_mixed(60, 0, true, 7);
  const double charisma = run_one(ProtocolId::kCharisma, params).voice_loss_rate();
  for (auto id : {ProtocolId::kDtdmaVr, ProtocolId::kDtdmaFr,
                  ProtocolId::kRama, ProtocolId::kDrma, ProtocolId::kRmav}) {
    EXPECT_LT(charisma, run_one(id, params).voice_loss_rate())
        << protocols::protocol_name(id);
  }
}

TEST(CrossProtocol, AdaptivePhyBeatsFixedPhyVoice) {
  // D-TDMA/VR's added protection cuts error losses versus D-TDMA/FR
  // (paper §5.1) — same MAC, different PHY.
  const auto params = small_mixed(40, 0, true, 11);
  const auto vr = run_one(ProtocolId::kDtdmaVr, params);
  const auto fr = run_one(ProtocolId::kDtdmaFr, params);
  EXPECT_LT(vr.voice_error_rate(), fr.voice_error_rate());
}

TEST(CrossProtocol, CharismaAvoidsErrorLossesViaScheduling) {
  // CHARISMA's CSI-aware packing must show materially lower error loss
  // than the CSI-blind fixed-PHY baselines (paper §5.3.1).
  const auto params = small_mixed(60, 0, true, 13);
  const auto charisma = run_one(ProtocolId::kCharisma, params);
  const auto rama = run_one(ProtocolId::kRama, params);
  EXPECT_LT(charisma.voice_error_rate(), 0.5 * rama.voice_error_rate());
}

TEST(CrossProtocol, RmavIsTheUnstableOne) {
  const auto params = small_mixed(60, 0, true, 17);
  const double rmav = run_one(ProtocolId::kRmav, params).voice_loss_rate();
  for (auto id : {ProtocolId::kCharisma, ProtocolId::kDtdmaVr,
                  ProtocolId::kDtdmaFr, ProtocolId::kRama,
                  ProtocolId::kDrma}) {
    EXPECT_GT(rmav, 10.0 * run_one(id, params).voice_loss_rate())
        << protocols::protocol_name(id);
  }
}

TEST(CrossProtocol, CharismaDataCapacityBeatsEveryBaseline) {
  // Fig. 12 at a load past every baseline's ceiling (including D-TDMA/VR's
  // ~29 packets/frame).
  const auto params = small_mixed(0, 150, true, 19);
  const double charisma =
      run_one(ProtocolId::kCharisma, params).data_throughput_per_frame();
  for (auto id : {ProtocolId::kDtdmaVr, ProtocolId::kDtdmaFr,
                  ProtocolId::kRama, ProtocolId::kDrma, ProtocolId::kRmav}) {
    EXPECT_GT(charisma, run_one(id, params).data_throughput_per_frame())
        << protocols::protocol_name(id);
  }
}

TEST(CrossProtocol, QueueHelpsCharismaMoreThanRama) {
  // Paper §5.1: the request queue lifts CHARISMA significantly but RAMA
  // "only slightly".
  const auto with_q = small_mixed(110, 0, true, 23);
  auto no_q = with_q;
  no_q.request_queue = false;

  const double charisma_gain =
      run_one(ProtocolId::kCharisma, no_q).voice_loss_rate() -
      run_one(ProtocolId::kCharisma, with_q).voice_loss_rate();
  const double rama_gain =
      run_one(ProtocolId::kRama, no_q).voice_loss_rate() -
      run_one(ProtocolId::kRama, with_q).voice_loss_rate();
  EXPECT_GT(charisma_gain, rama_gain - 1e-4);
}

TEST(CrossProtocol, DataUsersShrinkVoiceCapacity) {
  // Fig. 11c/e: adding data users costs every protocol voice capacity.
  const auto clean = small_mixed(90, 0, true, 29);
  auto noisy = clean;
  noisy.num_data_users = 20;
  EXPECT_LE(run_one(ProtocolId::kCharisma, clean).voice_loss_rate(),
            run_one(ProtocolId::kCharisma, noisy).voice_loss_rate() + 2e-3);
}

}  // namespace
}  // namespace charisma
