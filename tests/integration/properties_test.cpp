// Property-style sweeps: invariants that must hold for every protocol at
// every (seed, load, queue) combination.
#include <gtest/gtest.h>
#include <tuple>

#include "../support/scenarios.hpp"
#include "protocols/factory.hpp"

namespace charisma {
namespace {

using protocols::ProtocolId;
using ::charisma::testing::small_mixed;

using PropertyParam = std::tuple<ProtocolId, int /*voice*/, int /*data*/,
                                 bool /*queue*/, int /*seed*/>;

class ProtocolProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(ProtocolProperties, InvariantsHold) {
  const auto [id, voice, data, queue, seed] = GetParam();
  auto engine = protocols::make_protocol(
      id, small_mixed(voice, data, queue, static_cast<std::uint64_t>(seed)));
  const auto& m = engine->run(1.5, 4.0);

  // Rates are probabilities.
  EXPECT_GE(m.voice_loss_rate(), 0.0);
  EXPECT_LE(m.voice_loss_rate(), 1.0);
  EXPECT_GE(m.slot_utilization(), 0.0);
  EXPECT_LE(m.slot_utilization(), 1.0 + 1e-12);
  EXPECT_GE(m.request_success_ratio(), 0.0);
  EXPECT_LE(m.request_success_ratio(), 1.0 + 1e-12);

  // Loss decomposition.
  EXPECT_NEAR(m.voice_loss_rate(), m.voice_drop_rate() + m.voice_error_rate(),
              1e-12);

  // Throughput cannot exceed the adaptive ceiling: 11 slots x 5 packets.
  EXPECT_LE(m.data_throughput_per_frame(), 55.0);

  // Counters are non-negative and consistent. (delivered can exceed
  // generated within the measurement window when a warmup backlog drains,
  // so that bound lives in conservation_test with zero warmup.)
  EXPECT_GE(m.voice_generated, 0);
  EXPECT_GE(m.data_generated, 0);
  EXPECT_EQ(m.data_tx_attempts, m.data_delivered + m.data_retransmissions);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
  EXPECT_LE(m.info_slots_wasted, m.info_slots_assigned);

  // Delays are causal.
  if (m.data_delay_s.count() > 0) {
    EXPECT_GE(m.data_delay_s.min(), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolProperties,
    ::testing::Combine(
        ::testing::ValuesIn(protocols::all_protocols()),
        ::testing::Values(0, 10, 40),
        ::testing::Values(0, 8),
        ::testing::Bool(),
        ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name = protocols::protocol_name(std::get<0>(info.param));
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c));
      });
      return name + "_v" + std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_q" : "_nq") + "_s" +
             std::to_string(std::get<4>(info.param));
    });

class LoadMonotonicity : public ::testing::TestWithParam<ProtocolId> {};

TEST_P(LoadMonotonicity, VoiceLossGrowsWithLoad) {
  // Statistical monotonicity: far-apart load points must order correctly.
  auto low_params = small_mixed(10, 0, true, 3);
  auto high_params = small_mixed(110, 0, true, 3);
  auto low = protocols::make_protocol(GetParam(), low_params);
  auto high = protocols::make_protocol(GetParam(), high_params);
  const double loss_low = low->run(4.0, 8.0).voice_loss_rate();
  const double loss_high = high->run(4.0, 8.0).voice_loss_rate();
  EXPECT_LE(loss_low, loss_high + 5e-3)
      << "low=" << loss_low << " high=" << loss_high;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LoadMonotonicity,
    ::testing::ValuesIn(protocols::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolId>& info) {
      std::string name = protocols::protocol_name(info.param);
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c));
      });
      return name;
    });

class SeedStability : public ::testing::TestWithParam<ProtocolId> {};

TEST_P(SeedStability, ResultsVaryAcrossSeedsButStayClose) {
  // Different seeds must produce different realizations (the RNG plumbing
  // is alive) whose headline metrics agree within statistical noise.
  auto a = protocols::make_protocol(GetParam(), small_mixed(30, 5, true, 1));
  auto b = protocols::make_protocol(GetParam(), small_mixed(30, 5, true, 2));
  const auto& ma = a->run(2.0, 6.0);
  const auto& mb = b->run(2.0, 6.0);
  EXPECT_NE(ma.voice_generated, mb.voice_generated);
  EXPECT_NEAR(ma.data_throughput_per_frame(), mb.data_throughput_per_frame(),
              0.5 * std::max(1.0, ma.data_throughput_per_frame()));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SeedStability,
    ::testing::ValuesIn(protocols::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolId>& info) {
      std::string name = protocols::protocol_name(info.param);
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c));
      });
      return name;
    });

}  // namespace
}  // namespace charisma
