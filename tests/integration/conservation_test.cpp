// Conservation invariants: every generated packet is accounted for. These
// run across all six protocols on one mixed scenario — the strongest
// cross-cutting correctness check in the suite.
#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "protocols/factory.hpp"

namespace charisma {
namespace {

using protocols::ProtocolId;
using ::charisma::testing::small_mixed;

class ConservationTest : public ::testing::TestWithParam<ProtocolId> {};

TEST_P(ConservationTest, VoicePacketsFullyAccounted) {
  auto engine = protocols::make_protocol(GetParam(), small_mixed(20, 5));
  const auto& m = engine->run(2.0, 6.0);
  ASSERT_GT(m.voice_generated, 0);
  // Delivered + error-lost + deadline-dropped never exceeds generated...
  EXPECT_LE(m.voice_delivered + m.voice_error_lost + m.voice_dropped_deadline,
            m.voice_generated + 20);  // +N_v: packets pending at window edges
  // ...and misses it by at most one in-flight packet per voice user.
  EXPECT_GE(m.voice_delivered + m.voice_error_lost + m.voice_dropped_deadline,
            m.voice_generated - 20);
}

TEST_P(ConservationTest, DataPacketsFullyAccounted) {
  // Zero warmup: the measurement window sees every packet from the empty
  // initial state, so the conservation bound is exact.
  auto engine = protocols::make_protocol(GetParam(), small_mixed(5, 5));
  const auto& m = engine->run(0.0, 8.0);
  ASSERT_GT(m.data_generated, 0);
  // Data is never dropped, only delivered or still queued.
  EXPECT_LE(m.data_delivered, m.data_generated);
  // Every attempt is a delivery or a retransmission.
  EXPECT_EQ(m.data_tx_attempts, m.data_delivered + m.data_retransmissions);
}

TEST_P(ConservationTest, DelaySamplesMatchDeliveries) {
  auto engine = protocols::make_protocol(GetParam(), small_mixed(0, 5));
  const auto& m = engine->run(2.0, 6.0);
  EXPECT_EQ(m.data_delay_s.count(), m.data_delivered);
  if (m.data_delivered > 0) {
    EXPECT_GE(m.data_delay_s.min(), 0.0);
  }
}

TEST_P(ConservationTest, SlotAccountingBounds) {
  auto engine = protocols::make_protocol(GetParam(), small_mixed(20, 5));
  const auto& m = engine->run(2.0, 6.0);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
  EXPECT_LE(m.info_slots_wasted, m.info_slots_assigned);
  EXPECT_GE(m.info_slots_offered, 0);
}

TEST_P(ConservationTest, ContentionTallyConsistent) {
  auto engine = protocols::make_protocol(GetParam(), small_mixed(20, 5));
  const auto& m = engine->run(2.0, 6.0);
  EXPECT_EQ(m.request_slots,
            m.request_successes + m.request_collisions + m.request_idle);
}

TEST_P(ConservationTest, MeasurementWindowMatchesRequest) {
  auto engine = protocols::make_protocol(GetParam(), small_mixed(5, 2));
  const auto& m = engine->run(2.0, 6.0);
  EXPECT_GT(m.frames, 0);
  EXPECT_NEAR(m.measured_time, 6.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ConservationTest,
    ::testing::ValuesIn(protocols::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolId>& info) {
      std::string name = protocols::protocol_name(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(
          static_cast<unsigned char>(c)); });
      return name;
    });

}  // namespace
}  // namespace charisma
