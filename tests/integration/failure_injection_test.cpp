// Failure injection: degenerate radio environments, hostile parameters and
// configuration edge cases must degrade gracefully, never crash or violate
// accounting.
#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "core/charisma.hpp"
#include "mac/cellular_world.hpp"
#include "protocols/factory.hpp"

namespace charisma {
namespace {

using protocols::ProtocolId;
using ::charisma::testing::outage_channel;
using ::charisma::testing::small_mixed;

class OutageTest : public ::testing::TestWithParam<ProtocolId> {};

TEST_P(OutageTest, DeadRadioNeverDeliversButNeverCrashes) {
  auto engine = protocols::make_protocol(GetParam(), outage_channel(10, 3));
  const auto& m = engine->run(2.0, 5.0);
  EXPECT_EQ(m.voice_delivered, 0);
  EXPECT_EQ(m.data_delivered, 0);
  EXPECT_GT(m.voice_generated, 0);
  // All voice losses are accounted to deadline or channel error.
  EXPECT_NEAR(m.voice_loss_rate(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, OutageTest, ::testing::ValuesIn(protocols::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolId>& info) {
      std::string name = protocols::protocol_name(info.param);
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c));
      });
      return name;
    });

TEST(FailureInjection, TinyPermissionProbabilityStallsButRuns) {
  auto params = small_mixed(20, 5);
  params.voice_permission_prob = 0.001;
  params.data_permission_prob = 0.001;
  auto engine = protocols::make_protocol(ProtocolId::kCharisma, params);
  const auto& m = engine->run(1.0, 3.0);
  // Contention nearly never succeeds: heavy loss, clean accounting.
  EXPECT_GT(m.voice_drop_rate(), 0.1);
  EXPECT_EQ(m.request_slots,
            m.request_successes + m.request_collisions + m.request_idle);
}

TEST(FailureInjection, NoisyCsiEstimatesRaiseCharismaErrors) {
  auto clean = small_mixed(60, 0, true, 5);
  clean.csi_error_sigma_db = 0.0;
  auto noisy = small_mixed(60, 0, true, 5);
  noisy.csi_error_sigma_db = 6.0;
  auto e_clean = protocols::make_protocol(ProtocolId::kCharisma, clean);
  auto e_noisy = protocols::make_protocol(ProtocolId::kCharisma, noisy);
  const double err_clean = e_clean->run(3.0, 8.0).voice_error_rate();
  const double err_noisy = e_noisy->run(3.0, 8.0).voice_error_rate();
  EXPECT_GT(err_noisy, err_clean);
}

TEST(FailureInjection, CsiRefreshMattersAtHighDoppler) {
  // At 80 km/h-class Doppler, disabling the §4.4 refresh must not *help*.
  auto params = small_mixed(70, 0, true, 7);
  params.channel.doppler_hz = 160.0;
  core::CharismaOptions with_refresh;
  core::CharismaOptions without;
  without.enable_csi_refresh = false;
  core::CharismaProtocol a(params, with_refresh);
  core::CharismaProtocol b(params, without);
  const double loss_with = a.run(3.0, 8.0).voice_loss_rate();
  const double loss_without = b.run(3.0, 8.0).voice_loss_rate();
  EXPECT_LE(loss_with, loss_without + 2e-3);
}

TEST(FailureInjection, ZeroPilotBudgetDisablesPolling) {
  auto params = small_mixed(40, 0);
  params.geometry.num_pilot_slots = 0;
  core::CharismaProtocol proto(params);
  const auto& m = proto.run(2.0, 4.0);
  EXPECT_EQ(m.csi_polls, 0);
  EXPECT_GT(m.voice_delivered, 0);  // still functions on request pilots
}

TEST(FailureInjection, InvalidScenariosRejected) {
  auto params = small_mixed(5, 0);
  params.mean_talkspurt_s = 0.0;
  EXPECT_THROW(protocols::make_protocol(ProtocolId::kCharisma, params),
               std::invalid_argument);
  params = small_mixed(5, 0);
  params.voice_permission_prob = 1.5;
  EXPECT_THROW(protocols::make_protocol(ProtocolId::kRama, params),
               std::invalid_argument);
  params = small_mixed(5, 0);
  params.csi_validity_frames = 0;
  EXPECT_THROW(protocols::make_protocol(ProtocolId::kDtdmaVr, params),
               std::invalid_argument);
}

TEST(FailureInjection, RunArgumentValidation) {
  auto engine = protocols::make_protocol(ProtocolId::kCharisma,
                                         small_mixed(2, 0));
  EXPECT_THROW(engine->run(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(engine->run(1.0, 0.0), std::invalid_argument);
}

TEST(FailureInjection, EmptyPopulationRuns) {
  for (auto id : protocols::all_protocols()) {
    auto engine = protocols::make_protocol(id, small_mixed(0, 0));
    const auto& m = engine->run(0.5, 1.0);
    EXPECT_EQ(m.voice_generated, 0);
    EXPECT_EQ(m.data_generated, 0);
  }
}

TEST(FailureInjection, SingleUserEveryProtocol) {
  for (auto id : protocols::all_protocols()) {
    auto engine = protocols::make_protocol(id, small_mixed(1, 0));
    const auto& m = engine->run(2.0, 5.0);
    // A lone voice user on a healthy channel should essentially never lose
    // packets under any protocol.
    EXPECT_LT(m.voice_loss_rate(), 0.05)
        << protocols::protocol_name(id);
  }
}

// ---------------------------------------------------------------- world
// PR 6: fault injection at the world level. A cell going dark mid-run must
// evict its users (dropping their in-flight voice into the books), hand
// them to live neighbours, and take them back after recovery — without
// crashing, losing accounting, or depending on the worker thread count.

mac::CellularConfig outage_world_config(std::uint64_t seed = 7) {
  mac::CellularConfig cfg;
  cfg.num_cells = 3;
  cfg.num_threads = 1;
  cfg.params.num_voice_users = 12;
  cfg.params.num_data_users = 4;
  cfg.params.seed = seed;
  cfg.params.channel.shadow_sigma_db = 6.0;
  cfg.mobility.field_width_m = 1500.0;
  cfg.mobility.field_height_m = 300.0;
  cfg.mobility.speed_mps = common::km_per_hour(50.0);
  cfg.handoff_hysteresis_db = 2.0;
  return cfg;
}

mac::EngineFactory charisma_factory() {
  return [](const mac::ScenarioParams& p) {
    return protocols::make_protocol(ProtocolId::kCharisma, p);
  };
}

TEST(WorldFailureInjection, MidRunOutageEvictsAndRecovers) {
  auto cfg = outage_world_config();
  cfg.outages.push_back({1, 0.5, 1.0});
  mac::CellularWorld world(cfg, charisma_factory());
  world.run(0.0, 2.0);
  const auto m = world.aggregate_metrics();

  // The fault fired and the books balance: every attachment change is a
  // handoff out of a live cell or an eviction out of the dark one.
  EXPECT_GT(m.outage_evictions, 0);
  EXPECT_EQ(m.handoffs_in, m.handoffs_out + m.outage_evictions);
  EXPECT_EQ(world.cell_dark(1), false);  // the window closed

  // Recovery is real: the dark cell serves users again afterwards.
  int total_attached = 0;
  for (int c = 0; c < 3; ++c) total_attached += world.attached_count(c);
  EXPECT_EQ(total_attached, cfg.params.total_users());
  EXPECT_GT(world.attached_count(1), 0);
}

TEST(WorldFailureInjection, OutageDeterministicAcrossThreadCounts) {
  auto make = [](unsigned threads) {
    auto cfg = outage_world_config(/*seed=*/13);
    cfg.num_threads = threads;
    cfg.outages.push_back({0, 0.4, 0.9});
    cfg.outages.push_back({2, 1.1, 1.5});
    mac::CellularWorld world(cfg, charisma_factory());
    world.run(0.2, 1.8);
    return world.aggregate_metrics();
  };
  const auto serial = make(1);
  ASSERT_GT(serial.outage_evictions, 0);
  for (unsigned threads : {2u, 3u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const auto parallel = make(threads);
    EXPECT_TRUE(serial == parallel);
  }
}

TEST(WorldFailureInjection, AllCellsDarkDoesNotCrash) {
  // Total blackout: nowhere to evict to, so users stay put (dark-attached)
  // and service resumes when the lights come back.
  auto cfg = outage_world_config(/*seed=*/5);
  for (int c = 0; c < 3; ++c) cfg.outages.push_back({c, 0.4, 0.8});
  mac::CellularWorld world(cfg, charisma_factory());
  world.run(0.0, 1.5);
  const auto m = world.aggregate_metrics();
  EXPECT_EQ(m.handoffs_in, m.handoffs_out + m.outage_evictions);
  int total_attached = 0;
  for (int c = 0; c < 3; ++c) total_attached += world.attached_count(c);
  EXPECT_EQ(total_attached, cfg.params.total_users());
}

TEST(WorldFailureInjection, InvalidOutageWindowsRejected) {
  auto cfg = outage_world_config();
  cfg.outages.push_back({5, 0.5, 1.0});  // no such cell
  EXPECT_THROW(mac::CellularWorld(cfg, charisma_factory()),
               std::invalid_argument);
  cfg = outage_world_config();
  cfg.outages.push_back({1, 1.0, 0.5});  // end before start
  EXPECT_THROW(mac::CellularWorld(cfg, charisma_factory()),
               std::invalid_argument);
}

TEST(FailureInjection, HugeBurstsDoNotOverflow) {
  auto params = small_mixed(0, 2);
  params.mean_burst_packets = 5000.0;
  auto engine = protocols::make_protocol(ProtocolId::kCharisma, params);
  const auto& m = engine->run(1.0, 4.0);
  EXPECT_GE(m.data_generated, 0);
  EXPECT_LE(m.data_delivered, m.data_generated);
}

}  // namespace
}  // namespace charisma
