#include "protocols/prma.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"
#include "protocols/dtdma.hpp"
#include "protocols/factory.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::small_mixed;

TEST(Prma, IdealChannelLosesNoVoiceAtLightLoad) {
  PrmaProtocol proto(ideal_channel(5, 0));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.voice_generated, 250);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_LT(m.voice_loss_rate(), 0.01);
}

TEST(Prma, CollisionsBurnInformationSlots) {
  // Packet-as-request contention: collisions consume whole info slots, so
  // the collision tally plus assignments never exceeds the slot budget.
  PrmaProtocol proto(small_mixed(40, 10, true, 3));
  const auto& m = proto.run(2.0, 6.0);
  EXPECT_GT(m.request_collisions, 0);
  EXPECT_LE(m.info_slots_assigned + m.request_collisions,
            m.info_slots_offered);
}

TEST(Prma, ReservationLifecycle) {
  PrmaProtocol proto(ideal_channel(8, 0));
  proto.run(2.0, 6.0);
  EXPECT_LE(proto.reservations_held(), 8);
}

TEST(Prma, DtdmaOutperformsItsAncestor) {
  // The point of D-TDMA's dedicated request minislots (paper §3.4): at a
  // loaded cell PRMA wastes information slots on collisions that D-TDMA/FR
  // resolves in cheap minislots.
  const auto params = small_mixed(120, 10, true, 5);
  PrmaProtocol prma(params);
  DtdmaProtocol dtdma(params, DtdmaProtocol::PhyVariant::kFixedRate);
  const auto& mp = prma.run(4.0, 10.0);
  const auto& md = dtdma.run(4.0, 10.0);
  EXPECT_GT(mp.voice_loss_rate(), md.voice_loss_rate());
}

TEST(Prma, FactoryConstructsIt) {
  EXPECT_EQ(parse_protocol("prma"), ProtocolId::kPrma);
  auto engine = make_protocol(ProtocolId::kPrma, small_mixed(5, 2));
  EXPECT_EQ(engine->name(), "PRMA");
  const auto& m = engine->run(1.0, 2.0);
  EXPECT_GT(m.frames, 0);
}

TEST(Prma, NotInThePapersSix) {
  for (auto id : all_protocols()) {
    EXPECT_NE(id, ProtocolId::kPrma);
  }
}

TEST(Prma, DeterministicGivenSeed) {
  PrmaProtocol a(small_mixed(12, 4, true, 19));
  PrmaProtocol b(small_mixed(12, 4, true, 19));
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(Prma, CustomSlotCount) {
  PrmaOptions options;
  options.info_slots = 5;
  PrmaProtocol proto(small_mixed(10, 2), options);
  const auto& m = proto.run(1.0, 3.0);
  EXPECT_EQ(m.info_slots_offered, m.frames * 5);
}

}  // namespace
}  // namespace charisma::protocols
