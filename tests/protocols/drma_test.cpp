#include "protocols/drma.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::small_mixed;

TEST(Drma, IdealChannelLosesNoVoice) {
  DrmaProtocol proto(ideal_channel(10, 0));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.voice_generated, 500);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
}

TEST(Drma, ConversionsThrottledAtSaturation) {
  // DRMA's self-throttling property (§3.3): request opportunities exist
  // only on idle slots, so at data saturation the offered minislots stay
  // well below the theoretical 11 slots x 8 minislots per frame, and the
  // system keeps moving packets instead of thrash-collapsing.
  DrmaProtocol busy(small_mixed(0, 80, true, 3));
  const auto& mb = busy.run(3.0, 6.0);
  const double busy_requests_per_frame =
      static_cast<double>(mb.request_slots) / static_cast<double>(mb.frames);
  EXPECT_LT(busy_requests_per_frame, 44.0);  // < half the theoretical max
  EXPECT_GT(mb.data_throughput_per_frame(), 4.0);
}

TEST(Drma, StableUnderDataOverload) {
  DrmaProtocol proto(small_mixed(0, 80, true, 3));
  const auto& m = proto.run(4.0, 8.0);
  // The paper's stability claim: throughput holds near the ceiling instead
  // of collapsing.
  EXPECT_GT(m.data_throughput_per_frame(), 5.0);
}

TEST(Drma, VoiceReservationKeepsSlotPosition) {
  DrmaProtocol proto(ideal_channel(6, 0));
  proto.run(2.0, 6.0);
  EXPECT_LE(proto.reservations_held(), 6);
}

TEST(Drma, InfoSlotBudgetRespected) {
  DrmaProtocol proto(small_mixed(20, 10));
  const auto& m = proto.run(2.0, 5.0);
  EXPECT_EQ(m.info_slots_offered, m.frames * 11);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
}

TEST(Drma, CustomSlotCounts) {
  DrmaOptions options;
  options.info_slots = 5;
  options.minislots_per_conversion = 4;
  DrmaProtocol proto(small_mixed(10, 2), options);
  const auto& m = proto.run(2.0, 4.0);
  EXPECT_EQ(m.info_slots_offered, m.frames * 5);
}

TEST(Drma, DeterministicGivenSeed) {
  DrmaProtocol a(small_mixed(12, 4, true, 17));
  DrmaProtocol b(small_mixed(12, 4, true, 17));
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(Drma, Name) {
  DrmaProtocol proto(small_mixed(1, 0));
  EXPECT_EQ(proto.name(), "DRMA");
}

}  // namespace
}  // namespace charisma::protocols
