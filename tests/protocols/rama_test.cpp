#include "protocols/rama.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::small_mixed;

TEST(Rama, IdealChannelLosesNoVoice) {
  RamaProtocol proto(ideal_channel(10, 0));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.voice_generated, 500);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
}

TEST(Rama, AuctionRateBoundsAdmissions) {
  // At most `auction_slots` winners per frame, so with contention-free
  // queues off, data service is capped by auctions * 1 slot.
  RamaOptions options;
  options.auction_slots = 2;
  RamaProtocol proto(ideal_channel(0, 40, /*queue=*/false), options);
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_LE(m.data_throughput_per_frame(), 2.0 + 1e-9);
}

TEST(Rama, NoCollisionsByDefault) {
  RamaProtocol proto(small_mixed(30, 10));
  const auto& m = proto.run(2.0, 6.0);
  EXPECT_EQ(m.request_collisions, 0);
}

TEST(Rama, IdCollisionsWhenConfigured) {
  RamaOptions options;
  options.id_collision_prob = 0.5;
  RamaProtocol proto(small_mixed(30, 10), options);
  const auto& m = proto.run(2.0, 6.0);
  EXPECT_GT(m.request_collisions, 0);
}

TEST(Rama, StableUnderOverload) {
  // The auction always yields winners: even with 80 perpetually backlogged
  // data users, RAMA keeps delivering (the paper's graceful-degradation
  // property).
  RamaProtocol proto(small_mixed(0, 80, true, 3));
  const auto& m = proto.run(4.0, 8.0);
  EXPECT_GT(m.data_throughput_per_frame(), 5.0);
}

TEST(Rama, VoiceWinsAuctionsOverData) {
  // With heavy data load, voice users must still get served promptly
  // (voice IDs dominate the auction).
  RamaProtocol proto(small_mixed(10, 60, true, 5));
  const auto& m = proto.run(4.0, 10.0);
  EXPECT_LT(m.voice_drop_rate(), 0.05);
}

TEST(Rama, DeterministicGivenSeed) {
  RamaProtocol a(small_mixed(12, 6, true, 11));
  RamaProtocol b(small_mixed(12, 6, true, 11));
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(Rama, Name) {
  RamaProtocol proto(small_mixed(1, 0));
  EXPECT_EQ(proto.name(), "RAMA");
}

}  // namespace
}  // namespace charisma::protocols
