#include "protocols/dtdma.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::outage_channel;
using ::charisma::testing::small_mixed;

TEST(Dtdma, Names) {
  DtdmaProtocol fr(small_mixed(1, 0), DtdmaProtocol::PhyVariant::kFixedRate);
  DtdmaProtocol vr(small_mixed(1, 0),
                   DtdmaProtocol::PhyVariant::kVariableRate);
  EXPECT_EQ(fr.name(), "D-TDMA/FR");
  EXPECT_EQ(vr.name(), "D-TDMA/VR");
}

TEST(Dtdma, IdealChannelLosesNoVoiceFr) {
  DtdmaProtocol proto(ideal_channel(10, 0),
                      DtdmaProtocol::PhyVariant::kFixedRate);
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.voice_generated, 500);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
}

TEST(Dtdma, IdealChannelLosesNoVoiceVr) {
  DtdmaProtocol proto(ideal_channel(10, 0),
                      DtdmaProtocol::PhyVariant::kVariableRate);
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
}

TEST(Dtdma, VoiceReservationLifecycle) {
  DtdmaProtocol proto(ideal_channel(8, 0),
                      DtdmaProtocol::PhyVariant::kFixedRate);
  proto.run(2.0, 6.0);
  EXPECT_LE(proto.reservations_held(), 8);
}

TEST(Dtdma, VrOutperformsFrForData) {
  // The adaptive PHY roughly triples the per-slot packet count at the
  // calibrated operating point, so at a load past FR's ceiling VR must
  // deliver clearly more.
  auto params = small_mixed(0, 60, true, 3);
  DtdmaProtocol fr(params, DtdmaProtocol::PhyVariant::kFixedRate);
  DtdmaProtocol vr(params, DtdmaProtocol::PhyVariant::kVariableRate);
  const auto& mf = fr.run(4.0, 10.0);
  const auto& mv = vr.run(4.0, 10.0);
  EXPECT_GT(mv.data_throughput_per_frame(),
            1.3 * mf.data_throughput_per_frame());
}

TEST(Dtdma, FrCeilingIsOnePacketPerSlot) {
  DtdmaProtocol proto(ideal_channel(0, 60),
                      DtdmaProtocol::PhyVariant::kFixedRate);
  const auto& m = proto.run(4.0, 8.0);
  // 10 info slots per frame, 1 packet each.
  EXPECT_LE(m.data_throughput_per_frame(), 10.0 + 1e-9);
  EXPECT_GT(m.data_throughput_per_frame(), 9.0);
}

TEST(Dtdma, OutageWastesVrSlotsButSendsNothing) {
  DtdmaProtocol proto(outage_channel(6, 0),
                      DtdmaProtocol::PhyVariant::kVariableRate);
  const auto& m = proto.run(2.0, 6.0);
  // VR detects outage and ships nothing: deadline drops, no error losses.
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_GT(m.voice_dropped_deadline, 0);
}

TEST(Dtdma, OutageFrLosesToErrors) {
  DtdmaProtocol proto(outage_channel(6, 0),
                      DtdmaProtocol::PhyVariant::kFixedRate);
  const auto& m = proto.run(2.0, 6.0);
  // FR transmits blindly into the dead channel: losses are errors.
  EXPECT_GT(m.voice_error_lost, 0);
}

TEST(Dtdma, DeterministicGivenSeed) {
  DtdmaProtocol a(small_mixed(12, 4, true, 9),
                  DtdmaProtocol::PhyVariant::kFixedRate);
  DtdmaProtocol b(small_mixed(12, 4, true, 9),
                  DtdmaProtocol::PhyVariant::kFixedRate);
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
}

TEST(Dtdma, QueueGrowsOnlyWithQueueMode) {
  DtdmaProtocol no_queue(small_mixed(10, 10, false),
                         DtdmaProtocol::PhyVariant::kFixedRate);
  no_queue.run(2.0, 4.0);
  EXPECT_EQ(no_queue.queue_size(), 0u);
}

TEST(Dtdma, SlotAccountingConsistent) {
  DtdmaProtocol proto(small_mixed(20, 5),
                      DtdmaProtocol::PhyVariant::kVariableRate);
  const auto& m = proto.run(2.0, 5.0);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
  EXPECT_LE(m.info_slots_wasted, m.info_slots_assigned);
}

}  // namespace
}  // namespace charisma::protocols
