#include "protocols/rmav.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::small_mixed;

TEST(Rmav, WorksAtVeryLightLoad) {
  RmavProtocol proto(ideal_channel(5, 0));
  const auto& m = proto.run(3.0, 10.0);
  EXPECT_GT(m.voice_generated, 300);
  EXPECT_LT(m.voice_loss_rate(), 0.02);
}

TEST(Rmav, BecomesUnstableAtModerateVoiceLoad) {
  // The paper's headline RMAV result: one contention opportunity per frame
  // collapses at a moderate user count while every other protocol is fine.
  RmavProtocol light(small_mixed(8, 0, true, 2));
  RmavProtocol heavy(small_mixed(100, 0, true, 2));
  const auto& ml = light.run(4.0, 10.0);
  const auto& mh = heavy.run(4.0, 10.0);
  EXPECT_LT(ml.voice_loss_rate(), 0.05);
  EXPECT_GT(mh.voice_loss_rate(), 0.2);
}

TEST(Rmav, ShortDelayAtLightLoad) {
  // RMAV's selling point: frames shrink when idle, so data waits little.
  RmavProtocol proto(ideal_channel(0, 2));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.data_delivered, 0);
  EXPECT_LT(m.mean_data_delay_s(), 0.25);
}

TEST(Rmav, PmaxCapsDataGrant) {
  RmavOptions options;
  options.pmax = 3;
  RmavProtocol proto(ideal_channel(0, 1), options);
  const auto& m = proto.run(2.0, 6.0);
  EXPECT_GT(m.data_delivered, 0);
  // A single user served one grant per two frames at 3 slots each
  // cannot exceed 1.5 packets/frame on the fixed PHY.
  EXPECT_LE(m.data_throughput_per_frame(), 3.0 + 1e-9);
}

TEST(Rmav, VariableFrameDurations) {
  // Frame count over a fixed horizon must exceed the fixed-frame count
  // when frames shrink below the nominal duration.
  RmavProtocol proto(ideal_channel(3, 1));
  const auto& m = proto.run(2.0, 5.0);
  const auto fixed_frames = static_cast<std::int64_t>(5.0 / 2.5e-3);
  EXPECT_GT(m.frames, fixed_frames);
}

TEST(Rmav, DeterministicGivenSeed) {
  RmavProtocol a(small_mixed(10, 3, true, 13));
  RmavProtocol b(small_mixed(10, 3, true, 13));
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.frames, mb.frames);
}

TEST(Rmav, Name) {
  RmavProtocol proto(small_mixed(1, 0));
  EXPECT_EQ(proto.name(), "RMAV");
}

}  // namespace
}  // namespace charisma::protocols
