#include "protocols/factory.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::protocols {
namespace {

using ::charisma::testing::small_mixed;

TEST(Factory, AllProtocolsListed) {
  EXPECT_EQ(all_protocols().size(), 6u);
}

TEST(Factory, NamesRoundTrip) {
  for (auto id : all_protocols()) {
    EXPECT_EQ(parse_protocol(protocol_name(id)), id);
  }
}

TEST(Factory, ParseIsLenient) {
  EXPECT_EQ(parse_protocol("charisma"), ProtocolId::kCharisma);
  EXPECT_EQ(parse_protocol("CHARISMA"), ProtocolId::kCharisma);
  EXPECT_EQ(parse_protocol("d-tdma/fr"), ProtocolId::kDtdmaFr);
  EXPECT_EQ(parse_protocol("dtdma_vr"), ProtocolId::kDtdmaVr);
  EXPECT_EQ(parse_protocol("D-TDMA/VR"), ProtocolId::kDtdmaVr);
  EXPECT_EQ(parse_protocol("rama"), ProtocolId::kRama);
  EXPECT_EQ(parse_protocol("RMAV"), ProtocolId::kRmav);
  EXPECT_EQ(parse_protocol("drma"), ProtocolId::kDrma);
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(parse_protocol("aloha"), std::invalid_argument);
  EXPECT_THROW(parse_protocol(""), std::invalid_argument);
}

TEST(Factory, BuildsEveryProtocol) {
  for (auto id : all_protocols()) {
    auto engine = make_protocol(id, small_mixed(5, 2));
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), protocol_name(id));
    const auto& m = engine->run(1.0, 2.0);
    EXPECT_GT(m.frames, 0);
  }
}

TEST(Factory, CharismaOptionsForwarded) {
  core::CharismaOptions options;
  options.enable_csi_refresh = false;
  auto engine =
      make_protocol(ProtocolId::kCharisma, small_mixed(30, 0), options);
  const auto& m = engine->run(2.0, 4.0);
  EXPECT_EQ(m.csi_polls, 0);
}

TEST(Factory, InvalidScenarioRejected) {
  auto params = small_mixed(5, 0);
  params.voice_permission_prob = 0.0;
  EXPECT_THROW(make_protocol(ProtocolId::kCharisma, params),
               std::invalid_argument);
  params = small_mixed(5, 0);
  params.geometry.num_info_slots = 0;
  EXPECT_THROW(make_protocol(ProtocolId::kDtdmaFr, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace charisma::protocols
