#include "core/priority.hpp"

#include <gtest/gtest.h>
#include <limits>

namespace charisma::core {
namespace {

constexpr double kFrame = 2.5e-3;

mac::PendingRequest voice_request(double deadline) {
  mac::PendingRequest r;
  r.user = 1;
  r.type = mac::RequestType::kVoice;
  r.deadline = deadline;
  return r;
}

mac::PendingRequest data_request(int waited) {
  mac::PendingRequest r;
  r.user = 2;
  r.type = mac::RequestType::kData;
  r.deadline = std::numeric_limits<double>::infinity();
  r.frames_waited = waited;
  return r;
}

TEST(FramesToDeadline, BasicAndClamped) {
  EXPECT_EQ(frames_to_deadline(0.02, 0.0, kFrame), 8);
  EXPECT_EQ(frames_to_deadline(0.02, 0.0175, kFrame), 1);
  // Past deadlines clamp to 1 (requests are purged before this matters).
  EXPECT_EQ(frames_to_deadline(0.0, 1.0, kFrame), 1);
}

TEST(Priority, VoiceOffsetDominatesData) {
  PriorityWeights w;
  // Worst-case voice (no CSI, far deadline) still beats the best data
  // request with default weights while the data wait is short.
  const double v = request_priority(voice_request(0.02), 0.0, 0.0, kFrame, w);
  const double d = request_priority(data_request(0), 5.0, 0.0, kFrame, w);
  EXPECT_GT(v, d);
}

TEST(Priority, UrgencyRaisesVoicePriority) {
  PriorityWeights w;
  const double far = request_priority(voice_request(0.02), 2.0, 0.0, kFrame, w);
  const double near =
      request_priority(voice_request(0.02), 2.0, 0.0175, kFrame, w);
  EXPECT_GT(near, far);
}

TEST(Priority, CsiRaisesPriorityLinearly) {
  PriorityWeights w;
  const auto r = voice_request(0.02);
  const double p1 = request_priority(r, 1.0, 0.0, kFrame, w);
  const double p3 = request_priority(r, 3.0, 0.0, kFrame, w);
  const double p5 = request_priority(r, 5.0, 0.0, kFrame, w);
  EXPECT_NEAR(p3 - p1, p5 - p3, 1e-12);
  EXPECT_GT(p3, p1);
}

TEST(Priority, WaitingRaisesDataPriority) {
  PriorityWeights w;
  const double fresh = request_priority(data_request(0), 2.0, 0.0, kFrame, w);
  const double waited =
      request_priority(data_request(200), 2.0, 0.0, kFrame, w);
  EXPECT_GT(waited, fresh);
  EXPECT_NEAR(waited - fresh, w.gamma_data * 200, 1e-12);
}

TEST(Priority, GoodCsiDataCanPassOutageVoiceWhenOffsetSmall) {
  PriorityWeights w;
  w.voice_offset = 1.0;
  const double v = request_priority(voice_request(0.02), 0.0, 0.0, kFrame, w);
  const double d = request_priority(data_request(0), 5.0, 0.0, kFrame, w);
  EXPECT_GT(d, v);
}

TEST(Priority, WeightKnobsScaleTerms) {
  PriorityWeights w;
  w.alpha_voice = 0.0;
  const auto r = voice_request(0.02);
  EXPECT_DOUBLE_EQ(request_priority(r, 1.0, 0.0, kFrame, w),
                   request_priority(r, 5.0, 0.0, kFrame, w));
  w = PriorityWeights{};
  w.gamma_voice = 0.0;
  EXPECT_DOUBLE_EQ(
      request_priority(voice_request(0.02), 2.0, 0.0, kFrame, w),
      request_priority(voice_request(0.02), 2.0, 0.0175, kFrame, w));
}

TEST(Priority, UrgentOutageVoiceBeatsMidDeadlineMidCsiVoice) {
  // The fairness property of Eq. (2): a user at its deadline gets served
  // even with a poor channel, ahead of comfortable mid-CSI users.
  PriorityWeights w;
  const double urgent_outage =
      request_priority(voice_request(0.02), 0.0, 0.0175, kFrame, w);
  const double relaxed_mid =
      request_priority(voice_request(0.02), 2.0, 0.01, kFrame, w);
  EXPECT_GT(urgent_outage, relaxed_mid);
}

}  // namespace
}  // namespace charisma::core
