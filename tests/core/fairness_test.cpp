#include "core/fairness.hpp"

#include <gtest/gtest.h>

namespace charisma::core {
namespace {

TEST(Fairness, NoneModeIsIdentity) {
  FairnessTracker tracker;
  tracker.observe(1, 4.0);
  EXPECT_DOUBLE_EQ(tracker.adjusted_throughput(1, 2.0, FairnessMode::kNone),
                   2.0);
}

TEST(Fairness, FirstObservationSeedsAverage) {
  FairnessTracker tracker;
  tracker.observe(1, 3.0);
  EXPECT_DOUBLE_EQ(tracker.average(1), 3.0);
}

TEST(Fairness, EwmaConverges) {
  FairnessTracker tracker(0.1);
  tracker.observe(1, 0.0);
  for (int i = 0; i < 200; ++i) tracker.observe(1, 4.0);
  EXPECT_NEAR(tracker.average(1), 4.0, 0.01);
}

TEST(Fairness, NormalizedModeRewardsPersonalPeaks) {
  FairnessTracker tracker(0.5);
  // A cell-edge user averaging 1 bit/sym at a momentary 2 bit/sym...
  for (int i = 0; i < 50; ++i) tracker.observe(1, 1.0);
  // ...must outrank a cell-center user averaging 4 at a momentary 4.
  for (int i = 0; i < 50; ++i) tracker.observe(2, 4.0);
  const double edge = tracker.adjusted_throughput(
      1, 2.0, FairnessMode::kCapacityNormalized);
  const double center = tracker.adjusted_throughput(
      2, 4.0, FairnessMode::kCapacityNormalized);
  EXPECT_GT(edge, center);
}

TEST(Fairness, AtPersonalAverageScoresMidLadder) {
  FairnessTracker tracker(0.5);
  for (int i = 0; i < 50; ++i) tracker.observe(7, 3.0);
  EXPECT_NEAR(tracker.adjusted_throughput(7, 3.0,
                                          FairnessMode::kCapacityNormalized),
              2.5, 1e-9);
}

TEST(Fairness, UnknownUserGetsMaximalStartupBoost) {
  // Proportional fair: a never-served user's achieved average is floored,
  // so it is boosted to the cap rather than treated neutrally.
  FairnessTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.adjusted_throughput(
                       99, 3.5, FairnessMode::kCapacityNormalized),
                   2.5 * 3.5 / FairnessTracker::kMinAverage);
  EXPECT_DOUBLE_EQ(tracker.average(99), 0.0);
}

TEST(Fairness, StarvationRaisesPriorityUntilServed) {
  FairnessTracker tracker(0.1);
  tracker.observe(1, 2.0);  // served once...
  const double before = tracker.adjusted_throughput(
      1, 2.0, FairnessMode::kCapacityNormalized);
  for (int i = 0; i < 100; ++i) tracker.observe(1, 0.0);  // ...then starved
  const double after = tracker.adjusted_throughput(
      1, 2.0, FairnessMode::kCapacityNormalized);
  EXPECT_GT(after, before * 10.0);
  // Bounded by the floor, not divergent.
  EXPECT_LE(after, 2.5 * 2.0 / FairnessTracker::kMinAverage + 1e-9);
}

TEST(Fairness, ResetForgets) {
  FairnessTracker tracker;
  tracker.observe(1, 5.0);
  tracker.reset();
  EXPECT_DOUBLE_EQ(tracker.average(1), 0.0);
}

TEST(Fairness, SmoothingValidation) {
  EXPECT_THROW(FairnessTracker(0.0), std::invalid_argument);
  EXPECT_THROW(FairnessTracker(1.5), std::invalid_argument);
  EXPECT_NO_THROW(FairnessTracker(1.0));
}

}  // namespace
}  // namespace charisma::core
