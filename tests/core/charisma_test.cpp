#include "core/charisma.hpp"

#include <gtest/gtest.h>

#include "../support/scenarios.hpp"

namespace charisma::core {
namespace {

using ::charisma::testing::ideal_channel;
using ::charisma::testing::outage_channel;
using ::charisma::testing::small_mixed;

TEST(Charisma, IdealChannelLosesNoVoice) {
  CharismaProtocol proto(ideal_channel(10, 0));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.voice_generated, 500);
  EXPECT_EQ(m.voice_error_lost, 0);
  EXPECT_EQ(m.voice_dropped_deadline, 0);
  EXPECT_EQ(m.voice_delivered, m.voice_generated);
}

TEST(Charisma, IdealChannelDeliversAllData) {
  CharismaProtocol proto(ideal_channel(0, 5));
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.data_generated, 300);
  // Everything offered is drained (ceiling is far above the offered load).
  EXPECT_GT(m.data_delivered, m.data_generated * 9 / 10);
  EXPECT_EQ(m.data_retransmissions, 0);
}

TEST(Charisma, ReservationsTrackTalkspurts) {
  CharismaProtocol proto(ideal_channel(8, 0));
  proto.run(2.0, 6.0);
  // Reservations exist only for ongoing talkspurts: bounded by user count.
  EXPECT_LE(proto.reservations_held(), 8u);
}

TEST(Charisma, VoiceContendsOncePerTalkspurtNotPerPacket) {
  // With reservations, request successes track talkspurt starts (~0.43/s
  // per user), not packets (50/s per user in talkspurt).
  CharismaProtocol proto(ideal_channel(10, 0));
  const auto& m = proto.run(3.0, 10.0);
  const double talkspurt_starts_expected = 10.0 * 10.0 / 2.35;
  EXPECT_LT(static_cast<double>(m.request_successes),
            3.0 * talkspurt_starts_expected);
  EXPECT_GT(m.request_successes, 0);
}

TEST(Charisma, NoQueueClearsPoolEveryFrame) {
  CharismaProtocol proto(small_mixed(10, 5, /*queue=*/false));
  proto.run(2.0, 5.0);
  EXPECT_EQ(proto.pool_size(), 0u);
}

TEST(Charisma, CsiPollingActiveWithQueue) {
  auto params = small_mixed(40, 0, /*queue=*/true);
  CharismaProtocol proto(params);
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_GT(m.csi_polls, 0);
}

TEST(Charisma, CsiRefreshDisableIsHonored) {
  CharismaOptions options;
  options.enable_csi_refresh = false;
  CharismaProtocol proto(small_mixed(40, 0), options);
  const auto& m = proto.run(3.0, 8.0);
  EXPECT_EQ(m.csi_polls, 0);
}

TEST(Charisma, OutageChannelDropsNotErrors) {
  // In permanent outage CHARISMA never allocates (f(CSI) = 0, no usable
  // mode), so packets die by deadline, not by transmission error.
  CharismaProtocol proto(outage_channel(6, 0));
  const auto& m = proto.run(2.0, 6.0);
  EXPECT_GT(m.voice_generated, 200);
  EXPECT_EQ(m.voice_delivered, 0);
  EXPECT_EQ(m.voice_error_lost, 0);
  // Everything generated is dropped, modulo at most one in-flight packet
  // per user at the window edges.
  EXPECT_GE(m.voice_dropped_deadline, m.voice_generated - 6);
  EXPECT_LE(m.voice_dropped_deadline, m.voice_generated + 6);
  EXPECT_EQ(m.info_slots_assigned, 0);
}

TEST(Charisma, DeterministicGivenSeed) {
  CharismaProtocol a(small_mixed(15, 5, true, 77));
  CharismaProtocol b(small_mixed(15, 5, true, 77));
  const auto& ma = a.run(2.0, 5.0);
  const auto& mb = b.run(2.0, 5.0);
  EXPECT_EQ(ma.voice_generated, mb.voice_generated);
  EXPECT_EQ(ma.voice_delivered, mb.voice_delivered);
  EXPECT_EQ(ma.data_delivered, mb.data_delivered);
  EXPECT_EQ(ma.csi_polls, mb.csi_polls);
}

TEST(Charisma, QueueNeverIncreasesVoiceLoss) {
  CharismaProtocol with_queue(small_mixed(60, 0, true, 5));
  CharismaProtocol without(small_mixed(60, 0, false, 5));
  const auto& mq = with_queue.run(4.0, 10.0);
  const auto& mn = without.run(4.0, 10.0);
  EXPECT_LE(mq.voice_loss_rate(), mn.voice_loss_rate() + 5e-3);
}

TEST(Charisma, SlotAccountingConsistent) {
  CharismaProtocol proto(small_mixed(30, 10));
  const auto& m = proto.run(2.0, 5.0);
  EXPECT_LE(m.info_slots_assigned, m.info_slots_offered);
  EXPECT_LE(m.info_slots_wasted, m.info_slots_assigned);
  EXPECT_EQ(m.info_slots_offered, m.frames * 10);
}

TEST(Charisma, FairnessModeRuns) {
  CharismaOptions options;
  options.fairness = FairnessMode::kCapacityNormalized;
  CharismaProtocol proto(small_mixed(20, 5), options);
  const auto& m = proto.run(2.0, 5.0);
  EXPECT_GT(m.voice_delivered, 0);
}

TEST(Charisma, CapacityFairSchedulingImprovesJainIndex) {
  // The Sec. 6 / [22] extension, measured: in a cell with a 6 dB per-user
  // link-budget spread and a saturating data load, raw CSI ranking starves
  // the cell-edge users; capacity-normalized ranking must yield a more
  // even per-user delivery split.
  // Averaged over a few seeds: a single realization can be a near-tie
  // (the gamma_d waiting term already curbs starvation), but the fairness
  // ranking must win on average.
  double jain_raw = 0.0, jain_fair = 0.0;
  double tput_raw = 0.0, tput_fair = 0.0;
  for (std::uint64_t seed : {41, 42, 43}) {
    auto params = small_mixed(0, 30, true, seed);
    params.snr_spread_db = 6.0;
    params.mean_data_interarrival_s = 0.25;  // keep everyone backlogged

    CharismaOptions raw;
    CharismaOptions fair;
    fair.fairness = FairnessMode::kCapacityNormalized;

    CharismaProtocol a(params, raw);
    CharismaProtocol b(params, fair);
    const auto& ma = a.run(3.0, 10.0);
    const auto& mb = b.run(3.0, 10.0);
    jain_raw += ma.jain_fairness_index(0, 29);
    jain_fair += mb.jain_fairness_index(0, 29);
    tput_raw += ma.data_throughput_per_frame();
    tput_fair += mb.data_throughput_per_frame();
  }
  EXPECT_GT(jain_fair, jain_raw);
  // Fairness costs some aggregate throughput (serving below-average
  // channels), but not catastrophically.
  EXPECT_GT(tput_fair, 0.5 * tput_raw);
}

TEST(Charisma, SnrSpreadCreatesUnevenService) {
  // Sanity for the fairness premise itself: with spread and saturation,
  // raw CSI scheduling is measurably uneven.
  auto params = small_mixed(0, 30, true, 43);
  params.snr_spread_db = 6.0;
  params.mean_data_interarrival_s = 0.25;
  CharismaProtocol proto(params);
  const auto& m = proto.run(3.0, 10.0);
  // The gamma_d waiting term bounds the starvation, so the skew is
  // moderate — but measurably below even service.
  EXPECT_LT(m.jain_fairness_index(0, 29), 0.97);
}

TEST(Charisma, DataSlotCapRespected) {
  CharismaOptions options;
  options.max_slots_per_data_request = 1;
  CharismaProtocol proto(ideal_channel(0, 1), options);
  const auto& m = proto.run(2.0, 5.0);
  // One data user, one slot per frame, top mode carries 5 packets.
  EXPECT_LE(m.data_delivered, m.frames * 5);
  EXPECT_GT(m.data_delivered, 0);
}

TEST(Charisma, PriorityWeightsPlumbThrough) {
  // Zero voice offset with heavy data CSI weight must still deliver voice
  // (urgency term) — smoke-checks the option plumbing end to end.
  CharismaOptions options;
  options.priority.voice_offset = 0.0;
  options.priority.alpha_data = 3.0;
  CharismaProtocol proto(small_mixed(10, 10), options);
  const auto& m = proto.run(2.0, 5.0);
  EXPECT_GT(m.voice_delivered, 0);
  EXPECT_GT(m.data_delivered, 0);
}

TEST(Charisma, Name) {
  CharismaProtocol proto(small_mixed(1, 0));
  EXPECT_EQ(proto.name(), "CHARISMA");
}

}  // namespace
}  // namespace charisma::core
