#include "traffic/voice_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace charisma::traffic {
namespace {

constexpr double kFrame = 2.5e-3;

VoiceSourceConfig test_config() {
  VoiceSourceConfig cfg;
  cfg.mean_talkspurt_s = 1.0;
  cfg.mean_silence_s = 1.35;
  cfg.voice_period = 20e-3;
  cfg.deadline = 20e-3;
  return cfg;
}

TEST(VoiceSource, StartsSilent) {
  VoiceSource src(test_config(), common::RngStream(1));
  const auto update = src.on_frame(0.0);
  EXPECT_EQ(update.packets_generated, 0);
  EXPECT_FALSE(src.has_packet());
}

TEST(VoiceSource, ActivityFactorLongRun) {
  VoiceSource src(test_config(), common::RngStream(2));
  long talk_frames = 0;
  const long n = 400000;  // 1000 s
  for (long i = 0; i < n; ++i) {
    src.on_frame(static_cast<double>(i) * kFrame);
    if (src.in_talkspurt()) ++talk_frames;
  }
  EXPECT_NEAR(static_cast<double>(talk_frames) / static_cast<double>(n),
              1.0 / 2.35, 0.03);
}

TEST(VoiceSource, PacketEveryVoicePeriodDuringTalkspurt) {
  VoiceSource src(test_config(), common::RngStream(3));
  // Run until a talkspurt and count consecutive packet emissions.
  long packets = 0;
  double first_packet_time = -1.0, last_packet_time = -1.0;
  for (long i = 0; i < 200000 && packets < 20; ++i) {
    const double t = static_cast<double>(i) * kFrame;
    const auto update = src.on_frame(t);
    if (update.packets_generated > 0) {
      if (first_packet_time < 0.0) first_packet_time = t;
      last_packet_time = t;
      packets += update.packets_generated;
      if (src.has_packet()) src.consume_packet();
    }
  }
  ASSERT_GE(packets, 20);
  // Packet instants are multiples of the 20 ms period; observed at 2.5 ms
  // frame boundaries the spacing averages to one period across a talkspurt.
  EXPECT_GT(last_packet_time, first_packet_time);
}

TEST(VoiceSource, DeadlineIsOnePeriodAfterGeneration) {
  VoiceSource src(test_config(), common::RngStream(4));
  for (long i = 0; i < 200000; ++i) {
    const auto update = src.on_frame(static_cast<double>(i) * kFrame);
    if (update.packets_generated > 0) {
      EXPECT_NEAR(src.packet().deadline - src.packet().generated_at, 20e-3,
                  1e-12);
      return;
    }
  }
  FAIL() << "no packet generated";
}

TEST(VoiceSource, UnconsumedPacketsExpire) {
  VoiceSource src(test_config(), common::RngStream(5));
  long generated = 0, expired = 0;
  const long n = 200000;  // 500 s, never consume
  for (long i = 0; i < n; ++i) {
    const auto update = src.on_frame(static_cast<double>(i) * kFrame);
    generated += update.packets_generated;
    expired += update.packets_expired;
  }
  ASSERT_GT(generated, 1000);
  // Every packet except possibly the live one must have expired.
  EXPECT_GE(expired, generated - 1);
  EXPECT_LE(expired, generated);
}

TEST(VoiceSource, ConsumedPacketsDontExpire) {
  VoiceSource src(test_config(), common::RngStream(6));
  long expired = 0;
  for (long i = 0; i < 100000; ++i) {
    const auto update = src.on_frame(static_cast<double>(i) * kFrame);
    expired += update.packets_expired;
    if (src.has_packet()) src.consume_packet();
  }
  EXPECT_EQ(expired, 0);
}

TEST(VoiceSource, MeanTalkspurtDuration) {
  VoiceSource src(test_config(), common::RngStream(7));
  double talk_time = 0.0;
  long talkspurts = 0;
  bool was_talking = false;
  const long n = 1000000;
  for (long i = 0; i < n; ++i) {
    src.on_frame(static_cast<double>(i) * kFrame);
    if (src.in_talkspurt()) {
      talk_time += kFrame;
      if (!was_talking) ++talkspurts;
    }
    was_talking = src.in_talkspurt();
  }
  ASSERT_GT(talkspurts, 500);
  EXPECT_NEAR(talk_time / static_cast<double>(talkspurts), 1.0, 0.1);
}

TEST(VoiceSource, TalkspurtStartFlagFires) {
  VoiceSource src(test_config(), common::RngStream(8));
  long starts = 0;
  bool was_talking = false;
  long transitions = 0;
  for (long i = 0; i < 400000; ++i) {
    const auto update = src.on_frame(static_cast<double>(i) * kFrame);
    if (update.talkspurt_started) ++starts;
    if (!was_talking && src.in_talkspurt()) ++transitions;
    was_talking = src.in_talkspurt();
  }
  // A talkspurt shorter than one frame starts and ends inside a single
  // on_frame call: the flag fires but the external observer never sees the
  // state high, so starts can exceed observed transitions slightly.
  EXPECT_GE(starts, transitions);
  EXPECT_LE(starts, transitions + transitions / 10 + 5);
  EXPECT_GT(starts, 100);
}

TEST(VoiceSource, NextPacketAtAdvances) {
  VoiceSource src(test_config(), common::RngStream(9));
  for (long i = 0; i < 200000; ++i) {
    const auto update = src.on_frame(static_cast<double>(i) * kFrame);
    if (update.packets_generated > 0) {
      EXPECT_NEAR(src.next_packet_at() - src.packet().generated_at, 20e-3,
                  1e-12);
      return;
    }
  }
  FAIL() << "no packet generated";
}

TEST(VoiceSource, Deterministic) {
  VoiceSource a(test_config(), common::RngStream(10));
  VoiceSource b(test_config(), common::RngStream(10));
  for (long i = 0; i < 50000; ++i) {
    const double t = static_cast<double>(i) * kFrame;
    const auto ua = a.on_frame(t);
    const auto ub = b.on_frame(t);
    ASSERT_EQ(ua.packets_generated, ub.packets_generated);
    ASSERT_EQ(a.in_talkspurt(), b.in_talkspurt());
  }
}

TEST(VoiceSource, InvalidConfig) {
  auto cfg = test_config();
  cfg.mean_talkspurt_s = 0.0;
  EXPECT_THROW(VoiceSource(cfg, common::RngStream(1)), std::invalid_argument);
  cfg = test_config();
  cfg.voice_period = 0.0;
  EXPECT_THROW(VoiceSource(cfg, common::RngStream(1)), std::invalid_argument);
}

TEST(VoiceSource, RejectsNonPositiveRateScale) {
  // A scale <= 0 would turn the divided exponential means into inf/NaN
  // toggle times, silently freezing the on/off chain. The source is the
  // last line of defense behind traffic::validate_or_throw at the config
  // parse layer — both must reject.
  VoiceSource src(test_config(), common::RngStream(12));
  EXPECT_THROW(src.set_rate_scale(0.0), std::invalid_argument);
  EXPECT_THROW(src.set_rate_scale(-1.0), std::invalid_argument);
  EXPECT_THROW(src.set_rate_scale(std::nan("")), std::invalid_argument);
  // A rejected call leaves the previous scale in force.
  src.set_rate_scale(2.0);
  EXPECT_THROW(src.set_rate_scale(-3.0), std::invalid_argument);
  VoiceSource ref(test_config(), common::RngStream(12));
  ref.set_rate_scale(2.0);
  for (long i = 0; i < 20000; ++i) {
    const double t = static_cast<double>(i) * kFrame;
    ASSERT_EQ(src.on_frame(t).packets_generated,
              ref.on_frame(t).packets_generated);
  }
}

TEST(VoiceSource, LongGapBetweenCallsReplaysEverything) {
  // Calling after a long gap (a variable-length RMAV frame) must process
  // all interim events, not lose them.
  VoiceSource a(test_config(), common::RngStream(11));
  VoiceSource b(test_config(), common::RngStream(11));
  long gen_a = 0, exp_a = 0, gen_b = 0, exp_b = 0;
  for (long i = 0; i < 40000; ++i) {  // 100 s at fine steps
    const auto u = a.on_frame(static_cast<double>(i) * kFrame);
    gen_a += u.packets_generated;
    exp_a += u.packets_expired;
  }
  for (long i = 0; i < 1000; ++i) {  // same horizon, 100 ms steps
    const auto u = b.on_frame(static_cast<double>(i) * 0.1);
    gen_b += u.packets_generated;
    exp_b += u.packets_expired;
  }
  // Land both sources on the identical final instant.
  {
    const auto ua = a.on_frame(100.0);
    gen_a += ua.packets_generated;
    exp_a += ua.packets_expired;
    const auto ub = b.on_frame(100.0);
    gen_b += ub.packets_generated;
    exp_b += ub.packets_expired;
  }
  // Same RNG stream, same state machine: identical totals.
  EXPECT_EQ(gen_a, gen_b);
  EXPECT_EQ(exp_a, exp_b);
}

}  // namespace
}  // namespace charisma::traffic
