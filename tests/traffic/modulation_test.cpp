// rate_scale() behavior pins plus the validate_or_throw contract the
// charisma_sim flash=/diurnal= parse layer relies on: every rejection
// names the CLI knob and the offending field, so a bad value fails at
// startup with an actionable message instead of freezing a source's
// toggle chain at inf/NaN mid-run.
#include "traffic/modulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

namespace charisma::traffic {
namespace {

TrafficModulationConfig flash_config() {
  TrafficModulationConfig cfg;
  cfg.kind = TrafficModulationConfig::Kind::kFlashCrowd;
  cfg.epicenter_x_m = 100.0;
  cfg.epicenter_y_m = 200.0;
  cfg.radius_m = 50.0;
  cfg.rate_multiplier = 4.0;
  cfg.start = 1.0;
  cfg.end = 2.0;
  return cfg;
}

TrafficModulationConfig diurnal_config() {
  TrafficModulationConfig cfg;
  cfg.kind = TrafficModulationConfig::Kind::kDiurnal;
  cfg.amplitude = 0.5;
  cfg.period_s = 60.0;
  cfg.wavelength_m = 2000.0;
  return cfg;
}

/// The invalid_argument message produced by `fn`, or "" if it didn't throw.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(TrafficModulation, NoneIsAlwaysUnity) {
  TrafficModulationConfig cfg;
  EXPECT_EQ(rate_scale(cfg, 0.0, 0.0, 0.0), 1.0);
  EXPECT_EQ(rate_scale(cfg, 1e6, -500.0, 42.0), 1.0);
  EXPECT_NO_THROW(validate_or_throw(cfg, "flash"));
}

TEST(TrafficModulation, FlashCrowdScalesInsideDiskDuringWindow) {
  const auto cfg = flash_config();
  // Inside the disk, inside [start, end): scaled.
  EXPECT_EQ(rate_scale(cfg, 1.5, 100.0, 200.0), 4.0);
  EXPECT_EQ(rate_scale(cfg, 1.5, 100.0 + 49.9, 200.0), 4.0);
  // Outside the disk or outside the window: nominal.
  EXPECT_EQ(rate_scale(cfg, 1.5, 100.0 + 50.1, 200.0), 1.0);
  EXPECT_EQ(rate_scale(cfg, 0.5, 100.0, 200.0), 1.0);   // before start
  EXPECT_EQ(rate_scale(cfg, 2.0, 100.0, 200.0), 1.0);   // end is exclusive
}

TEST(TrafficModulation, DiurnalSwingsWithinAmplitudeAndStaysPositive) {
  const auto cfg = diurnal_config();
  double lo = 1e9, hi = -1e9;
  for (double t = 0.0; t < 2.0 * cfg.period_s; t += 0.25) {
    for (double x : {0.0, 500.0, 1000.0, 2000.0}) {
      const double s = rate_scale(cfg, t, x, 0.0);
      EXPECT_GT(s, 0.0);  // the positivity contract behind [0, 1) amplitude
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
  }
  EXPECT_NEAR(lo, 1.0 - cfg.amplitude, 0.02);
  EXPECT_NEAR(hi, 1.0 + cfg.amplitude, 0.02);
}

TEST(TrafficModulation, ValidConfigsPassValidateOrThrow) {
  EXPECT_NO_THROW(validate_or_throw(flash_config(), "flash"));
  EXPECT_NO_THROW(validate_or_throw(diurnal_config(), "diurnal"));
}

TEST(TrafficModulation, FlashRejectionsNameTheKnobAndField) {
  auto cfg = flash_config();
  cfg.rate_multiplier = 0.0;
  std::string msg =
      thrown_message([&] { validate_or_throw(cfg, "flash"); });
  EXPECT_NE(msg.find("flash"), std::string::npos) << msg;
  EXPECT_NE(msg.find("multiplier"), std::string::npos) << msg;

  cfg = flash_config();
  cfg.rate_multiplier = -2.0;
  EXPECT_THROW(validate_or_throw(cfg, "flash"), std::invalid_argument);

  cfg = flash_config();
  cfg.radius_m = 0.0;
  msg = thrown_message([&] { validate_or_throw(cfg, "flash"); });
  EXPECT_NE(msg.find("radius"), std::string::npos) << msg;

  cfg = flash_config();
  cfg.end = cfg.start - 0.5;
  msg = thrown_message([&] { validate_or_throw(cfg, "flash"); });
  EXPECT_NE(msg.find("end"), std::string::npos) << msg;
}

TEST(TrafficModulation, DiurnalRejectionsNameTheKnobAndField) {
  auto cfg = diurnal_config();
  cfg.amplitude = 1.0;  // trough would hit exactly zero
  std::string msg =
      thrown_message([&] { validate_or_throw(cfg, "diurnal"); });
  EXPECT_NE(msg.find("diurnal"), std::string::npos) << msg;
  EXPECT_NE(msg.find("amplitude"), std::string::npos) << msg;

  cfg = diurnal_config();
  cfg.amplitude = -0.1;
  EXPECT_THROW(validate_or_throw(cfg, "diurnal"), std::invalid_argument);

  cfg = diurnal_config();
  cfg.period_s = 0.0;
  msg = thrown_message([&] { validate_or_throw(cfg, "diurnal"); });
  EXPECT_NE(msg.find("period"), std::string::npos) << msg;

  cfg = diurnal_config();
  cfg.wavelength_m = -100.0;
  msg = thrown_message([&] { validate_or_throw(cfg, "diurnal"); });
  EXPECT_NE(msg.find("wavelength"), std::string::npos) << msg;
}

TEST(TrafficModulation, ValidateAgreesWithValid) {
  // validate_or_throw is valid()'s verbose twin — they must never diverge
  // on the accept/reject decision.
  for (auto make : {flash_config, diurnal_config}) {
    auto cfg = make();
    EXPECT_TRUE(cfg.valid());
    EXPECT_NO_THROW(validate_or_throw(cfg, "k"));
  }
  auto cfg = flash_config();
  cfg.rate_multiplier = 0.0;
  EXPECT_FALSE(cfg.valid());
  EXPECT_THROW(validate_or_throw(cfg, "k"), std::invalid_argument);
  cfg = diurnal_config();
  cfg.amplitude = 2.0;
  EXPECT_FALSE(cfg.valid());
  EXPECT_THROW(validate_or_throw(cfg, "k"), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::traffic
