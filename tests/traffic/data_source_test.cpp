#include "traffic/data_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace charisma::traffic {
namespace {

constexpr double kFrame = 2.5e-3;

DataSourceConfig test_config() {
  DataSourceConfig cfg;
  cfg.mean_interarrival_s = 1.0;
  cfg.mean_burst_packets = 100.0;
  cfg.frame_duration = kFrame;
  return cfg;
}

TEST(DataSource, StartsEmpty) {
  DataSource src(test_config(), common::RngStream(1));
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(src.backlog(), 0);
}

TEST(DataSource, BurstRateMatchesInterarrival) {
  DataSource src(test_config(), common::RngStream(2));
  long bursts = 0;
  const double horizon = 2000.0;
  for (double t = 0.0; t < horizon; t += 0.1) {
    bursts += src.on_frame(t).bursts_arrived;
  }
  EXPECT_NEAR(static_cast<double>(bursts) / horizon, 1.0, 0.05);
}

TEST(DataSource, MeanBurstSize) {
  DataSource src(test_config(), common::RngStream(3));
  long bursts = 0, packets = 0;
  for (double t = 0.0; t < 3000.0; t += 0.1) {
    const auto u = src.on_frame(t);
    bursts += u.bursts_arrived;
    packets += u.packets_arrived;
  }
  ASSERT_GT(bursts, 1000);
  EXPECT_NEAR(static_cast<double>(packets) / static_cast<double>(bursts),
              100.0, 5.0);
}

TEST(DataSource, PacketsStampedAtFrameBoundary) {
  DataSource src(test_config(), common::RngStream(4));
  for (long i = 0; i < 100000; ++i) {
    const double t = static_cast<double>(i) * kFrame;
    const auto u = src.on_frame(t);
    if (u.packets_arrived > 0) {
      EXPECT_DOUBLE_EQ(src.head_arrival(), t);
      return;
    }
  }
  FAIL() << "no burst arrived";
}

TEST(DataSource, PopHeadFifo) {
  DataSource src(test_config(), common::RngStream(5));
  double t = 0.0;
  while (src.backlog() < 2) {
    t += kFrame;
    src.on_frame(t);
  }
  const int before = src.backlog();
  const double head = src.head_arrival();
  src.pop_head();
  EXPECT_EQ(src.backlog(), before - 1);
  // Same-burst packets share the arrival stamp.
  EXPECT_DOUBLE_EQ(src.head_arrival(), head);
}

TEST(DataSource, PopEmptyThrows) {
  DataSource src(test_config(), common::RngStream(6));
  EXPECT_THROW(src.pop_head(), std::logic_error);
}

TEST(DataSource, PushFrontPreservesOrder) {
  DataSource src(test_config(), common::RngStream(7));
  double t = 0.0;
  while (src.backlog() < 3) {
    t += kFrame;
    src.on_frame(t);
  }
  const double a = src.head_arrival();
  src.pop_head();
  const double b = src.head_arrival();
  src.pop_head();
  // ARQ: the two failed packets return to the head in original order.
  const double failed[] = {a, b};
  src.push_front(failed);
  EXPECT_DOUBLE_EQ(src.head_arrival(), a);
  src.pop_head();
  EXPECT_DOUBLE_EQ(src.head_arrival(), b);
}

TEST(DataSource, GeneratedCounter) {
  DataSource src(test_config(), common::RngStream(8));
  long counted = 0;
  for (double t = 0.0; t < 100.0; t += 0.1) {
    counted += src.on_frame(t).packets_arrived;
  }
  EXPECT_EQ(src.packets_generated(), counted);
}

TEST(DataSource, Deterministic) {
  DataSource a(test_config(), common::RngStream(9));
  DataSource b(test_config(), common::RngStream(9));
  for (double t = 0.0; t < 200.0; t += 0.5) {
    EXPECT_EQ(a.on_frame(t).packets_arrived, b.on_frame(t).packets_arrived);
  }
}

TEST(DataSource, InvalidConfig) {
  auto cfg = test_config();
  cfg.mean_interarrival_s = 0.0;
  EXPECT_THROW(DataSource(cfg, common::RngStream(1)), std::invalid_argument);
  cfg = test_config();
  cfg.mean_burst_packets = 0.5;
  EXPECT_THROW(DataSource(cfg, common::RngStream(1)), std::invalid_argument);
}

TEST(DataSource, RejectsNonPositiveRateScale) {
  // Mirror of VoiceSource.RejectsNonPositiveRateScale: a scale <= 0 would
  // make next_gap's divided mean inf/NaN, so the setter throws and keeps
  // the previous scale.
  DataSource src(test_config(), common::RngStream(11));
  EXPECT_THROW(src.set_rate_scale(0.0), std::invalid_argument);
  EXPECT_THROW(src.set_rate_scale(-0.5), std::invalid_argument);
  EXPECT_THROW(src.set_rate_scale(std::nan("")), std::invalid_argument);
  src.set_rate_scale(3.0);
  EXPECT_THROW(src.set_rate_scale(0.0), std::invalid_argument);
  DataSource ref(test_config(), common::RngStream(11));
  ref.set_rate_scale(3.0);
  for (double t = 0.0; t < 100.0; t += 0.1) {
    ASSERT_EQ(src.on_frame(t).packets_arrived, ref.on_frame(t).packets_arrived);
  }
}

TEST(DataSource, BurstsAreAtLeastOnePacket) {
  auto cfg = test_config();
  cfg.mean_burst_packets = 1.0;  // tiny bursts still >= 1
  DataSource src(cfg, common::RngStream(10));
  long bursts = 0, packets = 0;
  for (double t = 0.0; t < 500.0; t += 0.1) {
    const auto u = src.on_frame(t);
    bursts += u.bursts_arrived;
    packets += u.packets_arrived;
  }
  EXPECT_GE(packets, bursts);
}

}  // namespace
}  // namespace charisma::traffic
