#include "common/table.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

namespace charisma::common {
namespace {

TEST(TextTable, FormatsTitleHeaderAndRows) {
  TextTable table("My Table");
  table.set_header({"x", "value"});
  table.add_row({"1", "10.5"});
  table.add_row({"2", "20.25"});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("== My Table =="), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("20.25"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, SciFormatting) {
  const std::string s = TextTable::sci(0.00123, 2);
  EXPECT_NE(s.find("1.23e"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table("t");
  table.set_header({"a", "bbbb"});
  table.add_row({"xxxxx", "y"});
  std::ostringstream os;
  table.print(os);
  // Each data line must be the same length (column alignment).
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);
  const auto header_len = line.size();
  std::getline(in, line);  // separator
  std::getline(in, line);
  EXPECT_EQ(line.size(), header_len);
}

TEST(TextTable, WritesCsv) {
  TextTable table("t");
  table.set_header({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  const std::string path = ::testing::TempDir() + "/charisma_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(TextTable, CsvFailsOnBadPath) {
  TextTable table("t");
  EXPECT_FALSE(table.write_csv("/nonexistent_dir_zz/file.csv"));
}

}  // namespace
}  // namespace charisma::common
