#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(Accumulator, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, HandValues) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

class AccumulatorMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorMergeTest, MergeMatchesSequential) {
  const int split = GetParam();
  const std::vector<double> data = {1.5, -2.0, 3.25, 0.0, 7.75,
                                    -1.25, 4.0, 2.5, 6.0, -3.5};
  Accumulator whole;
  for (double x : data) whole.add(x);

  Accumulator a, b;
  for (int i = 0; i < static_cast<int>(data.size()); ++i) {
    (i < split ? a : b).add(data[static_cast<std::size_t>(i)]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, AccumulatorMergeTest,
                         ::testing::Values(0, 1, 3, 5, 9, 10));

TEST(Accumulator, MergeEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.add(2.0);
  Accumulator a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RatioCounter, Basics) {
  RatioCounter rc;
  EXPECT_DOUBLE_EQ(rc.ratio(), 0.0);
  rc.add(true);
  rc.add(false);
  rc.add(true);
  rc.add(true);
  EXPECT_EQ(rc.successes(), 3);
  EXPECT_EQ(rc.failures(), 1);
  EXPECT_DOUBLE_EQ(rc.ratio(), 0.75);
  EXPECT_DOUBLE_EQ(rc.complement(), 0.25);
}

TEST(RatioCounter, AddManyAndMerge) {
  RatioCounter a, b;
  a.add_many(10, 100);
  b.add_many(5, 50);
  a.merge(b);
  EXPECT_EQ(a.trials(), 150);
  EXPECT_DOUBLE_EQ(a.ratio(), 0.1);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.bin_count(0), 10);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 0.2);
}

TEST(Histogram, OutOfRangeGoesToTailsNotEdgeBins) {
  // Regression: add() used to clamp out-of-range samples into the edge
  // bins, silently biasing the tail quantiles.
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  h.add(1.0);  // hi is exclusive: counts as overflow
  EXPECT_EQ(h.bin_count(0), 0);
  EXPECT_EQ(h.bin_count(3), 0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.clipped_fraction(), 1.0);
}

TEST(Histogram, QuantileAccountsForClippedMass) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(-1.0);  // underflow
  for (int i = 0; i < 10; ++i) h.add(0.55);  // in-range
  for (int i = 0; i < 10; ++i) h.add(7.0);   // overflow
  EXPECT_EQ(h.count(), 30);
  // Ranks inside the underflow tail can only be bounded by lo...
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 0.0);
  // ...the median falls in the in-range bin...
  EXPECT_NEAR(h.quantile(0.5), 0.55, 0.1);
  // ...and ranks beyond the in-range mass report hi, not the last bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 1.0);
  // Old clamping behaviour would have put the 95th percentile inside the
  // top bin (< 1.0) and the 20th inside the bottom one (> 0 width offset);
  // both were lies about data the range never covered.
}

TEST(Histogram, MergeCompatibility) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4), c(0.0, 2.0, 4);
  a.add(0.1);
  b.add(0.9);
  b.add(-3.0);
  b.add(42.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.underflow(), 1);
  EXPECT_EQ(a.overflow(), 1);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Confidence, HalfWidthShrinksWithSamples) {
  Accumulator small, large;
  RatioCounter dummy;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(confidence_half_width(small), confidence_half_width(large));
  EXPECT_GT(confidence_half_width(small), 0.0);
}

TEST(Confidence, ZeroForTinySamples) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(confidence_half_width(acc), 0.0);
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(confidence_half_width(acc), 0.0);
}

TEST(Confidence, WilsonIntervalSanity) {
  RatioCounter rc;
  rc.add_many(10, 1000);  // p-hat = 1%
  const double hw = proportion_half_width(rc, 0.95);
  EXPECT_GT(hw, 0.001);
  EXPECT_LT(hw, 0.02);
  RatioCounter empty;
  EXPECT_DOUBLE_EQ(proportion_half_width(empty), 0.0);
}

TEST(Confidence, HigherConfidenceWiderInterval) {
  Accumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(static_cast<double>(i % 7));
  EXPECT_GT(confidence_half_width(acc, 0.99), confidence_half_width(acc, 0.90));
}

}  // namespace
}  // namespace charisma::common
