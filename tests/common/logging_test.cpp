#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace charisma::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, OffByDefaultBlocksEverything) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
}

TEST_F(LoggingTest, LevelGating) {
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
}

TEST_F(LoggingTest, RoundTripLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacroCompilesAndRespectsLevel) {
  set_log_level(LogLevel::kWarn);
  // Should not crash; the debug line's operands must not be evaluated when
  // disabled (we use a counter to verify).
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  CHARISMA_LOG(LogLevel::kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  CHARISMA_LOG(LogLevel::kWarn) << count();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace charisma::common
