#include "common/rng.hpp"

#include <cmath>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(RngSeed, SameInputsSameSeed) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(RngSeed, DifferentStreamsDiffer) {
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

TEST(RngStream, Deterministic) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DifferentSeedsDiverge) {
  RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStream, UniformBounds) {
  RngStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformRangeMean) {
  RngStream rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 6.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngStream, UniformIntCoversRange) {
  RngStream rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(5))];
  for (int c : counts) EXPECT_GT(c, 800);
  EXPECT_THROW(rng.uniform_int(0), std::domain_error);
}

TEST(RngStream, BernoulliEdges) {
  RngStream rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngStream, BernoulliRate) {
  RngStream rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngStream, ExponentialMoments) {
  RngStream rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.35);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.35, 0.02);
  EXPECT_NEAR(var, 1.35 * 1.35, 0.08);
  EXPECT_THROW(rng.exponential(0.0), std::domain_error);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.03);
}

TEST(RngStream, RayleighMeanSquare) {
  RngStream rng(23);
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.rayleigh_amplitude(2.5);
    EXPECT_GE(x, 0.0);
    sum2 += x * x;
  }
  EXPECT_NEAR(sum2 / n, 2.5, 0.05);
  EXPECT_THROW(rng.rayleigh_amplitude(0.0), std::domain_error);
}

TEST(RngStream, LognormalDbMedian) {
  RngStream rng(29);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal_db(3.0, 8.0) < std::pow(10.0, 0.3)) ++below;
  }
  // Median of the linear value is 10^(mean_db/10).
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngStream, PoissonMean) {
  RngStream rng(31);
  long sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.2);
  EXPECT_NEAR(static_cast<double>(sum) / n, 4.2, 0.05);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::domain_error);
}

// ---- Seed-pinned regression sequences ----
// The distribution layer is implemented in-house precisely so these exact
// sequences cannot change under a stdlib upgrade. If an edit to rng.cpp is
// *meant* to change results, regenerate these constants and say so in the
// commit — a silent change here invalidates every recorded benchmark.

TEST(RngStreamPinned, UniformSequence) {
  RngStream rng(12345);
  const double expected[] = {
      0.35762972288842587, 0.40044261704406114, 0.68938331700276845,
      0.55973557064111557, 0.57445129399171091, 0.2076905268617546,
  };
  for (double e : expected) EXPECT_DOUBLE_EQ(rng.uniform(), e);
}

TEST(RngStreamPinned, NormalSequence) {
  RngStream rng(12345);
  const double expected[] = {
      -1.162514705917397,   0.83968672813474454, -0.8024637068257271,
      -0.31617660920967344, 0.27662613610176873, 1.0159517267301623,
  };
  // Box-Muller goes through libm (log/sqrt/sin/cos), so allow a few ulp of
  // cross-platform slack while still pinning the realization.
  for (double e : expected) EXPECT_NEAR(rng.normal(), e, 1e-12);
}

TEST(RngStreamPinned, UniformIntSequence) {
  RngStream rng(12345);
  const int expected[] = {34, 38, 66, 54, 55, 20, 2, 66};
  for (int e : expected) EXPECT_EQ(rng.uniform_int(97), e);
}

TEST(RngStreamPinned, PoissonSequences) {
  {
    RngStream rng(12345);  // Knuth path
    const int expected[] = {5, 2, 1, 0, 5, 2, 6, 7};
    for (int e : expected) EXPECT_EQ(rng.poisson(4.2), e);
  }
  {
    RngStream rng(12345);  // PTRS path
    const int expected[] = {37, 44, 41, 39, 38, 49, 35, 31};
    for (int e : expected) EXPECT_EQ(rng.poisson(40.0), e);
  }
}

TEST(RngStreamPinned, ExponentialSequence) {
  RngStream rng(12345);
  const double expected[] = {
      2.0565142428798442, 1.8303696020620406,
      0.74391564898381302, 1.1605816041119292,
  };
  for (double e : expected) EXPECT_NEAR(rng.exponential(2.0), e, 1e-12);
}

// ---- Statistical checks of the in-house algorithm branches ----

TEST(RngStream, NormalFastMomentsAndTails) {
  // The ziggurat generator must match N(0,1) in moments and in the deep
  // tail (where the wedge/tail rejection branches do the work).
  RngStream rng(53);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  int beyond_2 = 0, beyond_3 = 0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal_fast();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
    if (std::fabs(x) > 2.0) ++beyond_2;
    if (std::fabs(x) > 3.0) ++beyond_3;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(sum2 / n, 1.0, 0.01);
  EXPECT_NEAR(sum3 / n, 0.0, 0.02);
  EXPECT_NEAR(sum4 / n, 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(beyond_2) / n, 0.0455, 0.002);
  EXPECT_NEAR(static_cast<double>(beyond_3) / n, 0.0027, 0.0005);
}

TEST(RngStream, PoissonLargeMeanMoments) {
  // Exercises the PTRS rejection branch (mean >= 10).
  RngStream rng(37);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.poisson(30.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 30.0, 0.1);
  EXPECT_NEAR(sum2 / n - mean * mean, 30.0, 0.5);
}

TEST(RngStream, UniformIntLargeRangeUnbiased) {
  RngStream rng(41);
  const int n = 200000;
  double sum = 0.0;
  int lo_hits = 0, hi_hits = 0;
  for (int i = 0; i < n; ++i) {
    const int v = rng.uniform_int(1000);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    sum += v;
    if (v < 100) ++lo_hits;
    if (v >= 900) ++hi_hits;
  }
  EXPECT_NEAR(sum / n, 499.5, 2.5);
  EXPECT_NEAR(static_cast<double>(lo_hits) / n, 0.1, 0.005);
  EXPECT_NEAR(static_cast<double>(hi_hits) / n, 0.1, 0.005);
}

TEST(RngStream, NormalSpareKeepsMomentsUnderInterleaving) {
  // Interleaving other draws between normal() calls must not corrupt the
  // cached Box-Muller spare.
  RngStream rng(43);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    (void)rng.uniform();  // perturb the engine between pair halves
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngStream, TwoArgConstructorMatchesDerivedSeed) {
  RngStream a(derive_seed(10, 20));
  RngStream b(10, 20);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

// ---- RngStream::engine() spare invalidation (regression) ----
// engine() hands out the raw mt19937_64; any external draw moves the
// cursor, so a cached Box-Muller spare (computed from *earlier* cursor
// positions) must be dropped or the next normal() silently returns a
// variate that no replay of the raw stream can reproduce.

TEST(RngStream, EngineAccessInvalidatesBoxMullerSpare) {
  RngStream a(77);
  (void)a.normal();    // consumes 2 draws, caches the sin-variate spare
  (void)a.engine()();  // external draw: cursor moves, spare must die
  const double after_external = a.normal();

  // Reference stream replaying the identical raw-draw history with no
  // spare ever cached: 2 draws (the pair above) + 1 external draw, then a
  // fresh Box-Muller pair from the same cursor position.
  RngStream ref(77);
  (void)ref.engine()();
  (void)ref.engine()();
  (void)ref.engine()();
  EXPECT_DOUBLE_EQ(after_external, ref.normal());
}

TEST(RngStream, EngineAccessAloneDoesNotPerturbSequence) {
  // Touching engine() without drawing must not change what comes next
  // beyond dropping the spare: interleave accesses that draw nothing.
  RngStream a(78), b(78);
  (void)a.engine();  // no draw, no spare yet: a no-op
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngStream, InterleavedEngineDrawsAndNormalsStayReproducible) {
  // The full interleaving: every normal() between engine() draws must be
  // derivable from the raw stream alone (count the draws), for several
  // rounds. Two identical streams run the same interleaving and a third
  // checks the draw accounting: 3 raw draws per round (1 external + 2
  // Box-Muller).
  RngStream a(79), b(79), raw(79);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(a.engine()(), b.engine()());
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    for (int d = 0; d < 3; ++d) (void)raw.engine()();
  }
  // After 5 rounds all three cursors agree.
  EXPECT_EQ(a.engine()(), raw.engine()());
}

// ---- CompactRngStream ----

TEST(CompactRngStream, Deterministic) {
  CompactRngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(CompactRngStream, TwoArgConstructorMatchesDerivedSeed) {
  CompactRngStream a(derive_seed(10, 20));
  CompactRngStream b(10, 20);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(CompactRngStream, MatchesSplitMix64RawStream) {
  // The raw bit source is exactly the repo's SplitMix64 (the ChannelBank
  // lane kernel advances the same chain in flat arrays).
  CompactRngStream a(9001);
  SplitMix64 b(9001);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(CompactRngStream, UniformAdvancesCounterByOneGamma) {
  CompactRngStream rng(5);
  const std::uint64_t before = rng.raw_state();
  (void)rng.uniform();
  EXPECT_EQ(rng.raw_state(), before + detail::kSplitMixGamma);
}

// Seed-pinned compact sequences, locked the same way RngStreamPinned locks
// the mt19937_64 realizations: these exact values cannot change without a
// deliberate regeneration (which invalidates every compact-mode benchmark
// recorded so far).

TEST(CompactRngStreamPinned, RawSequence) {
  CompactRngStream rng(12345);
  const std::uint64_t expected[] = {
      2454886589211414944ULL,
      3778200017661327597ULL,
      2205171434679333405ULL,
      3248800117070709450ULL,
  };
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next(), e);
}

TEST(CompactRngStreamPinned, UniformSequence) {
  CompactRngStream rng(12345);
  const double expected[] = {
      0.13307966866142729, 0.20481663336165912, 0.11954258300911547,
      0.17611780724496118, 0.50688021550745599, 0.33703454463939386,
  };
  for (double e : expected) EXPECT_DOUBLE_EQ(rng.uniform(), e);
}

TEST(CompactRngStreamPinned, NormalSequence) {
  CompactRngStream rng(12345);
  const double expected[] = {
      0.56254351858757046, 1.9279936267801183,  0.9228021975298103,
      1.8429870753916224,  -0.60619054616879076, 0.99573799314816358,
  };
  // Box-Muller goes through libm (log/sqrt/sin/cos), so allow a few ulp of
  // cross-platform slack while still pinning the realization.
  for (double e : expected) EXPECT_NEAR(rng.normal(), e, 1e-12);
}

TEST(CompactRngStreamPinned, UniformIntSequence) {
  CompactRngStream rng(12345);
  const int expected[] = {12, 19, 11, 17, 49, 32, 11, 41};
  for (int e : expected) EXPECT_EQ(rng.uniform_int(97), e);
}

TEST(CompactRngStreamPinned, PoissonSequences) {
  {
    CompactRngStream rng(12345);  // Knuth path
    const int expected[] = {2, 3, 4, 8, 2, 2, 2, 5};
    for (int e : expected) EXPECT_EQ(rng.poisson(4.2), e);
  }
  {
    CompactRngStream rng(12345);  // PTRS path
    const int expected[] = {32, 31, 40, 31, 40, 33, 46, 46};
    for (int e : expected) EXPECT_EQ(rng.poisson(40.0), e);
  }
}

TEST(CompactRngStreamPinned, ExponentialSequence) {
  CompactRngStream rng(12345);
  const double expected[] = {
      4.0336146352096369, 3.1712803430570555,
      4.2481652558264136, 3.4732042970373307,
  };
  for (double e : expected) EXPECT_NEAR(rng.exponential(2.0), e, 1e-12);
}

// ---- Distribution equivalence: CompactRngStream vs RngStream ----
// Both generators run the *same* distribution algorithms (rng.cpp
// instantiates one template layer for both); only the raw bit source
// differs. Moments at fixed N must therefore agree within sampling error
// — computed on both streams and compared to each other as well as to the
// analytic values.

struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

template <typename Rng, typename Draw>
Moments moments_of(Rng& rng, int n, Draw draw) {
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = draw(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  return {mean, sum2 / n - mean * mean};
}

TEST(CompactVsMt, UniformMoments) {
  constexpr int kN = 400000;
  RngStream mt(101);
  CompactRngStream compact(101);
  const auto draw = [](auto& r) { return r.uniform(); };
  const Moments a = moments_of(mt, kN, draw);
  const Moments b = moments_of(compact, kN, draw);
  EXPECT_NEAR(a.mean, 0.5, 0.002);
  EXPECT_NEAR(b.mean, 0.5, 0.002);
  EXPECT_NEAR(a.var, 1.0 / 12.0, 0.001);
  EXPECT_NEAR(b.var, 1.0 / 12.0, 0.001);
  EXPECT_NEAR(a.mean, b.mean, 0.004);
}

TEST(CompactVsMt, ExponentialMoments) {
  constexpr int kN = 400000;
  RngStream mt(103);
  CompactRngStream compact(103);
  const auto draw = [](auto& r) { return r.exponential(1.35); };
  const Moments a = moments_of(mt, kN, draw);
  const Moments b = moments_of(compact, kN, draw);
  EXPECT_NEAR(a.mean, 1.35, 0.01);
  EXPECT_NEAR(b.mean, 1.35, 0.01);
  EXPECT_NEAR(a.var, 1.35 * 1.35, 0.05);
  EXPECT_NEAR(b.var, 1.35 * 1.35, 0.05);
}

TEST(CompactVsMt, NormalMomentsAndTails) {
  constexpr int kN = 1000000;
  RngStream mt(107);
  CompactRngStream compact(107);
  const auto tails = [](auto& rng) {
    double sum = 0.0, sum2 = 0.0;
    int beyond_2 = 0;
    for (int i = 0; i < kN; ++i) {
      const double x = rng.normal();
      sum += x;
      sum2 += x * x;
      if (std::fabs(x) > 2.0) ++beyond_2;
    }
    return std::tuple{sum / kN, sum2 / kN, beyond_2 / static_cast<double>(kN)};
  };
  const auto [m_mean, m_m2, m_tail] = tails(mt);
  const auto [c_mean, c_m2, c_tail] = tails(compact);
  EXPECT_NEAR(m_mean, 0.0, 0.005);
  EXPECT_NEAR(c_mean, 0.0, 0.005);
  EXPECT_NEAR(m_m2, 1.0, 0.01);
  EXPECT_NEAR(c_m2, 1.0, 0.01);
  EXPECT_NEAR(m_tail, 0.0455, 0.002);
  EXPECT_NEAR(c_tail, 0.0455, 0.002);
}

TEST(CompactVsMt, NormalFastMomentsAndTails) {
  // The ziggurat path over the splitmix64 source (wedge + tail rejection
  // included).
  constexpr int kN = 1000000;
  CompactRngStream compact(109);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  int beyond_3 = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = compact.normal_fast();
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
    if (std::fabs(x) > 3.0) ++beyond_3;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.005);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.01);
  EXPECT_NEAR(sum4 / kN, 3.0, 0.05);
  EXPECT_NEAR(beyond_3 / static_cast<double>(kN), 0.0027, 0.0005);
}

TEST(CompactVsMt, BernoulliRate) {
  constexpr int kN = 200000;
  RngStream mt(113);
  CompactRngStream compact(113);
  int a = 0, b = 0;
  for (int i = 0; i < kN; ++i) {
    a += mt.bernoulli(0.3);
    b += compact.bernoulli(0.3);
  }
  EXPECT_NEAR(a / static_cast<double>(kN), 0.3, 0.005);
  EXPECT_NEAR(b / static_cast<double>(kN), 0.3, 0.005);
}

TEST(CompactVsMt, UniformIntMeanAndCoverage) {
  constexpr int kN = 200000;
  RngStream mt(127);
  CompactRngStream compact(127);
  const auto stats = [](auto& rng) {
    double sum = 0.0;
    int lo = 0;
    for (int i = 0; i < kN; ++i) {
      const int v = rng.uniform_int(1000);
      sum += v;
      if (v < 100) ++lo;
    }
    return std::pair{sum / kN, lo / static_cast<double>(kN)};
  };
  const auto [m_mean, m_lo] = stats(mt);
  const auto [c_mean, c_lo] = stats(compact);
  EXPECT_NEAR(m_mean, 499.5, 2.5);
  EXPECT_NEAR(c_mean, 499.5, 2.5);
  EXPECT_NEAR(m_lo, 0.1, 0.005);
  EXPECT_NEAR(c_lo, 0.1, 0.005);
}

TEST(CompactVsMt, PoissonBothBranches) {
  constexpr int kN = 200000;
  for (const double mean : {4.2, 30.0}) {  // Knuth and PTRS branches
    RngStream mt(131);
    CompactRngStream compact(131);
    const auto draw = [mean](auto& r) {
      return static_cast<double>(r.poisson(mean));
    };
    const Moments a = moments_of(mt, kN, draw);
    const Moments b = moments_of(compact, kN, draw);
    EXPECT_NEAR(a.mean, mean, mean * 0.01) << "mean=" << mean;
    EXPECT_NEAR(b.mean, mean, mean * 0.01) << "mean=" << mean;
    EXPECT_NEAR(a.var, mean, mean * 0.05) << "mean=" << mean;
    EXPECT_NEAR(b.var, mean, mean * 0.05) << "mean=" << mean;
  }
}

TEST(CompactVsMt, RayleighMeanSquare) {
  constexpr int kN = 200000;
  RngStream mt(137);
  CompactRngStream compact(137);
  double a2 = 0.0, b2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double a = mt.rayleigh_amplitude(2.5);
    const double b = compact.rayleigh_amplitude(2.5);
    a2 += a * a;
    b2 += b * b;
  }
  EXPECT_NEAR(a2 / kN, 2.5, 0.05);
  EXPECT_NEAR(b2 / kN, 2.5, 0.05);
}

TEST(CompactVsMt, LognormalDbMedian) {
  constexpr int kN = 200000;
  RngStream mt(139);
  CompactRngStream compact(139);
  int a = 0, b = 0;
  const double median = std::pow(10.0, 0.3);
  for (int i = 0; i < kN; ++i) {
    if (mt.lognormal_db(3.0, 8.0) < median) ++a;
    if (compact.lognormal_db(3.0, 8.0) < median) ++b;
  }
  EXPECT_NEAR(a / static_cast<double>(kN), 0.5, 0.01);
  EXPECT_NEAR(b / static_cast<double>(kN), 0.5, 0.01);
}

TEST(CompactRngStream, DomainErrorsMatchRngStream) {
  CompactRngStream rng(7);
  EXPECT_THROW(rng.uniform_int(0), std::domain_error);
  EXPECT_THROW(rng.exponential(0.0), std::domain_error);
  EXPECT_THROW(rng.rayleigh_amplitude(0.0), std::domain_error);
  EXPECT_THROW(rng.poisson(-1.0), std::domain_error);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

// ---- TrafficRng: the per-user stream-kind dispatcher ----

TEST(TrafficRng, MtKindReproducesRngStreamBitForBit) {
  TrafficRng t(RngKind::kMt, 42, 7);
  RngStream ref(42, 7);
  EXPECT_EQ(t.kind(), RngKind::kMt);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(t.uniform(), ref.uniform());
  EXPECT_EQ(t.uniform_int(97), ref.uniform_int(97));
  EXPECT_NEAR(t.normal(), ref.normal(), 0.0);
  EXPECT_EQ(t.poisson(4.2), ref.poisson(4.2));
  EXPECT_NEAR(t.exponential(2.0), ref.exponential(2.0), 0.0);
}

TEST(TrafficRng, CompactKindReproducesCompactStreamBitForBit) {
  TrafficRng t(RngKind::kCompact, 42, 7);
  CompactRngStream ref(42, 7);
  EXPECT_EQ(t.kind(), RngKind::kCompact);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(t.uniform(), ref.uniform());
  EXPECT_EQ(t.uniform_int(97), ref.uniform_int(97));
  EXPECT_NEAR(t.normal(), ref.normal(), 0.0);
  EXPECT_EQ(t.poisson(4.2), ref.poisson(4.2));
}

TEST(TrafficRng, ImplicitConversionFromStreams) {
  // The historical call shape — passing an RngStream by value — must keep
  // compiling and draw the same sequence.
  TrafficRng from_mt = RngStream(555);
  RngStream mt_ref(555);
  EXPECT_EQ(from_mt.kind(), RngKind::kMt);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(from_mt.uniform(), mt_ref.uniform());
  }

  TrafficRng from_compact = CompactRngStream(555);
  CompactRngStream c_ref(555);
  EXPECT_EQ(from_compact.kind(), RngKind::kCompact);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(from_compact.uniform(), c_ref.uniform());
  }
}

TEST(TrafficRng, CopyIsDeepForBothKinds) {
  for (const RngKind kind : {RngKind::kMt, RngKind::kCompact}) {
    TrafficRng original(kind, 9, 9);
    (void)original.uniform();
    TrafficRng copy = original;  // snapshot mid-stream
    // Advancing the copy must not move the original (a handoff's adopted
    // source must fork, not alias).
    const double from_copy = copy.uniform();
    const double from_original = original.uniform();
    EXPECT_DOUBLE_EQ(from_copy, from_original);
    TrafficRng assigned(RngKind::kMt, 1, 1);
    assigned = original;
    EXPECT_DOUBLE_EQ(assigned.uniform(), original.uniform());
  }
}

TEST(TrafficRng, CompactFootprintStaysSmall) {
  // The entire point: a compact-mode TrafficRng is a counter + spare +
  // flag + an (empty) mt pointer — two orders of magnitude below the
  // ~2.5 KB mt19937_64 state it replaces.
  static_assert(sizeof(CompactRngStream) <= 24);
  static_assert(sizeof(TrafficRng) <= 40);
  EXPECT_GE(sizeof(RngStream), 2500u);
}

}  // namespace
}  // namespace charisma::common
