#include "common/rng.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(RngSeed, SameInputsSameSeed) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(RngSeed, DifferentStreamsDiffer) {
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

TEST(RngStream, Deterministic) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DifferentSeedsDiverge) {
  RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStream, UniformBounds) {
  RngStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformRangeMean) {
  RngStream rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 6.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngStream, UniformIntCoversRange) {
  RngStream rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(5))];
  for (int c : counts) EXPECT_GT(c, 800);
  EXPECT_THROW(rng.uniform_int(0), std::domain_error);
}

TEST(RngStream, BernoulliEdges) {
  RngStream rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngStream, BernoulliRate) {
  RngStream rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngStream, ExponentialMoments) {
  RngStream rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.35);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.35, 0.02);
  EXPECT_NEAR(var, 1.35 * 1.35, 0.08);
  EXPECT_THROW(rng.exponential(0.0), std::domain_error);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.03);
}

TEST(RngStream, RayleighMeanSquare) {
  RngStream rng(23);
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.rayleigh_amplitude(2.5);
    EXPECT_GE(x, 0.0);
    sum2 += x * x;
  }
  EXPECT_NEAR(sum2 / n, 2.5, 0.05);
  EXPECT_THROW(rng.rayleigh_amplitude(0.0), std::domain_error);
}

TEST(RngStream, LognormalDbMedian) {
  RngStream rng(29);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal_db(3.0, 8.0) < std::pow(10.0, 0.3)) ++below;
  }
  // Median of the linear value is 10^(mean_db/10).
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngStream, PoissonMean) {
  RngStream rng(31);
  long sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.2);
  EXPECT_NEAR(static_cast<double>(sum) / n, 4.2, 0.05);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::domain_error);
}

TEST(RngStream, TwoArgConstructorMatchesDerivedSeed) {
  RngStream a(derive_seed(10, 20));
  RngStream b(10, 20);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace charisma::common
