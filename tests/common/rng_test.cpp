#include "common/rng.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(RngSeed, SameInputsSameSeed) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(RngSeed, DifferentStreamsDiffer) {
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

TEST(RngStream, Deterministic) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DifferentSeedsDiverge) {
  RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStream, UniformBounds) {
  RngStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformRangeMean) {
  RngStream rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 6.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngStream, UniformIntCoversRange) {
  RngStream rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(5))];
  for (int c : counts) EXPECT_GT(c, 800);
  EXPECT_THROW(rng.uniform_int(0), std::domain_error);
}

TEST(RngStream, BernoulliEdges) {
  RngStream rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngStream, BernoulliRate) {
  RngStream rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngStream, ExponentialMoments) {
  RngStream rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.35);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.35, 0.02);
  EXPECT_NEAR(var, 1.35 * 1.35, 0.08);
  EXPECT_THROW(rng.exponential(0.0), std::domain_error);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.03);
}

TEST(RngStream, RayleighMeanSquare) {
  RngStream rng(23);
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.rayleigh_amplitude(2.5);
    EXPECT_GE(x, 0.0);
    sum2 += x * x;
  }
  EXPECT_NEAR(sum2 / n, 2.5, 0.05);
  EXPECT_THROW(rng.rayleigh_amplitude(0.0), std::domain_error);
}

TEST(RngStream, LognormalDbMedian) {
  RngStream rng(29);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal_db(3.0, 8.0) < std::pow(10.0, 0.3)) ++below;
  }
  // Median of the linear value is 10^(mean_db/10).
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngStream, PoissonMean) {
  RngStream rng(31);
  long sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.2);
  EXPECT_NEAR(static_cast<double>(sum) / n, 4.2, 0.05);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::domain_error);
}

// ---- Seed-pinned regression sequences ----
// The distribution layer is implemented in-house precisely so these exact
// sequences cannot change under a stdlib upgrade. If an edit to rng.cpp is
// *meant* to change results, regenerate these constants and say so in the
// commit — a silent change here invalidates every recorded benchmark.

TEST(RngStreamPinned, UniformSequence) {
  RngStream rng(12345);
  const double expected[] = {
      0.35762972288842587, 0.40044261704406114, 0.68938331700276845,
      0.55973557064111557, 0.57445129399171091, 0.2076905268617546,
  };
  for (double e : expected) EXPECT_DOUBLE_EQ(rng.uniform(), e);
}

TEST(RngStreamPinned, NormalSequence) {
  RngStream rng(12345);
  const double expected[] = {
      -1.162514705917397,   0.83968672813474454, -0.8024637068257271,
      -0.31617660920967344, 0.27662613610176873, 1.0159517267301623,
  };
  // Box-Muller goes through libm (log/sqrt/sin/cos), so allow a few ulp of
  // cross-platform slack while still pinning the realization.
  for (double e : expected) EXPECT_NEAR(rng.normal(), e, 1e-12);
}

TEST(RngStreamPinned, UniformIntSequence) {
  RngStream rng(12345);
  const int expected[] = {34, 38, 66, 54, 55, 20, 2, 66};
  for (int e : expected) EXPECT_EQ(rng.uniform_int(97), e);
}

TEST(RngStreamPinned, PoissonSequences) {
  {
    RngStream rng(12345);  // Knuth path
    const int expected[] = {5, 2, 1, 0, 5, 2, 6, 7};
    for (int e : expected) EXPECT_EQ(rng.poisson(4.2), e);
  }
  {
    RngStream rng(12345);  // PTRS path
    const int expected[] = {37, 44, 41, 39, 38, 49, 35, 31};
    for (int e : expected) EXPECT_EQ(rng.poisson(40.0), e);
  }
}

TEST(RngStreamPinned, ExponentialSequence) {
  RngStream rng(12345);
  const double expected[] = {
      2.0565142428798442, 1.8303696020620406,
      0.74391564898381302, 1.1605816041119292,
  };
  for (double e : expected) EXPECT_NEAR(rng.exponential(2.0), e, 1e-12);
}

// ---- Statistical checks of the in-house algorithm branches ----

TEST(RngStream, NormalFastMomentsAndTails) {
  // The ziggurat generator must match N(0,1) in moments and in the deep
  // tail (where the wedge/tail rejection branches do the work).
  RngStream rng(53);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  int beyond_2 = 0, beyond_3 = 0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal_fast();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
    if (std::fabs(x) > 2.0) ++beyond_2;
    if (std::fabs(x) > 3.0) ++beyond_3;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(sum2 / n, 1.0, 0.01);
  EXPECT_NEAR(sum3 / n, 0.0, 0.02);
  EXPECT_NEAR(sum4 / n, 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(beyond_2) / n, 0.0455, 0.002);
  EXPECT_NEAR(static_cast<double>(beyond_3) / n, 0.0027, 0.0005);
}

TEST(RngStream, PoissonLargeMeanMoments) {
  // Exercises the PTRS rejection branch (mean >= 10).
  RngStream rng(37);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.poisson(30.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 30.0, 0.1);
  EXPECT_NEAR(sum2 / n - mean * mean, 30.0, 0.5);
}

TEST(RngStream, UniformIntLargeRangeUnbiased) {
  RngStream rng(41);
  const int n = 200000;
  double sum = 0.0;
  int lo_hits = 0, hi_hits = 0;
  for (int i = 0; i < n; ++i) {
    const int v = rng.uniform_int(1000);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    sum += v;
    if (v < 100) ++lo_hits;
    if (v >= 900) ++hi_hits;
  }
  EXPECT_NEAR(sum / n, 499.5, 2.5);
  EXPECT_NEAR(static_cast<double>(lo_hits) / n, 0.1, 0.005);
  EXPECT_NEAR(static_cast<double>(hi_hits) / n, 0.1, 0.005);
}

TEST(RngStream, NormalSpareKeepsMomentsUnderInterleaving) {
  // Interleaving other draws between normal() calls must not corrupt the
  // cached Box-Muller spare.
  RngStream rng(43);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    (void)rng.uniform();  // perturb the engine between pair halves
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngStream, TwoArgConstructorMatchesDerivedSeed) {
  RngStream a(derive_seed(10, 20));
  RngStream b(10, 20);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace charisma::common
