#include "common/config.hpp"

#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  auto cfg = KeyValueConfig::from_args({"alpha=1.5", "name=test", "n=42"});
  EXPECT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg.get_string("name").value(), "test");
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha").value(), 1.5);
  EXPECT_EQ(cfg.get_int("n").value(), 42);
}

TEST(Config, MalformedArgsThrow) {
  EXPECT_THROW(KeyValueConfig::from_args({"noequals"}), std::invalid_argument);
  EXPECT_THROW(KeyValueConfig::from_args({"=value"}), std::invalid_argument);
}

TEST(Config, LaterDuplicateWins) {
  auto cfg = KeyValueConfig::from_args({"k=1", "k=2"});
  EXPECT_EQ(cfg.get_int("k").value(), 2);
}

TEST(Config, MissingKeysReturnNullopt) {
  KeyValueConfig cfg;
  EXPECT_FALSE(cfg.get_string("missing").has_value());
  EXPECT_FALSE(cfg.get_double("missing").has_value());
  EXPECT_FALSE(cfg.get_int("missing").has_value());
  EXPECT_FALSE(cfg.get_bool("missing").has_value());
}

TEST(Config, Fallbacks) {
  KeyValueConfig cfg;
  cfg.set("present", "7");
  EXPECT_EQ(cfg.get_int_or("present", 1), 7);
  EXPECT_EQ(cfg.get_int_or("absent", 1), 1);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("absent", 2.5), 2.5);
  EXPECT_EQ(cfg.get_string_or("absent", "d"), "d");
  EXPECT_TRUE(cfg.get_bool_or("absent", true));
}

TEST(Config, BooleanSpellings) {
  KeyValueConfig cfg;
  for (const char* t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    cfg.set("b", t);
    EXPECT_TRUE(cfg.get_bool("b").value()) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "FALSE"}) {
    cfg.set("b", f);
    EXPECT_FALSE(cfg.get_bool("b").value()) << f;
  }
}

TEST(Config, TypeErrorsThrow) {
  KeyValueConfig cfg;
  cfg.set("x", "notanumber");
  EXPECT_THROW(cfg.get_double("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("x"), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("x"), std::invalid_argument);
  cfg.set("y", "12abc");
  EXPECT_THROW(cfg.get_int("y"), std::invalid_argument);
}

TEST(Config, RejectUnknownPassesKnownKeys) {
  auto cfg = KeyValueConfig::from_args({"alpha=1", "beta=2"});
  EXPECT_NO_THROW(cfg.reject_unknown({"alpha", "beta", "gamma"}));
}

TEST(Config, RejectUnknownNamesTheOffendingKey) {
  auto cfg = KeyValueConfig::from_args({"alpha=1", "voice_user=80"});
  try {
    cfg.reject_unknown({"alpha", "voice_users"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must point at the typo, not just say "bad config".
    EXPECT_NE(std::string(e.what()).find("voice_user"), std::string::npos);
  }
}

TEST(Config, RejectUnknownOnEmptyConfigIsNoop) {
  KeyValueConfig cfg;
  EXPECT_NO_THROW(cfg.reject_unknown({}));
  EXPECT_NO_THROW(cfg.reject_unknown({"anything"}));
}

TEST(Config, CountAcceptsMagnitudeSuffixes) {
  KeyValueConfig cfg;
  cfg.set("users", "250k");
  EXPECT_EQ(cfg.get_count("users").value(), 250'000);
  cfg.set("users", "1M");
  EXPECT_EQ(cfg.get_count("users").value(), 1'000'000);
  cfg.set("users", "2.5k");
  EXPECT_EQ(cfg.get_count("users").value(), 2'500);
  cfg.set("users", "3K");
  EXPECT_EQ(cfg.get_count("users").value(), 3'000);
  cfg.set("users", "0.25m");
  EXPECT_EQ(cfg.get_count("users").value(), 250'000);
  cfg.set("users", "80");  // plain integers unchanged
  EXPECT_EQ(cfg.get_count("users").value(), 80);
  EXPECT_EQ(cfg.get_count_or("absent", 42), 42);
  EXPECT_FALSE(cfg.get_count("absent").has_value());
}

TEST(Config, CountRejectsUnknownSuffixNamingTheKey) {
  KeyValueConfig cfg;
  cfg.set("voice_users", "5q");
  try {
    cfg.get_count("voice_users");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must point at the knob the bad value arrived under.
    EXPECT_NE(std::string(e.what()).find("voice_users"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5q"), std::string::npos);
  }
  for (const char* bad : {"1G", "k", "abc", "2.5kk", "1 M"}) {
    cfg.set("voice_users", bad);
    EXPECT_THROW(cfg.get_count("voice_users"), std::invalid_argument) << bad;
  }
  // A fractional count that does not land on an integer is an error, not a
  // silent rounding.
  cfg.set("voice_users", "1.0005k");
  EXPECT_THROW(cfg.get_count("voice_users"), std::invalid_argument);
}

TEST(Config, ParseCountIsUsableOnRawStrings) {
  EXPECT_EQ(KeyValueConfig::parse_count("ENV_KNOB", "750k"), 750'000);
  EXPECT_THROW(KeyValueConfig::parse_count("ENV_KNOB", "750x"),
               std::invalid_argument);
}

TEST(Config, Contains) {
  KeyValueConfig cfg;
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.contains("k"));
  EXPECT_FALSE(cfg.contains("z"));
}

}  // namespace
}  // namespace charisma::common
