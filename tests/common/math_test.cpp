#include "common/math.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace charisma::common {
namespace {

TEST(MathDb, RoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 17.5, 30.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
  }
}

TEST(MathDb, KnownValues) {
  EXPECT_NEAR(from_db(0.0), 1.0, 1e-15);
  EXPECT_NEAR(from_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(from_db(3.0), 1.9952623149688795, 1e-12);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
}

TEST(MathDb, ZeroAndNegativeGiveMinusInfinity) {
  EXPECT_TRUE(std::isinf(to_db(0.0)));
  EXPECT_LT(to_db(0.0), 0.0);
  EXPECT_TRUE(std::isinf(to_db(-1.0)));
}

TEST(MathQ, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  // Q(1.96) ~ 0.025 (the 95% two-sided quantile).
  EXPECT_NEAR(q_function(1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(q_function(3.0), 1.349898e-3, 1e-8);
}

TEST(MathQ, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.2}) {
    EXPECT_NEAR(q_function(x) + q_function(-x), 1.0, 1e-12);
  }
}

TEST(MathErfcInv, RoundTripAcrossDecades) {
  for (double y : {1.9, 1.5, 1.0, 0.5, 0.1, 1e-2, 1e-4, 1e-6, 1e-9}) {
    const double x = erfc_inv(y);
    EXPECT_NEAR(std::erfc(x), y, y * 1e-9 + 1e-15) << "y=" << y;
  }
}

TEST(MathErfcInv, CentralValue) {
  EXPECT_NEAR(erfc_inv(1.0), 0.0, 1e-12);
}

TEST(MathErfcInv, DomainErrors) {
  EXPECT_THROW(erfc_inv(0.0), std::domain_error);
  EXPECT_THROW(erfc_inv(2.0), std::domain_error);
  EXPECT_THROW(erfc_inv(-0.5), std::domain_error);
}

TEST(MathBesselJ0, KnownValues) {
  EXPECT_NEAR(bessel_j0(0.0), 1.0, 1e-7);
  // First zero of J0 at x ~ 2.404826.
  EXPECT_NEAR(bessel_j0(2.404826), 0.0, 1e-5);
  EXPECT_NEAR(bessel_j0(1.0), 0.7651976866, 1e-6);
  EXPECT_NEAR(bessel_j0(5.0), -0.1775967713, 1e-6);
  EXPECT_NEAR(bessel_j0(10.0), -0.2459357645, 1e-6);
}

TEST(MathBesselJ0, EvenFunction) {
  for (double x : {0.3, 1.7, 4.2, 9.1}) {
    EXPECT_NEAR(bessel_j0(x), bessel_j0(-x), 1e-12);
  }
}

TEST(MathGammaQ, ExponentialSpecialCase) {
  // Q(1, x) = exp(-x).
  for (double x : {0.0, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(gamma_upper_regularized(1, x), std::exp(-x), 1e-12);
  }
}

TEST(MathGammaQ, KnownValueK4) {
  // Q(4, 2) = e^-2 (1 + 2 + 2 + 4/3).
  const double expected = std::exp(-2.0) * (1.0 + 2.0 + 2.0 + 4.0 / 3.0);
  EXPECT_NEAR(gamma_upper_regularized(4, 2.0), expected, 1e-12);
}

TEST(MathGammaQ, Monotonicity) {
  double prev = 1.0;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double q = gamma_upper_regularized(3, x);
    EXPECT_LE(q, prev + 1e-15);
    prev = q;
  }
}

TEST(MathGammaQ, DomainErrors) {
  EXPECT_THROW(gamma_upper_regularized(0, 1.0), std::domain_error);
  EXPECT_THROW(gamma_upper_regularized(2, -1.0), std::domain_error);
}

TEST(MathLog1p, MatchesStd) {
  EXPECT_NEAR(log1p_stable(1e-12), 1e-12, 1e-20);
  EXPECT_NEAR(log1p_stable(1.0), std::log(2.0), 1e-15);
}

}  // namespace
}  // namespace charisma::common
