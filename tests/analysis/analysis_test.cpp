// Analysis-module tests, including the cross-validation of the simulator
// against the closed forms — the strongest evidence the Monte Carlo
// substrate implements the intended mathematics.
#include <gtest/gtest.h>

#include "analysis/fading_statistics.hpp"
#include "analysis/slotted_aloha.hpp"
#include "analysis/voice_capacity.hpp"
#include "channel/user_channel.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "mac/contention.hpp"

namespace charisma::analysis {
namespace {

TEST(SlottedAloha, SuccessProbabilityKnownValues) {
  EXPECT_DOUBLE_EQ(aloha_success_probability(0, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(aloha_success_probability(1, 0.3), 0.3);
  EXPECT_NEAR(aloha_success_probability(2, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(aloha_success_probability(4, 0.25),
              4 * 0.25 * std::pow(0.75, 3), 1e-12);
}

TEST(SlottedAloha, OptimalPermissionPeaksThroughput) {
  for (int k : {2, 5, 20}) {
    const double opt = optimal_permission(k);
    const double peak = aloha_success_probability(k, opt);
    EXPECT_GT(peak, aloha_success_probability(k, opt * 1.5));
    EXPECT_GT(peak, aloha_success_probability(k, opt * 0.5));
  }
}

TEST(SlottedAloha, LargePoolApproaches1OverE) {
  EXPECT_NEAR(aloha_success_probability(1000, optimal_permission(1000)),
              1.0 / std::exp(1.0), 1e-3);
}

TEST(SlottedAloha, ExpectedWinnersMatchesSimulation) {
  const int contenders = 6, minislots = 12;
  const double p = 0.3;
  const double analytic = expected_winners(contenders, minislots, p);

  // Monte Carlo with the engine's own contention implementation.
  std::vector<common::UserId> candidates;
  std::vector<common::RngStream> rngs;
  for (int i = 0; i < contenders; ++i) {
    candidates.push_back(i);
    rngs.emplace_back(static_cast<std::uint64_t>(i) * 7 + 3);
  }
  double total = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto outcome = mac::run_request_phase(
        candidates, minislots, [p](common::UserId) { return p; },
        [&rngs](common::UserId id) -> common::RngStream& {
          return rngs[static_cast<std::size_t>(id)];
        });
    total += static_cast<double>(outcome.winners.size());
  }
  EXPECT_NEAR(total / trials, analytic, 0.05);
}

TEST(SlottedAloha, StableLimitShape) {
  // More minislots support more contenders; tiny arrival rates are easy.
  const int lo = stable_contender_limit(1, 0.3, 0.1);
  const int hi = stable_contender_limit(12, 0.3, 0.1);
  EXPECT_GT(hi, lo);
  EXPECT_GT(lo, 0);
  // An arrival rate beyond the ALOHA peak is never stable at high k.
  EXPECT_EQ(stable_contender_limit(1, 0.3, 2.0), 0);
}

TEST(SlottedAloha, Validation) {
  EXPECT_THROW(aloha_success_probability(-1, 0.3), std::invalid_argument);
  EXPECT_THROW(aloha_success_probability(2, 1.5), std::invalid_argument);
  EXPECT_THROW(optimal_permission(0), std::invalid_argument);
  EXPECT_THROW(expected_winners(2, -1, 0.3), std::invalid_argument);
  EXPECT_THROW(stable_contender_limit(0, 0.3, 0.1), std::invalid_argument);
}

TEST(FadingStatistics, NoShadowMatchesGammaTail) {
  channel::ChannelConfig cfg;
  cfg.mean_snr_db = 16.0;
  cfg.shadow_sigma_db = 0.0;
  cfg.diversity_branches = 4;
  const double mean = common::from_db(16.0);
  const double th = common::from_db(5.5);
  const double expected =
      1.0 - common::gamma_upper_regularized(4, 4.0 * th / mean);
  EXPECT_NEAR(snr_below_probability(cfg, th), expected, 1e-12);
}

TEST(FadingStatistics, ShadowingWidensTheTail) {
  channel::ChannelConfig no_shadow;
  no_shadow.shadow_sigma_db = 0.0;
  channel::ChannelConfig with_shadow;
  with_shadow.shadow_sigma_db = 4.0;
  const double th = common::from_db(5.5);
  EXPECT_GT(snr_below_probability(with_shadow, th),
            snr_below_probability(no_shadow, th));
}

TEST(FadingStatistics, OccupancySumsToOne) {
  channel::ChannelConfig cfg;
  const auto table = phy::ModeTable::abicm6();
  const auto occupancy = mode_occupancy(cfg, table);
  ASSERT_EQ(occupancy.size(), 7u);
  double sum = 0.0;
  for (double p : occupancy) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FadingStatistics, SimulatorMatchesAnalyticOccupancy) {
  // The Monte Carlo channel + mode selection must reproduce the analytic
  // stationary occupancy.
  channel::ChannelConfig cfg;  // calibrated defaults
  const auto table = phy::ModeTable::abicm6();
  const auto analytic = mode_occupancy(cfg, table);

  channel::UserChannel ch(cfg, common::RngStream(42));
  std::vector<double> empirical(7, 0.0);
  const int steps = 400000;
  for (int i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * 2.5e-3);
    const auto mode = table.select(ch.snr_linear());
    ++empirical[static_cast<std::size_t>(mode ? *mode + 1 : 0)];
  }
  for (auto& p : empirical) p /= steps;
  for (std::size_t q = 0; q < 7; ++q) {
    EXPECT_NEAR(empirical[q], analytic[q], 0.02) << "band " << q;
  }
}

TEST(FadingStatistics, MeanThroughputMatchesSimulation) {
  channel::ChannelConfig cfg;
  const auto table = phy::ModeTable::abicm6();
  const double analytic = mean_adaptive_throughput(cfg, table);

  channel::UserChannel ch(cfg, common::RngStream(43));
  double sum = 0.0;
  const int steps = 400000;
  for (int i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * 2.5e-3);
    sum += table.normalized_throughput(table.select(ch.snr_linear()));
  }
  EXPECT_NEAR(sum / steps, analytic, 0.05);
  // And it sits in the "roughly 2-3x the fixed PHY" band of DESIGN.md.
  EXPECT_GT(analytic, 2.0);
  EXPECT_LT(analytic, 3.6);
}

TEST(VoiceCapacity, OfferedLoadAndSaturation) {
  VoiceLoadModel model;
  // 100 users * 0.4255 activity / 8 frames ~ 5.32 packets per frame.
  EXPECT_NEAR(model.offered_packets_per_frame(100), 5.32, 0.01);
  // 10 slots * 8 frames / activity ~ 188 users.
  EXPECT_NEAR(model.saturation_users(), 188.0, 1.0);
}

TEST(VoiceCapacity, OverflowLossMonotone) {
  VoiceLoadModel model;
  double prev = 0.0;
  for (int users : {40, 80, 120, 160, 200}) {
    const double loss = model.no_queue_overflow_loss(users);
    EXPECT_GE(loss, prev);
    prev = loss;
  }
  EXPECT_LT(model.no_queue_overflow_loss(40), 1e-4);
  EXPECT_GT(model.no_queue_overflow_loss(200), 0.02);
}

TEST(VoiceCapacity, NoQueueCapacityNearCalibrationTarget) {
  // DESIGN.md's calibration: the pure Poisson overflow model (every packet
  // one allocation chance, no re-contention recovery) puts the 1% knee
  // near 107 users for the default geometry; the simulated protocol's
  // re-contention pushes the observed knee ~30% further right.
  VoiceLoadModel model;
  const int capacity = model.no_queue_capacity(0.01);
  EXPECT_GT(capacity, 95);
  EXPECT_LT(capacity, 130);
}

TEST(VoiceCapacity, Validation) {
  VoiceLoadModel model;
  EXPECT_THROW(model.offered_packets_per_frame(-1), std::invalid_argument);
  EXPECT_THROW(model.no_queue_capacity(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace charisma::analysis
