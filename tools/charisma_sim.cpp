// charisma_sim — command-line front-end to the simulation platform.
//
// Run one protocol (or all six) on a fully parameterized scenario, or
// sweep a load axis, and emit a table or CSV. Examples:
//
//   charisma_sim protocol=charisma voice_users=100 data_users=10
//   charisma_sim protocol=all voice_users=80 queue=0 measure=20
//   charisma_sim sweep=voice x=40,80,120,160 protocol=all csv=out.csv
//   charisma_sim protocol=charisma fairness=1 csi_refresh=0 doppler_hz=160
//
// Every scenario knob is a key=value argument; run with `help=1` for the
// full list.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "charisma.hpp"

namespace {

using namespace charisma;

void print_help() {
  std::cout <<
      R"(charisma_sim key=value ...

Core:
  protocol=charisma|dtdma_vr|dtdma_fr|drma|rama|rmav|prma|all
  voice_users=N data_users=N queue=0|1 seed=N
  warmup=SECONDS measure=SECONDS replications=N

Sweeps (optional):
  sweep=voice|data     x=10,20,40,...   (runs the grid instead of one cell)

Radio / PHY:
  mean_snr_db=F shadow_sigma_db=F doppler_hz=F kmh=F diversity=N
  fixed_ref_db=F target_ber=F csi_noise_db=F csi_validity_frames=N
  ack_loss=F tx_power_w=F

Geometry:
  request_slots=N info_slots=N pilot_slots=N

Traffic:
  talkspurt_s=F silence_s=F burst_packets=F interarrival_s=F pv=F pd=F

CHARISMA options:
  fairness=0|1 csi_refresh=0|1 poll_budget=N
  alpha_voice=F alpha_data=F gamma_voice=F gamma_data=F voice_offset=F

Output:
  csv=FILE (also prints the table)  help=1
)";
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> values;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    values.push_back(std::stoi(token));
  }
  return values;
}

mac::ScenarioParams scenario_from(const common::KeyValueConfig& config) {
  mac::ScenarioParams params;
  params.num_voice_users = config.get_int_or("voice_users", 80);
  params.num_data_users = config.get_int_or("data_users", 0);
  params.request_queue = config.get_bool_or("queue", true);
  params.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));

  params.channel.mean_snr_db =
      config.get_double_or("mean_snr_db", params.channel.mean_snr_db);
  params.channel.shadow_sigma_db =
      config.get_double_or("shadow_sigma_db", params.channel.shadow_sigma_db);
  if (config.contains("kmh")) {
    params.channel.doppler_hz = channel::ChannelConfig::doppler_for_speed(
        common::km_per_hour(config.get_double_or("kmh", 50.0)), 2.0e9);
  }
  params.channel.doppler_hz =
      config.get_double_or("doppler_hz", params.channel.doppler_hz);
  params.channel.diversity_branches =
      config.get_int_or("diversity", params.channel.diversity_branches);

  params.fixed_phy_reference_db =
      config.get_double_or("fixed_ref_db", params.fixed_phy_reference_db);
  params.phy.target_ber =
      config.get_double_or("target_ber", params.phy.target_ber);
  params.csi_error_sigma_db =
      config.get_double_or("csi_noise_db", params.csi_error_sigma_db);
  params.csi_validity_frames =
      config.get_int_or("csi_validity_frames", params.csi_validity_frames);
  params.ack_loss_prob = config.get_double_or("ack_loss", 0.0);
  params.energy.tx_power_w =
      config.get_double_or("tx_power_w", params.energy.tx_power_w);

  params.geometry.num_request_slots =
      config.get_int_or("request_slots", params.geometry.num_request_slots);
  params.geometry.num_info_slots =
      config.get_int_or("info_slots", params.geometry.num_info_slots);
  params.geometry.num_pilot_slots =
      config.get_int_or("pilot_slots", params.geometry.num_pilot_slots);

  params.mean_talkspurt_s =
      config.get_double_or("talkspurt_s", params.mean_talkspurt_s);
  params.mean_silence_s =
      config.get_double_or("silence_s", params.mean_silence_s);
  params.mean_burst_packets =
      config.get_double_or("burst_packets", params.mean_burst_packets);
  params.mean_data_interarrival_s =
      config.get_double_or("interarrival_s", params.mean_data_interarrival_s);
  params.voice_permission_prob =
      config.get_double_or("pv", params.voice_permission_prob);
  params.data_permission_prob =
      config.get_double_or("pd", params.data_permission_prob);
  return params;
}

core::CharismaOptions charisma_options_from(
    const common::KeyValueConfig& config) {
  core::CharismaOptions options;
  options.fairness = config.get_bool_or("fairness", false)
                         ? core::FairnessMode::kCapacityNormalized
                         : core::FairnessMode::kNone;
  options.enable_csi_refresh = config.get_bool_or("csi_refresh", true);
  options.csi_poll_budget = config.get_int_or("poll_budget", -1);
  options.priority.alpha_voice =
      config.get_double_or("alpha_voice", options.priority.alpha_voice);
  options.priority.alpha_data =
      config.get_double_or("alpha_data", options.priority.alpha_data);
  options.priority.gamma_voice =
      config.get_double_or("gamma_voice", options.priority.gamma_voice);
  options.priority.gamma_data =
      config.get_double_or("gamma_data", options.priority.gamma_data);
  options.priority.voice_offset =
      config.get_double_or("voice_offset", options.priority.voice_offset);
  return options;
}

std::vector<protocols::ProtocolId> protocols_from(
    const common::KeyValueConfig& config) {
  const std::string name = config.get_string_or("protocol", "charisma");
  if (name == "all") return protocols::all_protocols();
  return {protocols::parse_protocol(name)};
}

void add_result_row(common::TextTable& table, const std::string& label,
                    const experiment::ReplicatedResult& result) {
  table.add_row({label, result.protocol,
                 common::TextTable::sci(result.voice_loss.mean(), 3),
                 common::TextTable::sci(result.voice_error.mean(), 3),
                 common::TextTable::num(result.data_throughput.mean(), 2),
                 common::TextTable::num(result.data_delay_s.mean(), 3),
                 common::TextTable::num(result.slot_utilization.mean(), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nRun with help=1 for usage.\n";
    return 1;
  }
  if (config.get_bool_or("help", false)) {
    print_help();
    return 0;
  }

  try {
    experiment::RunSpec spec;
    spec.params = scenario_from(config);
    spec.warmup_s = config.get_double_or("warmup", 4.0);
    spec.measure_s = config.get_double_or("measure", 12.0);
    spec.replications = config.get_int_or("replications", 1);
    spec.charisma = charisma_options_from(config);
    const auto protocol_list = protocols_from(config);

    common::TextTable table("charisma_sim results");
    table.set_header({"x", "protocol", "voice loss", "voice err",
                      "data tput/frame", "data delay (s)", "slot util"});

    if (config.contains("sweep")) {
      experiment::SweepConfig sweep;
      sweep.spec = spec;
      const std::string axis = config.get_string_or("sweep", "voice");
      sweep.axis = axis == "data" ? experiment::SweepAxis::kDataUsers
                                  : experiment::SweepAxis::kVoiceUsers;
      sweep.x_values =
          parse_int_list(config.get_string_or("x", "20,60,100,140"));
      sweep.protocols_to_run = protocol_list;
      experiment::ParallelRunner runner;
      for (const auto& cell : experiment::run_sweep(sweep, runner)) {
        add_result_row(table, std::to_string(cell.x), cell.result);
      }
    } else {
      for (auto id : protocol_list) {
        const auto result = experiment::run_replications(id, spec);
        add_result_row(table, "-", result);
      }
    }

    table.print(std::cout);
    if (config.contains("csv")) {
      const std::string path = config.get_string_or("csv", "out.csv");
      if (table.write_csv(path)) {
        std::cout << "\nwrote " << path << '\n';
      } else {
        std::cerr << "could not write " << path << '\n';
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
