// charisma_sim — command-line front-end to the simulation platform.
//
// Run one protocol (or all six) on a fully parameterized scenario, or
// sweep a load axis, and emit a table or CSV. Examples:
//
//   charisma_sim protocol=charisma voice_users=100 data_users=10
//   charisma_sim protocol=all voice_users=80 queue=0 measure=20
//   charisma_sim sweep=voice x=40,80,120,160 protocol=all csv=out.csv
//   charisma_sim protocol=charisma fairness=1 csi_refresh=0 doppler_hz=160
//   charisma_sim protocol=all cells=3 kmh=90 handoff_hysteresis_db=4
//
// Every scenario knob is a key=value argument; run with `help=1` for the
// full list. `cells=2` (or more) switches to the mobility-driven multi-cell
// world: users move, path loss tracks their position, and the
// strongest-pilot-with-hysteresis policy hands them off between per-cell
// protocol engines.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "charisma.hpp"

namespace {

using namespace charisma;

void print_help() {
  std::cout <<
      R"(charisma_sim key=value ...

Core:
  protocol=charisma|dtdma_vr|dtdma_fr|drma|rama|rmav|prma|all
  voice_users=N data_users=N queue=0|1 seed=N
                       population counts accept magnitude suffixes:
                       voice_users=250k, data_users=1M (k = 1e3, M = 1e6)
  warmup=SECONDS measure=SECONDS replications=N

Sweeps (optional):
  sweep=voice|data     x=10,20,40,...   (runs the grid instead of one cell)

Radio / PHY:
  mean_snr_db=F shadow_sigma_db=F doppler_hz=F kmh=F diversity=N
  fixed_ref_db=F target_ber=F csi_noise_db=F csi_validity_frames=N
  ack_loss=F tx_power_w=F
  channel=eager|lazy   channel materialization schedule: eager advances
                       every user every frame (default; legacy results are
                       bit-identical); lazy moves a frame clock in O(1) and
                       materializes only touched/read users via the
                       closed-form jump (statistically exact, different
                       realization). The "chan stride" column reports the
                       mean user-frames folded into one jump.
  traffic_rng=mt|compact  generator behind the per-user traffic/MAC
                       streams: mt (default) is the historical mt19937_64
                       (legacy results bit-identical); compact swaps in
                       ~24-byte splitmix64 counter streams — statistically
                       equivalent, a different realization, and the
                       per-attached-user memory floor of very large
                       sparse worlds collapses by ~two orders of
                       magnitude. Channel/base-station streams keep mt.

Mobility / multi-cell (cells >= 2 enables the CellularWorld scenario):
  cells=N              base stations, one protocol engine each (default 1)
  threads=N            worker threads stepping cells in parallel; 0 =
                       hardware concurrency (default 1 = serial; results
                       are bit-identical at any setting)
  shards=N             coordinator shards: the world plane (mobility, band
                       rosters, pilot filtering, attachment rule) is
                       computed over N contiguous user-id ranges in
                       parallel, proposals merged in user order; 0 =
                       match the thread count (default 0; results are
                       bit-identical at any setting)
  kmh=F                user speed; also sets the Doppler spread (default 50)
  handoff_hysteresis_db=F  strongest-pilot margin before handoff (default 4)
  mobility=waypoint|vector random-waypoint or constant-velocity (default
                       waypoint)
  cell_radius_m=F      half the site spacing; field scales with cells
                       (default 500)
  layout=line|hex      site geometry: sites on the field midline, or
                       hexagonal rings (full rings at 1/7/19/... cells;
                       the field is sized to the grid) (default line)
  reuse=N              frequency-reuse factor — only co-channel cells
                       interfere (hex needs 1, 3, 4, 7, 9, 12, ...;
                       default 1 = every cell on the same channel)
  wrap=0|1             wrap distances around a full-ring hex cluster
                       (removes layout-edge effects; default 0)
  band=F               pilot-band radius in metres: a user holds channel
                       and protocol state only in cells within this
                       distance (sparse presence, memory O(band) per
                       user). 0 = every cell, the historical dense world,
                       bit for bit (default 0). A finite radius should
                       cover the attachment geometry (>= site spacing).
  interference=F       per-attached-user activity factor of the uplink
                       co-channel interference (SINR) plane; 0 disables
                       (default 0.4 for layout=hex, 0 for line)
  verify=0|1           re-run each point with threads=1 and require
                       bit-identical metrics + a non-empty window (the
                       interference_world_smoke ctest; default 0)
  In this mode the table gains handoff and mean-SINR-penalty columns;
  mean_snr_db is the link budget at the path-loss reference distance.

Geometry:
  request_slots=N info_slots=N pilot_slots=N

Traffic:
  talkspurt_s=F silence_s=F burst_packets=F interarrival_s=F pv=F pd=F
  overload=F           multiplies both populations (flash-crowd style
                       offered load: overload=5 is 5x nominal; default 1)
  mmpp_ratio=F mmpp_sojourn_s=F
                       Markov-modulated data arrivals: the burst process
                       alternates between a nominal and a ratio-times-
                       hotter state with exponential sojourns (ratio >= 1;
                       sojourn 0 disables; defaults 1 / 0)

Overload survival (robustness scenarios):
  barring=0|1          closed-loop access-class barring in every engine:
                       a per-cell load estimator tightens/relaxes the
                       contention admission probability (default 0; the
                       legacy results are bit-identical with barring=0)
  outage=C:S:E[,...]   cell C is dark (no pilot, users evicted) from S to
                       E seconds, repeatable; needs cells >= 2
  flash=X:Y:R:M:S:E    flash crowd: users within R metres of (X, Y) offer
                       M-times traffic during [S, E); needs cells >= 2
  diurnal=A:P[:W]      sinusoidal load tide: amplitude A, period P
                       seconds, spatial wavelength W metres (default
                       2000); needs cells >= 2

CHARISMA options:
  fairness=0|1 csi_refresh=0|1 poll_budget=N
  alpha_voice=F alpha_data=F gamma_voice=F gamma_data=F voice_offset=F

Output:
  csv=FILE (also prints the table)  help=1
)";
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> values;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    values.push_back(std::stoi(token));
  }
  return values;
}

// Splits "a:b:c" into doubles; throws naming the knob on malformed input.
std::vector<double> parse_colon_list(const std::string& key,
                                     const std::string& value) {
  std::vector<double> fields;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, ':')) {
    try {
      std::size_t pos = 0;
      fields.push_back(std::stod(token, &pos));
      if (pos != token.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument(key + "=: bad field '" + token + "' in '" +
                                  value + "'");
    }
  }
  return fields;
}

// Every key charisma_sim understands; anything else is rejected up front
// so typos fail loudly instead of silently taking the default.
const std::vector<std::string> kKnownKeys = {
    "help", "protocol", "voice_users", "data_users", "queue", "seed",
    "warmup", "measure", "replications", "sweep", "x", "mean_snr_db",
    "shadow_sigma_db", "doppler_hz", "kmh", "diversity", "fixed_ref_db",
    "target_ber", "csi_noise_db", "csi_validity_frames", "ack_loss",
    "tx_power_w", "channel", "traffic_rng", "cells", "threads", "shards",
    "handoff_hysteresis_db", "mobility",
    "cell_radius_m", "layout", "reuse", "wrap", "band", "interference",
    "verify",
    "request_slots", "info_slots", "pilot_slots", "talkspurt_s", "silence_s",
    "burst_packets", "interarrival_s", "pv", "pd", "overload", "mmpp_ratio",
    "mmpp_sojourn_s", "barring", "outage", "flash", "diurnal", "fairness",
    "csi_refresh", "poll_budget", "alpha_voice", "alpha_data", "gamma_voice",
    "gamma_data", "voice_offset", "csv"};

mac::ScenarioParams scenario_from(const common::KeyValueConfig& config) {
  mac::ScenarioParams params;
  const auto count_knob = [&config](const char* key, long long fallback) {
    const long long n = config.get_count_or(key, fallback);
    if (n < 0 || n > std::numeric_limits<int>::max()) {
      throw std::invalid_argument(std::string(key) + "= is out of range");
    }
    return static_cast<int>(n);
  };
  params.num_voice_users = count_knob("voice_users", 80);
  params.num_data_users = count_knob("data_users", 0);
  params.request_queue = config.get_bool_or("queue", true);
  params.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));

  params.channel.mean_snr_db =
      config.get_double_or("mean_snr_db", params.channel.mean_snr_db);
  params.channel.shadow_sigma_db =
      config.get_double_or("shadow_sigma_db", params.channel.shadow_sigma_db);
  if (config.contains("kmh")) {
    params.channel.doppler_hz = channel::ChannelConfig::doppler_for_speed(
        common::km_per_hour(config.get_double_or("kmh", 50.0)), 2.0e9);
  }
  params.channel.doppler_hz =
      config.get_double_or("doppler_hz", params.channel.doppler_hz);
  params.channel.diversity_branches =
      config.get_int_or("diversity", params.channel.diversity_branches);

  params.fixed_phy_reference_db =
      config.get_double_or("fixed_ref_db", params.fixed_phy_reference_db);
  params.phy.target_ber =
      config.get_double_or("target_ber", params.phy.target_ber);
  params.csi_error_sigma_db =
      config.get_double_or("csi_noise_db", params.csi_error_sigma_db);
  params.csi_validity_frames =
      config.get_int_or("csi_validity_frames", params.csi_validity_frames);
  params.ack_loss_prob = config.get_double_or("ack_loss", 0.0);
  params.energy.tx_power_w =
      config.get_double_or("tx_power_w", params.energy.tx_power_w);

  params.geometry.num_request_slots =
      config.get_int_or("request_slots", params.geometry.num_request_slots);
  params.geometry.num_info_slots =
      config.get_int_or("info_slots", params.geometry.num_info_slots);
  params.geometry.num_pilot_slots =
      config.get_int_or("pilot_slots", params.geometry.num_pilot_slots);

  params.mean_talkspurt_s =
      config.get_double_or("talkspurt_s", params.mean_talkspurt_s);
  params.mean_silence_s =
      config.get_double_or("silence_s", params.mean_silence_s);
  params.mean_burst_packets =
      config.get_double_or("burst_packets", params.mean_burst_packets);
  params.mean_data_interarrival_s =
      config.get_double_or("interarrival_s", params.mean_data_interarrival_s);
  params.voice_permission_prob =
      config.get_double_or("pv", params.voice_permission_prob);
  params.data_permission_prob =
      config.get_double_or("pd", params.data_permission_prob);

  const double overload = config.get_double_or("overload", 1.0);
  if (overload <= 0.0) {
    throw std::invalid_argument("overload= must be > 0");
  }
  params.num_voice_users = static_cast<int>(
      std::lround(params.num_voice_users * overload));
  params.num_data_users = static_cast<int>(
      std::lround(params.num_data_users * overload));

  params.data_mmpp_rate_ratio =
      config.get_double_or("mmpp_ratio", params.data_mmpp_rate_ratio);
  params.data_mmpp_mean_sojourn_s =
      config.get_double_or("mmpp_sojourn_s", params.data_mmpp_mean_sojourn_s);
  params.barring.enabled = config.get_bool_or("barring", false);

  const std::string chan = config.get_string_or("channel", "eager");
  if (chan != "eager" && chan != "lazy") {
    throw std::invalid_argument("channel= must be eager or lazy");
  }
  params.lazy_channel = chan == "lazy";

  const std::string rng = config.get_string_or("traffic_rng", "mt");
  if (rng != "mt" && rng != "compact") {
    throw std::invalid_argument("traffic_rng= must be mt or compact");
  }
  params.traffic_rng =
      rng == "compact" ? common::RngKind::kCompact : common::RngKind::kMt;
  return params;
}

core::CharismaOptions charisma_options_from(
    const common::KeyValueConfig& config) {
  core::CharismaOptions options;
  options.fairness = config.get_bool_or("fairness", false)
                         ? core::FairnessMode::kCapacityNormalized
                         : core::FairnessMode::kNone;
  options.enable_csi_refresh = config.get_bool_or("csi_refresh", true);
  options.csi_poll_budget = config.get_int_or("poll_budget", -1);
  options.priority.alpha_voice =
      config.get_double_or("alpha_voice", options.priority.alpha_voice);
  options.priority.alpha_data =
      config.get_double_or("alpha_data", options.priority.alpha_data);
  options.priority.gamma_voice =
      config.get_double_or("gamma_voice", options.priority.gamma_voice);
  options.priority.gamma_data =
      config.get_double_or("gamma_data", options.priority.gamma_data);
  options.priority.voice_offset =
      config.get_double_or("voice_offset", options.priority.voice_offset);
  return options;
}

mac::CellularConfig cellular_from(const common::KeyValueConfig& config,
                                  const mac::ScenarioParams& params) {
  mac::CellularConfig world;
  world.num_cells = config.get_int_or("cells", 1);
  const int threads = config.get_int_or("threads", 1);
  if (threads < 0) {
    throw std::invalid_argument("threads= must be >= 0 (0 = hardware)");
  }
  world.num_threads = static_cast<unsigned>(threads);
  const int shards = config.get_int_or("shards", 0);
  if (shards < 0) {
    throw std::invalid_argument("shards= must be >= 0 (0 = match threads)");
  }
  world.num_shards = static_cast<unsigned>(shards);
  world.params = params;
  if (!config.contains("mean_snr_db")) {
    // The single-cell default (16 dB) is the SNR of the *whole* cell; in
    // the path-loss world it is the budget at the 200 m reference, which
    // would starve every cell-edge user. 26 dB at the reference puts a
    // mid-cell user (~400 m) at the familiar 16 dB operating point.
    world.params.channel.mean_snr_db = 26.0;
  }
  world.handoff_hysteresis_db = config.get_double_or(
      "handoff_hysteresis_db", world.handoff_hysteresis_db);
  const double kmh = config.get_double_or("kmh", 50.0);
  world.mobility.speed_mps = common::km_per_hour(kmh);
  if (!config.contains("kmh") && !config.contains("doppler_hz")) {
    // scenario_from only derives the Doppler from kmh when the knob is
    // given; keep the default-speed world consistent with an explicit
    // kmh=50 (clamped: a parked population still fades a little).
    world.params.channel.doppler_hz =
        std::max(1.0, channel::ChannelConfig::doppler_for_speed(
                          world.mobility.speed_mps, 2.0e9));
  }
  world.mobility.model =
      config.get_string_or("mobility", "waypoint") == "vector"
          ? mac::MobilityConfig::Model::kConstantVelocity
          : mac::MobilityConfig::Model::kRandomWaypoint;

  const std::string layout = config.get_string_or("layout", "line");
  if (layout != "line" && layout != "hex") {
    throw std::invalid_argument("layout= must be line or hex");
  }
  const bool hex = layout == "hex";
  world.layout.kind = hex ? mac::SiteLayoutConfig::Kind::kHex
                          : mac::SiteLayoutConfig::Kind::kLine;
  world.layout.reuse_factor = config.get_int_or("reuse", 1);
  world.layout.wrap_around = config.get_bool_or("wrap", false);
  world.pilot_band_radius_m = config.get_double_or("band", 0.0);
  if (world.pilot_band_radius_m < 0.0) {
    throw std::invalid_argument("band= must be >= 0 (0 = every cell)");
  }
  // Hex cells carry co-channel interference by default; the line world
  // keeps its historical interference-free behaviour unless asked.
  world.interference_activity =
      config.get_double_or("interference", hex ? 0.4 : 0.0);

  if (auto spec = config.get_string("outage")) {
    std::stringstream stream(*spec);
    std::string window;
    while (std::getline(stream, window, ',')) {
      const auto f = parse_colon_list("outage", window);
      if (f.size() != 3) {
        throw std::invalid_argument(
            "outage= expects cell:start:end windows, got '" + window + "'");
      }
      mac::CellOutageWindow w;
      w.cell = static_cast<int>(f[0]);
      w.start = f[1];
      w.end = f[2];
      if (!w.valid(world.num_cells)) {
        throw std::invalid_argument("outage= window '" + window +
                                    "' is invalid for cells=" +
                                    std::to_string(world.num_cells));
      }
      world.outages.push_back(w);
    }
  }
  if (config.contains("flash") && config.contains("diurnal")) {
    throw std::invalid_argument("flash= and diurnal= are mutually exclusive");
  }
  if (auto spec = config.get_string("flash")) {
    const auto f = parse_colon_list("flash", *spec);
    if (f.size() != 6) {
      throw std::invalid_argument(
          "flash= expects x:y:radius:multiplier:start:end");
    }
    world.modulation.kind = traffic::TrafficModulationConfig::Kind::kFlashCrowd;
    world.modulation.epicenter_x_m = f[0];
    world.modulation.epicenter_y_m = f[1];
    world.modulation.radius_m = f[2];
    world.modulation.rate_multiplier = f[3];
    world.modulation.start = f[4];
    world.modulation.end = f[5];
  }
  if (auto spec = config.get_string("diurnal")) {
    const auto f = parse_colon_list("diurnal", *spec);
    if (f.size() != 2 && f.size() != 3) {
      throw std::invalid_argument(
          "diurnal= expects amplitude:period_s[:wavelength_m]");
    }
    world.modulation.kind = traffic::TrafficModulationConfig::Kind::kDiurnal;
    world.modulation.amplitude = f[0];
    world.modulation.period_s = f[1];
    if (f.size() == 3) world.modulation.wavelength_m = f[2];
  }
  // Per-field rejection naming the knob: "diurnal=: amplitude must be in
  // [0, 1) ..." instead of a generic out-of-range message.
  traffic::validate_or_throw(world.modulation,
                             config.contains("flash") ? "flash" : "diurnal");

  const double radius = config.get_double_or("cell_radius_m", 500.0);
  if (hex) {
    world.layout.site_spacing_m = 2.0 * radius;
    const auto [width, height] = mac::SiteLayout::hex_field_extent(
        world.num_cells, world.layout.site_spacing_m);
    world.mobility.field_width_m = width;
    world.mobility.field_height_m = height;
  } else {
    world.mobility.field_width_m =
        2.0 * radius * static_cast<double>(std::max(world.num_cells, 1));
    world.mobility.field_height_m = 2.0 * radius;
  }
  return world;
}

void run_cellular(const common::KeyValueConfig& config,
                  const experiment::RunSpec& spec,
                  const std::vector<protocols::ProtocolId>& protocol_list,
                  common::TextTable& table) {
  const auto world_cfg = cellular_from(config, spec.params);
  const bool verify = config.get_bool_or("verify", false);
  for (auto id : protocol_list) {
    common::Accumulator loss, err, handoff_drop, tput, delay, handoff_hz,
        interference, stride;
    for (int rep = 0; rep < spec.replications; ++rep) {
      auto cfg = world_cfg;
      cfg.params.seed =
          experiment::replication_seed(spec.params.seed, /*point=*/0, rep);
      const auto factory = [&](const mac::ScenarioParams& p) {
        return protocols::make_protocol(id, p, spec.charisma);
      };
      mac::CellularWorld world(cfg, factory);
      world.run(spec.warmup_s, spec.measure_s);
      const auto m = world.aggregate_metrics();
      if (verify && rep == 0) {
        // The smoke-test teeth: a non-empty window, and the same
        // bit-identical-to-serial guarantee the determinism test pins.
        if (m.voice_generated <= 0 && m.data_generated <= 0) {
          throw std::runtime_error("verify=1: empty measurement window");
        }
        auto serial_cfg = cfg;
        serial_cfg.num_threads = 1;
        serial_cfg.num_shards = 1;
        mac::CellularWorld serial(serial_cfg, factory);
        serial.run(spec.warmup_s, spec.measure_s);
        if (!(serial.aggregate_metrics() == m) ||
            serial.handoffs() != world.handoffs()) {
          throw std::runtime_error(
              "verify=1: parallel world metrics diverged from the serial "
              "run (" + std::string(protocols::protocol_name(id)) + ")");
        }
      }
      loss.add(m.voice_loss_rate());
      err.add(m.voice_error_rate());
      handoff_drop.add(m.voice_handoff_drop_rate());
      tput.add(m.data_throughput_per_frame());
      delay.add(m.mean_data_delay_s());
      handoff_hz.add(m.handoff_rate_hz());
      interference.add(m.mean_interference_db());
      stride.add(m.mean_materialization_stride());
    }
    table.add_row({protocols::protocol_name(id),
                   common::TextTable::sci(loss.mean(), 3),
                   common::TextTable::sci(err.mean(), 3),
                   common::TextTable::sci(handoff_drop.mean(), 3),
                   common::TextTable::num(handoff_hz.mean(), 2),
                   common::TextTable::num(tput.mean(), 2),
                   common::TextTable::num(delay.mean(), 3),
                   common::TextTable::num(interference.mean(), 2),
                   common::TextTable::num(stride.mean(), 2)});
  }
}

std::vector<protocols::ProtocolId> protocols_from(
    const common::KeyValueConfig& config) {
  const std::string name = config.get_string_or("protocol", "charisma");
  if (name == "all") return protocols::all_protocols();
  return {protocols::parse_protocol(name)};
}

void add_result_row(common::TextTable& table, const std::string& label,
                    const experiment::ReplicatedResult& result) {
  table.add_row({label, result.protocol,
                 common::TextTable::sci(result.voice_loss.mean(), 3),
                 common::TextTable::sci(result.voice_error.mean(), 3),
                 common::TextTable::num(result.data_throughput.mean(), 2),
                 common::TextTable::num(result.data_delay_s.mean(), 3),
                 common::TextTable::num(result.slot_utilization.mean(), 3),
                 common::TextTable::num(result.materialization_stride.mean(),
                                        2)});
}

}  // namespace

int main(int argc, char** argv) {
  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nRun with help=1 for usage.\n";
    return 1;
  }
  if (config.get_bool_or("help", false)) {
    print_help();
    return 0;
  }

  try {
    config.reject_unknown(kKnownKeys);
    experiment::RunSpec spec;
    spec.params = scenario_from(config);
    spec.warmup_s = config.get_double_or("warmup", 4.0);
    spec.measure_s = config.get_double_or("measure", 12.0);
    spec.replications = config.get_int_or("replications", 1);
    spec.charisma = charisma_options_from(config);
    const auto protocol_list = protocols_from(config);

    if (config.get_int_or("cells", 1) < 2) {
      for (const char* knob : {"outage", "flash", "diurnal"}) {
        if (config.contains(knob)) {
          std::cerr << "error: " << knob
                    << "= is a world-level scenario and needs cells >= 2\n";
          return 1;
        }
      }
    }

    if (config.get_int_or("cells", 1) >= 2) {
      if (config.contains("sweep")) {
        std::cerr << "error: sweep= is not supported with cells >= 2 yet; "
                     "run one operating point per invocation\n";
        return 1;
      }
      common::TextTable table("charisma_sim multi-cell mobility results");
      table.set_header({"protocol", "voice loss", "voice err",
                        "handoff drop", "handoffs/s", "data tput/frame",
                        "data delay (s)", "interf (dB)", "chan stride"});
      run_cellular(config, spec, protocol_list, table);
      table.print(std::cout);
      if (config.contains("csv")) {
        const std::string path = config.get_string_or("csv", "out.csv");
        if (table.write_csv(path)) {
          std::cout << "\nwrote " << path << '\n';
        } else {
          std::cerr << "could not write " << path << '\n';
          return 1;
        }
      }
      return 0;
    }

    common::TextTable table("charisma_sim results");
    table.set_header({"x", "protocol", "voice loss", "voice err",
                      "data tput/frame", "data delay (s)", "slot util",
                      "chan stride"});

    if (config.contains("sweep")) {
      experiment::SweepConfig sweep;
      sweep.spec = spec;
      const std::string axis = config.get_string_or("sweep", "voice");
      sweep.axis = axis == "data" ? experiment::SweepAxis::kDataUsers
                                  : experiment::SweepAxis::kVoiceUsers;
      sweep.x_values =
          parse_int_list(config.get_string_or("x", "20,60,100,140"));
      sweep.protocols_to_run = protocol_list;
      experiment::ParallelRunner runner;
      for (const auto& cell : experiment::run_sweep(sweep, runner)) {
        add_result_row(table, std::to_string(cell.x), cell.result);
      }
    } else {
      for (auto id : protocol_list) {
        const auto result = experiment::run_replications(id, spec);
        add_result_row(table, "-", result);
      }
    }

    table.print(std::cout);
    if (config.contains("csv")) {
      const std::string path = config.get_string_or("csv", "out.csv");
      if (table.write_csv(path)) {
        std::cout << "\nwrote " << path << '\n';
      } else {
        std::cerr << "could not write " << path << '\n';
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
