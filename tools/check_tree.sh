#!/bin/sh
# Fails when build artifacts are tracked by git. Run from the repo root
# (ctest invokes it via the check_tree test); exits 0 outside a git
# checkout (e.g. a tarball build) so packaged builds don't fail spuriously.
set -eu

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_tree: not a git checkout, skipping"
  exit 0
fi

# Tracked files under build trees or with object/archive suffixes. BENCH_*.json
# trajectory files are allowed at the repo root only.
bad=$(git ls-files -- 'build/**' '*.o' '*.a' '*.so' '*/BENCH_*.json' || true)

if [ -n "$bad" ]; then
  echo "check_tree: build artifacts are tracked by git:" >&2
  echo "$bad" | head -20 >&2
  echo "check_tree: run 'git rm -r --cached <path>' and keep them ignored" >&2
  exit 1
fi
echo "check_tree: OK (no tracked build artifacts)"
