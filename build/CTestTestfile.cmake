# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(charisma_tests "/root/repo/build/charisma_tests")
set_tests_properties(charisma_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;64;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_smoke "/root/repo/build/micro_engine" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;79;add_test;/root/repo/CMakeLists.txt;0;")
