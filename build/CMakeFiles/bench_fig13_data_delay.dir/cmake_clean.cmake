file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_data_delay.dir/bench/fig13_data_delay.cpp.o"
  "CMakeFiles/bench_fig13_data_delay.dir/bench/fig13_data_delay.cpp.o.d"
  "fig13_data_delay"
  "fig13_data_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_data_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
