# Empty dependencies file for bench_fig13_data_delay.
# This may be replaced when dependencies are built.
