file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_ablation.dir/bench/speed_ablation.cpp.o"
  "CMakeFiles/bench_speed_ablation.dir/bench/speed_ablation.cpp.o.d"
  "speed_ablation"
  "speed_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
