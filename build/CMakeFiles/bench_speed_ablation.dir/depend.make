# Empty dependencies file for bench_speed_ablation.
# This may be replaced when dependencies are built.
