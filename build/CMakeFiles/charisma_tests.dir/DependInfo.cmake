
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/analysis_test.cpp" "CMakeFiles/charisma_tests.dir/tests/analysis/analysis_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/analysis/analysis_test.cpp.o.d"
  "/root/repo/tests/channel/channel_bank_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/channel_bank_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/channel_bank_test.cpp.o.d"
  "/root/repo/tests/channel/csi_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/csi_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/csi_test.cpp.o.d"
  "/root/repo/tests/channel/fading_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/fading_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/fading_test.cpp.o.d"
  "/root/repo/tests/channel/gilbert_elliott_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/gilbert_elliott_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/gilbert_elliott_test.cpp.o.d"
  "/root/repo/tests/channel/shadowing_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/shadowing_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/shadowing_test.cpp.o.d"
  "/root/repo/tests/channel/user_channel_test.cpp" "CMakeFiles/charisma_tests.dir/tests/channel/user_channel_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/channel/user_channel_test.cpp.o.d"
  "/root/repo/tests/common/config_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/config_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/config_test.cpp.o.d"
  "/root/repo/tests/common/logging_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/logging_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/logging_test.cpp.o.d"
  "/root/repo/tests/common/math_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/math_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/math_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/rng_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/stats_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "CMakeFiles/charisma_tests.dir/tests/common/table_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/common/table_test.cpp.o.d"
  "/root/repo/tests/core/charisma_test.cpp" "CMakeFiles/charisma_tests.dir/tests/core/charisma_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/core/charisma_test.cpp.o.d"
  "/root/repo/tests/core/fairness_test.cpp" "CMakeFiles/charisma_tests.dir/tests/core/fairness_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/core/fairness_test.cpp.o.d"
  "/root/repo/tests/core/priority_test.cpp" "CMakeFiles/charisma_tests.dir/tests/core/priority_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/core/priority_test.cpp.o.d"
  "/root/repo/tests/experiment/handoff_test.cpp" "CMakeFiles/charisma_tests.dir/tests/experiment/handoff_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/experiment/handoff_test.cpp.o.d"
  "/root/repo/tests/experiment/parallel_test.cpp" "CMakeFiles/charisma_tests.dir/tests/experiment/parallel_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/experiment/parallel_test.cpp.o.d"
  "/root/repo/tests/experiment/report_test.cpp" "CMakeFiles/charisma_tests.dir/tests/experiment/report_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/experiment/report_test.cpp.o.d"
  "/root/repo/tests/experiment/runner_test.cpp" "CMakeFiles/charisma_tests.dir/tests/experiment/runner_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/experiment/runner_test.cpp.o.d"
  "/root/repo/tests/experiment/sweep_test.cpp" "CMakeFiles/charisma_tests.dir/tests/experiment/sweep_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/experiment/sweep_test.cpp.o.d"
  "/root/repo/tests/integration/conservation_test.cpp" "CMakeFiles/charisma_tests.dir/tests/integration/conservation_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/integration/conservation_test.cpp.o.d"
  "/root/repo/tests/integration/cross_protocol_test.cpp" "CMakeFiles/charisma_tests.dir/tests/integration/cross_protocol_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/integration/cross_protocol_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "CMakeFiles/charisma_tests.dir/tests/integration/failure_injection_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/geometry_robustness_test.cpp" "CMakeFiles/charisma_tests.dir/tests/integration/geometry_robustness_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/integration/geometry_robustness_test.cpp.o.d"
  "/root/repo/tests/integration/properties_test.cpp" "CMakeFiles/charisma_tests.dir/tests/integration/properties_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/integration/properties_test.cpp.o.d"
  "/root/repo/tests/mac/contention_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/contention_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/contention_test.cpp.o.d"
  "/root/repo/tests/mac/energy_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/energy_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/energy_test.cpp.o.d"
  "/root/repo/tests/mac/geometry_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/geometry_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/geometry_test.cpp.o.d"
  "/root/repo/tests/mac/metrics_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/metrics_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/metrics_test.cpp.o.d"
  "/root/repo/tests/mac/mobile_user_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/mobile_user_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/mobile_user_test.cpp.o.d"
  "/root/repo/tests/mac/request_queue_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/request_queue_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/request_queue_test.cpp.o.d"
  "/root/repo/tests/mac/reservation_test.cpp" "CMakeFiles/charisma_tests.dir/tests/mac/reservation_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/mac/reservation_test.cpp.o.d"
  "/root/repo/tests/phy/adaptive_phy_test.cpp" "CMakeFiles/charisma_tests.dir/tests/phy/adaptive_phy_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/phy/adaptive_phy_test.cpp.o.d"
  "/root/repo/tests/phy/fixed_phy_test.cpp" "CMakeFiles/charisma_tests.dir/tests/phy/fixed_phy_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/phy/fixed_phy_test.cpp.o.d"
  "/root/repo/tests/phy/modes_test.cpp" "CMakeFiles/charisma_tests.dir/tests/phy/modes_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/phy/modes_test.cpp.o.d"
  "/root/repo/tests/protocols/drma_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/drma_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/drma_test.cpp.o.d"
  "/root/repo/tests/protocols/dtdma_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/dtdma_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/dtdma_test.cpp.o.d"
  "/root/repo/tests/protocols/factory_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/factory_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/factory_test.cpp.o.d"
  "/root/repo/tests/protocols/prma_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/prma_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/prma_test.cpp.o.d"
  "/root/repo/tests/protocols/rama_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/rama_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/rama_test.cpp.o.d"
  "/root/repo/tests/protocols/rmav_test.cpp" "CMakeFiles/charisma_tests.dir/tests/protocols/rmav_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/protocols/rmav_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "CMakeFiles/charisma_tests.dir/tests/sim/event_queue_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/frame_clock_test.cpp" "CMakeFiles/charisma_tests.dir/tests/sim/frame_clock_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/sim/frame_clock_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "CMakeFiles/charisma_tests.dir/tests/sim/simulator_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/traffic/data_source_test.cpp" "CMakeFiles/charisma_tests.dir/tests/traffic/data_source_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/traffic/data_source_test.cpp.o.d"
  "/root/repo/tests/traffic/voice_source_test.cpp" "CMakeFiles/charisma_tests.dir/tests/traffic/voice_source_test.cpp.o" "gcc" "CMakeFiles/charisma_tests.dir/tests/traffic/voice_source_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/charisma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
