# Empty dependencies file for charisma_tests.
# This may be replaced when dependencies are built.
