file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_data_throughput.dir/bench/fig12_data_throughput.cpp.o"
  "CMakeFiles/bench_fig12_data_throughput.dir/bench/fig12_data_throughput.cpp.o.d"
  "fig12_data_throughput"
  "fig12_data_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_data_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
