# Empty dependencies file for charisma_sim.
# This may be replaced when dependencies are built.
