file(REMOVE_RECURSE
  "CMakeFiles/charisma_sim.dir/tools/charisma_sim.cpp.o"
  "CMakeFiles/charisma_sim.dir/tools/charisma_sim.cpp.o.d"
  "charisma_sim"
  "charisma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
