file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fading_trace.dir/bench/fig5_fading_trace.cpp.o"
  "CMakeFiles/bench_fig5_fading_trace.dir/bench/fig5_fading_trace.cpp.o.d"
  "fig5_fading_trace"
  "fig5_fading_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fading_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
