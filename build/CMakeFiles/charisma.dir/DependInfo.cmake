
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/fading_statistics.cpp" "CMakeFiles/charisma.dir/src/analysis/fading_statistics.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/analysis/fading_statistics.cpp.o.d"
  "/root/repo/src/analysis/slotted_aloha.cpp" "CMakeFiles/charisma.dir/src/analysis/slotted_aloha.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/analysis/slotted_aloha.cpp.o.d"
  "/root/repo/src/analysis/voice_capacity.cpp" "CMakeFiles/charisma.dir/src/analysis/voice_capacity.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/analysis/voice_capacity.cpp.o.d"
  "/root/repo/src/channel/channel_bank.cpp" "CMakeFiles/charisma.dir/src/channel/channel_bank.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/channel_bank.cpp.o.d"
  "/root/repo/src/channel/csi.cpp" "CMakeFiles/charisma.dir/src/channel/csi.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/csi.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "CMakeFiles/charisma.dir/src/channel/fading.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/fading.cpp.o.d"
  "/root/repo/src/channel/gilbert_elliott.cpp" "CMakeFiles/charisma.dir/src/channel/gilbert_elliott.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/gilbert_elliott.cpp.o.d"
  "/root/repo/src/channel/shadowing.cpp" "CMakeFiles/charisma.dir/src/channel/shadowing.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/shadowing.cpp.o.d"
  "/root/repo/src/channel/user_channel.cpp" "CMakeFiles/charisma.dir/src/channel/user_channel.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/channel/user_channel.cpp.o.d"
  "/root/repo/src/common/config.cpp" "CMakeFiles/charisma.dir/src/common/config.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/config.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/charisma.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/math.cpp" "CMakeFiles/charisma.dir/src/common/math.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/math.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/charisma.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/charisma.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/charisma.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/charisma.cpp" "CMakeFiles/charisma.dir/src/core/charisma.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/core/charisma.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "CMakeFiles/charisma.dir/src/core/fairness.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/core/fairness.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "CMakeFiles/charisma.dir/src/core/priority.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/core/priority.cpp.o.d"
  "/root/repo/src/experiment/handoff_study.cpp" "CMakeFiles/charisma.dir/src/experiment/handoff_study.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/experiment/handoff_study.cpp.o.d"
  "/root/repo/src/experiment/parallel.cpp" "CMakeFiles/charisma.dir/src/experiment/parallel.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/experiment/parallel.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "CMakeFiles/charisma.dir/src/experiment/report.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/experiment/report.cpp.o.d"
  "/root/repo/src/experiment/runner.cpp" "CMakeFiles/charisma.dir/src/experiment/runner.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/experiment/runner.cpp.o.d"
  "/root/repo/src/experiment/sweep.cpp" "CMakeFiles/charisma.dir/src/experiment/sweep.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/experiment/sweep.cpp.o.d"
  "/root/repo/src/mac/contention.cpp" "CMakeFiles/charisma.dir/src/mac/contention.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/contention.cpp.o.d"
  "/root/repo/src/mac/engine.cpp" "CMakeFiles/charisma.dir/src/mac/engine.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/engine.cpp.o.d"
  "/root/repo/src/mac/metrics.cpp" "CMakeFiles/charisma.dir/src/mac/metrics.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/metrics.cpp.o.d"
  "/root/repo/src/mac/mobile_user.cpp" "CMakeFiles/charisma.dir/src/mac/mobile_user.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/mobile_user.cpp.o.d"
  "/root/repo/src/mac/request_queue.cpp" "CMakeFiles/charisma.dir/src/mac/request_queue.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/request_queue.cpp.o.d"
  "/root/repo/src/mac/reservation.cpp" "CMakeFiles/charisma.dir/src/mac/reservation.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/mac/reservation.cpp.o.d"
  "/root/repo/src/phy/adaptive_phy.cpp" "CMakeFiles/charisma.dir/src/phy/adaptive_phy.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/phy/adaptive_phy.cpp.o.d"
  "/root/repo/src/phy/fixed_phy.cpp" "CMakeFiles/charisma.dir/src/phy/fixed_phy.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/phy/fixed_phy.cpp.o.d"
  "/root/repo/src/phy/modes.cpp" "CMakeFiles/charisma.dir/src/phy/modes.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/phy/modes.cpp.o.d"
  "/root/repo/src/protocols/drma.cpp" "CMakeFiles/charisma.dir/src/protocols/drma.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/drma.cpp.o.d"
  "/root/repo/src/protocols/dtdma.cpp" "CMakeFiles/charisma.dir/src/protocols/dtdma.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/dtdma.cpp.o.d"
  "/root/repo/src/protocols/factory.cpp" "CMakeFiles/charisma.dir/src/protocols/factory.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/factory.cpp.o.d"
  "/root/repo/src/protocols/prma.cpp" "CMakeFiles/charisma.dir/src/protocols/prma.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/prma.cpp.o.d"
  "/root/repo/src/protocols/rama.cpp" "CMakeFiles/charisma.dir/src/protocols/rama.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/rama.cpp.o.d"
  "/root/repo/src/protocols/rmav.cpp" "CMakeFiles/charisma.dir/src/protocols/rmav.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/protocols/rmav.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/charisma.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/charisma.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/traffic/data_source.cpp" "CMakeFiles/charisma.dir/src/traffic/data_source.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/traffic/data_source.cpp.o.d"
  "/root/repo/src/traffic/voice_source.cpp" "CMakeFiles/charisma.dir/src/traffic/voice_source.cpp.o" "gcc" "CMakeFiles/charisma.dir/src/traffic/voice_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
