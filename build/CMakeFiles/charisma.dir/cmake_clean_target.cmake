file(REMOVE_RECURSE
  "libcharisma.a"
)
