# Empty dependencies file for charisma.
# This may be replaced when dependencies are built.
