# Empty compiler generated dependencies file for example_fading_explorer.
# This may be replaced when dependencies are built.
