file(REMOVE_RECURSE
  "CMakeFiles/example_fading_explorer.dir/examples/fading_explorer.cpp.o"
  "CMakeFiles/example_fading_explorer.dir/examples/fading_explorer.cpp.o.d"
  "fading_explorer"
  "fading_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fading_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
