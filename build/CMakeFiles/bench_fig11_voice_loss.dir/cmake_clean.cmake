file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_voice_loss.dir/bench/fig11_voice_loss.cpp.o"
  "CMakeFiles/bench_fig11_voice_loss.dir/bench/fig11_voice_loss.cpp.o.d"
  "fig11_voice_loss"
  "fig11_voice_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_voice_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
