# Empty compiler generated dependencies file for bench_fig11_voice_loss.
# This may be replaced when dependencies are built.
