file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_csi_refresh.dir/bench/ablation_csi_refresh.cpp.o"
  "CMakeFiles/bench_ablation_csi_refresh.dir/bench/ablation_csi_refresh.cpp.o.d"
  "ablation_csi_refresh"
  "ablation_csi_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_csi_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
