# Empty dependencies file for bench_ablation_csi_refresh.
# This may be replaced when dependencies are built.
