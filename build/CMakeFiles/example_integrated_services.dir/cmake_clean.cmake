file(REMOVE_RECURSE
  "CMakeFiles/example_integrated_services.dir/examples/integrated_services.cpp.o"
  "CMakeFiles/example_integrated_services.dir/examples/integrated_services.cpp.o.d"
  "integrated_services"
  "integrated_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_integrated_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
