# Empty dependencies file for example_integrated_services.
# This may be replaced when dependencies are built.
