# Empty compiler generated dependencies file for bench_fig7_abicm.
# This may be replaced when dependencies are built.
