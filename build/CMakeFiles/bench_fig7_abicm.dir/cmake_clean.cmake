file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_abicm.dir/bench/fig7_abicm.cpp.o"
  "CMakeFiles/bench_fig7_abicm.dir/bench/fig7_abicm.cpp.o.d"
  "fig7_abicm"
  "fig7_abicm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_abicm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
