file(REMOVE_RECURSE
  "CMakeFiles/example_handoff_futurework.dir/examples/handoff_futurework.cpp.o"
  "CMakeFiles/example_handoff_futurework.dir/examples/handoff_futurework.cpp.o.d"
  "handoff_futurework"
  "handoff_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_handoff_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
