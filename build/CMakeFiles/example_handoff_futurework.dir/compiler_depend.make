# Empty compiler generated dependencies file for example_handoff_futurework.
# This may be replaced when dependencies are built.
