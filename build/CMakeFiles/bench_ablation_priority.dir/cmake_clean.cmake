file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_priority.dir/bench/ablation_priority.cpp.o"
  "CMakeFiles/bench_ablation_priority.dir/bench/ablation_priority.cpp.o.d"
  "ablation_priority"
  "ablation_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
