file(REMOVE_RECURSE
  "CMakeFiles/example_voice_capacity_planning.dir/examples/voice_capacity_planning.cpp.o"
  "CMakeFiles/example_voice_capacity_planning.dir/examples/voice_capacity_planning.cpp.o.d"
  "voice_capacity_planning"
  "voice_capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_voice_capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
