// Future work (paper Sec. 6): "to which new base station should the user
// attach, from a channel quality point of view?" Runs the multi-station
// handoff study: static attachment versus strongest-filtered-pilot with
// hysteresis, across an asymmetric cell overlap.
//
//   ./handoff_futurework [stations=2] [hysteresis_db=3] [seconds=120]
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: handoff_futurework [key=value ...]\n";
    return 1;
  }

  experiment::HandoffConfig cfg;
  cfg.num_stations = config.get_int_or("stations", 2);
  cfg.hysteresis_db = config.get_double_or("hysteresis_db", 3.0);
  cfg.channel.mean_snr_db = config.get_double_or("mean_snr_db", 10.0);
  cfg.channel.shadow_sigma_db = config.get_double_or("shadow_sigma_db", 6.0);
  // A mild asymmetry: the user sits closer to station 0.
  cfg.station_offset_db.assign(static_cast<std::size_t>(cfg.num_stations),
                               0.0);
  for (int s = 1; s < cfg.num_stations; ++s) {
    cfg.station_offset_db[static_cast<std::size_t>(s)] = -1.5 * s;
  }
  const double seconds = config.get_double_or("seconds", 120.0);
  const auto seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));

  std::cout << "Handoff study: " << cfg.num_stations
            << " base stations, shadowing sigma "
            << cfg.channel.shadow_sigma_db << " dB, hysteresis "
            << cfg.hysteresis_db << " dB, " << seconds << " s\n\n";

  const auto fixed = experiment::run_handoff_study(
      cfg, experiment::AttachmentPolicy::kNearest, seconds, seed);
  const auto adaptive = experiment::run_handoff_study(
      cfg, experiment::AttachmentPolicy::kStrongestPilot, seconds, seed);

  common::TextTable table("Attachment policy comparison");
  table.set_header(
      {"policy", "mean SNR (dB)", "outage fraction", "handoffs / s"});
  table.add_row({"static (nearest)",
                 common::TextTable::num(fixed.mean_snr_db, 2),
                 common::TextTable::num(fixed.outage_fraction, 4),
                 common::TextTable::num(fixed.handoffs_per_second, 3)});
  table.add_row({"strongest pilot + hysteresis",
                 common::TextTable::num(adaptive.mean_snr_db, 2),
                 common::TextTable::num(adaptive.outage_fraction, 4),
                 common::TextTable::num(adaptive.handoffs_per_second, 3)});
  table.print(std::cout);

  std::cout << "\nChannel-quality handoff converts shadowing diversity across\n"
               "stations into SNR/outage gains — the input a multi-cell\n"
               "CHARISMA would feed its CSI-ranked scheduler.\n";
  return 0;
}
