// Future work (paper Sec. 6): "when a nomadic user travels into the range
// of some other base stations, to which new base station should the user
// attach, from a channel quality point of view?"
//
// This used to be a pilot-level side study; it now runs on the real stack:
// a mobility-driven CellularWorld with one full protocol engine per cell,
// distance-based path loss feeding each link's mean SNR, and the
// strongest-filtered-pilot-with-hysteresis rule handing users (and their
// talkspurts, backlogs and backoff state) off between base stations. The
// no-handoff baseline pins every user to its starting cell via an
// unreachable hysteresis margin.
//
//   ./handoff_futurework [protocol=charisma] [cells=2] [kmh=60]
//                        [hysteresis_db=4] [voice_users=40] [seconds=20]
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: handoff_futurework [key=value ...]\n";
    return 1;
  }

  const auto protocol =
      protocols::parse_protocol(config.get_string_or("protocol", "charisma"));
  mac::CellularConfig cfg;
  cfg.num_cells = config.get_int_or("cells", 2);
  cfg.params.num_voice_users = config.get_int_or("voice_users", 40);
  cfg.params.num_data_users = config.get_int_or("data_users", 5);
  cfg.params.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));
  cfg.params.channel.shadow_sigma_db =
      config.get_double_or("shadow_sigma_db", 6.0);
  // Link budget at the 200 m path-loss reference distance.
  cfg.params.channel.mean_snr_db = config.get_double_or("mean_snr_db", 26.0);
  const double kmh = config.get_double_or("kmh", 60.0);
  cfg.mobility.speed_mps = common::km_per_hour(kmh);
  cfg.params.channel.doppler_hz =
      channel::ChannelConfig::doppler_for_speed(cfg.mobility.speed_mps, 2.0e9);
  cfg.mobility.field_width_m = 1000.0 * cfg.num_cells;
  cfg.mobility.field_height_m = 1000.0;
  cfg.handoff_hysteresis_db = config.get_double_or("hysteresis_db", 4.0);
  const double seconds = config.get_double_or("seconds", 20.0);

  std::cout << "Handoff future-work demo: " << cfg.num_cells << " cells, "
            << protocols::protocol_name(protocol) << ", "
            << cfg.params.num_voice_users << " voice + "
            << cfg.params.num_data_users << " data users at " << kmh
            << " km/h, hysteresis " << cfg.handoff_hysteresis_db << " dB, "
            << seconds << " s\n\n";

  const auto factory = [protocol](const mac::ScenarioParams& p) {
    return protocols::make_protocol(protocol, p);
  };
  const auto run_world = [&](double hysteresis_db) {
    auto world_cfg = cfg;
    world_cfg.handoff_hysteresis_db = hysteresis_db;
    mac::CellularWorld world(world_cfg, factory);
    world.run(/*warmup=*/2.0, seconds);
    return std::pair{world.handoffs(), world.aggregate_metrics()};
  };

  // An unreachable margin = static attachment (the no-handoff baseline).
  const auto [static_handoffs, static_m] = run_world(1e9);
  const auto [adaptive_handoffs, adaptive_m] =
      run_world(cfg.handoff_hysteresis_db);

  common::TextTable table("Attachment policy comparison (full MAC stack)");
  table.set_header({"policy", "voice loss", "err component",
                    "handoff drops", "handoffs", "data tput/frame"});
  table.add_row({"static (initial cell)",
                 common::TextTable::sci(static_m.voice_loss_rate(), 3),
                 common::TextTable::sci(static_m.voice_error_rate(), 3),
                 std::to_string(static_m.voice_dropped_handoff),
                 std::to_string(static_handoffs),
                 common::TextTable::num(static_m.data_throughput_per_frame(),
                                        2)});
  table.add_row({"strongest pilot + hysteresis",
                 common::TextTable::sci(adaptive_m.voice_loss_rate(), 3),
                 common::TextTable::sci(adaptive_m.voice_error_rate(), 3),
                 std::to_string(adaptive_m.voice_dropped_handoff),
                 std::to_string(adaptive_handoffs),
                 common::TextTable::num(
                     adaptive_m.data_throughput_per_frame(), 2)});
  table.print(std::cout);

  std::cout
      << "\nA nomadic user drifting away from its cell sinks into the\n"
         "path-loss floor under static attachment; channel-quality handoff\n"
         "trades a small in-transit drop cost for a fresh link — and the\n"
         "protocol carries reservations/backlog state across the move.\n";
  return 0;
}
