// Capacity planning: how many voice users can a cell admit at a target
// packet-loss QoS? Sweeps the voice population for a chosen protocol and
// reports the capacity at the threshold — the operational question behind
// the paper's Fig. 11 read-offs.
//
//   ./voice_capacity_planning [protocol=charisma] [threshold=0.01]
//                             [data_users=0] [queue=1] [measure=10]
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: voice_capacity_planning [key=value ...]\n";
    return 1;
  }

  protocols::ProtocolId protocol;
  try {
    protocol = protocols::parse_protocol(
        config.get_string_or("protocol", "charisma"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  const double threshold = config.get_double_or("threshold", 0.01);

  experiment::SweepConfig sweep;
  sweep.spec.params.num_data_users = config.get_int_or("data_users", 0);
  sweep.spec.params.request_queue = config.get_bool_or("queue", true);
  sweep.spec.warmup_s = config.get_double_or("warmup", 4.0);
  sweep.spec.measure_s = config.get_double_or("measure", 10.0);
  sweep.spec.replications = config.get_int_or("replications", 2);
  sweep.axis = experiment::SweepAxis::kVoiceUsers;
  sweep.x_values = {20, 50, 80, 100, 120, 140, 160, 180};
  sweep.protocols_to_run = {protocol};

  std::cout << "Sweeping voice load for " << protocols::protocol_name(protocol)
            << " (loss threshold " << threshold << ")...\n\n";

  experiment::ParallelRunner runner;
  const auto cells = experiment::run_sweep(sweep, runner);

  const auto metric = [](const experiment::ReplicatedResult& r) {
    return r.voice_loss.mean();
  };
  common::TextTable table("Voice loss versus population");
  table.set_header({"N_v", "loss", "drop", "error", "95% ci"});
  for (const auto& cell : cells) {
    table.add_row({std::to_string(cell.x),
                   common::TextTable::sci(cell.result.voice_loss.mean(), 2),
                   common::TextTable::sci(cell.result.voice_drop.mean(), 2),
                   common::TextTable::sci(cell.result.voice_error.mean(), 2),
                   common::TextTable::sci(
                       common::proportion_half_width(
                           cell.result.voice_loss_pooled),
                       1)});
  }
  table.print(std::cout);

  const auto capacity = experiment::capacity_at_threshold(
      experiment::series_of(cells, protocol, metric), threshold);
  std::cout << "\nCapacity at " << threshold * 100 << "% loss: ";
  if (capacity) {
    std::cout << static_cast<int>(*capacity) << " voice users\n";
  } else {
    std::cout << "below the smallest swept population\n";
  }
  return 0;
}
