// Fading explorer: visualize the channel substrate for a chosen speed —
// an ASCII strip-chart of the combined SNR, the ABICM mode occupancy, and
// the outage statistics that drive every protocol result in the paper.
//
//   ./fading_explorer [kmh=50] [seconds=2] [mean_snr_db=16]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: fading_explorer [key=value ...]\n";
    return 1;
  }

  const double kmh = config.get_double_or("kmh", 50.0);
  const double seconds = config.get_double_or("seconds", 2.0);

  channel::ChannelConfig cfg;
  cfg.mean_snr_db = config.get_double_or("mean_snr_db", 16.0);
  cfg.doppler_hz = channel::ChannelConfig::doppler_for_speed(
      common::km_per_hour(kmh), 2.0e9);

  std::cout << "Device at " << kmh << " km/h -> Doppler "
            << common::TextTable::num(cfg.doppler_hz, 1)
            << " Hz, coherence ~"
            << common::TextTable::num(1000.0 / cfg.doppler_hz, 1) << " ms\n\n";

  channel::UserChannel ch(
      cfg, common::RngStream(
               static_cast<std::uint64_t>(config.get_int_or("seed", 7))));
  const auto phy = phy::AdaptivePhy::abicm6();

  // Strip chart: one row per 25 ms, column = SNR in dB (offset by 5).
  std::cout << "SNR strip chart (each row = 25 ms; '|' = mode thresholds "
               "4/9/13/16.5/20 dB):\n";
  std::cout << "  -5dB      5        15        25       35\n";
  std::vector<std::int64_t> mode_histogram(7, 0);  // [0]=outage, 1..6=modes
  const auto steps = static_cast<long>(seconds / 2.5e-3);
  for (long i = 1; i <= steps; ++i) {
    ch.advance_to(static_cast<double>(i) * 2.5e-3);
    const double db = ch.snr_db();
    const auto mode = phy.select_mode(ch.snr_linear());
    ++mode_histogram[static_cast<std::size_t>(mode ? *mode + 1 : 0)];
    if (i % 10 == 0) {  // one row per 25 ms
      const int col = std::clamp(static_cast<int>(db + 5.0), 0, 40);
      std::string row(41, ' ');
      for (int th : {9, 14, 18, 21, 25}) {  // thresholds + 5 dB offset
        row[static_cast<std::size_t>(th)] = '|';
      }
      row[static_cast<std::size_t>(col)] = '*';
      std::cout << "  " << row << '\n';
    }
  }

  common::TextTable hist("ABICM mode occupancy over the trace");
  hist.set_header({"mode", "bits/symbol", "fraction of time"});
  const double total = static_cast<double>(steps);
  hist.add_row({"outage", "-",
                common::TextTable::num(
                    static_cast<double>(mode_histogram[0]) / total, 4)});
  for (int m = 0; m < 6; ++m) {
    hist.add_row(
        {std::to_string(m),
         common::TextTable::num(phy.table().mode(m).bits_per_symbol, 1),
         common::TextTable::num(
             static_cast<double>(
                 mode_histogram[static_cast<std::size_t>(m + 1)]) /
                 total,
             4)});
  }
  hist.print(std::cout);

  double mean_tput = 0.0;
  for (int m = 0; m < 6; ++m) {
    mean_tput += phy.table().mode(m).bits_per_symbol *
                 static_cast<double>(
                     mode_histogram[static_cast<std::size_t>(m + 1)]) /
                 total;
  }
  std::cout << "\nAverage adaptive throughput: "
            << common::TextTable::num(mean_tput, 2)
            << " bit/symbol (fixed PHY: 1.0) — the \"~2x\" of the paper's\n"
               "D-TDMA/VR versus D-TDMA/FR comparison.\n";
  return 0;
}
