// Quickstart: run CHARISMA and the five baseline protocols on one mixed
// voice+data scenario and print the paper's three metrics side by side.
//
//   ./quickstart [voice_users=80] [data_users=10] [queue=1] [seed=1]
//
// Extra "key=value" arguments override scenario fields (see
// common/config.hpp), e.g. `./quickstart voice_users=120 measure=10`.
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  std::vector<std::string> args(argv + 1, argv + argc);
  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: quickstart [key=value ...]\n";
    return 1;
  }

  experiment::RunSpec spec;
  spec.params.num_voice_users = config.get_int_or("voice_users", 80);
  spec.params.num_data_users = config.get_int_or("data_users", 10);
  spec.params.request_queue = config.get_bool_or("queue", true);
  spec.params.seed =
      static_cast<std::uint64_t>(config.get_int_or("seed", 1));
  spec.warmup_s = config.get_double_or("warmup", 3.0);
  spec.measure_s = config.get_double_or("measure", 15.0);
  spec.replications = config.get_int_or("replications", 2);

  std::cout << "CHARISMA quickstart: " << spec.params.num_voice_users
            << " voice users, " << spec.params.num_data_users
            << " data users, request queue "
            << (spec.params.request_queue ? "on" : "off") << "\n\n";

  common::TextTable table("Six uplink access protocols, one scenario");
  table.set_header({"protocol", "voice loss", "voice drop", "voice err",
                    "data tput/frame", "data delay (s)", "slot util"});
  for (auto id : protocols::all_protocols()) {
    const auto result = experiment::run_replications(id, spec);
    table.add_row({result.protocol,
                   common::TextTable::sci(result.voice_loss.mean(), 2),
                   common::TextTable::sci(result.voice_drop.mean(), 2),
                   common::TextTable::sci(result.voice_error.mean(), 2),
                   common::TextTable::num(result.data_throughput.mean(), 2),
                   common::TextTable::num(result.data_delay_s.mean(), 3),
                   common::TextTable::num(result.slot_utilization.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nSee bench/ for the full Fig. 11-13 reproductions.\n";
  return 0;
}
