// Integrated voice + data services — the paper's motivating scenario
// (Sec. 1): a cell carrying phone calls while nomadic users move files.
// Shows how each service class fares under CHARISMA as the file-transfer
// load grows, and what the channel-capacity-fair extension (Sec. 6 / [22])
// changes for cell-edge users.
//
//   ./integrated_services [voice_users=90] [queue=1] [fairness=0]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "charisma.hpp"

int main(int argc, char** argv) {
  using namespace charisma;

  common::KeyValueConfig config;
  try {
    config = common::KeyValueConfig::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: integrated_services [key=value ...]\n";
    return 1;
  }

  const int voice_users = config.get_int_or("voice_users", 90);
  const bool queue = config.get_bool_or("queue", true);
  const bool fairness = config.get_bool_or("fairness", false);

  core::CharismaOptions options;
  options.fairness = fairness ? core::FairnessMode::kCapacityNormalized
                              : core::FairnessMode::kNone;

  std::cout << "CHARISMA cell: " << voice_users
            << " voice users, growing file-transfer load, request queue "
            << (queue ? "on" : "off") << ", capacity-fair scheduling "
            << (fairness ? "on" : "off") << "\n\n";

  common::TextTable table("Service quality as data load grows");
  table.set_header({"data users", "voice loss", "data tput/frame",
                    "data delay (s)", "slot util", "csi polls/frame"});
  for (int data_users : {0, 10, 20, 40, 60}) {
    mac::ScenarioParams params;
    params.num_voice_users = voice_users;
    params.num_data_users = data_users;
    params.request_queue = queue;
    params.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));
    core::CharismaProtocol proto(params, options);
    const auto& m = proto.run(config.get_double_or("warmup", 4.0),
                              config.get_double_or("measure", 10.0));
    table.add_row({std::to_string(data_users),
                   common::TextTable::sci(m.voice_loss_rate(), 2),
                   common::TextTable::num(m.data_throughput_per_frame(), 2),
                   common::TextTable::num(m.mean_data_delay_s(), 3),
                   common::TextTable::num(m.slot_utilization(), 3),
                   common::TextTable::num(
                       static_cast<double>(m.csi_polls) /
                           static_cast<double>(std::max<std::int64_t>(
                               1, m.frames)),
                       2)});
  }
  table.print(std::cout);

  std::cout << "\nNote how voice QoS is insulated from the data load (the\n"
               "priority offset V plus deadline urgency), while data rides\n"
               "the leftover capacity at CSI-selected high modes.\n";
  return 0;
}
