// The paper's voice source model (§2): a two-state on-off process toggling
// between exponentially distributed talkspurts (mean 1.0 s) and silences
// (mean 1.35 s). During a talkspurt the 8 kbps codec emits one 160-bit
// packet per 20 ms voice period; each packet carries a deadline one voice
// period after generation (footnote 4) and is dropped by the device if
// still untransmitted then.
//
// The source is driven in absolute time: on_frame(now) replays every state
// toggle / packet emission / deadline expiry up to `now` in chronological
// order. Fixed-frame protocols call it at 2.5 ms boundaries (so state
// changes effectively align with frame boundaries, as the paper assumes);
// the variable-frame protocols (RMAV, DRMA) call it at their own frame
// starts and see exactly the same underlying process.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::traffic {

struct VoicePacket {
  common::Time generated_at = 0.0;
  common::Time deadline = 0.0;
};

struct VoiceSourceConfig {
  double mean_talkspurt_s = 1.0;
  double mean_silence_s = 1.35;
  common::Time voice_period = 20e-3;  ///< packet emission interval
  common::Time deadline = 20e-3;      ///< per-packet life (paper fn. 4)

  /// Long-run fraction of time in talkspurt.
  double activity_factor() const {
    return mean_talkspurt_s / (mean_talkspurt_s + mean_silence_s);
  }
};

class VoiceSource {
 public:
  /// `rng` is the source's private stream: an mt-backed RngStream converts
  /// implicitly (the historical call shape), a CompactRngStream gives the
  /// ~24-byte per-user representation of large sparse populations.
  VoiceSource(const VoiceSourceConfig& config, common::TrafficRng rng);

  /// What happened since the previous call (events up to and including
  /// `now`).
  struct FrameUpdate {
    bool talkspurt_started = false;
    int packets_generated = 0;
    int packets_expired = 0;
  };

  /// Advances the source to `now` (non-decreasing across calls).
  FrameUpdate on_frame(common::Time now);

  bool in_talkspurt() const { return talkspurt_; }
  bool has_packet() const { return pending_.has_value(); }
  const VoicePacket& packet() const { return *pending_; }

  /// When the next packet will be emitted if the talkspurt persists.
  common::Time next_packet_at() const { return next_packet_at_; }

  /// Removes the pending packet (it was transmitted — successfully or not;
  /// voice has no link-layer retransmission).
  void consume_packet() { pending_.reset(); }

  std::int64_t packets_generated() const { return packets_generated_; }
  const VoiceSourceConfig& config() const { return config_; }

  /// Scenario-level call intensity scaling (flash crowds, diurnal tides):
  /// silences shrink by the factor, so calls arrive `scale` times as often
  /// while talkspurt lengths stay the paper's. scale = 1 (the default) is
  /// the exact legacy process — the divided mean is bit-identical — and the
  /// factor applies from the next silence draw, not retroactively.
  void set_rate_scale(double scale);
  double rate_scale() const { return rate_scale_; }

 private:
  void ensure_initialized(common::Time now);

  VoiceSourceConfig config_;
  common::TrafficRng rng_;
  double rate_scale_ = 1.0;
  bool talkspurt_ = false;
  common::Time state_until_ = 0.0;     ///< absolute toggle time
  common::Time next_packet_at_ = 0.0;  ///< next emission while talking
  std::optional<VoicePacket> pending_;
  std::int64_t packets_generated_ = 0;
  bool initialized_ = false;
};

}  // namespace charisma::traffic
