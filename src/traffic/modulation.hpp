// Spatio-temporal traffic modulation for flash-crowd and diurnal-tide
// scenarios. A pure function of (config, time, position) returns the rate
// scale CellularWorld applies to each user's sources every decision epoch —
// there is no state and no RNG here, so the modulation cannot disturb any
// draw sequence and the parallel world's determinism guarantee is
// untouched. kind = kNone short-circuits to 1 (callers skip the
// set_rate_scale calls entirely, keeping legacy runs bit-identical).
#pragma once

#include <string>

#include "common/units.hpp"

namespace charisma::traffic {

struct TrafficModulationConfig {
  enum class Kind { kNone, kFlashCrowd, kDiurnal };
  Kind kind = Kind::kNone;

  // kFlashCrowd: an event (stadium, incident) concentrates traffic around
  // `epicenter` during [start, end): users within `radius_m` generate at
  // `rate_multiplier` times their nominal intensity.
  double epicenter_x_m = 0.0;
  double epicenter_y_m = 0.0;
  double radius_m = 500.0;
  double rate_multiplier = 5.0;
  common::Time start = 0.0;
  common::Time end = 0.0;

  // kDiurnal: standing spatial tide — intensity swings by ±amplitude on a
  // `period_s` cycle, with the phase advancing across the field over
  // `wavelength_m` (opposite ends of the field peak in antiphase, moving
  // load between cells like a morning/evening commute).
  double amplitude = 0.5;
  double period_s = 60.0;
  double wavelength_m = 2000.0;

  bool valid() const {
    switch (kind) {
      case Kind::kNone:
        return true;
      case Kind::kFlashCrowd:
        return radius_m > 0.0 && rate_multiplier > 0.0 && end >= start;
      case Kind::kDiurnal:
        return amplitude >= 0.0 && amplitude < 1.0 && period_s > 0.0 &&
               wavelength_m > 0.0;
    }
    return false;
  }
};

/// The traffic-intensity scale (> 0) in force at time `t` for a user at
/// (x, y). Exactly 1.0 for kNone.
double rate_scale(const TrafficModulationConfig& cfg, common::Time t,
                  double x, double y);

/// valid()'s verbose twin for config parse layers: throws
/// std::invalid_argument naming `knob` (the CLI key, e.g. "flash" or
/// "diurnal") and the offending field. The positivity constraints are what
/// keep every rate_scale() result > 0 — a non-positive scale would turn
/// the sources' divided exponential means into inf/NaN toggle times, which
/// VoiceSource/DataSource::set_rate_scale also reject as a last line of
/// defense.
void validate_or_throw(const TrafficModulationConfig& cfg,
                       const std::string& knob);

}  // namespace charisma::traffic
