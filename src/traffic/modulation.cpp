#include "traffic/modulation.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace charisma::traffic {

double rate_scale(const TrafficModulationConfig& cfg, common::Time t,
                  double x, double y) {
  switch (cfg.kind) {
    case TrafficModulationConfig::Kind::kNone:
      return 1.0;
    case TrafficModulationConfig::Kind::kFlashCrowd: {
      if (t < cfg.start || t >= cfg.end) return 1.0;
      const double dx = x - cfg.epicenter_x_m;
      const double dy = y - cfg.epicenter_y_m;
      return dx * dx + dy * dy <= cfg.radius_m * cfg.radius_m
                 ? cfg.rate_multiplier
                 : 1.0;
    }
    case TrafficModulationConfig::Kind::kDiurnal: {
      const double phase =
          2.0 * std::numbers::pi * t / cfg.period_s +
          std::numbers::pi * x / cfg.wavelength_m;
      return 1.0 + cfg.amplitude * std::sin(phase);
    }
  }
  return 1.0;
}

void validate_or_throw(const TrafficModulationConfig& cfg,
                       const std::string& knob) {
  const auto fail = [&knob](const std::string& what) {
    throw std::invalid_argument(knob + "=: " + what);
  };
  switch (cfg.kind) {
    case TrafficModulationConfig::Kind::kNone:
      return;
    case TrafficModulationConfig::Kind::kFlashCrowd:
      if (!(cfg.radius_m > 0.0)) fail("radius must be > 0");
      if (!(cfg.rate_multiplier > 0.0)) {
        fail("multiplier must be > 0 (a non-positive rate scale would make "
             "the sources' toggle times inf/NaN)");
      }
      if (!(cfg.end >= cfg.start)) fail("end must be >= start");
      return;
    case TrafficModulationConfig::Kind::kDiurnal:
      if (!(cfg.amplitude >= 0.0 && cfg.amplitude < 1.0)) {
        fail("amplitude must be in [0, 1) so the trough rate scale stays "
             "positive");
      }
      if (!(cfg.period_s > 0.0)) fail("period_s must be > 0");
      if (!(cfg.wavelength_m > 0.0)) fail("wavelength_m must be > 0");
      return;
  }
  fail("unknown modulation kind");
}

}  // namespace charisma::traffic
