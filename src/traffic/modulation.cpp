#include "traffic/modulation.hpp"

#include <cmath>
#include <numbers>

namespace charisma::traffic {

double rate_scale(const TrafficModulationConfig& cfg, common::Time t,
                  double x, double y) {
  switch (cfg.kind) {
    case TrafficModulationConfig::Kind::kNone:
      return 1.0;
    case TrafficModulationConfig::Kind::kFlashCrowd: {
      if (t < cfg.start || t >= cfg.end) return 1.0;
      const double dx = x - cfg.epicenter_x_m;
      const double dy = y - cfg.epicenter_y_m;
      return dx * dx + dy * dy <= cfg.radius_m * cfg.radius_m
                 ? cfg.rate_multiplier
                 : 1.0;
    }
    case TrafficModulationConfig::Kind::kDiurnal: {
      const double phase =
          2.0 * std::numbers::pi * t / cfg.period_s +
          std::numbers::pi * x / cfg.wavelength_m;
      return 1.0 + cfg.amplitude * std::sin(phase);
    }
  }
  return 1.0;
}

}  // namespace charisma::traffic
