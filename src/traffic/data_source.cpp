#include "traffic/data_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace charisma::traffic {

namespace {
constexpr double kTimeEps = 1e-9;
}

DataSource::DataSource(const DataSourceConfig& config, common::RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  if (config.mean_interarrival_s <= 0.0 || config.mean_burst_packets < 1.0) {
    throw std::invalid_argument("DataSource: invalid traffic parameters");
  }
  next_burst_at_ = rng_.exponential(config_.mean_interarrival_s);
}

DataSource::FrameUpdate DataSource::on_frame(common::Time now) {
  FrameUpdate update;
  while (next_burst_at_ <= now + kTimeEps) {
    const auto burst = std::max<int>(
        1, static_cast<int>(std::ceil(rng_.exponential(config_.mean_burst_packets))));
    for (int i = 0; i < burst; ++i) queue_.push_back(now);
    packets_generated_ += burst;
    ++update.bursts_arrived;
    update.packets_arrived += burst;
    next_burst_at_ += rng_.exponential(config_.mean_interarrival_s);
  }
  return update;
}

void DataSource::pop_head() {
  if (queue_.empty()) {
    throw std::logic_error("DataSource::pop_head: empty queue");
  }
  queue_.pop_front();
}

void DataSource::push_front(const std::vector<common::Time>& arrivals) {
  // Re-insert in original order: the last element pushed lands at the very
  // front, so iterate in reverse.
  for (auto it = arrivals.rbegin(); it != arrivals.rend(); ++it) {
    queue_.push_front(*it);
  }
}

}  // namespace charisma::traffic
