#include "traffic/data_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace charisma::traffic {

namespace {
constexpr double kTimeEps = 1e-9;
}

DataSource::DataSource(const DataSourceConfig& config, common::TrafficRng rng)
    : config_(config), rng_(std::move(rng)) {
  if (config.mean_interarrival_s <= 0.0 || config.mean_burst_packets < 1.0) {
    throw std::invalid_argument("DataSource: invalid traffic parameters");
  }
  if (config.mmpp_rate_ratio < 1.0 || config.mmpp_mean_sojourn_s < 0.0) {
    throw std::invalid_argument("DataSource: invalid MMPP parameters");
  }
  if (config_.mmpp_enabled()) {
    mmpp_toggle_at_ = rng_.exponential(config_.mmpp_mean_sojourn_s);
  }
  next_burst_at_ = next_gap(0.0);
}

void DataSource::set_rate_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("DataSource: rate scale must be positive");
  }
  rate_scale_ = scale;
}

double DataSource::next_gap(common::Time ref) {
  const double base = config_.mean_interarrival_s / rate_scale_;
  if (!config_.mmpp_enabled()) return rng_.exponential(base);
  while (mmpp_toggle_at_ <= ref) {
    mmpp_high_ = !mmpp_high_;
    mmpp_toggle_at_ += rng_.exponential(config_.mmpp_mean_sojourn_s);
  }
  return rng_.exponential(mmpp_high_ ? base / config_.mmpp_rate_ratio : base);
}

DataSource::FrameUpdate DataSource::on_frame(common::Time now) {
  FrameUpdate update;
  while (next_burst_at_ <= now + kTimeEps) {
    const auto burst = std::max<int>(
        1, static_cast<int>(std::ceil(rng_.exponential(config_.mean_burst_packets))));
    for (int i = 0; i < burst; ++i) queue_.push_back(now);
    packets_generated_ += burst;
    ++update.bursts_arrived;
    update.packets_arrived += burst;
    next_burst_at_ += next_gap(next_burst_at_);
  }
  return update;
}

void DataSource::pop_head() {
  if (queue_.empty()) {
    throw std::logic_error("DataSource::pop_head: empty queue");
  }
  queue_.pop_front();
}

void DataSource::push_front(std::span<const common::Time> arrivals) {
  // Re-insert in original order: the last element pushed lands at the very
  // front, so iterate in reverse.
  for (auto it = arrivals.rbegin(); it != arrivals.rend(); ++it) {
    queue_.push_front(*it);
  }
}

}  // namespace charisma::traffic
