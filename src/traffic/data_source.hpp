// The paper's file-data source model (§2): bursts arrive with exponential
// interarrival times (mean 1 s); each burst holds an exponentially
// distributed number of fixed-size packets (mean 100). Packets arrive at
// frame boundaries, are delay-insensitive (never expire), and corrupted
// transmissions are retransmitted by the datalink layer — the per-packet
// arrival timestamp is kept so the paper's delay metric (arrival to start
// of the *successful* transmission) can be reported.
#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::traffic {

struct DataSourceConfig {
  double mean_interarrival_s = 1.0;
  double mean_burst_packets = 100.0;
  common::Time frame_duration = 2.5e-3;

  // Two-state Markov-modulated arrivals (MMPP) beyond the plain Poisson
  // process: in the high state bursts arrive mmpp_rate_ratio times faster;
  // the modulating chain toggles with exponential sojourns of the given
  // mean. ratio = 1 or sojourn = 0 disables the chain entirely (no extra
  // RNG draws; the Poisson process is reproduced bit for bit).
  double mmpp_rate_ratio = 1.0;
  double mmpp_mean_sojourn_s = 0.0;

  bool mmpp_enabled() const {
    return mmpp_rate_ratio > 1.0 && mmpp_mean_sojourn_s > 0.0;
  }
};

class DataSource {
 public:
  /// `rng` is the source's private stream: an mt-backed RngStream converts
  /// implicitly (the historical call shape), a CompactRngStream gives the
  /// ~24-byte per-user representation of large sparse populations.
  DataSource(const DataSourceConfig& config, common::TrafficRng rng);

  struct FrameUpdate {
    int bursts_arrived = 0;
    int packets_arrived = 0;
  };

  /// Advances to the frame boundary at `now`; bursts whose arrival time has
  /// passed join the backlog at this boundary (paper: packets arrive at
  /// frame boundaries).
  FrameUpdate on_frame(common::Time now);

  int backlog() const { return static_cast<int>(queue_.size()); }
  bool empty() const { return queue_.empty(); }

  /// Arrival time of the head-of-line packet. Requires !empty().
  common::Time head_arrival() const { return queue_.front(); }

  /// Removes the head-of-line packet (successfully delivered).
  void pop_head();

  /// Returns failed packets (by arrival time) to the head of the queue in
  /// their original order — the datalink ARQ path. Takes a view: callers
  /// already hold the arrivals contiguously (a local array or a reused
  /// scratch buffer), so no per-frame vector is materialized.
  void push_front(std::span<const common::Time> arrivals);

  std::int64_t packets_generated() const { return packets_generated_; }
  const DataSourceConfig& config() const { return config_; }

  /// Scenario-level burst intensity scaling (flash crowds, diurnal tides):
  /// interarrival means shrink by the factor from the next draw on.
  /// scale = 1 (the default) reproduces the legacy draws bit for bit.
  void set_rate_scale(double scale);
  double rate_scale() const { return rate_scale_; }

  /// Current MMPP modulating state (always false when disabled) — test
  /// visibility.
  bool mmpp_high() const { return mmpp_high_; }

 private:
  /// Draws the gap to the burst after `ref`, first advancing the MMPP
  /// modulating chain to `ref` so the gap uses the state in force there.
  double next_gap(common::Time ref);

  DataSourceConfig config_;
  common::TrafficRng rng_;
  double rate_scale_ = 1.0;
  bool mmpp_high_ = false;
  common::Time mmpp_toggle_at_ = 0.0;
  std::deque<common::Time> queue_;  ///< per-packet arrival time
  common::Time next_burst_at_;
  std::int64_t packets_generated_ = 0;
};

}  // namespace charisma::traffic
