#include "traffic/voice_source.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace charisma::traffic {

namespace {
constexpr double kTimeEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

VoiceSource::VoiceSource(const VoiceSourceConfig& config,
                         common::TrafficRng rng)
    : config_(config), rng_(std::move(rng)) {
  if (config.mean_talkspurt_s <= 0.0 || config.mean_silence_s <= 0.0) {
    throw std::invalid_argument("VoiceSource: state means must be positive");
  }
  if (config.voice_period <= 0.0 || config.deadline <= 0.0) {
    throw std::invalid_argument("VoiceSource: invalid period/deadline");
  }
}

void VoiceSource::ensure_initialized(common::Time now) {
  if (initialized_) return;
  initialized_ = true;
  // Every source starts silent. Starting in the stationary mix would drop
  // dozens of simultaneous first-packet contenders into the request phase
  // at t=0 — a slotted-ALOHA collision collapse no permission probability
  // recovers from, and a regime none of the studied protocols is designed
  // for. From silence, the on-off mix converges to the stationary activity
  // factor with time constant tt*ts/(tt+ts) ~ 0.57 s, well inside the
  // simulation warmup.
  talkspurt_ = false;
  state_until_ = now + rng_.exponential(config_.mean_silence_s / rate_scale_);
  next_packet_at_ = kInf;
}

void VoiceSource::set_rate_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("VoiceSource: rate scale must be positive");
  }
  rate_scale_ = scale;
}

VoiceSource::FrameUpdate VoiceSource::on_frame(common::Time now) {
  FrameUpdate update;
  ensure_initialized(now);

  // Replay events chronologically up to `now`. At equal timestamps the
  // processing order is expiry -> state toggle -> packet emission, so a
  // packet whose deadline coincides with the next emission (deadline ==
  // period) is dropped before its successor appears.
  for (;;) {
    const common::Time expiry_t = pending_ ? pending_->deadline : kInf;
    const common::Time toggle_t = state_until_;
    const common::Time packet_t = talkspurt_ ? next_packet_at_ : kInf;
    const common::Time next = std::min({expiry_t, toggle_t, packet_t});
    if (next > now + kTimeEps) break;

    if (expiry_t <= std::min(toggle_t, packet_t)) {
      pending_.reset();
      ++update.packets_expired;
      continue;
    }
    if (toggle_t <= packet_t) {
      talkspurt_ = !talkspurt_;
      state_until_ =
          toggle_t +
          rng_.exponential(talkspurt_ ? config_.mean_talkspurt_s
                                      : config_.mean_silence_s / rate_scale_);
      if (talkspurt_) {
        update.talkspurt_started = true;
        next_packet_at_ = toggle_t;
      } else {
        next_packet_at_ = kInf;
      }
      continue;
    }
    // Packet emission.
    if (pending_) {
      // Only reachable with deadline > period configurations; the
      // superseded packet is dropped.
      pending_.reset();
      ++update.packets_expired;
    }
    pending_ = VoicePacket{packet_t, packet_t + config_.deadline};
    ++packets_generated_;
    ++update.packets_generated;
    next_packet_at_ = packet_t + config_.voice_period;
  }
  return update;
}

}  // namespace charisma::traffic
