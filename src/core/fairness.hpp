// Channel-capacity-fair priority adjustment — the first future-work avenue
// of the paper (§6, after Wang/Kwok/Lau [22]): a raw CSI-ranked scheduler
// starves users whose *average* channel is poor (cell-edge, shadowed). The
// capacity-fair variant ranks users by their throughput relative to their
// own long-run average, so everyone is served during their personal
// "good" periods.
#pragma once

#include <unordered_map>

#include "common/units.hpp"

namespace charisma::core {

enum class FairnessMode {
  kNone,                 ///< paper's Eq. (2): absolute throughput
  kCapacityNormalized,   ///< f(CSI) / EWMA of the user's own f(CSI)
};

class FairnessTracker {
 public:
  /// `smoothing` is the EWMA weight of the newest sample (0, 1].
  explicit FairnessTracker(double smoothing = 0.02);

  /// Records the user's current attainable throughput (call every frame the
  /// user is visible to the scheduler).
  void observe(common::UserId user, double throughput);

  /// The throughput figure the priority metric should use.
  double adjusted_throughput(common::UserId user, double throughput,
                             FairnessMode mode) const;

  /// The user's tracked average (0 before any observation).
  double average(common::UserId user) const;

  void reset() { ewma_.clear(); }

 private:
  double smoothing_;
  std::unordered_map<common::UserId, double> ewma_;
};

}  // namespace charisma::core
