// Channel-capacity-fair priority adjustment — the first future-work avenue
// of the paper (§6, after Wang/Kwok/Lau [22]): a raw CSI-ranked scheduler
// starves users whose *average* channel is poor (cell-edge, shadowed). The
// capacity-fair variant is a proportional-fair rule: rank users by their
// attainable rate relative to an EWMA of the throughput they have actually
// been GRANTED. A user the scheduler keeps passing over sees its achieved
// average decay toward zero and its priority rise until it is served, so
// everyone is served during their personal "good" periods.
#pragma once

#include <unordered_map>

#include "common/units.hpp"

namespace charisma::core {

enum class FairnessMode {
  kNone,                 ///< paper's Eq. (2): absolute throughput
  kCapacityNormalized,   ///< f(CSI) / EWMA of the user's *achieved* rate
};

class FairnessTracker {
 public:
  /// `smoothing` is the EWMA weight of the newest sample (0, 1].
  explicit FairnessTracker(double smoothing = 0.02);

  /// Records the throughput the user was actually granted this frame
  /// (0 when it competed and was passed over). Call once per frame for
  /// every user visible to the scheduler.
  void observe(common::UserId user, double throughput);

  /// The throughput figure the priority metric should use: the attainable
  /// `throughput` normalized by the user's achieved average (floored, so a
  /// starved or never-served user is maximally boosted rather than
  /// divided by zero).
  double adjusted_throughput(common::UserId user, double throughput,
                             FairnessMode mode) const;

  /// The user's tracked achieved average (0 before any observation).
  double average(common::UserId user) const;

  void reset() { ewma_.clear(); }

  /// Floor of the achieved average in the normalization — bounds the
  /// starvation boost to 2.5/kMinAverage times the attainable rate.
  static constexpr double kMinAverage = 0.05;

 private:
  double smoothing_;
  std::unordered_map<common::UserId, double> ewma_;
};

}  // namespace charisma::core
