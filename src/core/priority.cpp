#include "core/priority.hpp"

#include <algorithm>
#include <cmath>

namespace charisma::core {

int frames_to_deadline(common::Time deadline, common::Time now,
                       common::Time frame_duration) {
  const double remaining = (deadline - now) / frame_duration;
  return std::max(1, static_cast<int>(std::ceil(remaining - 1e-9)));
}

double request_priority(const mac::PendingRequest& request,
                        double throughput_estimate, common::Time now,
                        common::Time frame_duration,
                        const PriorityWeights& weights) {
  if (request.type == mac::RequestType::kVoice) {
    const int t_d = frames_to_deadline(request.deadline, now, frame_duration);
    return weights.alpha_voice * throughput_estimate +
           weights.gamma_voice / static_cast<double>(t_d) +
           weights.voice_offset;
  }
  return weights.alpha_data * throughput_estimate +
         weights.gamma_data * static_cast<double>(request.frames_waited);
}

}  // namespace charisma::core
