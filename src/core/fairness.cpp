#include "core/fairness.hpp"

#include <algorithm>
#include <stdexcept>

namespace charisma::core {

FairnessTracker::FairnessTracker(double smoothing) : smoothing_(smoothing) {
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("FairnessTracker: smoothing must be in (0,1]");
  }
}

void FairnessTracker::observe(common::UserId user, double throughput) {
  auto [it, inserted] = ewma_.try_emplace(user, throughput);
  if (!inserted) {
    it->second += smoothing_ * (throughput - it->second);
  }
}

double FairnessTracker::average(common::UserId user) const {
  auto it = ewma_.find(user);
  return it == ewma_.end() ? 0.0 : it->second;
}

double FairnessTracker::adjusted_throughput(common::UserId user,
                                            double throughput,
                                            FairnessMode mode) const {
  if (mode == FairnessMode::kNone) return throughput;
  // Proportional fair: attainable rate over achieved average. The floor
  // both avoids the divide-by-zero and caps the boost of a never-served
  // user; the 2.5 rescales into the absolute range so the urgency and
  // offset terms keep their calibrated proportions (a user granted exactly
  // its attainable rate every frame scores like a mid-ladder 2.5 bit/sym
  // user).
  const double avg = std::max(average(user), kMinAverage);
  return 2.5 * throughput / avg;
}

}  // namespace charisma::core
