// The CHARISMA priority metric — Eq. (2) of the paper.
//
// The scanned equation is typographically corrupted, but the prose pins the
// semantics down: priority must rise with (i) the throughput the user's
// channel currently supports f(CSI), (ii) deadline urgency for voice /
// waiting time for data, and (iii) a constant offset V giving voice its
// higher service class. We realize those monotonicities as
//
//   voice:  beta = alpha_v * f(CSI)  +  gamma_v / max(T_d, 1)  +  V
//   data:   beta = alpha_d * f(CSI)  +  gamma_d * T_w
//
// with f(CSI) the normalized throughput (bit/symbol) of the mode the base
// station would grant (0 in outage), T_d the frames remaining to the voice
// packet's deadline and T_w the frames a data request has waited since its
// ACK. The alpha/gamma/V weights "reflect the relative importance of the
// traffic factors: urgency, channel condition, and traffic type" (§4.3)
// and are swept by bench_ablation_priority.
#pragma once

#include "common/units.hpp"
#include "mac/request_queue.hpp"

namespace charisma::core {

struct PriorityWeights {
  double alpha_voice = 1.0;  ///< CSI-throughput weight, voice
  double alpha_data = 1.0;   ///< CSI-throughput weight, data
  double gamma_voice = 4.0;  ///< urgency weight (scales 1/T_d)
  double gamma_data = 0.02;  ///< waiting-time weight (scales T_w)
  double voice_offset = 8.0; ///< V: service-class offset for voice
};

/// Frames remaining until `deadline` as seen at `now` (>= 1; the request is
/// purged before it reaches 0).
int frames_to_deadline(common::Time deadline, common::Time now,
                       common::Time frame_duration);

/// The priority beta_i of one request. `throughput_estimate` is f(CSI_i) in
/// bits/symbol (already fairness-adjusted if that extension is active).
double request_priority(const mac::PendingRequest& request,
                        double throughput_estimate, common::Time now,
                        common::Time frame_duration,
                        const PriorityWeights& weights);

}  // namespace charisma::core
