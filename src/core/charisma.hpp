// CHARISMA — CHannel Adaptive Reservation-based ISochronous Multiple Access
// (paper §4). The distinctive feature over the D-TDMA baselines: contention
// winners are *gathered* rather than served first-come-first-served; after
// the request phase the base station ranks the whole candidate pool (new
// winners, backlog, and auto-generated voice reservation requests) by the
// CSI/urgency priority metric (Eq. 2) and packs the N_i information slots
// with the users who can use the channel most efficiently, announcing a
// transmission mode per allocation. Backlogged requests with expired CSI
// are refreshed through the pilot-symbol polling subframe (§4.4, N_b polls
// per frame).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "core/fairness.hpp"
#include "core/priority.hpp"
#include "mac/engine.hpp"
#include "mac/request_queue.hpp"

namespace charisma::core {

struct CharismaOptions {
  PriorityWeights priority{};

  /// Pilot/poll slots per frame; -1 = use geometry.num_pilot_slots.
  int csi_poll_budget = -1;

  /// Disable to measure the value of the §4.4 refresh mechanism
  /// (bench_ablation_csi_refresh).
  bool enable_csi_refresh = true;

  /// Cap on information slots one data request may take per frame
  /// (<= 0 = no cap beyond the frame itself).
  int max_slots_per_data_request = 0;

  /// Future-work extension (§6 / [22]).
  FairnessMode fairness = FairnessMode::kNone;
};

class CharismaProtocol : public mac::ProtocolEngine {
 public:
  explicit CharismaProtocol(const mac::ScenarioParams& params,
                            const CharismaOptions& options = {});

  std::string name() const override { return "CHARISMA"; }

  /// Current size of the base station's backlog pool (tests/inspection).
  std::size_t pool_size() const { return pool_.size(); }
  std::size_t reservations_held() const { return reservations_.size(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;
  std::int64_t pending_request_count() const override {
    return static_cast<std::int64_t>(pool_.size());
  }

 private:
  struct Reservation {
    /// When the base station auto-generates the next request (one voice
    /// period after the previous packet's request).
    common::Time next_request_at = 0.0;
    /// generated_at of the packet whose request (auto or contention-won)
    /// has already been issued. In the no-queue configuration an unserved
    /// request is discarded at frame end; the device notices the missing
    /// announcement and re-enters contention for the same packet — this
    /// field is what makes that re-entry detectable.
    common::Time requested_packet_at = -1.0;
  };

  void release_finished_talkspurts();
  void generate_voice_auto_requests();
  void run_contention_phase();
  void refresh_backlog_csi();
  void allocate_and_transmit();

  /// f(CSI) for a request: normalized throughput of the mode its current
  /// estimate supports, fairness-adjusted when the extension is active.
  double throughput_estimate(const mac::PendingRequest& request) const;
  double priority_of(const mac::PendingRequest& request) const;

  CharismaOptions options_;
  int poll_budget_;
  mac::RequestQueue pool_;  ///< pending requests awaiting allocation
  std::unordered_map<common::UserId, Reservation> reservations_;
  /// Base station's per-user CSI cache (last pilot observation).
  std::unordered_map<common::UserId, channel::CsiEstimate> csi_cache_;
  FairnessTracker fairness_;
};

}  // namespace charisma::core
