// The classical fixed-throughput physical layer used by RAMA, RMAV, DRMA
// and D-TDMA/FR: one modulation/coding scheme sized for a reference SNR,
// always one packet per slot, with the packet-error rate following the same
// coded-modulation BER curve evaluated at the instantaneous channel state.
// No adaptation: transmissions during fades are simply corrupted (paper
// §5.3.1).
#pragma once

#include "phy/modes.hpp"

namespace charisma::phy {

class FixedPhy {
 public:
  /// `ber_reference_db`: SNR at which the scheme reaches `target_ber`
  /// (the design point of the static link budget).
  FixedPhy(double ber_reference_db, double target_ber, int packet_bits);

  /// Defaults from DESIGN.md: 1 bit/symbol, design point 7 dB, BER 1e-5,
  /// 160-bit packets.
  static FixedPhy standard();

  double bits_per_symbol() const { return 1.0; }
  int packets_per_slot() const { return 1; }

  double ber(double true_snr_linear) const { return mode_.ber(true_snr_linear); }
  double packet_error_rate(double true_snr_linear) const;

  /// Draws a packet success from the user's stream — any type with a
  /// bernoulli(double) draw (RngStream, CompactRngStream, TrafficRng).
  template <typename Rng>
  bool transmit_packet(double true_snr_linear, Rng& rng) const {
    return !rng.bernoulli(packet_error_rate(true_snr_linear));
  }

  double ber_reference_db() const { return mode_.threshold_db; }
  int packet_bits() const { return packet_bits_; }

 private:
  TransmissionMode mode_;
  int packet_bits_;
};

}  // namespace charisma::phy
