#include "phy/modes.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace charisma::phy {

double TransmissionMode::ber(double snr_linear) const {
  if (snr_linear <= 0.0) return 0.5;
  const double b = 0.5 * std::erfc(std::sqrt(ber_coefficient * snr_linear));
  return b < 0.5 ? b : 0.5;
}

double TransmissionMode::per(double snr_linear, int bits) const {
  const double b = ber(snr_linear);
  // 1 - (1-b)^bits, computed stably for tiny b.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-b));
}

ModeTable ModeTable::custom(const std::vector<double>& bits_per_symbol,
                            const std::vector<double>& thresholds_db,
                            double target_ber) {
  if (bits_per_symbol.empty() ||
      bits_per_symbol.size() != thresholds_db.size()) {
    throw std::invalid_argument("ModeTable: mismatched mode lists");
  }
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    throw std::invalid_argument("ModeTable: target_ber must be in (0, 0.5)");
  }
  ModeTable table;
  table.target_ber_ = target_ber;
  // BER(th) = target  =>  g = erfc_inv(2*target)^2 / th_linear.
  const double x = common::erfc_inv(2.0 * target_ber);
  const double x2 = x * x;
  for (std::size_t i = 0; i < bits_per_symbol.size(); ++i) {
    if (i > 0) {
      if (thresholds_db[i] <= thresholds_db[i - 1] ||
          bits_per_symbol[i] <= bits_per_symbol[i - 1]) {
        throw std::invalid_argument(
            "ModeTable: thresholds/throughputs must be strictly increasing");
      }
    }
    TransmissionMode mode;
    mode.index = static_cast<int>(i);
    mode.bits_per_symbol = bits_per_symbol[i];
    mode.threshold_db = thresholds_db[i];
    mode.threshold_linear = common::from_db(thresholds_db[i]);
    mode.ber_coefficient = x2 / mode.threshold_linear;
    table.modes_.push_back(mode);
  }
  return table;
}

ModeTable ModeTable::abicm6(double target_ber) {
  // Thresholds calibrated in DESIGN.md: the trellis-coded low modes are
  // more robust than the legacy fixed-rate design point (10 dB), while the
  // dense high modes match adaptive-modulation ladders.
  return custom({0.5, 1.0, 2.0, 3.0, 4.0, 5.0},
                {2.5, 5.5, 9.0, 13.0, 16.5, 20.0}, target_ber);
}

std::optional<int> ModeTable::select(double snr_estimate_linear,
                                     double margin_db) const {
  const double margin = common::from_db(margin_db);
  std::optional<int> best;
  for (const auto& mode : modes_) {
    if (snr_estimate_linear >= mode.threshold_linear * margin) {
      best = mode.index;
    } else {
      break;  // thresholds are increasing
    }
  }
  return best;
}

const TransmissionMode& ModeTable::mode(int index) const {
  if (index < 0 || index >= size()) {
    throw std::out_of_range("ModeTable::mode: bad index");
  }
  return modes_[static_cast<std::size_t>(index)];
}

double ModeTable::normalized_throughput(std::optional<int> selection) const {
  if (!selection) return 0.0;
  return mode(*selection).bits_per_symbol;
}

}  // namespace charisma::phy
