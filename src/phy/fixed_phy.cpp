#include "phy/fixed_phy.hpp"

#include <stdexcept>

#include "common/math.hpp"

namespace charisma::phy {

FixedPhy::FixedPhy(double ber_reference_db, double target_ber, int packet_bits)
    : packet_bits_(packet_bits) {
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    throw std::invalid_argument("FixedPhy: target_ber must be in (0, 0.5)");
  }
  if (packet_bits <= 0) {
    throw std::invalid_argument("FixedPhy: packet_bits must be positive");
  }
  const double x = common::erfc_inv(2.0 * target_ber);
  mode_.index = 0;
  mode_.bits_per_symbol = 1.0;
  mode_.threshold_db = ber_reference_db;
  mode_.threshold_linear = common::from_db(ber_reference_db);
  mode_.ber_coefficient = x * x / mode_.threshold_linear;
}

FixedPhy FixedPhy::standard() { return FixedPhy(7.0, 1e-5, 160); }

double FixedPhy::packet_error_rate(double true_snr_linear) const {
  return mode_.per(true_snr_linear, packet_bits_);
}

}  // namespace charisma::phy
