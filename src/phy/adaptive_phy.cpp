#include "phy/adaptive_phy.hpp"

#include <cmath>
#include <stdexcept>

namespace charisma::phy {

AdaptivePhy::AdaptivePhy(ModeTable table, PhyConfig config)
    : table_(std::move(table)), config_(config) {
  if (config.slot_symbols <= 0 || config.packet_bits <= 0) {
    throw std::invalid_argument("AdaptivePhy: invalid slot geometry");
  }
}

AdaptivePhy AdaptivePhy::abicm6(PhyConfig config) {
  return AdaptivePhy(ModeTable::abicm6(config.target_ber), config);
}

std::optional<int> AdaptivePhy::select_mode(double snr_estimate_linear) const {
  return table_.select(snr_estimate_linear, config_.selection_margin_db);
}

int AdaptivePhy::packets_per_slot(int mode) const {
  const double bits =
      table_.mode(mode).bits_per_symbol * config_.slot_symbols;
  return static_cast<int>(std::floor(bits / config_.packet_bits + 1e-9));
}

double AdaptivePhy::packet_error_rate(int mode,
                                      double true_snr_linear) const {
  return table_.mode(mode).per(true_snr_linear, config_.packet_bits);
}

}  // namespace charisma::phy
