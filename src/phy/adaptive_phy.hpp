// The variable-throughput channel-adaptive physical layer (paper §4.2,
// Fig. 6): given a CSI estimate the transmitter picks a transmission mode;
// the slot then carries a mode-dependent number of fixed-size packets. The
// *realized* error rate is evaluated at the true channel state at
// transmission time, so stale or noisy CSI translates into elevated packet
// loss — exactly the effect CHARISMA's CSI-refresh mechanism (§4.4) exists
// to contain.
#pragma once

#include <optional>

#include "phy/modes.hpp"

namespace charisma::phy {

/// Geometry/operating parameters of the slot-level PHY.
struct PhyConfig {
  int slot_symbols = 160;          ///< modulation symbols per info slot
  int packet_bits = 160;           ///< fixed packet size (one voice packet)
  double target_ber = 1e-5;        ///< constant-BER operating point
  double selection_margin_db = 0.0;  ///< extra backoff on mode selection
};

class AdaptivePhy {
 public:
  AdaptivePhy(ModeTable table, PhyConfig config);

  /// Convenience: ABICM-6 ladder with the given config.
  static AdaptivePhy abicm6(PhyConfig config = {});

  /// Mode selected for an SNR estimate, nullopt = outage (adaptation range
  /// exceeded; Fig. 7a).
  std::optional<int> select_mode(double snr_estimate_linear) const;

  /// Whole packets one slot carries in the given mode. Mode 0 (0.5 bit/sym
  /// on a one-packet slot) carries zero whole packets: the slot cannot ship
  /// a packet — this is the "wasted allocation" regime of §5.3.1.
  int packets_per_slot(int mode) const;

  /// Normalized throughput of a (possibly outage) selection.
  double normalized_throughput(std::optional<int> selection) const {
    return table_.normalized_throughput(selection);
  }

  /// Packet-error rate when transmitting in `mode` while the channel truly
  /// is at `true_snr_linear`.
  double packet_error_rate(int mode, double true_snr_linear) const;

  /// Draws a packet success for one transmission from the user's stream —
  /// any type with a bernoulli(double) draw (RngStream, CompactRngStream,
  /// TrafficRng).
  template <typename Rng>
  bool transmit_packet(int mode, double true_snr_linear, Rng& rng) const {
    return !rng.bernoulli(packet_error_rate(mode, true_snr_linear));
  }

  const ModeTable& table() const { return table_; }
  const PhyConfig& config() const { return config_; }

 private:
  ModeTable table_;
  PhyConfig config_;
};

}  // namespace charisma::phy
