// Transmission-mode table for the variable-throughput channel-adaptive
// physical layer (the paper's 6-mode ABICM scheme [15]).
//
// Each mode q carries a normalized throughput (information bits per
// modulation symbol) and an adaptation threshold: the scheme operates in
// "constant BER mode" (paper §4.2), i.e. thresholds are placed so that the
// target BER is met exactly at the threshold SNR. The per-mode BER curve is
// the coded-modulation form
//      BER_q(snr) = 0.5 * erfc( sqrt(g_q * snr) )
// with g_q chosen so BER_q(threshold_q) == target BER. Below the lowest
// threshold the scheme is out of its adaptation range (Fig. 7a): no mode
// can hold the target BER.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"

namespace charisma::phy {

struct TransmissionMode {
  int index = 0;                 ///< 0 = most robust (lowest throughput)
  double bits_per_symbol = 0.0;  ///< normalized throughput
  double threshold_db = 0.0;     ///< adaptation threshold (SNR, dB)
  double threshold_linear = 0.0;
  double ber_coefficient = 0.0;  ///< g_q in BER = 0.5 erfc(sqrt(g_q snr))

  /// Instantaneous bit-error rate at the given true SNR.
  double ber(double snr_linear) const;

  /// Packet-error rate for a packet of `bits` i.i.d. bit errors.
  double per(double snr_linear, int bits) const;
};

class ModeTable {
 public:
  /// Builds a table from parallel throughput/threshold lists; thresholds
  /// must be strictly increasing with throughput.
  static ModeTable custom(const std::vector<double>& bits_per_symbol,
                          const std::vector<double>& thresholds_db,
                          double target_ber);

  /// The paper's 6-mode ABICM ladder: throughputs {0.5,1,2,3,4,5} bit/sym
  /// with thresholds {2,5,9,13,16.5,20} dB (DESIGN.md calibration).
  static ModeTable abicm6(double target_ber = 1e-5);

  /// Highest mode whose threshold (plus `margin_db` of backoff) is met by
  /// the SNR estimate; nullopt when even mode 0 cannot hold the target BER
  /// (adaptation range exceeded).
  std::optional<int> select(double snr_estimate_linear,
                            double margin_db = 0.0) const;

  const TransmissionMode& mode(int index) const;
  int size() const { return static_cast<int>(modes_.size()); }
  double target_ber() const { return target_ber_; }

  /// Normalized throughput of a selection; 0 for nullopt (outage).
  double normalized_throughput(std::optional<int> selection) const;

  const std::vector<TransmissionMode>& modes() const { return modes_; }

 private:
  std::vector<TransmissionMode> modes_;
  double target_ber_ = 0.0;
};

}  // namespace charisma::phy
