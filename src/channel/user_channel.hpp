// Per-user uplink channel: combined long-term shadowing and short-term
// diversity fading around a mean link SNR, stepped lazily on the frame
// grid. Each mobile device owns one UserChannel seeded independently, so
// users fade independently — the property CHARISMA's selection diversity
// exploits (paper §5.3.2).
//
// UserChannel is a thin per-user view over a ChannelBank (the SoA batched
// hot path). Inside a ProtocolEngine all users share the engine's bank and
// are advanced together; constructed standalone (tests, traces, handoff
// studies) it owns a private single-user bank, so the API and statistics
// are identical either way. Standalone instances are cheap to create in
// bulk: the rho^k jump-coefficient tables are memoized process-wide
// (ChannelBank::shared_coeffs), so a thousand single-user banks advancing
// on the same grid share one pow() evaluation per distinct stride instead
// of rebuilding the table each.
#pragma once

#include <cstddef>
#include <memory>

#include "channel/channel_bank.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

class UserChannel {
 public:
  /// Standalone channel backed by a private single-user bank.
  UserChannel(const ChannelConfig& config, common::RngStream rng);

  /// View of user `index` in an existing bank (not owned; the bank must
  /// outlive the view).
  UserChannel(ChannelBank& bank, std::size_t index);

  UserChannel(UserChannel&&) = default;
  UserChannel& operator=(UserChannel&&) = default;

  /// Advances the channel state to (the grid point at or before) `t`.
  /// Must be called with non-decreasing times.
  void advance_to(common::Time t) { bank_->advance_user_to(index_, t); }

  /// Instantaneous effective SNR (linear) at the current state.
  double snr_linear() const { return bank_->snr_linear(index_); }
  double snr_db() const { return bank_->snr_db(index_); }

  /// Re-anchors the link-budget mean (dB) without disturbing the
  /// fading/shadowing state or RNG draw order (mobility path loss).
  void set_mean_snr_db(double db) { bank_->set_mean_snr_db(index_, db); }
  double mean_snr_db() const { return bank_->mean_snr_db(index_); }

  /// Components, exposed for tracing and tests.
  double fading_power() const { return bank_->fading_power(index_); }
  double shadow_db() const { return bank_->shadow_db(index_); }

  const ChannelConfig& config() const { return bank_->config(index_); }

  /// The bank slot this view addresses — the engine's storage index for
  /// band-resident users (slot == user id only in a full, never-released
  /// population).
  std::size_t index() const { return index_; }

 private:
  std::unique_ptr<ChannelBank> owned_;  // null when viewing a shared bank
  ChannelBank* bank_;
  std::size_t index_;
};

}  // namespace charisma::channel
