// Per-user uplink channel: combined long-term shadowing and short-term
// diversity fading around a mean link SNR, stepped lazily on the frame
// grid. Each mobile device owns one UserChannel seeded independently, so
// users fade independently — the property CHARISMA's selection diversity
// exploits (paper §5.3.2).
#pragma once

#include "channel/fading.hpp"
#include "channel/shadowing.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

/// Static description of the radio environment shared by all users.
struct ChannelConfig {
  double mean_snr_db = 16.0;      ///< link-budget mean SNR at the receiver
  double shadow_sigma_db = 3.0;   ///< log-normal shadowing std-dev
  common::Time shadow_tau = 1.0;  ///< shadowing decorrelation time, s
  common::Hertz doppler_hz = 100.0;  ///< Doppler spread (50 km/h default)
  int diversity_branches = 4;     ///< effective-SNR diversity order
  common::Time sample_interval = 2.5e-3;  ///< grid step (one TDMA frame)

  /// Doppler spread for a device moving at `speed` with carrier wavelength
  /// implied by `carrier_hz`: fd = v * fc / c.
  static common::Hertz doppler_for_speed(common::Speed speed,
                                         common::Hertz carrier_hz);
};

class UserChannel {
 public:
  UserChannel(const ChannelConfig& config, common::RngStream rng);

  /// Advances the channel state to (the grid point at or before) `t`.
  /// Must be called with non-decreasing times.
  void advance_to(common::Time t);

  /// Instantaneous effective SNR (linear) at the current state.
  double snr_linear() const;
  double snr_db() const;

  /// Components, exposed for tracing and tests.
  double fading_power() const { return fading_.power_gain(); }
  double shadow_db() const { return shadowing_.db_value(); }

  const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  common::RngStream rng_;
  DiversityFadingProcess fading_;
  LogNormalShadowing shadowing_;
  double mean_snr_linear_;
  std::int64_t current_step_ = 0;
};

}  // namespace charisma::channel
