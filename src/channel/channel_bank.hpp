// Batched structure-of-arrays channel evolution — the simulator's hottest
// loop, rebuilt for population scale.
//
// Every user's diversity-branch I/Q fading states live in contiguous
// parallel arrays (no per-user heap objects, no std::complex indirection),
// and one pass advances all users to a frame boundary. The per-sample AR(1)
// walk is replaced by its closed-form k-step jump:
//
//     h[n+k] = rho^k * h[n] + sqrt(1 - rho^(2k)) * w,   w ~ CN(0, 1)
//
// (exact, because the AR(1) recursion composes into the same Gauss-Markov
// form at any stride), and the matching Ornstein–Uhlenbeck jump for the
// log-normal shadowing dB process. Variable-length frames (RMAV/DRMA) and
// long idle gaps therefore cost O(1) per user instead of O(k); the rho^k /
// sqrt(1-rho^2k) coefficients are memoized per (parameter-group, stride),
// so the common frame strides hit a precomputed table.
//
// Each user keeps its own RngStream (seeded from the scenario seed and user
// id), so results are independent of population size and of whether a user
// is advanced individually or in the batched pass.
//
// Lazy mode (set_lazy(true), opt-in): the bank separates the frame clock
// from materialization. set_time(t) moves the clock in O(1); per-user state
// is materialized on demand — by the frame's declared touch set
// (advance_users_to / materialize_users) or transparently by the first read
// of an untouched user — via the same closed-form jump, so a user idle for
// k frames pays one jump (two table lookups) instead of k. Because every
// user owns a private innovation stream, a lazy bank's realization is
// independent of *who* triggers materialization, of the order users
// materialize in, and of the kernel strip width; it is NOT samplewise
// identical to the eager schedule (a k-jump consumes one innovation set
// where k unit steps consume k — the two are equal in distribution, not in
// realization), which is why eager remains the default and reproduces the
// historical sequences bit for bit.
#pragma once

/// Compile-time default strip width of the batched materialization kernel
/// (the CHARISMA_SIMD CMake knob). All widths {1, 4, 8} are always
/// compiled and runtime-selectable via set_strip_width — the knob only
/// picks the default — so scalar-vs-SIMD bit-equality is testable in every
/// build config. Width 1 routes through the classic scalar jump loop.
#ifndef CHARISMA_SIMD_WIDTH
#define CHARISMA_SIMD_WIDTH 1
#endif

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

/// Static description of the radio environment shared by all users.
struct ChannelConfig {
  double mean_snr_db = 16.0;      ///< link-budget mean SNR at the receiver
  double shadow_sigma_db = 3.0;   ///< log-normal shadowing std-dev
  common::Time shadow_tau = 1.0;  ///< shadowing decorrelation time, s
  common::Hertz doppler_hz = 100.0;  ///< Doppler spread (50 km/h default)
  int diversity_branches = 4;     ///< effective-SNR diversity order
  common::Time sample_interval = 2.5e-3;  ///< grid step (one TDMA frame)

  /// Doppler spread for a device moving at `speed` with carrier wavelength
  /// implied by `carrier_hz`: fd = v * fc / c.
  static common::Hertz doppler_for_speed(common::Speed speed,
                                         common::Hertz carrier_hz);
};

/// SoA bank of per-user fading + shadowing processes stepped lazily on each
/// user's sample grid. Rows are either appended once (add_user) or cycled
/// through the acquire/release free-list (sparse presence); either way the
/// caller addresses a row by the returned slot index and UserChannel wraps
/// one slot as a per-user view.
class ChannelBank {
 public:
  ChannelBank() = default;

  void reserve(std::size_t users);

  /// Appends a user in the stationary channel state and returns its index.
  /// The stream seeds this user's private innovation generator, so a
  /// user's realization depends only on its own stream — not on the
  /// population around it.
  std::size_t add_user(const ChannelConfig& config, common::RngStream rng);

  /// add_user with slot recycling: reuses a released row whose branch
  /// storage fits `config` (LIFO over the free-list, so serial and
  /// parallel worlds that release in the same coordinator order reuse the
  /// same slots), else appends. The reused row is re-seeded from `rng`
  /// exactly as add_user would seed a fresh one — same stationary-start
  /// draw order — and starts at the bank clock's current step for its
  /// sample interval, so what a row materializes depends only on the
  /// stream it was given and on when it was acquired, never on which slot
  /// the free-list happened to hand back. With an empty free-list this is
  /// add_user bit for bit.
  std::size_t acquire_user(const ChannelConfig& config, common::RngStream rng);

  /// Returns `slot` to the free-list. The row's state stays in place but
  /// is excluded from every whole-bank operation (materialize_all,
  /// set_*_all, snr_db_all), so vacant rows never advance, draw, or count
  /// toward materialization accounting. Double release throws.
  void release_user(std::size_t slot);

  /// Slots currently backing a live user (size() minus the free-list).
  std::size_t active_count() const { return configs_.size() - vacant_count_; }

  /// True when `slot` is on the free-list.
  bool vacant(std::size_t slot) const { return vacant_[slot] != 0; }

  std::size_t size() const { return configs_.size(); }

  /// Advances every user to (the grid point at or before) `t` in one pass.
  /// Equivalent to set_time(t) + materialize_all(); in the default eager
  /// mode this reproduces the historical per-frame schedule bit for bit.
  void advance_all_to(common::Time t);

  /// Advances one user; must be called with non-decreasing times per user.
  /// In lazy mode this moves the bank clock (monotonically) and
  /// materializes just this user; in eager mode it is the historical
  /// independent per-user advance and leaves the bank clock untouched.
  void advance_user_to(std::size_t user, common::Time t);

  // ---- Lazy on-demand materialization (opt-in; see file comment) ----

  /// Switches the bank to (or from) lazy demand-driven materialization.
  /// Call before the first advance; reads of a lazy bank transparently
  /// materialize the addressed user up to the bank clock.
  void set_lazy(bool lazy) { lazy_ = lazy; }
  bool lazy() const { return lazy_; }

  /// O(1) frame-clock move: records `t` (non-decreasing) as the boundary
  /// every subsequent read/touch materializes to. No per-user work.
  void set_time(common::Time t);

  /// Materializes the given users up to the bank clock in one strip-mined
  /// batch (the frame's declared touch set: transmitters, contenders,
  /// polled rows). Ids out of [0, size()) throw; duplicates are fine
  /// (a second materialization at the same clock is a no-op).
  void materialize_users(std::span<const common::UserId> users);

  /// Materializes every user up to the bank clock (epoch pilot planes).
  void materialize_all();

  /// set_time(t) + materialize_users(users): the lazy frame-loop entry
  /// point replacing advance_all_to(t) when only `users` will be read.
  void advance_users_to(std::span<const common::UserId> users,
                        common::Time t);

  /// Selects the strip width of the batched materialization kernel at
  /// runtime (1, 4 or 8; default CHARISMA_SIMD_WIDTH). Any width yields
  /// bit-identical state — pinned by tests — so this is purely a
  /// performance knob (and the lever the equivalence tests use to compare
  /// scalar and SIMD paths inside one binary).
  void set_strip_width(int width);
  int strip_width() const { return strip_width_; }

  /// Materialization accounting since construction: `jump_events` counts
  /// executed jumps (user-frames where work was done), `jump_frames` the
  /// user-frames covered (sum of jump strides). Eager banks report a
  /// stride of exactly 1 (events == frames); the gap between the two is
  /// the work lazy mode avoided.
  struct LazyStats {
    std::int64_t jump_events = 0;
    std::int64_t jump_frames = 0;
  };
  LazyStats lazy_stats() const { return {jump_events_, jump_frames_}; }

  /// Re-anchors the user's link-budget mean SNR (dB) — the mobility fast
  /// path: path loss moves the mean while the fading/shadowing processes
  /// (and the user's RNG draw order) are left completely undisturbed, so a
  /// mobile run stays replayable against a static one draw for draw.
  void set_mean_snr_db(std::size_t user, double db);

  /// Bulk set_mean_snr_db: re-anchors every user's mean from db[u] in one
  /// pass (same no-RNG / no-fading-state guarantee). The mobility layer
  /// feeds a whole cell's path-loss plane through here each epoch instead
  /// of total_users scalar calls.
  void set_mean_snr_db_all(std::span<const double> db);

  /// Bulk co-channel interference plane: db[u] is the SINR penalty
  /// (10·log10(1 + I/N), >= 0) subtracted from every subsequent SNR read,
  /// so snr_db()/snr_db_all()/snr_linear() report SINR. Like
  /// set_mean_snr_db_all this touches neither the fading/shadowing state
  /// nor the per-user RNG draw order, and a penalty of exactly 0 leaves
  /// every read bit-identical to a bank that never saw interference —
  /// both guarantees are pinned by tests/channel/channel_bank_test.cpp.
  void set_interference_db_all(std::span<const double> db);

  // ---- Shard-safe contiguous-row spans (sharded world plane) ----
  // Each call touches exactly rows [first, first + span.size()): per-row
  // flat-array stores/loads with no shared mutable state (the _all
  // variants' active-list refresh is replaced by a per-row vacancy test),
  // so concurrent calls on DISJOINT row ranges of one bank are data-race
  // free — the property the sharded epoch plane relies on. Vacant rows in
  // range are skipped (writes) / left untouched (reads), matching the _all
  // semantics row for row. snr_db_range additionally requires an eager
  // bank: the lazy path's materialization mutates bank-wide state and must
  // go through snr_db_all on one thread.

  /// set_mean_snr_db_all restricted to rows [first, first + db.size());
  /// db[i] addresses row first + i.
  void set_mean_snr_db_range(std::size_t first, std::span<const double> db);
  /// set_interference_db_all restricted to rows [first, first + db.size()).
  void set_interference_db_range(std::size_t first,
                                 std::span<const double> db);
  /// snr_db_all restricted to rows [first, first + out.size()); out[i] is
  /// row first + i. Eager banks only (throws logic_error on a lazy bank).
  void snr_db_range(std::size_t first, std::span<double> out) const;

  /// Current SINR penalty (dB) applied to `user`'s reads; 0 by default.
  double interference_db(std::size_t user) const {
    return interference_db_[user];
  }

  /// Current link-budget mean SNR (dB) of `user`.
  double mean_snr_db(std::size_t user) const {
    return configs_[user].mean_snr_db;
  }

  /// Instantaneous effective SNR (linear) of `user` at its current state,
  /// after the interference penalty (SINR when an interference plane is
  /// set; the default penalty factor is exactly 1). The dB→linear
  /// shadowing conversion is lazy: an advance only marks it stale, and
  /// the exp() is paid by the first read — protocol frames read the SNR
  /// of a handful of candidates, not of the whole population.
  double snr_linear(std::size_t user) const {
    if (lazy_) ensure_user(user);
    return mean_snr_linear_[user] * fading_power_[user] *
           shadow_linear(user) * interference_linear_[user];
  }
  double snr_db(std::size_t user) const;

  /// Bulk pilot read: writes every user's instantaneous SNR (dB) to out[u].
  /// Works in the dB domain — mean dB + shadowing dB + 10·log10(fading
  /// power) — so it pays one log per user where the scalar snr_db() pays an
  /// exp (lazy shadowing) *and* a log10 through the linear domain. Same
  /// quantity, different operation order: values agree with snr_db() to
  /// floating-point rounding.
  void snr_db_all(std::span<double> out) const;

  /// Components, exposed for tracing and tests.
  double fading_power(std::size_t user) const {
    if (lazy_) ensure_user(user);
    return fading_power_[user];
  }
  double shadow_db(std::size_t user) const {
    if (lazy_) ensure_user(user);
    return shadow_db_[user];
  }

  /// Per-branch I/Q state and the private innovation-engine cursor,
  /// exposed for the jump-vs-step equivalence tests (which pin that k
  /// deferred clock moves + one materialization equals one k-jump bitwise,
  /// RNG cursor included). Branch reads do NOT materialize lazily.
  double fade_re(std::size_t user, int branch) const {
    return fade_re_[branch_begin_[user] + static_cast<std::size_t>(branch)];
  }
  double fade_im(std::size_t user, int branch) const {
    return fade_im_[branch_begin_[user] + static_cast<std::size_t>(branch)];
  }
  std::uint64_t rng_cursor(std::size_t user) const {
    return rng_[user].raw_state();
  }

  const ChannelConfig& config(std::size_t user) const {
    return configs_[user];
  }
  std::int64_t current_step(std::size_t user) const { return step_[user]; }

 private:
  /// Jump coefficients for one parameter group at stride k. The innovation
  /// scales are for a *unit-variance* target: the fading per-component
  /// scale folds in the CN(0,1) half-power; the shadowing scale is
  /// multiplied by sigma_db at the use site.
  struct JumpCoeffs {
    double fade_rho_k;
    double fade_component_scale;   // sqrt((1 - rho^2k) / 2)
    double shadow_rho_k;
    double shadow_unit_scale;      // sqrt(1 - rho_s^2k)
  };

  /// Fading/shadowing correlation parameters shared by a set of users;
  /// stride coefficients are memoized here so repeated frame strides cost
  /// two table lookups instead of two pow() calls per user.
  struct ParamGroup {
    double fade_rho;
    double shadow_rho;
    std::vector<std::pair<std::int64_t, JumpCoeffs>> strides;
  };

  std::size_t group_for(double fade_rho, double shadow_rho);
  const JumpCoeffs& coeffs(std::size_t group, std::int64_t k);
  static JumpCoeffs compute_coeffs(double fade_rho, double shadow_rho,
                                   std::int64_t k);
  /// Process-wide (fade_rho, shadow_rho, k) -> JumpCoeffs memo shared by
  /// every bank, so standalone UserChannels and the per-cell banks of a
  /// world reuse one pow() evaluation per distinct stride instead of
  /// rebuilding tables per instance. Mutex-guarded; only consulted on a
  /// local-table miss, so the hot path stays lock-free.
  static JumpCoeffs shared_coeffs(double fade_rho, double shadow_rho,
                                  std::int64_t k);
  void jump_user(std::size_t user, const JumpCoeffs& c);

  /// Materializes one user up to the bank clock (lazy read path).
  void materialize_user(std::size_t user);
  /// Logical-constness escape for lazy reads: the observable value is "the
  /// state at the bank clock"; whether it is physically materialized is an
  /// implementation detail (banks are externally synchronized per cell, so
  /// no concurrent-read hazard is introduced).
  void ensure_user(std::size_t user) const {
    if (step_[user] != dt_targets_[dt_index_[user]]) {
      const_cast<ChannelBank*>(this)->materialize_user(user);
    }
  }

  /// Walks `ids`, groups users sharing (stride, param group, branch count)
  /// into width-W strips for strip_kernel, and falls back to the scalar
  /// jump for remainders and mixed-key runs. Any W yields bit-identical
  /// state (the kernel evaluates the same per-lane expressions).
  template <int W, typename Index>
  void materialize_batch(const Index* ids, std::size_t n);
  /// Advances exactly W users by the same stride: phase-separated flat
  /// loops (splitmix64 state rounds, ziggurat accepts, AR(1) updates) over
  /// lane arrays, matching jump_user's arithmetic lane for lane.
  template <int W>
  void strip_kernel(const std::uint32_t* lane_users, const JumpCoeffs& c,
                    int branches, std::int64_t k, std::int64_t target);

  double shadow_linear(std::size_t user) const {
    double linear = shadow_linear_[user];
    if (linear < 0.0) {  // stale since the last advance
      // exp(ln10/10 * dB) — same value as from_db, cheaper than pow.
      linear = std::exp(0.23025850929940457 * shadow_db_[user]);
      shadow_linear_[user] = linear;
    }
    return linear;
  }

  std::vector<ChannelConfig> configs_;
  // 8-byte per-user engines: with mt19937_64's ~2.5 KB state the RNG alone
  // would stream tens of MB through the cache per frame at 10k+ users.
  std::vector<common::SplitMix64> rng_;

  // ---- SoA state ----
  // Branch I/Q states for all users, contiguous; user u owns
  // [branch_begin_[u], branch_begin_[u] + branch_count_[u]).
  std::vector<double> fade_re_;
  std::vector<double> fade_im_;
  std::vector<std::size_t> branch_begin_;
  std::vector<int> branch_count_;

  std::vector<double> mean_snr_linear_;
  std::vector<double> mean_snr_db_;  // flat copy of configs_[u].mean_snr_db
  // Interference penalty in both domains (dB subtracted by snr_db_all,
  // linear factor 10^(-dB/10) multiplied by snr_linear); 0 dB / 1.0 until
  // set_interference_db_all is called.
  std::vector<double> interference_db_;
  std::vector<double> interference_linear_;
  std::vector<double> shadow_sigma_db_;
  std::vector<double> inv_branch_count_;
  std::vector<common::Time> dt_;
  std::vector<std::int64_t> step_;
  std::vector<std::size_t> group_;

  // Cached outputs of the last advance (what the MAC layer actually reads);
  // shadow_linear_ < 0 marks a stale entry recomputed on first read.
  std::vector<double> fading_power_;
  std::vector<double> shadow_db_;
  mutable std::vector<double> shadow_linear_;

  std::vector<ParamGroup> groups_;

  // ---- Lazy clock ----
  // The frame boundary as a per-distinct-dt target step: dt_index_[u] is a
  // small index into distinct_dts_/dt_targets_, so set_time computes one
  // floor() per distinct sample interval (normally exactly one) and
  // ensure_user is two array loads + a compare.
  bool lazy_ = false;
  int strip_width_ = CHARISMA_SIMD_WIDTH;
  common::Time bank_time_ = 0.0;
  std::vector<common::Time> distinct_dts_;
  std::vector<std::int64_t> dt_targets_;
  std::vector<std::uint32_t> dt_index_;
  // Ascending active-slot list fed to the batch kernels and the bulk
  // loops. With no vacancies it is the iota over all slots (the historical
  // materialize_all batch, bit for bit); rebuilt lazily after any
  // add/acquire/release. Mutable: refreshing it from a const read path is
  // the same logical-constness escape as ensure_user.
  mutable std::vector<std::uint32_t> scratch_ids_;
  mutable bool active_dirty_ = false;
  void refresh_active() const;

  // ---- Row lifecycle (sparse presence) ----
  std::vector<std::uint32_t> free_slots_;  // LIFO
  std::vector<char> vacant_;               // 1 = on the free-list
  std::size_t vacant_count_ = 0;

  // Materialization accounting (see lazy_stats).
  std::int64_t jump_events_ = 0;
  std::int64_t jump_frames_ = 0;
};

}  // namespace charisma::channel
