// Batched structure-of-arrays channel evolution — the simulator's hottest
// loop, rebuilt for population scale.
//
// Every user's diversity-branch I/Q fading states live in contiguous
// parallel arrays (no per-user heap objects, no std::complex indirection),
// and one pass advances all users to a frame boundary. The per-sample AR(1)
// walk is replaced by its closed-form k-step jump:
//
//     h[n+k] = rho^k * h[n] + sqrt(1 - rho^(2k)) * w,   w ~ CN(0, 1)
//
// (exact, because the AR(1) recursion composes into the same Gauss-Markov
// form at any stride), and the matching Ornstein–Uhlenbeck jump for the
// log-normal shadowing dB process. Variable-length frames (RMAV/DRMA) and
// long idle gaps therefore cost O(1) per user instead of O(k); the rho^k /
// sqrt(1-rho^2k) coefficients are memoized per (parameter-group, stride),
// so the common frame strides hit a precomputed table.
//
// Each user keeps its own RngStream (seeded from the scenario seed and user
// id), so results are independent of population size and of whether a user
// is advanced individually or in the batched pass.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

/// Static description of the radio environment shared by all users.
struct ChannelConfig {
  double mean_snr_db = 16.0;      ///< link-budget mean SNR at the receiver
  double shadow_sigma_db = 3.0;   ///< log-normal shadowing std-dev
  common::Time shadow_tau = 1.0;  ///< shadowing decorrelation time, s
  common::Hertz doppler_hz = 100.0;  ///< Doppler spread (50 km/h default)
  int diversity_branches = 4;     ///< effective-SNR diversity order
  common::Time sample_interval = 2.5e-3;  ///< grid step (one TDMA frame)

  /// Doppler spread for a device moving at `speed` with carrier wavelength
  /// implied by `carrier_hz`: fd = v * fc / c.
  static common::Hertz doppler_for_speed(common::Speed speed,
                                         common::Hertz carrier_hz);
};

/// SoA bank of per-user fading + shadowing processes stepped lazily on each
/// user's sample grid. Users are appended once (add_user) and addressed by
/// the returned index; UserChannel wraps one index as a per-user view.
class ChannelBank {
 public:
  ChannelBank() = default;

  void reserve(std::size_t users);

  /// Appends a user in the stationary channel state and returns its index.
  /// The stream seeds this user's private innovation generator, so a
  /// user's realization depends only on its own stream — not on the
  /// population around it.
  std::size_t add_user(const ChannelConfig& config, common::RngStream rng);

  std::size_t size() const { return configs_.size(); }

  /// Advances every user to (the grid point at or before) `t` in one pass.
  void advance_all_to(common::Time t);

  /// Advances one user; must be called with non-decreasing times per user.
  void advance_user_to(std::size_t user, common::Time t);

  /// Re-anchors the user's link-budget mean SNR (dB) — the mobility fast
  /// path: path loss moves the mean while the fading/shadowing processes
  /// (and the user's RNG draw order) are left completely undisturbed, so a
  /// mobile run stays replayable against a static one draw for draw.
  void set_mean_snr_db(std::size_t user, double db);

  /// Bulk set_mean_snr_db: re-anchors every user's mean from db[u] in one
  /// pass (same no-RNG / no-fading-state guarantee). The mobility layer
  /// feeds a whole cell's path-loss plane through here each epoch instead
  /// of total_users scalar calls.
  void set_mean_snr_db_all(std::span<const double> db);

  /// Bulk co-channel interference plane: db[u] is the SINR penalty
  /// (10·log10(1 + I/N), >= 0) subtracted from every subsequent SNR read,
  /// so snr_db()/snr_db_all()/snr_linear() report SINR. Like
  /// set_mean_snr_db_all this touches neither the fading/shadowing state
  /// nor the per-user RNG draw order, and a penalty of exactly 0 leaves
  /// every read bit-identical to a bank that never saw interference —
  /// both guarantees are pinned by tests/channel/channel_bank_test.cpp.
  void set_interference_db_all(std::span<const double> db);

  /// Current SINR penalty (dB) applied to `user`'s reads; 0 by default.
  double interference_db(std::size_t user) const {
    return interference_db_[user];
  }

  /// Current link-budget mean SNR (dB) of `user`.
  double mean_snr_db(std::size_t user) const {
    return configs_[user].mean_snr_db;
  }

  /// Instantaneous effective SNR (linear) of `user` at its current state,
  /// after the interference penalty (SINR when an interference plane is
  /// set; the default penalty factor is exactly 1). The dB→linear
  /// shadowing conversion is lazy: an advance only marks it stale, and
  /// the exp() is paid by the first read — protocol frames read the SNR
  /// of a handful of candidates, not of the whole population.
  double snr_linear(std::size_t user) const {
    return mean_snr_linear_[user] * fading_power_[user] *
           shadow_linear(user) * interference_linear_[user];
  }
  double snr_db(std::size_t user) const;

  /// Bulk pilot read: writes every user's instantaneous SNR (dB) to out[u].
  /// Works in the dB domain — mean dB + shadowing dB + 10·log10(fading
  /// power) — so it pays one log per user where the scalar snr_db() pays an
  /// exp (lazy shadowing) *and* a log10 through the linear domain. Same
  /// quantity, different operation order: values agree with snr_db() to
  /// floating-point rounding.
  void snr_db_all(std::span<double> out) const;

  /// Components, exposed for tracing and tests.
  double fading_power(std::size_t user) const { return fading_power_[user]; }
  double shadow_db(std::size_t user) const { return shadow_db_[user]; }

  const ChannelConfig& config(std::size_t user) const {
    return configs_[user];
  }
  std::int64_t current_step(std::size_t user) const { return step_[user]; }

 private:
  /// Jump coefficients for one parameter group at stride k. The innovation
  /// scales are for a *unit-variance* target: the fading per-component
  /// scale folds in the CN(0,1) half-power; the shadowing scale is
  /// multiplied by sigma_db at the use site.
  struct JumpCoeffs {
    double fade_rho_k;
    double fade_component_scale;   // sqrt((1 - rho^2k) / 2)
    double shadow_rho_k;
    double shadow_unit_scale;      // sqrt(1 - rho_s^2k)
  };

  /// Fading/shadowing correlation parameters shared by a set of users;
  /// stride coefficients are memoized here so repeated frame strides cost
  /// two table lookups instead of two pow() calls per user.
  struct ParamGroup {
    double fade_rho;
    double shadow_rho;
    std::vector<std::pair<std::int64_t, JumpCoeffs>> strides;
  };

  std::size_t group_for(double fade_rho, double shadow_rho);
  const JumpCoeffs& coeffs(std::size_t group, std::int64_t k);
  void jump_user(std::size_t user, const JumpCoeffs& c);

  double shadow_linear(std::size_t user) const {
    double linear = shadow_linear_[user];
    if (linear < 0.0) {  // stale since the last advance
      // exp(ln10/10 * dB) — same value as from_db, cheaper than pow.
      linear = std::exp(0.23025850929940457 * shadow_db_[user]);
      shadow_linear_[user] = linear;
    }
    return linear;
  }

  std::vector<ChannelConfig> configs_;
  // 8-byte per-user engines: with mt19937_64's ~2.5 KB state the RNG alone
  // would stream tens of MB through the cache per frame at 10k+ users.
  std::vector<common::SplitMix64> rng_;

  // ---- SoA state ----
  // Branch I/Q states for all users, contiguous; user u owns
  // [branch_begin_[u], branch_begin_[u] + branch_count_[u]).
  std::vector<double> fade_re_;
  std::vector<double> fade_im_;
  std::vector<std::size_t> branch_begin_;
  std::vector<int> branch_count_;

  std::vector<double> mean_snr_linear_;
  std::vector<double> mean_snr_db_;  // flat copy of configs_[u].mean_snr_db
  // Interference penalty in both domains (dB subtracted by snr_db_all,
  // linear factor 10^(-dB/10) multiplied by snr_linear); 0 dB / 1.0 until
  // set_interference_db_all is called.
  std::vector<double> interference_db_;
  std::vector<double> interference_linear_;
  std::vector<double> shadow_sigma_db_;
  std::vector<double> inv_branch_count_;
  std::vector<common::Time> dt_;
  std::vector<std::int64_t> step_;
  std::vector<std::size_t> group_;

  // Cached outputs of the last advance (what the MAC layer actually reads);
  // shadow_linear_ < 0 marks a stale entry recomputed on first read.
  std::vector<double> fading_power_;
  std::vector<double> shadow_db_;
  mutable std::vector<double> shadow_linear_;

  std::vector<ParamGroup> groups_;
};

}  // namespace charisma::channel
