#include "channel/gilbert_elliott.hpp"

#include <cmath>
#include <stdexcept>

namespace charisma::channel {

GilbertElliottChannel::GilbertElliottChannel(
    const GilbertElliottConfig& config, common::RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  if (config.good_error_rate < 0.0 || config.good_error_rate > 1.0 ||
      config.bad_error_rate < 0.0 || config.bad_error_rate > 1.0) {
    throw std::invalid_argument(
        "GilbertElliottChannel: error rates must be probabilities");
  }
  if (config.mean_good_dwell <= 0.0 || config.mean_bad_dwell <= 0.0 ||
      config.sample_interval <= 0.0) {
    throw std::invalid_argument(
        "GilbertElliottChannel: dwell/sample times must be positive");
  }
  // Geometric dwell times with exit probability dt/mean per step: dwell
  // means come out exactly as configured and the stationary bad fraction
  // is exactly mean_bad / (mean_good + mean_bad). Requires dt <= mean.
  if (config.sample_interval > config.mean_good_dwell ||
      config.sample_interval > config.mean_bad_dwell) {
    throw std::invalid_argument(
        "GilbertElliottChannel: sample_interval must not exceed the dwell "
        "means");
  }
  stay_good_prob_ = 1.0 - config.sample_interval / config.mean_good_dwell;
  stay_bad_prob_ = 1.0 - config.sample_interval / config.mean_bad_dwell;
  // Start in the stationary mix.
  bad_ = rng_.bernoulli(config.bad_state_fraction());
}

void GilbertElliottChannel::advance_to(common::Time t) {
  const auto target_step = static_cast<std::int64_t>(
      std::floor(t / config_.sample_interval + 1e-9));
  if (target_step < current_step_) {
    throw std::logic_error("GilbertElliottChannel: time went backwards");
  }
  while (current_step_ < target_step) {
    const double stay = bad_ ? stay_bad_prob_ : stay_good_prob_;
    if (!rng_.bernoulli(stay)) bad_ = !bad_;
    ++current_step_;
  }
}

}  // namespace charisma::channel
