// Long-term log-normal shadowing ("local mean" in the paper), modelled as a
// first-order Gauss-Markov process in the dB domain with a ~1 s time
// constant — terrain/obstacle effects fluctuating much slower than the
// multipath fading.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

class LogNormalShadowing {
 public:
  /// sigma_db: stationary standard deviation of the dB process.
  /// tau: decorrelation time constant (autocorrelation exp(-dt/tau)).
  /// dt: grid step at which step() will be called.
  LogNormalShadowing(double sigma_db, common::Time tau, common::Time dt,
                     common::RngStream& rng);

  void step(common::RngStream& rng);

  /// Advances k grid steps in O(1) via the Ornstein–Uhlenbeck composition
  ///   s[n+k] = rho^k s[n] + sigma sqrt(1 - rho^(2k)) N(0, 1),
  /// distributionally identical to k calls of step() (k >= 0).
  void jump(int k, common::RngStream& rng);

  /// Current shadowing attenuation as a linear power factor (mean-1 in dB,
  /// i.e. the dB process has zero mean).
  double linear_gain() const;

  double db_value() const { return value_db_; }
  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  double rho_;
  double innovation_sigma_;
  double value_db_;
};

}  // namespace charisma::channel
