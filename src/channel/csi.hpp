// Channel state information (CSI) estimation and bookkeeping.
//
// The base station estimates a user's CSI from pilot symbols embedded in
// request packets or solicited through the CSI-polling subframe (paper
// §4.4). An estimate is noisy (finite pilot energy) and ages: the paper
// treats an estimate as valid for two frame durations; beyond that it is
// "expired" and the CHARISMA refresh mechanism re-polls high-priority
// backlog requests.
#pragma once

#include "common/math.hpp"
#include "common/units.hpp"

namespace charisma::channel {

/// A timestamped SNR estimate.
struct CsiEstimate {
  double snr_linear = 0.0;
  common::Time estimated_at = -1.0;

  bool valid() const { return estimated_at >= 0.0; }

  /// True when the estimate is older than `validity` at time `now`.
  bool expired(common::Time now, common::Time validity) const {
    return !valid() || (now - estimated_at) > validity + 1e-12;
  }
};

/// Produces pilot-based estimates of the true SNR with log-domain Gaussian
/// estimation error.
class CsiEstimator {
 public:
  /// error_sigma_db: std-dev of the estimation error in dB (0 disables
  /// noise). validity: how long an estimate stays fresh (paper: 2 frames).
  CsiEstimator(double error_sigma_db, common::Time validity);

  /// `rng` is the observed user's stream — any type with a
  /// normal(mean, stddev) draw (RngStream, CompactRngStream, TrafficRng).
  template <typename Rng>
  CsiEstimate estimate(double true_snr_linear, common::Time now,
                       Rng& rng) const {
    double snr = true_snr_linear;
    if (error_sigma_db_ > 0.0) {
      snr *= common::from_db(rng.normal(0.0, error_sigma_db_));
    }
    return CsiEstimate{snr, now};
  }

  common::Time validity() const { return validity_; }
  double error_sigma_db() const { return error_sigma_db_; }

 private:
  double error_sigma_db_;
  common::Time validity_;
};

}  // namespace charisma::channel
