#include "channel/shadowing.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace charisma::channel {

LogNormalShadowing::LogNormalShadowing(double sigma_db, common::Time tau,
                                       common::Time dt,
                                       common::RngStream& rng)
    : sigma_db_(sigma_db) {
  if (sigma_db < 0.0) {
    throw std::invalid_argument("LogNormalShadowing: sigma_db must be >= 0");
  }
  if (tau <= 0.0 || dt <= 0.0) {
    throw std::invalid_argument("LogNormalShadowing: tau and dt must be > 0");
  }
  rho_ = std::exp(-dt / tau);
  innovation_sigma_ = sigma_db * std::sqrt(1.0 - rho_ * rho_);
  value_db_ = rng.normal(0.0, sigma_db);  // stationary start
}

void LogNormalShadowing::step(common::RngStream& rng) {
  value_db_ = rho_ * value_db_ + rng.normal(0.0, innovation_sigma_);
}

void LogNormalShadowing::jump(int k, common::RngStream& rng) {
  if (k < 0) {
    throw std::invalid_argument("LogNormalShadowing::jump: k must be >= 0");
  }
  if (k == 0) return;
  const double rho_k = std::pow(rho_, static_cast<double>(k));
  const double sigma_k = sigma_db_ * std::sqrt(1.0 - rho_k * rho_k);
  value_db_ = rho_k * value_db_ + rng.normal(0.0, sigma_k);
}

double LogNormalShadowing::linear_gain() const {
  return common::from_db(value_db_);
}

}  // namespace charisma::channel
