#include "channel/csi.hpp"

#include <stdexcept>

#include "common/math.hpp"

namespace charisma::channel {

CsiEstimator::CsiEstimator(double error_sigma_db, common::Time validity)
    : error_sigma_db_(error_sigma_db), validity_(validity) {
  if (error_sigma_db < 0.0) {
    throw std::invalid_argument("CsiEstimator: error_sigma_db must be >= 0");
  }
  if (validity <= 0.0) {
    throw std::invalid_argument("CsiEstimator: validity must be > 0");
  }
}

CsiEstimate CsiEstimator::estimate(double true_snr_linear, common::Time now,
                                   common::RngStream& rng) const {
  double snr = true_snr_linear;
  if (error_sigma_db_ > 0.0) {
    snr *= common::from_db(rng.normal(0.0, error_sigma_db_));
  }
  return CsiEstimate{snr, now};
}

}  // namespace charisma::channel
