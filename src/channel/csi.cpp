#include "channel/csi.hpp"

#include <stdexcept>

namespace charisma::channel {

CsiEstimator::CsiEstimator(double error_sigma_db, common::Time validity)
    : error_sigma_db_(error_sigma_db), validity_(validity) {
  if (error_sigma_db < 0.0) {
    throw std::invalid_argument("CsiEstimator: error_sigma_db must be >= 0");
  }
  if (validity <= 0.0) {
    throw std::invalid_argument("CsiEstimator: validity must be > 0");
  }
}

}  // namespace charisma::channel
