// Gilbert-Elliott two-state burst-error channel — the classic packet-level
// abstraction ("a common simulation platform ... governed by the same
// channel model with a certain bit error rate", paper §5.3.1). Provided as
// an alternative substrate to the physical fading model: a Markov chain
// toggles between a Good state (low error rate) and a Bad state (high
// error rate), with dwell times chosen to mimic fade durations. Useful for
// fast what-if studies and for validating that protocol rankings are not
// artifacts of the detailed PHY model.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

struct GilbertElliottConfig {
  double good_error_rate = 1e-4;  ///< packet-error probability, Good state
  double bad_error_rate = 0.5;    ///< packet-error probability, Bad state
  common::Time mean_good_dwell = 0.1;   ///< mean time in Good, s
  common::Time mean_bad_dwell = 0.01;   ///< mean time in Bad, s (fade-like)
  common::Time sample_interval = 2.5e-3;

  /// Long-run fraction of time in the Bad state.
  double bad_state_fraction() const {
    return mean_bad_dwell / (mean_good_dwell + mean_bad_dwell);
  }
  /// Long-run average packet-error rate.
  double average_error_rate() const {
    const double fb = bad_state_fraction();
    return fb * bad_error_rate + (1.0 - fb) * good_error_rate;
  }
};

class GilbertElliottChannel {
 public:
  GilbertElliottChannel(const GilbertElliottConfig& config,
                        common::RngStream rng);

  /// Advances the chain to (the grid point at or before) `t`;
  /// non-decreasing across calls.
  void advance_to(common::Time t);

  bool in_bad_state() const { return bad_; }
  double packet_error_rate() const {
    return bad_ ? config_.bad_error_rate : config_.good_error_rate;
  }

  /// Draws one packet transmission at the current state.
  bool transmit_packet(common::RngStream& rng) const {
    return !rng.bernoulli(packet_error_rate());
  }

  const GilbertElliottConfig& config() const { return config_; }

 private:
  GilbertElliottConfig config_;
  common::RngStream rng_;
  bool bad_ = false;
  double stay_good_prob_ = 1.0;  ///< per-step persistence, Good state
  double stay_bad_prob_ = 1.0;   ///< per-step persistence, Bad state
  std::int64_t current_step_ = 0;
};

}  // namespace charisma::channel
