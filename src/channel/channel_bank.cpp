#include "channel/channel_bank.hpp"

#include <cmath>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "channel/fading.hpp"
#include "common/math.hpp"

namespace charisma::channel {

namespace {
constexpr double kHalfPower = 0.7071067811865476;  // sqrt(1/2)

// Memoizing every distinct stride is safe: protocols use a handful of frame
// lengths, so the per-group table stays tiny. The cap only guards against a
// pathological caller advancing by a never-repeating stride sequence.
constexpr std::size_t kMaxCachedStrides = 64;

// Lane view over one slot of the strip kernel's flat state array, with the
// exact draw semantics of SplitMix64 (same gamma, same mix, same 53-bit
// uniform), so the ziggurat rejection continuation of any lane consumes
// that lane's private stream just as the scalar path would.
struct LaneEngine {
  std::uint64_t& state;
  std::uint64_t next() {
    return common::detail::splitmix64_mix(state +=
                                          common::detail::kSplitMixGamma);
  }
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

double lane_normal(std::uint64_t& state,
                   const common::detail::ZigguratTables& zig,
                   std::uint64_t bits) {
  LaneEngine eng{state};
  return common::detail::ziggurat_normal_from(eng, zig, bits);
}
}  // namespace

common::Hertz ChannelConfig::doppler_for_speed(common::Speed speed,
                                               common::Hertz carrier_hz) {
  if (speed < 0.0 || carrier_hz <= 0.0) {
    throw std::invalid_argument("doppler_for_speed: invalid arguments");
  }
  return speed * carrier_hz / common::kSpeedOfLight;
}

void ChannelBank::reserve(std::size_t users) {
  configs_.reserve(users);
  rng_.reserve(users);
  branch_begin_.reserve(users);
  branch_count_.reserve(users);
  mean_snr_linear_.reserve(users);
  mean_snr_db_.reserve(users);
  interference_db_.reserve(users);
  interference_linear_.reserve(users);
  shadow_sigma_db_.reserve(users);
  inv_branch_count_.reserve(users);
  dt_.reserve(users);
  step_.reserve(users);
  group_.reserve(users);
  fading_power_.reserve(users);
  shadow_db_.reserve(users);
  shadow_linear_.reserve(users);
  dt_index_.reserve(users);
  vacant_.reserve(users);
}

std::size_t ChannelBank::group_for(double fade_rho, double shadow_rho) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].fade_rho == fade_rho &&
        groups_[g].shadow_rho == shadow_rho) {
      return g;
    }
  }
  groups_.push_back(ParamGroup{fade_rho, shadow_rho, {}});
  return groups_.size() - 1;
}

namespace {
void validate_channel_config(const ChannelConfig& config) {
  if (config.diversity_branches < 1) {
    throw std::invalid_argument("ChannelBank: need >= 1 diversity branch");
  }
  if (config.shadow_sigma_db < 0.0) {
    throw std::invalid_argument("ChannelBank: shadow_sigma_db must be >= 0");
  }
  if (config.shadow_tau <= 0.0 || config.sample_interval <= 0.0) {
    throw std::invalid_argument(
        "ChannelBank: shadow_tau and sample_interval must be > 0");
  }
}
}  // namespace

std::size_t ChannelBank::add_user(const ChannelConfig& config,
                                  common::RngStream rng) {
  validate_channel_config(config);
  const double fade_rho =
      ar_rho_for(config.doppler_hz, config.sample_interval);
  const double shadow_rho =
      std::exp(-config.sample_interval / config.shadow_tau);

  const std::size_t user = configs_.size();
  configs_.push_back(config);
  branch_begin_.push_back(fade_re_.size());
  branch_count_.push_back(config.diversity_branches);
  mean_snr_linear_.push_back(common::from_db(config.mean_snr_db));
  mean_snr_db_.push_back(config.mean_snr_db);
  interference_db_.push_back(0.0);
  interference_linear_.push_back(1.0);
  inv_branch_count_.push_back(1.0 /
                              static_cast<double>(config.diversity_branches));
  shadow_sigma_db_.push_back(config.shadow_sigma_db);
  dt_.push_back(config.sample_interval);
  group_.push_back(group_for(fade_rho, shadow_rho));

  // Register the sample interval with the lazy clock: one floor() per
  // distinct dt per set_time, one table slot per user.
  std::size_t di = 0;
  while (di < distinct_dts_.size() && distinct_dts_[di] != config.sample_interval) {
    ++di;
  }
  if (di == distinct_dts_.size()) {
    distinct_dts_.push_back(config.sample_interval);
    dt_targets_.push_back(static_cast<std::int64_t>(
        std::floor(bank_time_ / config.sample_interval + 1e-9)));
  }
  dt_index_.push_back(static_cast<std::uint32_t>(di));
  // A row added mid-run starts stationary *now* — at the clock's current
  // step for its dt — not at step 0 (which would turn its first touch into
  // one giant catch-up jump). At construction time both are step 0, so the
  // historical sequences are unchanged.
  step_.push_back(dt_targets_[di]);

  // The user's RngStream seeds its compact per-user innovation engine.
  common::SplitMix64 fast(rng.engine()());
  const auto& zig = common::detail::ziggurat_tables();

  // Stationary start, same draw order as the scalar classes: per branch an
  // I then a Q component, then the shadowing value.
  double power = 0.0;
  for (int b = 0; b < config.diversity_branches; ++b) {
    const double re = kHalfPower * fast.normal(zig);
    const double im = kHalfPower * fast.normal(zig);
    fade_re_.push_back(re);
    fade_im_.push_back(im);
    power += re * re + im * im;
  }
  fading_power_.push_back(power /
                          static_cast<double>(config.diversity_branches));
  const double shadow = config.shadow_sigma_db * fast.normal(zig);
  shadow_db_.push_back(shadow);
  shadow_linear_.push_back(common::from_db(shadow));
  rng_.push_back(fast);
  vacant_.push_back(0);
  active_dirty_ = true;
  return user;
}

std::size_t ChannelBank::acquire_user(const ChannelConfig& config,
                                      common::RngStream rng) {
  // LIFO scan for a row whose branch storage fits; the ragged fade arrays
  // cannot be resliced in place, so a mismatched branch count appends.
  std::size_t pick = free_slots_.size();
  for (std::size_t i = free_slots_.size(); i-- > 0;) {
    if (branch_count_[free_slots_[i]] == config.diversity_branches) {
      pick = i;
      break;
    }
  }
  if (pick == free_slots_.size()) return add_user(config, rng);

  validate_channel_config(config);
  const double fade_rho =
      ar_rho_for(config.doppler_hz, config.sample_interval);
  const double shadow_rho =
      std::exp(-config.sample_interval / config.shadow_tau);

  const std::size_t user = free_slots_[pick];
  free_slots_.erase(free_slots_.begin() + static_cast<std::ptrdiff_t>(pick));
  configs_[user] = config;
  mean_snr_linear_[user] = common::from_db(config.mean_snr_db);
  mean_snr_db_[user] = config.mean_snr_db;
  interference_db_[user] = 0.0;
  interference_linear_[user] = 1.0;
  inv_branch_count_[user] =
      1.0 / static_cast<double>(config.diversity_branches);
  shadow_sigma_db_[user] = config.shadow_sigma_db;
  dt_[user] = config.sample_interval;
  group_[user] = group_for(fade_rho, shadow_rho);

  std::size_t di = 0;
  while (di < distinct_dts_.size() &&
         distinct_dts_[di] != config.sample_interval) {
    ++di;
  }
  if (di == distinct_dts_.size()) {
    distinct_dts_.push_back(config.sample_interval);
    dt_targets_.push_back(static_cast<std::int64_t>(
        std::floor(bank_time_ / config.sample_interval + 1e-9)));
  }
  dt_index_[user] = static_cast<std::uint32_t>(di);
  step_[user] = dt_targets_[di];  // stationary at the acquisition instant

  // Identical re-seed + stationary-start draw order to add_user.
  common::SplitMix64 fast(rng.engine()());
  const auto& zig = common::detail::ziggurat_tables();
  const std::size_t begin = branch_begin_[user];
  double power = 0.0;
  for (int b = 0; b < config.diversity_branches; ++b) {
    const double re = kHalfPower * fast.normal(zig);
    const double im = kHalfPower * fast.normal(zig);
    fade_re_[begin + static_cast<std::size_t>(b)] = re;
    fade_im_[begin + static_cast<std::size_t>(b)] = im;
    power += re * re + im * im;
  }
  fading_power_[user] =
      power / static_cast<double>(config.diversity_branches);
  const double shadow = config.shadow_sigma_db * fast.normal(zig);
  shadow_db_[user] = shadow;
  shadow_linear_[user] = common::from_db(shadow);
  rng_[user] = fast;
  vacant_[user] = 0;
  --vacant_count_;
  active_dirty_ = true;
  return user;
}

void ChannelBank::release_user(std::size_t slot) {
  if (slot >= configs_.size()) {
    throw std::out_of_range("ChannelBank::release_user: bad slot");
  }
  if (vacant_[slot]) {
    throw std::logic_error("ChannelBank::release_user: slot already vacant");
  }
  vacant_[slot] = 1;
  ++vacant_count_;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  active_dirty_ = true;
}

void ChannelBank::refresh_active() const {
  const std::size_t n = configs_.size();
  if (!active_dirty_ && scratch_ids_.size() == n - vacant_count_) return;
  scratch_ids_.clear();
  scratch_ids_.reserve(n - vacant_count_);
  if (vacant_count_ == 0) {
    scratch_ids_.resize(n);
    std::iota(scratch_ids_.begin(), scratch_ids_.end(), 0u);
  } else {
    for (std::size_t u = 0; u < n; ++u) {
      if (!vacant_[u]) scratch_ids_.push_back(static_cast<std::uint32_t>(u));
    }
  }
  active_dirty_ = false;
}

ChannelBank::JumpCoeffs ChannelBank::compute_coeffs(double fade_rho,
                                                    double shadow_rho,
                                                    std::int64_t k) {
  const double fade_rho_k = std::pow(fade_rho, static_cast<double>(k));
  const double shadow_rho_k = std::pow(shadow_rho, static_cast<double>(k));
  JumpCoeffs c;
  c.fade_rho_k = fade_rho_k;
  c.fade_component_scale = std::sqrt((1.0 - fade_rho_k * fade_rho_k) * 0.5);
  c.shadow_rho_k = shadow_rho_k;
  c.shadow_unit_scale = std::sqrt(1.0 - shadow_rho_k * shadow_rho_k);
  return c;
}

ChannelBank::JumpCoeffs ChannelBank::shared_coeffs(double fade_rho,
                                                   double shadow_rho,
                                                   std::int64_t k) {
  struct Entry {
    double fade_rho;
    double shadow_rho;
    std::int64_t k;
    JumpCoeffs c;
  };
  // The cached value equals compute_coeffs bit for bit (it *is* a stored
  // compute_coeffs result), so hitting or missing this cache can never
  // perturb a simulation — only skip a pow(). The cap mirrors the local
  // kMaxCachedStrides guard against never-repeating stride sequences.
  static std::mutex mutex;
  static std::vector<Entry> cache;
  std::lock_guard<std::mutex> lock(mutex);
  for (const auto& e : cache) {
    if (e.fade_rho == fade_rho && e.shadow_rho == shadow_rho && e.k == k) {
      return e.c;
    }
  }
  const JumpCoeffs c = compute_coeffs(fade_rho, shadow_rho, k);
  if (cache.size() >= 64 * kMaxCachedStrides) cache.clear();
  cache.push_back(Entry{fade_rho, shadow_rho, k, c});
  return c;
}

const ChannelBank::JumpCoeffs& ChannelBank::coeffs(std::size_t group,
                                                   std::int64_t k) {
  auto& strides = groups_[group].strides;
  for (const auto& entry : strides) {
    if (entry.first == k) return entry.second;
  }
  const JumpCoeffs c =
      shared_coeffs(groups_[group].fade_rho, groups_[group].shadow_rho, k);
  if (strides.size() >= kMaxCachedStrides) strides.clear();
  strides.emplace_back(k, c);
  return strides.back().second;
}

void ChannelBank::jump_user(std::size_t user, const JumpCoeffs& c) {
  auto& rng = rng_[user];
  const auto& zig = common::detail::ziggurat_tables();
  const std::size_t begin = branch_begin_[user];
  const std::size_t end = begin + static_cast<std::size_t>(branch_count_[user]);
  double* const re = fade_re_.data();
  double* const im = fade_im_.data();
  double power = 0.0;
  for (std::size_t b = begin; b < end; ++b) {
    double wr, wi;
    rng.normal_pair(zig, wr, wi);
    const double r = c.fade_rho_k * re[b] + c.fade_component_scale * wr;
    const double i = c.fade_rho_k * im[b] + c.fade_component_scale * wi;
    re[b] = r;
    im[b] = i;
    power += r * r + i * i;
  }
  fading_power_[user] = power * inv_branch_count_[user];
  shadow_db_[user] = c.shadow_rho_k * shadow_db_[user] +
                     shadow_sigma_db_[user] * c.shadow_unit_scale *
                         rng.normal(zig);
  shadow_linear_[user] = -1.0;  // recomputed lazily on first SNR read
}

void ChannelBank::advance_user_to(std::size_t user, common::Time t) {
  if (lazy_) {
    // One clock per lazy bank: move it (monotonically) and materialize just
    // this user; everyone else catches up on their own next read/touch.
    set_time(t);
    materialize_user(user);
    return;
  }
  // Eager: the historical independent per-user walk (no bank clock). Same
  // boundary rule as ever: the epsilon absorbs accumulated floating-point
  // error when t is built by summing frame durations that are not exact
  // binary fractions.
  const auto target =
      static_cast<std::int64_t>(std::floor(t / dt_[user] + 1e-9));
  if (target < step_[user]) {
    throw std::logic_error("ChannelBank::advance_user_to: time went backwards");
  }
  const std::int64_t k = target - step_[user];
  if (k == 0) return;
  jump_user(user, coeffs(group_[user], k));
  step_[user] = target;
  ++jump_events_;
  jump_frames_ += k;
}

void ChannelBank::set_time(common::Time t) {
  // O(1) in the population: one floor() per distinct sample interval.
  // Identical boundary expression to the historical advance_all_to loop, so
  // eager advance_all_to (= set_time + materialize_all) lands on the same
  // target steps bit for bit.
  for (std::size_t i = 0; i < distinct_dts_.size(); ++i) {
    const auto target = static_cast<std::int64_t>(
        std::floor(t / distinct_dts_[i] + 1e-9));
    if (target < dt_targets_[i]) {
      throw std::logic_error("ChannelBank::set_time: time went backwards");
    }
    dt_targets_[i] = target;
  }
  bank_time_ = t;
}

void ChannelBank::materialize_user(std::size_t user) {
  const std::int64_t target = dt_targets_[dt_index_[user]];
  const std::int64_t k = target - step_[user];
  if (k <= 0) {
    if (k < 0) {
      throw std::logic_error(
          "ChannelBank::materialize_user: user ahead of the bank clock");
    }
    return;
  }
  jump_user(user, coeffs(group_[user], k));
  step_[user] = target;
  ++jump_events_;
  jump_frames_ += k;
}

template <int W>
void ChannelBank::strip_kernel(const std::uint32_t* lane_users,
                               const JumpCoeffs& c, int branches,
                               std::int64_t k, std::int64_t target) {
  // Phase-separated twin of jump_user over W users sharing one stride: the
  // per-lane expressions (and per-lane draw order) are exactly the scalar
  // ones, so any W — and any partition of users into strips — yields
  // bit-identical state. The u64 state rounds and the AR(1)/power update
  // loops are flat W-wide arrays, which is what the autovectorizer needs;
  // the rarely-taken ziggurat rejection continues scalar per lane on that
  // lane's private stream.
  std::uint64_t s[W];
  std::size_t base[W];
  double pow_acc[W];
  for (int l = 0; l < W; ++l) {
    const std::size_t u = lane_users[l];
    s[l] = rng_[u].raw_state();
    base[l] = branch_begin_[u];
    pow_acc[l] = 0.0;
  }
  const auto& zig = common::detail::ziggurat_tables();
  constexpr std::uint64_t gamma = common::detail::kSplitMixGamma;
  double* const re = fade_re_.data();
  double* const im = fade_im_.data();
  for (int b = 0; b < branches; ++b) {
    std::uint64_t bits_a[W];
    std::uint64_t bits_b[W];
    for (int l = 0; l < W; ++l) {
      bits_a[l] = common::detail::splitmix64_mix(s[l] + gamma);
      bits_b[l] = common::detail::splitmix64_mix(s[l] + 2 * gamma);
      s[l] += 2 * gamma;
    }
    double wr[W];
    double wi[W];
    for (int l = 0; l < W; ++l) {
      wr[l] = lane_normal(s[l], zig, bits_a[l]);
      wi[l] = lane_normal(s[l], zig, bits_b[l]);
    }
    for (int l = 0; l < W; ++l) {
      const std::size_t idx = base[l] + static_cast<std::size_t>(b);
      const double r = c.fade_rho_k * re[idx] + c.fade_component_scale * wr[l];
      const double i = c.fade_rho_k * im[idx] + c.fade_component_scale * wi[l];
      re[idx] = r;
      im[idx] = i;
      pow_acc[l] += r * r + i * i;
    }
  }
  std::uint64_t shadow_bits[W];
  for (int l = 0; l < W; ++l) {
    shadow_bits[l] = common::detail::splitmix64_mix(s[l] += gamma);
  }
  double shadow_w[W];
  for (int l = 0; l < W; ++l) {
    shadow_w[l] = lane_normal(s[l], zig, shadow_bits[l]);
  }
  for (int l = 0; l < W; ++l) {
    const std::size_t u = lane_users[l];
    fading_power_[u] = pow_acc[l] * inv_branch_count_[u];
    shadow_db_[u] = c.shadow_rho_k * shadow_db_[u] +
                    shadow_sigma_db_[u] * c.shadow_unit_scale * shadow_w[l];
    shadow_linear_[u] = -1.0;
    rng_[u].set_raw_state(s[l]);
    step_[u] = target;
  }
  jump_events_ += W;
  jump_frames_ += W * k;
}

template <int W, typename Index>
void ChannelBank::materialize_batch(const Index* ids, std::size_t n) {
  if constexpr (W == 1) {
    // Scalar path: the classic memoized jump loop (bit-identical to the
    // historical advance_all_to body when ids is the full population). In
    // the common case every user shares one sample interval and one
    // parameter group, so the coefficient lookup is hoisted out of the
    // loop by the memo of the previous iteration.
    std::size_t last_group = static_cast<std::size_t>(-1);
    std::int64_t last_k = -1;
    const JumpCoeffs* c = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      const auto user = static_cast<std::size_t>(ids[i]);
      const std::int64_t target = dt_targets_[dt_index_[user]];
      if (target < step_[user]) {
        throw std::logic_error(
            "ChannelBank::advance_all_to: time went backwards");
      }
      const std::int64_t k = target - step_[user];
      if (k == 0) continue;
      if (c == nullptr || group_[user] != last_group || k != last_k) {
        last_group = group_[user];
        last_k = k;
        c = &coeffs(last_group, k);
      }
      jump_user(user, *c);
      step_[user] = target;
      ++jump_events_;
      jump_frames_ += k;
    }
  } else {
    // Strip-mined path: runs of users sharing (stride, group, branches)
    // fill W-wide lanes; key changes and remainders fall back to the
    // scalar jump. Both paths produce the same bits, so mixed batches are
    // purely a throughput matter.
    std::uint32_t lanes[W];
    int filled = 0;
    std::size_t lane_group = 0;
    std::int64_t lane_k = 0;
    std::int64_t lane_target = 0;
    int lane_branches = 0;
    const JumpCoeffs* lane_c = nullptr;
    auto flush_scalar = [&]() {
      for (int l = 0; l < filled; ++l) {
        const std::size_t u = lanes[l];
        jump_user(u, *lane_c);
        step_[u] = lane_target;
        ++jump_events_;
        jump_frames_ += lane_k;
      }
      filled = 0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      const auto user = static_cast<std::size_t>(ids[i]);
      const std::int64_t target = dt_targets_[dt_index_[user]];
      if (target < step_[user]) {
        throw std::logic_error(
            "ChannelBank::advance_all_to: time went backwards");
      }
      const std::int64_t k = target - step_[user];
      if (k == 0) continue;
      if (filled > 0 && (group_[user] != lane_group || k != lane_k ||
                         branch_count_[user] != lane_branches)) {
        flush_scalar();
      }
      if (filled == 0) {
        lane_group = group_[user];
        lane_k = k;
        lane_target = target;
        lane_branches = branch_count_[user];
        lane_c = &coeffs(lane_group, lane_k);
      }
      lanes[filled++] = static_cast<std::uint32_t>(user);
      if (filled == W) {
        strip_kernel<W>(lanes, *lane_c, lane_branches, lane_k, lane_target);
        filled = 0;
      }
    }
    if (filled > 0) flush_scalar();
  }
}

void ChannelBank::materialize_all() {
  // "All" means all *active* rows: vacant rows must never advance (their
  // next acquire re-seeds them) nor count toward the jump accounting. With
  // no vacancies the batch is the historical full iota, bit for bit.
  refresh_active();
  const std::size_t n = scratch_ids_.size();
  switch (strip_width_) {
    case 4:
      materialize_batch<4>(scratch_ids_.data(), n);
      break;
    case 8:
      materialize_batch<8>(scratch_ids_.data(), n);
      break;
    default:
      materialize_batch<1>(scratch_ids_.data(), n);
      break;
  }
}

void ChannelBank::materialize_users(std::span<const common::UserId> users) {
  for (const common::UserId id : users) {
    if (id < 0 || static_cast<std::size_t>(id) >= configs_.size()) {
      throw std::out_of_range("ChannelBank::materialize_users: bad user");
    }
  }
  switch (strip_width_) {
    case 4:
      materialize_batch<4>(users.data(), users.size());
      break;
    case 8:
      materialize_batch<8>(users.data(), users.size());
      break;
    default:
      materialize_batch<1>(users.data(), users.size());
      break;
  }
}

void ChannelBank::advance_users_to(std::span<const common::UserId> users,
                                   common::Time t) {
  set_time(t);
  materialize_users(users);
}

void ChannelBank::advance_all_to(common::Time t) {
  set_time(t);
  materialize_all();
}

void ChannelBank::set_strip_width(int width) {
  if (width != 1 && width != 4 && width != 8) {
    throw std::invalid_argument(
        "ChannelBank::set_strip_width: width must be 1, 4 or 8");
  }
  strip_width_ = width;
}

void ChannelBank::set_mean_snr_db(std::size_t user, double db) {
  if (user >= configs_.size()) {
    throw std::out_of_range("ChannelBank::set_mean_snr_db: bad user");
  }
  configs_[user].mean_snr_db = db;
  mean_snr_db_[user] = db;
  mean_snr_linear_[user] = common::from_db(db);
}

void ChannelBank::set_mean_snr_db_all(std::span<const double> db) {
  const std::size_t n = configs_.size();
  if (db.size() < n) {
    throw std::invalid_argument("ChannelBank::set_mean_snr_db_all: short span");
  }
  if (vacant_count_ != 0) {
    // Sparse bank: db[slot] is defined only for active slots; vacant rows
    // keep whatever they held (re-seeded on acquire, never read).
    refresh_active();
    for (const std::uint32_t u : scratch_ids_) {
      configs_[u].mean_snr_db = db[u];
      mean_snr_db_[u] = db[u];
      mean_snr_linear_[u] = common::from_db(db[u]);
    }
    return;
  }
  for (std::size_t u = 0; u < n; ++u) {
    configs_[u].mean_snr_db = db[u];
    mean_snr_db_[u] = db[u];
  }
  // Separate pass so the pow() loop streams the two flat arrays without the
  // ChannelConfig stride (and vectorizes under -fno-math-errno).
  const double* src = db.data();
  double* dst = mean_snr_linear_.data();
  for (std::size_t u = 0; u < n; ++u) {
    dst[u] = common::from_db(src[u]);
  }
}

void ChannelBank::set_interference_db_all(std::span<const double> db) {
  const std::size_t n = configs_.size();
  if (db.size() < n) {
    throw std::invalid_argument(
        "ChannelBank::set_interference_db_all: short span");
  }
  if (vacant_count_ != 0) {
    refresh_active();
    for (const std::uint32_t u : scratch_ids_) {
      interference_db_[u] = db[u];
      interference_linear_[u] = common::from_db(-db[u]);
    }
    return;
  }
  for (std::size_t u = 0; u < n; ++u) {
    interference_db_[u] = db[u];
  }
  // Same two-pass structure as set_mean_snr_db_all: the pow() loop streams
  // flat arrays and vectorizes under -fno-math-errno.
  const double* src = db.data();
  double* dst = interference_linear_.data();
  for (std::size_t u = 0; u < n; ++u) {
    dst[u] = common::from_db(-src[u]);
  }
}

void ChannelBank::set_mean_snr_db_range(std::size_t first,
                                        std::span<const double> db) {
  if (first + db.size() > configs_.size()) {
    throw std::out_of_range("ChannelBank::set_mean_snr_db_range: bad range");
  }
  const bool sparse = vacant_count_ != 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const std::size_t u = first + i;
    if (sparse && vacant_[u]) continue;  // free-list row: never read
    configs_[u].mean_snr_db = db[i];
    mean_snr_db_[u] = db[i];
    mean_snr_linear_[u] = common::from_db(db[i]);
  }
}

void ChannelBank::set_interference_db_range(std::size_t first,
                                            std::span<const double> db) {
  if (first + db.size() > configs_.size()) {
    throw std::out_of_range(
        "ChannelBank::set_interference_db_range: bad range");
  }
  const bool sparse = vacant_count_ != 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const std::size_t u = first + i;
    if (sparse && vacant_[u]) continue;
    interference_db_[u] = db[i];
    interference_linear_[u] = common::from_db(-db[i]);
  }
}

void ChannelBank::snr_db_range(std::size_t first, std::span<double> out) const {
  if (first + out.size() > configs_.size()) {
    throw std::out_of_range("ChannelBank::snr_db_range: bad range");
  }
  if (lazy_) {
    // Materialization walks bank-wide stride/jump bookkeeping — not a
    // per-row operation; lazy banks must snapshot through snr_db_all.
    throw std::logic_error("ChannelBank::snr_db_range: bank is lazy");
  }
  constexpr double kTenOverLn10 = 4.342944819032518;  // 10 / ln(10)
  const double* mean_db = mean_snr_db_.data();
  const double* shadow = shadow_db_.data();
  const double* fade = fading_power_.data();
  const double* interf = interference_db_.data();
  double* dst = out.data();
  const bool sparse = vacant_count_ != 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t u = first + i;
    if (sparse && vacant_[u]) continue;  // caller owns out's stale entries
    // Subtracting the interference penalty last keeps the interference-free
    // value (penalty 0.0) bit-identical to the pre-SINR pilot plane.
    dst[i] = mean_db[u] + shadow[u] + kTenOverLn10 * std::log(fade[u]) -
             interf[u];
  }
}

double ChannelBank::snr_db(std::size_t user) const {
  return common::to_db(snr_linear(user));
}

void ChannelBank::snr_db_all(std::span<double> out) const {
  const std::size_t n = configs_.size();
  if (out.size() < n) {
    throw std::invalid_argument("ChannelBank::snr_db_all: short span");
  }
  // The pilot plane reads everyone, so a lazy bank re-anchors the whole
  // population here — this is what bounds a mobile world's idle gaps at
  // one epoch. Same logical-constness note as ensure_user.
  if (lazy_) const_cast<ChannelBank*>(this)->materialize_all();
  constexpr double kTenOverLn10 = 4.342944819032518;  // 10 / ln(10)
  const double* mean_db = mean_snr_db_.data();
  const double* shadow = shadow_db_.data();
  const double* fade = fading_power_.data();
  const double* interf = interference_db_.data();
  double* dst = out.data();
  if (vacant_count_ != 0) {
    // Vacant rows keep whatever out[slot] already held — the caller owns
    // the slot-indexed buffer and only reads active entries.
    refresh_active();
    for (const std::uint32_t u : scratch_ids_) {
      dst[u] = mean_db[u] + shadow[u] + kTenOverLn10 * std::log(fade[u]) -
               interf[u];
    }
    return;
  }
  for (std::size_t u = 0; u < n; ++u) {
    // Subtracting the interference penalty last keeps the interference-free
    // value (penalty 0.0) bit-identical to the pre-SINR pilot plane.
    dst[u] = mean_db[u] + shadow[u] + kTenOverLn10 * std::log(fade[u]) -
             interf[u];
  }
}

}  // namespace charisma::channel
