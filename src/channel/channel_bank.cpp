#include "channel/channel_bank.hpp"

#include <cmath>
#include <stdexcept>

#include "channel/fading.hpp"
#include "common/math.hpp"

namespace charisma::channel {

namespace {
constexpr double kHalfPower = 0.7071067811865476;  // sqrt(1/2)

// Memoizing every distinct stride is safe: protocols use a handful of frame
// lengths, so the per-group table stays tiny. The cap only guards against a
// pathological caller advancing by a never-repeating stride sequence.
constexpr std::size_t kMaxCachedStrides = 64;
}  // namespace

common::Hertz ChannelConfig::doppler_for_speed(common::Speed speed,
                                               common::Hertz carrier_hz) {
  if (speed < 0.0 || carrier_hz <= 0.0) {
    throw std::invalid_argument("doppler_for_speed: invalid arguments");
  }
  return speed * carrier_hz / common::kSpeedOfLight;
}

void ChannelBank::reserve(std::size_t users) {
  configs_.reserve(users);
  rng_.reserve(users);
  branch_begin_.reserve(users);
  branch_count_.reserve(users);
  mean_snr_linear_.reserve(users);
  mean_snr_db_.reserve(users);
  interference_db_.reserve(users);
  interference_linear_.reserve(users);
  shadow_sigma_db_.reserve(users);
  inv_branch_count_.reserve(users);
  dt_.reserve(users);
  step_.reserve(users);
  group_.reserve(users);
  fading_power_.reserve(users);
  shadow_db_.reserve(users);
  shadow_linear_.reserve(users);
}

std::size_t ChannelBank::group_for(double fade_rho, double shadow_rho) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].fade_rho == fade_rho &&
        groups_[g].shadow_rho == shadow_rho) {
      return g;
    }
  }
  groups_.push_back(ParamGroup{fade_rho, shadow_rho, {}});
  return groups_.size() - 1;
}

std::size_t ChannelBank::add_user(const ChannelConfig& config,
                                  common::RngStream rng) {
  if (config.diversity_branches < 1) {
    throw std::invalid_argument("ChannelBank: need >= 1 diversity branch");
  }
  if (config.shadow_sigma_db < 0.0) {
    throw std::invalid_argument("ChannelBank: shadow_sigma_db must be >= 0");
  }
  if (config.shadow_tau <= 0.0 || config.sample_interval <= 0.0) {
    throw std::invalid_argument(
        "ChannelBank: shadow_tau and sample_interval must be > 0");
  }
  const double fade_rho =
      ar_rho_for(config.doppler_hz, config.sample_interval);
  const double shadow_rho =
      std::exp(-config.sample_interval / config.shadow_tau);

  const std::size_t user = configs_.size();
  configs_.push_back(config);
  branch_begin_.push_back(fade_re_.size());
  branch_count_.push_back(config.diversity_branches);
  mean_snr_linear_.push_back(common::from_db(config.mean_snr_db));
  mean_snr_db_.push_back(config.mean_snr_db);
  interference_db_.push_back(0.0);
  interference_linear_.push_back(1.0);
  inv_branch_count_.push_back(1.0 /
                              static_cast<double>(config.diversity_branches));
  shadow_sigma_db_.push_back(config.shadow_sigma_db);
  dt_.push_back(config.sample_interval);
  step_.push_back(0);
  group_.push_back(group_for(fade_rho, shadow_rho));

  // The user's RngStream seeds its compact per-user innovation engine.
  common::SplitMix64 fast(rng.engine()());
  const auto& zig = common::detail::ziggurat_tables();

  // Stationary start, same draw order as the scalar classes: per branch an
  // I then a Q component, then the shadowing value.
  double power = 0.0;
  for (int b = 0; b < config.diversity_branches; ++b) {
    const double re = kHalfPower * fast.normal(zig);
    const double im = kHalfPower * fast.normal(zig);
    fade_re_.push_back(re);
    fade_im_.push_back(im);
    power += re * re + im * im;
  }
  fading_power_.push_back(power /
                          static_cast<double>(config.diversity_branches));
  const double shadow = config.shadow_sigma_db * fast.normal(zig);
  shadow_db_.push_back(shadow);
  shadow_linear_.push_back(common::from_db(shadow));
  rng_.push_back(fast);
  return user;
}

const ChannelBank::JumpCoeffs& ChannelBank::coeffs(std::size_t group,
                                                   std::int64_t k) {
  auto& strides = groups_[group].strides;
  for (const auto& entry : strides) {
    if (entry.first == k) return entry.second;
  }
  const double fade_rho_k =
      std::pow(groups_[group].fade_rho, static_cast<double>(k));
  const double shadow_rho_k =
      std::pow(groups_[group].shadow_rho, static_cast<double>(k));
  JumpCoeffs c;
  c.fade_rho_k = fade_rho_k;
  c.fade_component_scale = std::sqrt((1.0 - fade_rho_k * fade_rho_k) * 0.5);
  c.shadow_rho_k = shadow_rho_k;
  c.shadow_unit_scale = std::sqrt(1.0 - shadow_rho_k * shadow_rho_k);
  if (strides.size() >= kMaxCachedStrides) strides.clear();
  strides.emplace_back(k, c);
  return strides.back().second;
}

void ChannelBank::jump_user(std::size_t user, const JumpCoeffs& c) {
  auto& rng = rng_[user];
  const auto& zig = common::detail::ziggurat_tables();
  const std::size_t begin = branch_begin_[user];
  const std::size_t end = begin + static_cast<std::size_t>(branch_count_[user]);
  double* const re = fade_re_.data();
  double* const im = fade_im_.data();
  double power = 0.0;
  for (std::size_t b = begin; b < end; ++b) {
    double wr, wi;
    rng.normal_pair(zig, wr, wi);
    const double r = c.fade_rho_k * re[b] + c.fade_component_scale * wr;
    const double i = c.fade_rho_k * im[b] + c.fade_component_scale * wi;
    re[b] = r;
    im[b] = i;
    power += r * r + i * i;
  }
  fading_power_[user] = power * inv_branch_count_[user];
  shadow_db_[user] = c.shadow_rho_k * shadow_db_[user] +
                     shadow_sigma_db_[user] * c.shadow_unit_scale *
                         rng.normal(zig);
  shadow_linear_[user] = -1.0;  // recomputed lazily on first SNR read
}

void ChannelBank::advance_user_to(std::size_t user, common::Time t) {
  // Same boundary rule as the historical per-user walk: the epsilon absorbs
  // accumulated floating-point error when t is built by summing frame
  // durations that are not exact binary fractions.
  const auto target =
      static_cast<std::int64_t>(std::floor(t / dt_[user] + 1e-9));
  if (target < step_[user]) {
    throw std::logic_error("ChannelBank::advance_user_to: time went backwards");
  }
  const std::int64_t k = target - step_[user];
  if (k == 0) return;
  jump_user(user, coeffs(group_[user], k));
  step_[user] = target;
}

void ChannelBank::advance_all_to(common::Time t) {
  // In the common case every user shares one sample interval and one
  // parameter group, so both the target-step division and the coefficient
  // lookup are hoisted out of the loop by the memo of the previous
  // iteration.
  std::size_t last_group = static_cast<std::size_t>(-1);
  std::int64_t last_k = -1;
  const JumpCoeffs* c = nullptr;
  double last_dt = -1.0;
  std::int64_t last_target = 0;
  const std::size_t n = configs_.size();
  for (std::size_t user = 0; user < n; ++user) {
    if (dt_[user] != last_dt) {
      last_dt = dt_[user];
      last_target = static_cast<std::int64_t>(std::floor(t / last_dt + 1e-9));
    }
    const std::int64_t target = last_target;
    if (target < step_[user]) {
      throw std::logic_error(
          "ChannelBank::advance_all_to: time went backwards");
    }
    const std::int64_t k = target - step_[user];
    if (k == 0) continue;
    if (c == nullptr || group_[user] != last_group || k != last_k) {
      last_group = group_[user];
      last_k = k;
      c = &coeffs(last_group, k);
    }
    jump_user(user, *c);
    step_[user] = target;
  }
}

void ChannelBank::set_mean_snr_db(std::size_t user, double db) {
  if (user >= configs_.size()) {
    throw std::out_of_range("ChannelBank::set_mean_snr_db: bad user");
  }
  configs_[user].mean_snr_db = db;
  mean_snr_db_[user] = db;
  mean_snr_linear_[user] = common::from_db(db);
}

void ChannelBank::set_mean_snr_db_all(std::span<const double> db) {
  const std::size_t n = configs_.size();
  if (db.size() < n) {
    throw std::invalid_argument("ChannelBank::set_mean_snr_db_all: short span");
  }
  for (std::size_t u = 0; u < n; ++u) {
    configs_[u].mean_snr_db = db[u];
    mean_snr_db_[u] = db[u];
  }
  // Separate pass so the pow() loop streams the two flat arrays without the
  // ChannelConfig stride (and vectorizes under -fno-math-errno).
  const double* src = db.data();
  double* dst = mean_snr_linear_.data();
  for (std::size_t u = 0; u < n; ++u) {
    dst[u] = common::from_db(src[u]);
  }
}

void ChannelBank::set_interference_db_all(std::span<const double> db) {
  const std::size_t n = configs_.size();
  if (db.size() < n) {
    throw std::invalid_argument(
        "ChannelBank::set_interference_db_all: short span");
  }
  for (std::size_t u = 0; u < n; ++u) {
    interference_db_[u] = db[u];
  }
  // Same two-pass structure as set_mean_snr_db_all: the pow() loop streams
  // flat arrays and vectorizes under -fno-math-errno.
  const double* src = db.data();
  double* dst = interference_linear_.data();
  for (std::size_t u = 0; u < n; ++u) {
    dst[u] = common::from_db(-src[u]);
  }
}

double ChannelBank::snr_db(std::size_t user) const {
  return common::to_db(snr_linear(user));
}

void ChannelBank::snr_db_all(std::span<double> out) const {
  const std::size_t n = configs_.size();
  if (out.size() < n) {
    throw std::invalid_argument("ChannelBank::snr_db_all: short span");
  }
  constexpr double kTenOverLn10 = 4.342944819032518;  // 10 / ln(10)
  const double* mean_db = mean_snr_db_.data();
  const double* shadow = shadow_db_.data();
  const double* fade = fading_power_.data();
  const double* interf = interference_db_.data();
  double* dst = out.data();
  for (std::size_t u = 0; u < n; ++u) {
    // Subtracting the interference penalty last keeps the interference-free
    // value (penalty 0.0) bit-identical to the pre-SINR pilot plane.
    dst[u] = mean_db[u] + shadow[u] + kTenOverLn10 * std::log(fade[u]) -
             interf[u];
  }
}

}  // namespace charisma::channel
