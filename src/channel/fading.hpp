// Short-term (multipath) fading models.
//
// Two generators are provided:
//  * JakesFadingGenerator — Clarke/Jakes sum-of-sinusoids model. Produces a
//    continuous-time complex gain; used for the Fig. 5 style fading traces
//    and for validating the AR(1) model's autocorrelation against
//    J0(2*pi*fd*tau).
//  * ArFadingBranch / DiversityFadingProcess — first-order Gauss-Markov
//    branches stepped on the frame grid; the per-slot *effective* SNR used
//    by the protocol simulations is the average power of `branches`
//    i.i.d. branches (Gamma(L) marginal, i.e. Nakagami-L), modelling
//    interleaving + diversity combining as motivated in DESIGN.md.
#pragma once

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::channel {

/// Clarke/Jakes sum-of-sinusoids Rayleigh fading. The complex gain at time t
/// is a deterministic function of t given the randomly drawn arrival angles
/// and phases, so traces can be sampled at any resolution.
class JakesFadingGenerator {
 public:
  /// `oscillators` >= 8 for an acceptably Rayleigh-like envelope.
  JakesFadingGenerator(common::Hertz doppler, int oscillators,
                       common::RngStream& rng);

  /// Complex channel gain at time t; E[|h|^2] == 1.
  std::complex<double> gain(common::Time t) const;

  /// Power gain |h(t)|^2.
  double power_gain(common::Time t) const;

  common::Hertz doppler() const { return doppler_; }

 private:
  common::Hertz doppler_;
  std::vector<double> doppler_shift_;  // per-oscillator frequency, Hz
  std::vector<double> phase_;          // per-oscillator initial phase
  double amplitude_;                   // per-oscillator amplitude
};

/// One AR(1) complex-Gaussian fading branch stepped on a fixed grid:
///   h[n+1] = rho * h[n] + sqrt(1 - rho^2) * w[n],  w ~ CN(0, 1).
/// The stationary distribution is CN(0,1) (Rayleigh envelope, unit mean
/// power).
class ArFadingBranch {
 public:
  ArFadingBranch(double rho, common::RngStream& rng);

  /// Advances one grid step.
  void step(common::RngStream& rng);

  /// Advances k grid steps in O(1) via the closed-form AR(1) composition
  ///   h[n+k] = rho^k h[n] + sqrt(1 - rho^(2k)) w,  w ~ CN(0, 1),
  /// distributionally identical to k calls of step() (k >= 0).
  void jump(int k, common::RngStream& rng);

  /// |h|^2 of the current state.
  double power() const { return std::norm(h_); }

  /// Current complex state, exposed for autocorrelation tests.
  std::complex<double> state() const { return h_; }

  double rho() const { return rho_; }

 private:
  double rho_;
  double innovation_scale_;
  std::complex<double> h_;
};

/// Per-step correlation coefficient for a grid interval dt under coherence
/// time Tc = 1/doppler: rho = exp(-dt * doppler). (An exponential
/// correlation model; see DESIGN.md for why this is preferred over the
/// oscillatory J0 form for the MAC-level simulation.)
double ar_rho_for(common::Hertz doppler, common::Time dt);

/// L independent AR(1) branches whose average power is the effective
/// short-term power gain: marginal Gamma(L, 1/L), unit mean (Nakagami-L).
class DiversityFadingProcess {
 public:
  DiversityFadingProcess(int branches, double rho, common::RngStream& rng);

  void step(common::RngStream& rng);

  /// Advances all branches k grid steps in O(1) (see ArFadingBranch::jump).
  void jump(int k, common::RngStream& rng);

  /// Effective power gain (unit mean).
  double power_gain() const;

  int branches() const { return static_cast<int>(branches_.size()); }

 private:
  std::vector<ArFadingBranch> branches_;
};

}  // namespace charisma::channel
