#include "channel/fading.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace charisma::channel {

JakesFadingGenerator::JakesFadingGenerator(common::Hertz doppler,
                                           int oscillators,
                                           common::RngStream& rng)
    : doppler_(doppler) {
  if (doppler <= 0.0) {
    throw std::invalid_argument("JakesFadingGenerator: doppler must be > 0");
  }
  if (oscillators < 8) {
    throw std::invalid_argument(
        "JakesFadingGenerator: need at least 8 oscillators");
  }
  doppler_shift_.reserve(static_cast<std::size_t>(oscillators));
  phase_.reserve(static_cast<std::size_t>(2 * oscillators));
  // Random arrival angles (uniform over the circle) rather than the classic
  // equally-spaced set: avoids the deterministic-Jakes correlation artifacts
  // and keeps distinct users statistically independent.
  for (int k = 0; k < oscillators; ++k) {
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    doppler_shift_.push_back(doppler * std::cos(angle));
    phase_.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));  // I phase
    phase_.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));  // Q phase
  }
  amplitude_ = std::sqrt(1.0 / oscillators);
}

std::complex<double> JakesFadingGenerator::gain(common::Time t) const {
  double re = 0.0;
  double im = 0.0;
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t k = 0; k < doppler_shift_.size(); ++k) {
    const double arg = two_pi * doppler_shift_[k] * t;
    re += std::cos(arg + phase_[2 * k]);
    im += std::sin(arg + phase_[2 * k + 1]);
  }
  return {amplitude_ * re, amplitude_ * im};
}

double JakesFadingGenerator::power_gain(common::Time t) const {
  return std::norm(gain(t));
}

ArFadingBranch::ArFadingBranch(double rho, common::RngStream& rng) : rho_(rho) {
  if (rho < 0.0 || rho >= 1.0) {
    throw std::invalid_argument("ArFadingBranch: rho must be in [0, 1)");
  }
  innovation_scale_ = std::sqrt(1.0 - rho * rho);
  // Start in the stationary distribution so no burn-in is needed.
  constexpr double kHalfPower = 0.7071067811865476;  // sqrt(1/2)
  h_ = {kHalfPower * rng.normal(), kHalfPower * rng.normal()};
}

void ArFadingBranch::step(common::RngStream& rng) {
  constexpr double kHalfPower = 0.7071067811865476;
  const std::complex<double> w{kHalfPower * rng.normal(),
                               kHalfPower * rng.normal()};
  h_ = rho_ * h_ + innovation_scale_ * w;
}

void ArFadingBranch::jump(int k, common::RngStream& rng) {
  if (k < 0) throw std::invalid_argument("ArFadingBranch::jump: k must be >= 0");
  if (k == 0) return;
  const double rho_k = std::pow(rho_, static_cast<double>(k));
  const double component_scale = std::sqrt((1.0 - rho_k * rho_k) * 0.5);
  const std::complex<double> w{component_scale * rng.normal(),
                               component_scale * rng.normal()};
  h_ = rho_k * h_ + w;
}

double ar_rho_for(common::Hertz doppler, common::Time dt) {
  if (doppler <= 0.0 || dt <= 0.0) {
    throw std::invalid_argument("ar_rho_for: doppler and dt must be > 0");
  }
  return std::exp(-dt * doppler);
}

DiversityFadingProcess::DiversityFadingProcess(int branches, double rho,
                                               common::RngStream& rng) {
  if (branches < 1) {
    throw std::invalid_argument("DiversityFadingProcess: need >= 1 branch");
  }
  branches_.reserve(static_cast<std::size_t>(branches));
  for (int i = 0; i < branches; ++i) branches_.emplace_back(rho, rng);
}

void DiversityFadingProcess::step(common::RngStream& rng) {
  for (auto& b : branches_) b.step(rng);
}

void DiversityFadingProcess::jump(int k, common::RngStream& rng) {
  for (auto& b : branches_) b.jump(k, rng);
}

double DiversityFadingProcess::power_gain() const {
  double sum = 0.0;
  for (const auto& b : branches_) sum += b.power();
  return sum / static_cast<double>(branches_.size());
}

}  // namespace charisma::channel
