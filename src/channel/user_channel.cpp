#include "channel/user_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace charisma::channel {

common::Hertz ChannelConfig::doppler_for_speed(common::Speed speed,
                                               common::Hertz carrier_hz) {
  if (speed < 0.0 || carrier_hz <= 0.0) {
    throw std::invalid_argument("doppler_for_speed: invalid arguments");
  }
  return speed * carrier_hz / common::kSpeedOfLight;
}

UserChannel::UserChannel(const ChannelConfig& config, common::RngStream rng)
    : config_(config),
      rng_(std::move(rng)),
      fading_(config.diversity_branches,
              ar_rho_for(config.doppler_hz, config.sample_interval), rng_),
      shadowing_(config.shadow_sigma_db, config.shadow_tau,
                 config.sample_interval, rng_),
      mean_snr_linear_(common::from_db(config.mean_snr_db)) {}

void UserChannel::advance_to(common::Time t) {
  const auto target_step =
      static_cast<std::int64_t>(std::floor(t / config_.sample_interval + 1e-9));
  if (target_step < current_step_) {
    throw std::logic_error("UserChannel::advance_to: time went backwards");
  }
  while (current_step_ < target_step) {
    fading_.step(rng_);
    shadowing_.step(rng_);
    ++current_step_;
  }
}

double UserChannel::snr_linear() const {
  return mean_snr_linear_ * fading_.power_gain() * shadowing_.linear_gain();
}

double UserChannel::snr_db() const { return common::to_db(snr_linear()); }

}  // namespace charisma::channel
