#include "channel/user_channel.hpp"

namespace charisma::channel {

UserChannel::UserChannel(const ChannelConfig& config, common::RngStream rng)
    : owned_(std::make_unique<ChannelBank>()), bank_(owned_.get()) {
  index_ = bank_->add_user(config, std::move(rng));
}

UserChannel::UserChannel(ChannelBank& bank, std::size_t index)
    : bank_(&bank), index_(index) {}

}  // namespace charisma::channel
