#include "channel/user_channel.hpp"

namespace charisma::channel {

UserChannel::UserChannel(const ChannelConfig& config, common::RngStream rng)
    : owned_(std::make_unique<ChannelBank>()), bank_(owned_.get()) {
  // The private bank's jump coefficients come from the process-wide
  // shared_coeffs memo, so standalone channels do not each re-derive the
  // rho^k tables their strides need.
  index_ = bank_->add_user(config, std::move(rng));
}

UserChannel::UserChannel(ChannelBank& bank, std::size_t index)
    : bank_(&bank), index_(index) {}

}  // namespace charisma::channel
