// Numeric helpers shared by the channel and PHY models: dB conversions,
// Gaussian tail functions and their inverses, and the Bessel J0 used by the
// Jakes fading autocorrelation.
#pragma once

namespace charisma::common {

/// Converts a linear power ratio to decibels.
double to_db(double linear);

/// Converts decibels to a linear power ratio.
double from_db(double db);

/// Gaussian Q-function: P(N(0,1) > x).
double q_function(double x);

/// Inverse of the complementary error function. Accurate to ~1e-9 over
/// y in (0, 2) via a rational seed refined with two Newton steps.
double erfc_inv(double y);

/// Bessel function of the first kind, order zero. Polynomial approximation
/// (Abramowitz & Stegun 9.4.1/9.4.3), |error| < 1e-7.
double bessel_j0(double x);

/// Regularized upper incomplete gamma Q(k, x) for *integer* k >= 1:
/// P(Gamma(k,1) > x) = e^-x * sum_{n<k} x^n/n!.
/// Used to validate the Nakagami-m effective-SNR distribution in tests and
/// to derive operating points analytically.
double gamma_upper_regularized(int k, double x);

/// Numerically stable log(1+x) wrapper kept for symmetry with the header's
/// role as the single math include.
double log1p_stable(double x);

}  // namespace charisma::common
