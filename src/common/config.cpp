#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace charisma::common {

KeyValueConfig KeyValueConfig::from_args(const std::vector<std::string>& args) {
  KeyValueConfig cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("KeyValueConfig: expected key=value, got '" +
                                  arg + "'");
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

std::optional<std::string> KeyValueConfig::get_string(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> KeyValueConfig::get_double(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(*s, &pos);
    if (pos != s->size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("KeyValueConfig: value for '" + key +
                                "' is not a number: '" + *s + "'");
  }
}

std::optional<int> KeyValueConfig::get_int(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(*s, &pos);
    if (pos != s->size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("KeyValueConfig: value for '" + key +
                                "' is not an integer: '" + *s + "'");
  }
}

long long KeyValueConfig::parse_count(const std::string& key,
                                      const std::string& value) {
  const auto fail = [&](const char* what) {
    throw std::invalid_argument("KeyValueConfig: value for '" + key +
                                "' is not a count (" + what + "): '" + value +
                                "'");
  };
  double number = 0.0;
  std::size_t pos = 0;
  try {
    number = std::stod(value, &pos);
  } catch (const std::exception&) {
    fail("not a number");
  }
  double multiplier = 1.0;
  if (pos < value.size()) {
    const std::string suffix = value.substr(pos);
    if (suffix == "k" || suffix == "K") {
      multiplier = 1e3;
    } else if (suffix == "m" || suffix == "M") {
      multiplier = 1e6;
    } else {
      fail("unknown suffix");
    }
  }
  const double scaled = number * multiplier;
  const long long rounded = std::llround(scaled);
  if (scaled != static_cast<double>(rounded)) fail("not an integer");
  return rounded;
}

std::optional<long long> KeyValueConfig::get_count(
    const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  return parse_count(key, *s);
}

std::optional<bool> KeyValueConfig::get_bool(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::invalid_argument("KeyValueConfig: value for '" + key +
                              "' is not a boolean: '" + *s + "'");
}

double KeyValueConfig::get_double_or(const std::string& key,
                                     double fallback) const {
  auto v = get_double(key);
  return v ? *v : fallback;
}

int KeyValueConfig::get_int_or(const std::string& key, int fallback) const {
  auto v = get_int(key);
  return v ? *v : fallback;
}

bool KeyValueConfig::get_bool_or(const std::string& key, bool fallback) const {
  auto v = get_bool(key);
  return v ? *v : fallback;
}

long long KeyValueConfig::get_count_or(const std::string& key,
                                       long long fallback) const {
  auto v = get_count(key);
  return v ? *v : fallback;
}

std::string KeyValueConfig::get_string_or(const std::string& key,
                                          const std::string& fallback) const {
  auto v = get_string(key);
  return v ? *v : fallback;
}

void KeyValueConfig::reject_unknown(
    const std::vector<std::string>& known) const {
  for (const auto& [key, value] : entries_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("KeyValueConfig: unknown key '" + key + "'");
    }
  }
}

bool KeyValueConfig::contains(const std::string& key) const {
  return entries_.count(key) > 0;
}

}  // namespace charisma::common
