#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace charisma::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: break;
  }
  return "OFF";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace charisma::common
