// Minimal leveled logger. Off by default so benchmark loops stay clean;
// tests and examples can raise the level for tracing protocol decisions.
#pragma once

#include <sstream>
#include <string>

namespace charisma::common {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global level; reads/writes are relaxed-atomic underneath.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when the given level would currently be emitted.
bool log_enabled(LogLevel level);

/// Emits a single line ("[LEVEL] message") to stderr. Thread-safe line-wise.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { log_line(level_, os_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace charisma::common

#define CHARISMA_LOG(level)                                       \
  if (!::charisma::common::log_enabled(level)) {                  \
  } else                                                          \
    ::charisma::common::detail::LineBuilder(level)
