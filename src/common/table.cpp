#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace charisma::common {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::size_t total = 0;
  for (auto w : widths) total += w + 2;

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return true;
}

}  // namespace charisma::common
