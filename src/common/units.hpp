// Units and small strong-typed quantities used across the library.
//
// Simulation time is carried as double seconds (the de-facto DES idiom);
// this header centralizes the conversion helpers so magic constants such as
// "2.5e-3" never appear inline in protocol code.
#pragma once

#include <cstdint>

namespace charisma::common {

/// Simulation time in seconds.
using Time = double;

/// Frequency in hertz.
using Hertz = double;

inline constexpr Time seconds(double s) { return s; }
inline constexpr Time milliseconds(double ms) { return ms * 1e-3; }
inline constexpr Time microseconds(double us) { return us * 1e-6; }

inline constexpr double to_milliseconds(Time t) { return t * 1e3; }
inline constexpr double to_microseconds(Time t) { return t * 1e6; }

inline constexpr Hertz hertz(double hz) { return hz; }
inline constexpr Hertz kilohertz(double khz) { return khz * 1e3; }

/// Speed in metres per second.
using Speed = double;

inline constexpr Speed km_per_hour(double kmh) { return kmh / 3.6; }
inline constexpr double to_km_per_hour(Speed v) { return v * 3.6; }

/// Speed of light, m/s.
inline constexpr double kSpeedOfLight = 2.99792458e8;

/// Frame/slot indices. 64-bit so multi-hour simulations cannot wrap.
using FrameIndex = std::int64_t;
using SlotIndex = std::int32_t;

/// Identifier of a mobile device. Dense, assigned from 0.
using UserId = std::int32_t;
inline constexpr UserId kNoUser = -1;

}  // namespace charisma::common
