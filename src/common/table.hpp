// Plain-text table and CSV emitters for the benchmark harnesses. Each
// figure/table bench prints the same rows/series the paper reports through
// these helpers, so the output stays uniform across benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace charisma::common {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double v, int precision = 4);
  /// Scientific notation, for loss probabilities spanning decades.
  static std::string sci(double v, int precision = 3);

  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Writes the header+rows as CSV (no title) to the given path.
  /// Returns false if the file could not be opened.
  bool write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace charisma::common
