#include "common/math.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace charisma::common {

double to_db(double linear) {
  if (linear <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(linear);
}

double from_db(double db) { return std::pow(10.0, db / 10.0); }

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double erfc_inv(double y) {
  if (y <= 0.0 || y >= 2.0) {
    throw std::domain_error("erfc_inv: argument must lie in (0, 2)");
  }
  // Seed with the Giles (2010) style rational approximation of erfinv on
  // z = 1 - y, then polish with Newton iterations on f(x) = erfc(x) - y.
  const double z = 1.0 - y;  // erf(x) target
  double x = 0.0;
  const double w = -std::log((1.0 - z) * (1.0 + z));
  if (w < 6.25) {
    const double ww = w - 3.125;
    double p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * ww;
    p = 1.2858480715256400167e-18 + p * ww;
    p = 1.115787767802518096e-17 + p * ww;
    p = -1.333171662854620906e-16 + p * ww;
    p = 2.0972767875968561637e-17 + p * ww;
    p = 6.6376381343583238325e-15 + p * ww;
    p = -4.0545662729752068639e-14 + p * ww;
    p = -8.1519341976054721522e-14 + p * ww;
    p = 2.6335093153082322977e-12 + p * ww;
    p = -1.2975133253453532498e-11 + p * ww;
    p = -5.4154120542946279317e-11 + p * ww;
    p = 1.051212273321532285e-09 + p * ww;
    p = -4.1126339803469836976e-09 + p * ww;
    p = -2.9070369957882005086e-08 + p * ww;
    p = 4.2347877827932403518e-07 + p * ww;
    p = -1.3654692000834678645e-06 + p * ww;
    p = -1.3882523362786468719e-05 + p * ww;
    p = 0.0001867342080340571352 + p * ww;
    p = -0.00074070253416626697512 + p * ww;
    p = -0.0060336708714301490533 + p * ww;
    p = 0.24015818242558961693 + p * ww;
    p = 1.6536545626831027356 + p * ww;
    x = p * z;
  } else {
    const double ww = std::sqrt(w) - 3.0;
    double p = -0.000200214257592989898;
    p = 0.000100950558753654891 + p * ww;
    p = 0.00134934322215091074 + p * ww;
    p = -0.00367708950378919103 + p * ww;
    p = 0.00573950773400123798 + p * ww;
    p = -0.0076224613258459574 + p * ww;
    p = 0.00943887047941515369 + p * ww;
    p = 1.00167406037309141 + p * ww;
    p = 2.83297682961763801 + p * ww;
    x = p * z;
  }
  // erfinv(z) = erfc_inv(1 - z); refine on erfc directly.
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  for (int i = 0; i < 2; ++i) {
    const double err = std::erfc(x) - y;
    x += err / (kTwoOverSqrtPi * std::exp(-x * x));
  }
  return x;
}

double bessel_j0(double x) {
  // Abramowitz & Stegun polynomial fits, split at |x| = 3.
  const double ax = std::fabs(x);
  if (ax < 3.0) {
    const double t = (x / 3.0) * (x / 3.0);
    return 1.0 +
           t * (-2.2499997 +
                t * (1.2656208 +
                     t * (-0.3163866 +
                          t * (0.0444479 +
                               t * (-0.0039444 + t * 0.00021)))));
  }
  const double t = 3.0 / ax;
  const double f0 =
      0.79788456 +
      t * (-0.00000077 +
           t * (-0.00552740 +
                t * (-0.00009512 +
                     t * (0.00137237 +
                          t * (-0.00072805 + t * 0.00014476)))));
  const double theta0 =
      ax - 0.78539816 +
      t * (-0.04166397 +
           t * (-0.00003954 +
                t * (0.00262573 +
                     t * (-0.00054125 +
                          t * (-0.00029333 + t * 0.00013558)))));
  return f0 * std::cos(theta0) / std::sqrt(ax);
}

double gamma_upper_regularized(int k, double x) {
  if (k < 1) throw std::domain_error("gamma_upper_regularized: k must be >= 1");
  if (x < 0.0) throw std::domain_error("gamma_upper_regularized: x must be >= 0");
  double term = 1.0;
  double sum = 1.0;
  for (int n = 1; n < k; ++n) {
    term *= x / static_cast<double>(n);
    sum += term;
  }
  return std::exp(-x) * sum;
}

double log1p_stable(double x) { return std::log1p(x); }

}  // namespace charisma::common
