#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace charisma::common {

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const { return count_ > 0 ? mean_ : 0.0; }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double RatioCounter::ratio() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double RatioCounter::complement() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(failures()) / static_cast<double>(trials_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  if (idx >= static_cast<std::ptrdiff_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(idx)];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: incompatible geometry");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::clipped_fraction() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(underflow_ + overflow_) /
         static_cast<double>(total_);
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  // The underflow tail occupies the lowest ranks: a target inside it can
  // only be bounded by the range edge.
  if (target <= static_cast<double>(underflow_) && q < 1.0) return lo_;
  double cum = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lower(i) + inside * width_;
    }
    cum = next;
  }
  return hi_;
}

namespace {
// Two-sided standard-normal quantile for the given confidence level.
double z_for_confidence(double confidence) {
  const double alpha = 1.0 - confidence;
  // P(|Z| < z) = confidence  =>  erfc(z/sqrt(2)) = alpha.
  return std::sqrt(2.0) * erfc_inv(alpha);
}
}  // namespace

double confidence_half_width(const Accumulator& acc, double confidence) {
  if (acc.count() < 2) return 0.0;
  const double z = z_for_confidence(confidence);
  return z * acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
}

double proportion_half_width(const RatioCounter& counter, double confidence) {
  const auto n = static_cast<double>(counter.trials());
  if (n < 1.0) return 0.0;
  const double z = z_for_confidence(confidence);
  const double p = counter.ratio();
  const double z2 = z * z;
  return (z / (1.0 + z2 / n)) *
         std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
}

}  // namespace charisma::common
