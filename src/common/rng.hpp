// Deterministic random-number streams.
//
// Every stochastic entity in the simulator (each user's channel, each
// traffic source, each contention draw) owns its own RngStream derived from
// a root seed, so (a) runs are bit-reproducible given a scenario seed and
// (b) adding users or reordering events does not perturb other entities'
// draws — the property the paper's "common simulation platform" needs for a
// fair cross-protocol comparison.
#pragma once

#include <cstdint>
#include <random>

namespace charisma::common {

/// Derives well-separated 64-bit seeds from (root, stream-id) pairs using
/// the splitmix64 finalizer. Stateless; safe to call from any thread.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

/// A self-contained random stream with the distribution draws the models
/// need. Wraps std::mt19937_64; not thread-safe (each thread/entity owns
/// its own stream).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}
  RngStream(std::uint64_t root, std::uint64_t stream)
      : engine_(derive_seed(root, stream)) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  int uniform_int(int n);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal draw.
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Rayleigh *amplitude* with E[X^2] = mean_square.
  double rayleigh_amplitude(double mean_square);

  /// Log-normal where the underlying normal is specified in dB:
  /// returns 10^(N(mean_db, sigma_db)/10).
  double lognormal_db(double mean_db, double sigma_db);

  /// Poisson with the given mean (>= 0).
  int poisson(double mean);

  /// Direct access for use with std:: distributions in tests.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace charisma::common
