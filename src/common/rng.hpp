// Deterministic random-number streams.
//
// Every stochastic entity in the simulator (each user's channel, each
// traffic source, each contention draw) owns its own RngStream derived from
// a root seed, so (a) runs are bit-reproducible given a scenario seed and
// (b) adding users or reordering events does not perturb other entities'
// draws — the property the paper's "common simulation platform" needs for a
// fair cross-protocol comparison.
//
// The distribution layer is implemented in-house (Box–Muller normals with a
// cached spare, Lemire bounded integers, Knuth/PTRS Poisson) instead of the
// std:: distribution objects: the standard leaves their algorithms
// unspecified, so stdlib upgrades would silently change every simulation
// result, and the std implementations construct per-call state on the hot
// path. Only std::mt19937_64 (whose output *is* pinned by the standard) is
// kept as the raw bit source.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>

namespace charisma::common {

/// Derives well-separated 64-bit seeds from (root, stream-id) pairs using
/// the splitmix64 finalizer. Stateless; safe to call from any thread.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

namespace detail {

/// Marsaglia–Tsang ziggurat layer tables for the standard normal, built
/// once at first use (rng.cpp): 128 equal-area layers, 53-bit magnitude.
struct ZigguratTables {
  std::uint64_t k[128];
  double w[128];
  double f[128];
};
const ZigguratTables& ziggurat_tables();

/// The splitmix64 increment and output mix, exposed as free functions so
/// the strip-mined ChannelBank kernel can advance W lane states in flat
/// arrays (auto-vectorizable integer ops) and still produce bit-identical
/// sequences to SplitMix64 instances.
inline constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ULL;

inline constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Rejection continuation of the ziggurat sampler: handles the candidate
/// `bits` that failed (or may fail) the fast accept test — wedge and tail
/// rejection, drawing further candidates from `eng` as needed. Split out
/// of ziggurat_normal_from so the ~97.9% accept path stays branch-light
/// enough for strip-mined SIMD loops; the sequence of engine draws is
/// exactly that of the original fused loop.
template <typename Engine>
double ziggurat_normal_slow(Engine& eng, const ZigguratTables& zig,
                            std::uint64_t bits) {
  for (;;) {
    const auto idx = static_cast<std::size_t>(bits & 127);
    const bool negative = (bits >> 7) & 1;
    const std::uint64_t hz = bits >> 11;
    const double x = static_cast<double>(hz) * zig.w[idx];
    if (hz < zig.k[idx]) return negative ? -x : x;
    if (idx == 0) {
      // Tail beyond r: Marsaglia's exponential-wrap rejection.
      constexpr double r = 3.442619855899;
      double xt, yt;
      do {
        double u1 = eng.uniform();
        if (u1 <= 0.0) u1 = 0x1.0p-53;
        double u2 = eng.uniform();
        if (u2 <= 0.0) u2 = 0x1.0p-53;
        xt = -std::log(u1) / r;
        yt = -std::log(u2);
      } while (yt + yt < xt * xt);
      return negative ? -(r + xt) : (r + xt);
    }
    // Wedge between layer idx and idx-1.
    if (zig.f[idx] + eng.uniform() * (zig.f[idx - 1] - zig.f[idx]) <
        std::exp(-0.5 * x * x)) {
      return negative ? -x : x;
    }
    bits = eng.next();
  }
}

/// Ziggurat sampler over any engine exposing next() -> uint64 and
/// uniform() -> [0, 1), with the first candidate draw supplied by the
/// caller (lets callers pre-generate draws with independent mixing chains
/// for ILP). Header-inline so tight SoA loops inline the ~97.9%
/// single-draw accept path: layer index (bits 0-6), sign (bit 7) and a
/// 53-bit magnitude (bits 11-63) all funded by one 64-bit draw.
template <typename Engine>
inline double ziggurat_normal_from(Engine& eng, const ZigguratTables& zig,
                                   std::uint64_t bits) {
  const auto idx = static_cast<std::size_t>(bits & 127);
  const std::uint64_t hz = bits >> 11;
  if (hz < zig.k[idx]) {
    const double x = static_cast<double>(hz) * zig.w[idx];
    return ((bits >> 7) & 1) ? -x : x;
  }
  return ziggurat_normal_slow(eng, zig, bits);
}

template <typename Engine>
inline double ziggurat_normal(Engine& eng, const ZigguratTables& zig) {
  return ziggurat_normal_from(eng, zig, eng.next());
}

}  // namespace detail

/// Minimal 8-byte generator (splitmix64) for state-dense SoA hot loops,
/// where mt19937_64's ~2.5 KB state would blow the cache out across a
/// large population. Passes BigCrush; one add + three xor-multiplies per
/// draw. Seed each instance from a well-mixed 64-bit value (e.g. a draw
/// of the owner's RngStream) to keep streams decorrelated.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return mix(state_ += kGamma); }

  /// Uniform in [0, 1), 53-bit mantissa-exact.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via the shared ziggurat tables.
  double normal(const detail::ZigguratTables& zig) {
    return detail::ziggurat_normal(*this, zig);
  }

  /// Two standard normals. The state update is a plain add, so both
  /// candidate draws are mixed on independent dependency chains — in an
  /// unrolled SoA loop the two ~5-cycle multiply chains overlap instead
  /// of serializing (the I/Q innovation fast path of ChannelBank).
  void normal_pair(const detail::ZigguratTables& zig, double& a, double& b) {
    const std::uint64_t bits_a = mix(state_ + kGamma);
    const std::uint64_t bits_b = mix(state_ + 2 * kGamma);
    state_ += 2 * kGamma;
    a = detail::ziggurat_normal_from(*this, zig, bits_a);
    b = detail::ziggurat_normal_from(*this, zig, bits_b);
  }

  /// Raw counter state, exposed for the strip-mined ChannelBank kernel
  /// (which advances lane states in flat arrays and writes them back) and
  /// for the RNG-cursor assertions of the jump-vs-step equivalence tests.
  std::uint64_t raw_state() const { return state_; }
  void set_raw_state(std::uint64_t state) { state_ = state; }

 private:
  static constexpr std::uint64_t kGamma = detail::kSplitMixGamma;

  static std::uint64_t mix(std::uint64_t z) { return detail::splitmix64_mix(z); }

  std::uint64_t state_;
};

/// A self-contained random stream with the distribution draws the models
/// need. Wraps std::mt19937_64; not thread-safe (each thread/entity owns
/// its own stream).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}
  RngStream(std::uint64_t root, std::uint64_t stream)
      : engine_(derive_seed(root, stream)) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0. Unbiased (Lemire's
  /// multiply-shift rejection).
  int uniform_int(int n);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal draw. Box–Muller pair; the second variate of each pair
  /// is cached and returned by the next call.
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Standard normal via the Marsaglia–Tsang ziggurat (128 layers): the
  /// same distribution as normal() but a different realization at ~one
  /// engine draw per variate (no transcendentals on the accept path).
  /// The batched channel hot path draws its innovations here; normal()
  /// keeps the Box–Muller sequence the regression tests pin.
  double normal_fast();

  /// Rayleigh *amplitude* with E[X^2] = mean_square.
  double rayleigh_amplitude(double mean_square);

  /// Log-normal where the underlying normal is specified in dB:
  /// returns 10^(N(mean_db, sigma_db)/10).
  double lognormal_db(double mean_db, double sigma_db);

  /// Poisson with the given mean (>= 0). Knuth's product-of-uniforms for
  /// small means, Hörmann's PTRS transformed rejection for large ones.
  int poisson(double mean);

  /// Direct access for use with std:: distributions in tests and for
  /// seeding derived generators. External draws advance the engine without
  /// the distribution layer's knowledge, so any cached Box–Muller spare
  /// would no longer be "the next variate after the engine's cursor" —
  /// drop it to keep normal() consistent with the raw stream position.
  std::mt19937_64& engine() {
    has_spare_normal_ = false;
    return engine_;
  }

 private:
  int poisson_ptrs(double mean);

  std::mt19937_64 engine_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// The ~24-byte counter-based alternative to RngStream: splitmix64 state
/// (8 bytes) plus the cached Box–Muller spare, exposing the exact same
/// distribution surface. The algorithms are shared with RngStream (rng.cpp
/// instantiates one template layer for both), only the raw bit source
/// differs — so moments match while realizations differ. Built for the
/// per-attached-user traffic/MAC streams of very large sparse populations,
/// where mt19937_64's ~2.5 KB state per stream dominates bytes-per-user.
class CompactRngStream {
 public:
  explicit CompactRngStream(std::uint64_t seed) : state_(seed) {}
  CompactRngStream(std::uint64_t root, std::uint64_t stream)
      : state_(derive_seed(root, stream)) {}

  /// Raw 64-bit draw (splitmix64: one add, three xor-multiplies).
  std::uint64_t next() {
    return detail::splitmix64_mix(state_ += detail::kSplitMixGamma);
  }

  /// Uniform in [0, 1), 53-bit mantissa-exact.
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n), unbiased (Lemire multiply-shift).
  int uniform_int(int n);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal (Box–Muller with cached spare).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Standard normal via the shared 128-layer ziggurat tables.
  double normal_fast();

  /// Rayleigh *amplitude* with E[X^2] = mean_square.
  double rayleigh_amplitude(double mean_square);

  /// Log-normal specified in dB: 10^(N(mean_db, sigma_db)/10).
  double lognormal_db(double mean_db, double sigma_db);

  /// Poisson with the given mean (>= 0). Knuth below 10, PTRS beyond.
  int poisson(double mean);

  /// Raw counter state (cursor assertions in tests). Reading it does not
  /// perturb the stream, but mirrors engine(): setting it would desync a
  /// cached spare, so none is offered — reseed by constructing afresh.
  std::uint64_t raw_state() const { return state_; }

 private:
  int poisson_ptrs(double mean);

  std::uint64_t state_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Which generator backs the per-user traffic/MAC streams of a scenario.
/// kMt is the default and reproduces every historical pinned sequence bit
/// for bit; kCompact collapses per-attached-user RNG state from ~2.5 KB to
/// ~24 bytes per stream (opt-in, like channel=lazy: statistically
/// equivalent, a different realization).
enum class RngKind : std::uint8_t { kMt, kCompact };

/// A per-user random stream that is either a heap-held RngStream (mt mode,
/// the historical representation: the unique_ptr indirection is exactly
/// what MobileUser used to hold, so mt draws stay bit-identical) or an
/// inline CompactRngStream (compact mode, no heap at all). The dispatch
/// branch is perfectly predicted — a scenario picks one kind and sticks
/// with it.
class TrafficRng {
 public:
  TrafficRng(RngKind kind, std::uint64_t root, std::uint64_t stream)
      : compact_(kind == RngKind::kCompact ? CompactRngStream(root, stream)
                                           : CompactRngStream(0)),
        mt_(kind == RngKind::kMt ? std::make_unique<RngStream>(root, stream)
                                 : nullptr) {}

  /// Wraps an existing stream (mt mode). Implicit: keeps the historical
  /// `VoiceSource(cfg, RngStream(seed))`-style call sites compiling.
  TrafficRng(RngStream stream)  // NOLINT(google-explicit-constructor)
      : compact_(0), mt_(std::make_unique<RngStream>(std::move(stream))) {}

  /// Wraps an existing compact stream (compact mode).
  TrafficRng(CompactRngStream stream)  // NOLINT(google-explicit-constructor)
      : compact_(stream) {}

  TrafficRng(const TrafficRng& other)
      : compact_(other.compact_),
        mt_(other.mt_ ? std::make_unique<RngStream>(*other.mt_) : nullptr) {}
  TrafficRng& operator=(const TrafficRng& other) {
    if (this != &other) {
      compact_ = other.compact_;
      mt_ = other.mt_ ? std::make_unique<RngStream>(*other.mt_) : nullptr;
    }
    return *this;
  }
  TrafficRng(TrafficRng&&) noexcept = default;
  TrafficRng& operator=(TrafficRng&&) noexcept = default;

  RngKind kind() const { return mt_ ? RngKind::kMt : RngKind::kCompact; }

  double uniform() { return mt_ ? mt_->uniform() : compact_.uniform(); }
  double uniform(double lo, double hi) {
    return mt_ ? mt_->uniform(lo, hi) : compact_.uniform(lo, hi);
  }
  int uniform_int(int n) {
    return mt_ ? mt_->uniform_int(n) : compact_.uniform_int(n);
  }
  bool bernoulli(double p) {
    return mt_ ? mt_->bernoulli(p) : compact_.bernoulli(p);
  }
  double exponential(double mean) {
    return mt_ ? mt_->exponential(mean) : compact_.exponential(mean);
  }
  double normal() { return mt_ ? mt_->normal() : compact_.normal(); }
  double normal(double mean, double stddev) {
    return mt_ ? mt_->normal(mean, stddev) : compact_.normal(mean, stddev);
  }
  double normal_fast() {
    return mt_ ? mt_->normal_fast() : compact_.normal_fast();
  }
  double rayleigh_amplitude(double mean_square) {
    return mt_ ? mt_->rayleigh_amplitude(mean_square)
               : compact_.rayleigh_amplitude(mean_square);
  }
  double lognormal_db(double mean_db, double sigma_db) {
    return mt_ ? mt_->lognormal_db(mean_db, sigma_db)
               : compact_.lognormal_db(mean_db, sigma_db);
  }
  int poisson(double mean) {
    return mt_ ? mt_->poisson(mean) : compact_.poisson(mean);
  }

 private:
  CompactRngStream compact_;     // active iff mt_ == nullptr
  std::unique_ptr<RngStream> mt_;
};

}  // namespace charisma::common
