// Statistics accumulators used by protocol metrics and the experiment
// framework: Welford mean/variance, rate counters, histograms and normal
// confidence intervals. All accumulators are mergeable so replications run
// on different threads can be combined exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace charisma::common {

/// Streaming mean/variance/min/max accumulator (Welford). Mergeable.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean() * static_cast<double>(count_); }

  /// Exact state equality (doubles compared with ==, not a tolerance) —
  /// what the parallel-determinism checks mean by "bit-identical".
  bool operator==(const Accumulator&) const = default;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio counter for loss/ error rates: successes out of trials.
class RatioCounter {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }
  void add_many(std::int64_t successes, std::int64_t trials) {
    successes_ += successes;
    trials_ += trials;
  }
  void merge(const RatioCounter& other) {
    successes_ += other.successes_;
    trials_ += other.trials_;
  }

  std::int64_t successes() const { return successes_; }
  std::int64_t failures() const { return trials_ - successes_; }
  std::int64_t trials() const { return trials_; }
  /// successes / trials; 0 when no trials recorded.
  double ratio() const;
  /// failures / trials; 0 when no trials recorded.
  double complement() const;

 private:
  std::int64_t successes_ = 0;
  std::int64_t trials_ = 0;
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are counted in
/// separate underflow/overflow tails (never folded into the edge bins, which
/// would bias the tail quantiles); they still participate in count() and in
/// quantile() rank bookkeeping, clipped to lo/hi. Used for delay
/// distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  /// Total samples recorded, out-of-range tails included.
  std::int64_t count() const { return total_; }
  std::int64_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Samples below lo / at-or-above hi. Consumers should warn when these
  /// carry a nontrivial share of the mass (see experiment::histogram_clip_warning).
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  /// Fraction of the recorded mass that fell outside [lo, hi).
  double clipped_fraction() const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_lower(std::size_t i) const;
  /// Value below which the given fraction q (0..1) of samples fall,
  /// interpolated within the containing bin. Ranks landing in the underflow
  /// (overflow) tail report lo (hi) — the closest statement the histogram
  /// range allows.
  double quantile(double q) const;

  /// Exact state equality (see Accumulator::operator==).
  bool operator==(const Histogram&) const = default;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

/// Symmetric normal-approximation confidence half-width for a sample mean.
/// Returns 0 for fewer than two samples.
double confidence_half_width(const Accumulator& acc, double confidence = 0.95);

/// Wilson score interval half-width for a proportion (suitable for the
/// small loss probabilities in Fig. 11). Returns the half-width around the
/// Wilson midpoint.
double proportion_half_width(const RatioCounter& counter,
                             double confidence = 0.95);

}  // namespace charisma::common
