#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace charisma::common {

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // splitmix64 finalizer over a mixed input; distinct (root, stream) pairs
  // map to well-decorrelated outputs.
  std::uint64_t z = root + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double RngStream::uniform() {
  // 53-bit mantissa-exact uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

int RngStream::uniform_int(int n) {
  if (n <= 0) throw std::domain_error("uniform_int: n must be positive");
  std::uniform_int_distribution<int> dist(0, n - 1);
  return dist(engine_);
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double RngStream::exponential(double mean) {
  if (mean <= 0.0) throw std::domain_error("exponential: mean must be positive");
  double u = uniform();
  // Guard the log against u == 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RngStream::normal() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double RngStream::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double RngStream::rayleigh_amplitude(double mean_square) {
  if (mean_square <= 0.0) {
    throw std::domain_error("rayleigh_amplitude: mean_square must be positive");
  }
  // If X = sqrt(-mean_square * ln U) then E[X^2] = mean_square.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return std::sqrt(-mean_square * std::log(u));
}

double RngStream::lognormal_db(double mean_db, double sigma_db) {
  return std::pow(10.0, normal(mean_db, sigma_db) / 10.0);
}

int RngStream::poisson(double mean) {
  if (mean < 0.0) throw std::domain_error("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  std::poisson_distribution<int> dist(mean);
  return dist(engine_);
}

}  // namespace charisma::common
