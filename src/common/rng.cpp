#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace charisma::common {

namespace {

// ln(k!) for the PTRS acceptance test: exact table for small k, Stirling's
// series beyond it (absolute error < 1e-11 for k >= 16).
double ln_factorial(long k) {
  static constexpr double kTable[] = {
      0.0,
      0.0,
      0.6931471805599453,
      1.791759469228055,
      3.1780538303479458,
      4.787491742782046,
      6.579251212010101,
      8.525161361065415,
      10.60460290274525,
      12.801827480081469,
      15.104412573075516,
      17.502307845873887,
      19.987214495661885,
      22.552163853123425,
      25.19122118273868,
      27.89927138384089,
  };
  if (k < 16) return kTable[k];
  const double x = static_cast<double>(k) + 1.0;
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  return (x - 0.5) * std::log(x) - x +
         0.5 * std::log(2.0 * std::numbers::pi) +
         inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0));
}

// Adapts the mt19937_64 engine to the shared distribution templates'
// Source concept (next() -> uint64, uniform() -> [0, 1)).
struct Mt19937Source {
  std::mt19937_64& engine;
  std::uint64_t next() { return engine(); }
  double uniform() {
    return static_cast<double>(engine() >> 11) * 0x1.0p-53;
  }
};

// Adapts CompactRngStream's splitmix64 counter to the same concept. The
// stream object itself already satisfies it, but taking the raw state by
// reference keeps the adapter symmetric with Mt19937Source and avoids
// aliasing the partially-updated spare fields during a draw.
struct SplitMixCounterSource {
  std::uint64_t& state;
  std::uint64_t next() {
    return detail::splitmix64_mix(state += detail::kSplitMixGamma);
  }
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

// ---- Distribution algorithms, shared by RngStream and CompactRngStream.
// Templated over the raw bit source so both generators run the *same*
// algorithm with the same draw pattern: the mt instantiation reproduces
// the historical RngStream sequences bit for bit (Mt19937Source::next()
// is exactly what the member functions used to call), and the compact
// instantiation inherits every numerical property for free.

template <typename Source>
double uniform_from(Source src) {
  // 53-bit mantissa-exact uniform in [0, 1).
  return static_cast<double>(src.next() >> 11) * 0x1.0p-53;
}

template <typename Source>
int uniform_int_from(Source src, int n) {
  if (n <= 0) throw std::domain_error("uniform_int: n must be positive");
  // Lemire's multiply-shift: map a 64-bit draw onto [0, n) via the high
  // word of a 128-bit product, rejecting the sliver that would bias the
  // result. One multiply on the accept path; rejection probability < n/2^64.
  const auto range = static_cast<std::uint64_t>(n);
  unsigned __int128 product =
      static_cast<unsigned __int128>(src.next()) * range;
  auto low = static_cast<std::uint64_t>(product);
  if (low < range) {
    const std::uint64_t threshold = (0ULL - range) % range;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(src.next()) * range;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<int>(static_cast<std::uint64_t>(product >> 64));
}

template <typename Source>
bool bernoulli_from(Source src, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_from(src) < p;
}

template <typename Source>
double exponential_from(Source src, double mean) {
  if (mean <= 0.0) throw std::domain_error("exponential: mean must be positive");
  double u = uniform_from(src);
  // Guard the log against u == 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

template <typename Source>
double normal_from(Source src, double& spare, bool& has_spare) {
  if (has_spare) {
    has_spare = false;
    return spare;
  }
  // Box–Muller: exactly two uniforms per pair of variates, so the draw
  // count per call is deterministic (unlike polar rejection) and the spare
  // costs nothing to cache.
  double u1 = uniform_from(src);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * uniform_from(src);
  spare = radius * std::sin(theta);
  has_spare = true;
  return radius * std::cos(theta);
}

template <typename Source>
double rayleigh_amplitude_from(Source src, double mean_square) {
  if (mean_square <= 0.0) {
    throw std::domain_error("rayleigh_amplitude: mean_square must be positive");
  }
  // If X = sqrt(-mean_square * ln U) then E[X^2] = mean_square.
  double u = uniform_from(src);
  if (u <= 0.0) u = 0x1.0p-53;
  return std::sqrt(-mean_square * std::log(u));
}

template <typename Source>
int poisson_ptrs_from(Source src, double mean) {
  // Hörmann's PTRS transformed rejection (W. Hörmann, "The transformed
  // rejection method for generating Poisson random variables", 1993).
  // Valid for mean >= 10; expected uniforms per variate < 2.5.
  const double slam = std::sqrt(mean);
  const double loglam = std::log(mean);
  const double b = 0.931 + 2.53 * slam;
  const double a = -0.059 + 0.02483 * b;
  const double invalpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform_from(src) - 0.5;
    const double v = uniform_from(src);
    const double us = 0.5 - std::fabs(u);
    const auto k =
        static_cast<long>(std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= vr) return static_cast<int>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(invalpha) - std::log(a / (us * us) + b) <=
        k * loglam - mean - ln_factorial(k)) {
      return static_cast<int>(k);
    }
  }
}

template <typename Source>
int poisson_from(Source src, double mean) {
  if (mean < 0.0) throw std::domain_error("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 10.0) {
    // Knuth: count uniforms whose running product stays above e^-mean.
    const double limit = std::exp(-mean);
    int k = 0;
    double product = uniform_from(src);
    while (product > limit) {
      ++k;
      product *= uniform_from(src);
    }
    return k;
  }
  return poisson_ptrs_from(src, mean);
}

detail::ZigguratTables build_ziggurat_tables() {
  // Marsaglia & Tsang 2000, "The ziggurat method for generating random
  // variables": 128 rectangular layers of equal area vn under the standard
  // normal density, tail split at r = 3.4426..., scaled for 53-bit draws.
  detail::ZigguratTables t;
  constexpr double m = 9007199254740992.0;  // 2^53
  constexpr double vn = 9.91256303526217e-3;
  double dn = 3.442619855899;
  double tn = dn;
  const double q = vn / std::exp(-0.5 * dn * dn);
  t.k[0] = static_cast<std::uint64_t>((dn / q) * m);
  t.k[1] = 0;
  t.w[0] = q / m;
  t.w[127] = dn / m;
  t.f[0] = 1.0;
  t.f[127] = std::exp(-0.5 * dn * dn);
  for (int i = 126; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
    t.k[i + 1] = static_cast<std::uint64_t>((dn / tn) * m);
    tn = dn;
    t.f[i] = std::exp(-0.5 * dn * dn);
    t.w[i] = dn / m;
  }
  return t;
}

}  // namespace

namespace detail {
const ZigguratTables& ziggurat_tables() {
  static const ZigguratTables tables = build_ziggurat_tables();
  return tables;
}
}  // namespace detail

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // splitmix64 finalizer over a mixed input; distinct (root, stream) pairs
  // map to well-decorrelated outputs.
  std::uint64_t z = root + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// ---- RngStream (mt19937_64-backed) ----

double RngStream::uniform() { return uniform_from(Mt19937Source{engine_}); }

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

int RngStream::uniform_int(int n) {
  return uniform_int_from(Mt19937Source{engine_}, n);
}

bool RngStream::bernoulli(double p) {
  return bernoulli_from(Mt19937Source{engine_}, p);
}

double RngStream::exponential(double mean) {
  return exponential_from(Mt19937Source{engine_}, mean);
}

double RngStream::normal() {
  return normal_from(Mt19937Source{engine_}, spare_normal_, has_spare_normal_);
}

double RngStream::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double RngStream::normal_fast() {
  Mt19937Source source{engine_};
  return detail::ziggurat_normal(source, detail::ziggurat_tables());
}

double RngStream::rayleigh_amplitude(double mean_square) {
  return rayleigh_amplitude_from(Mt19937Source{engine_}, mean_square);
}

double RngStream::lognormal_db(double mean_db, double sigma_db) {
  return std::pow(10.0, normal(mean_db, sigma_db) / 10.0);
}

int RngStream::poisson(double mean) {
  return poisson_from(Mt19937Source{engine_}, mean);
}

int RngStream::poisson_ptrs(double mean) {
  return poisson_ptrs_from(Mt19937Source{engine_}, mean);
}

// ---- CompactRngStream (splitmix64-counter-backed) ----

double CompactRngStream::uniform() {
  return uniform_from(SplitMixCounterSource{state_});
}

double CompactRngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

int CompactRngStream::uniform_int(int n) {
  return uniform_int_from(SplitMixCounterSource{state_}, n);
}

bool CompactRngStream::bernoulli(double p) {
  return bernoulli_from(SplitMixCounterSource{state_}, p);
}

double CompactRngStream::exponential(double mean) {
  return exponential_from(SplitMixCounterSource{state_}, mean);
}

double CompactRngStream::normal() {
  return normal_from(SplitMixCounterSource{state_}, spare_normal_,
                     has_spare_normal_);
}

double CompactRngStream::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double CompactRngStream::normal_fast() {
  SplitMixCounterSource source{state_};
  return detail::ziggurat_normal(source, detail::ziggurat_tables());
}

double CompactRngStream::rayleigh_amplitude(double mean_square) {
  return rayleigh_amplitude_from(SplitMixCounterSource{state_}, mean_square);
}

double CompactRngStream::lognormal_db(double mean_db, double sigma_db) {
  return std::pow(10.0, normal(mean_db, sigma_db) / 10.0);
}

int CompactRngStream::poisson(double mean) {
  return poisson_from(SplitMixCounterSource{state_}, mean);
}

int CompactRngStream::poisson_ptrs(double mean) {
  return poisson_ptrs_from(SplitMixCounterSource{state_}, mean);
}

}  // namespace charisma::common
