// A tiny typed key-value store used to override scenario parameters from
// examples and benches ("key=value" strings or environment variables)
// without pulling in a configuration-file dependency.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace charisma::common {

class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parses "key=value" tokens; throws std::invalid_argument on malformed
  /// input. Later duplicates win.
  static KeyValueConfig from_args(const std::vector<std::string>& args);

  void set(const std::string& key, const std::string& value);

  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<int> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  /// Like get_int but accepts magnitude suffixes for population-sized
  /// values: "250k" = 250'000, "1M" = 1'000'000 (k/K and m/M). The numeric
  /// part may be fractional ("2.5k" = 2500); the scaled value must land on
  /// an integer. Throws std::invalid_argument naming `key` on an unknown
  /// suffix or malformed number.
  std::optional<long long> get_count(const std::string& key) const;

  double get_double_or(const std::string& key, double fallback) const;
  int get_int_or(const std::string& key, int fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;
  long long get_count_or(const std::string& key, long long fallback) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;

  /// The suffix parser behind get_count, usable on raw strings (bench env
  /// knobs). `key` only labels the exception message.
  static long long parse_count(const std::string& key,
                               const std::string& value);

  /// Throws std::invalid_argument naming the first key (in sorted order)
  /// that is not in `known`. Front-ends call this after parsing argv so a
  /// typo ("voice_user=80") fails loudly instead of silently using the
  /// default.
  void reject_unknown(const std::vector<std::string>& known) const;

  bool contains(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace charisma::common
