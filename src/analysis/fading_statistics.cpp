#include "analysis/fading_statistics.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "common/math.hpp"

namespace charisma::analysis {

namespace {

// 12-point Gauss-Hermite abscissas/weights (for integrals against
// exp(-x^2)), transformed below for the N(0, sigma) shadowing expectation.
constexpr std::array<double, 12> kGhNodes = {
    -3.889724897869782, -3.020637025120890, -2.279507080501060,
    -1.597682635152605, -0.947788391240164, -0.314240376254359,
    0.314240376254359,  0.947788391240164,  1.597682635152605,
    2.279507080501060,  3.020637025120890,  3.889724897869782};
constexpr std::array<double, 12> kGhWeights = {
    2.658551684356306e-07, 8.573687043587876e-05, 3.905390584629062e-03,
    5.160798561588392e-02, 2.604923102641611e-01, 5.701352362624795e-01,
    5.701352362624795e-01, 2.604923102641611e-01, 5.160798561588392e-02,
    3.905390584629062e-03, 8.573687043587876e-05, 2.658551684356306e-07};
constexpr double kInvSqrtPi = 0.5641895835477563;

/// P(Gamma(L, mean/L) < x) = 1 - Q(L, L x / mean).
double gamma_cdf_below(int branches, double mean, double x) {
  if (x <= 0.0) return 0.0;
  return 1.0 - common::gamma_upper_regularized(branches, branches * x / mean);
}

}  // namespace

double snr_below_probability(const channel::ChannelConfig& config,
                             double threshold_linear) {
  if (threshold_linear < 0.0) {
    throw std::invalid_argument("snr_below_probability: negative threshold");
  }
  const double mean = common::from_db(config.mean_snr_db);
  if (config.shadow_sigma_db <= 0.0) {
    return gamma_cdf_below(config.diversity_branches, mean, threshold_linear);
  }
  // E over shadow S ~ N(0, sigma_db) of P(fast-fade SNR < th | shadow):
  // substitute s = sqrt(2) sigma x for the Gauss-Hermite form.
  double sum = 0.0;
  for (std::size_t i = 0; i < kGhNodes.size(); ++i) {
    const double shadow_db =
        std::sqrt(2.0) * config.shadow_sigma_db * kGhNodes[i];
    const double conditional_mean = mean * common::from_db(shadow_db);
    sum += kGhWeights[i] * gamma_cdf_below(config.diversity_branches,
                                           conditional_mean, threshold_linear);
  }
  return sum * kInvSqrtPi;
}

std::vector<double> mode_occupancy(const channel::ChannelConfig& config,
                                   const phy::ModeTable& table) {
  std::vector<double> occupancy(static_cast<std::size_t>(table.size()) + 1,
                                0.0);
  // P(outage) = P(snr < th_0); P(mode q) = P(th_q <= snr < th_{q+1}).
  double below_prev = 0.0;
  for (int q = 0; q < table.size(); ++q) {
    const double below =
        snr_below_probability(config, table.mode(q).threshold_linear);
    occupancy[static_cast<std::size_t>(q)] = below - below_prev;
    below_prev = below;
  }
  // occupancy[q] currently holds P(below th_q) - P(below th_{q-1}):
  // element 0 is the outage band, element q in 1..size-1 is mode q-1's
  // band, and the top mode takes the remaining mass.
  occupancy[static_cast<std::size_t>(table.size())] = 1.0 - below_prev;
  return occupancy;
}

double mean_adaptive_throughput(const channel::ChannelConfig& config,
                                const phy::ModeTable& table) {
  const auto occupancy = mode_occupancy(config, table);
  double mean = 0.0;
  for (int q = 0; q < table.size(); ++q) {
    mean += occupancy[static_cast<std::size_t>(q) + 1] *
            table.mode(q).bits_per_symbol;
  }
  return mean;
}

}  // namespace charisma::analysis
