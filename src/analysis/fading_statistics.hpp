// Closed-form statistics of the calibrated channel model: outage/mode
// probabilities and the mean adaptive throughput under Nakagami-L fast
// fading with log-normal shadowing. These are the quantities DESIGN.md's
// calibration is derived from; tests use them to pin the simulator's
// empirical behaviour to theory.
#pragma once

#include "channel/user_channel.hpp"
#include "phy/modes.hpp"

namespace charisma::analysis {

/// P(effective SNR < threshold) under the given channel configuration:
/// E_shadow[ P(Gamma(L, mean*shadow/L) < threshold) ], the shadowing
/// expectation evaluated by Gauss-Hermite quadrature.
double snr_below_probability(const channel::ChannelConfig& config,
                             double threshold_linear);

/// Stationary probability that the ABICM scheme selects each entry of
/// `table` (index 0..size-1) or is in outage (returned at index size...0?):
/// element [0] is the outage probability, element [q+1] the probability of
/// mode q.
std::vector<double> mode_occupancy(const channel::ChannelConfig& config,
                                   const phy::ModeTable& table);

/// E[normalized ABICM throughput] at the channel's operating point — the
/// quantity behind the paper's "D-TDMA/VR has twice the average offered
/// throughput of D-TDMA/FR".
double mean_adaptive_throughput(const channel::ChannelConfig& config,
                                const phy::ModeTable& table);

}  // namespace charisma::analysis
