// Closed-form properties of the slotted request contention (paper §2's
// "Request Contention Model"): per-slot success probability, optimal
// permission probability, and the contender count at which a p-persistent
// phase destabilizes. Used by tests to cross-validate the simulator and by
// DESIGN.md's stability discussion.
#pragma once

namespace charisma::analysis {

/// P(exactly one of k contenders transmits) with permission probability p:
/// k p (1-p)^(k-1).
double aloha_success_probability(int contenders, double permission);

/// The permission probability maximizing the success probability for k
/// contenders: 1/k.
double optimal_permission(int contenders);

/// Expected winners when `contenders` contend over `minislots` slots with
/// permission `p`, accounting for pool shrinkage as winners drop out
/// (exact recursion over the slot sequence).
double expected_winners(int contenders, int minislots, double permission);

/// The largest contender count for which the per-frame service rate
/// (minislots * success probability) still covers an arrival rate of
/// `arrivals_per_frame` — beyond it the pool drifts to collapse. Returns 0
/// if even one contender cannot be served.
int stable_contender_limit(int minislots, double permission,
                           double arrivals_per_frame);

}  // namespace charisma::analysis
