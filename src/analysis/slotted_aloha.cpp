#include "analysis/slotted_aloha.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace charisma::analysis {

double aloha_success_probability(int contenders, double permission) {
  if (contenders < 0 || permission < 0.0 || permission > 1.0) {
    throw std::invalid_argument("aloha_success_probability: bad arguments");
  }
  if (contenders == 0) return 0.0;
  return contenders * permission *
         std::pow(1.0 - permission, contenders - 1);
}

double optimal_permission(int contenders) {
  if (contenders <= 0) {
    throw std::invalid_argument("optimal_permission: need >= 1 contender");
  }
  return 1.0 / contenders;
}

double expected_winners(int contenders, int minislots, double permission) {
  if (minislots < 0) {
    throw std::invalid_argument("expected_winners: negative minislots");
  }
  // State: probability distribution over the remaining-contender count.
  std::vector<double> dist(static_cast<std::size_t>(contenders) + 1, 0.0);
  dist[static_cast<std::size_t>(contenders)] = 1.0;
  double expected = 0.0;
  for (int slot = 0; slot < minislots; ++slot) {
    std::vector<double> next(dist.size(), 0.0);
    for (int k = 0; k <= contenders; ++k) {
      const double pk = dist[static_cast<std::size_t>(k)];
      if (pk <= 0.0) continue;
      const double win = aloha_success_probability(k, permission);
      expected += pk * win;
      if (k > 0) next[static_cast<std::size_t>(k - 1)] += pk * win;
      next[static_cast<std::size_t>(k)] += pk * (1.0 - win);
    }
    dist.swap(next);
  }
  return expected;
}

int stable_contender_limit(int minislots, double permission,
                           double arrivals_per_frame) {
  if (minislots <= 0 || arrivals_per_frame < 0.0) {
    throw std::invalid_argument("stable_contender_limit: bad arguments");
  }
  int limit = 0;
  for (int k = 1; k <= 10000; ++k) {
    const double service = minislots * aloha_success_probability(k, permission);
    if (service >= arrivals_per_frame) {
      limit = k;
    } else if (k > 2.0 / std::max(permission, 1e-9)) {
      break;  // past the throughput peak and already unstable
    }
  }
  return limit;
}

}  // namespace charisma::analysis
