// First-order voice-capacity analysis for the TDMA geometry: the
// statistical-multiplexing numbers behind the paper's Fig. 11 read-offs
// (saturation population, per-frame demand, and the no-queue overflow
// loss approximation from DESIGN.md's calibration).
#pragma once

#include "mac/geometry.hpp"

namespace charisma::analysis {

struct VoiceLoadModel {
  double activity_factor = 1.0 / 2.35;  ///< talkspurt fraction (paper §2)
  mac::FrameGeometry geometry{};

  /// Mean voice packets offered per frame by `users` devices.
  double offered_packets_per_frame(int users) const;

  /// The population at which offered packets equal the slot supply
  /// (one packet per slot): N_i * frames_per_period / activity.
  double saturation_users() const;

  /// Poisson approximation of the per-packet overflow probability when
  /// every packet gets exactly one allocation opportunity (the no-queue
  /// CHARISMA model): E[max(X - N_i, 0)] / E[X], X ~ Poisson(offered).
  double no_queue_overflow_loss(int users) const;

  /// Smallest population whose overflow loss exceeds `threshold` (linear
  /// scan; the Fig. 11 1% read-off for the no-queue configuration).
  int no_queue_capacity(double threshold) const;
};

}  // namespace charisma::analysis
