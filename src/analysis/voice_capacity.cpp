#include "analysis/voice_capacity.hpp"

#include <cmath>
#include <stdexcept>

namespace charisma::analysis {

double VoiceLoadModel::offered_packets_per_frame(int users) const {
  if (users < 0) {
    throw std::invalid_argument("offered_packets_per_frame: negative users");
  }
  return users * activity_factor / geometry.frames_per_voice_period;
}

double VoiceLoadModel::saturation_users() const {
  return geometry.num_info_slots * geometry.frames_per_voice_period /
         activity_factor;
}

double VoiceLoadModel::no_queue_overflow_loss(int users) const {
  const double lambda = offered_packets_per_frame(users);
  if (lambda <= 0.0) return 0.0;
  const int slots = geometry.num_info_slots;
  // E[max(X - slots, 0)] for X ~ Poisson(lambda), summed to negligible tail.
  double pk = std::exp(-lambda);  // P(X = 0)
  double excess = 0.0;
  double cumulative = pk;
  for (int k = 1; k <= slots + 200; ++k) {
    pk *= lambda / k;
    cumulative += pk;
    if (k > slots) excess += (k - slots) * pk;
    if (k > slots && pk < 1e-15 && cumulative > 1.0 - 1e-12) break;
  }
  return excess / lambda;
}

int VoiceLoadModel::no_queue_capacity(double threshold) const {
  if (threshold <= 0.0 || threshold >= 1.0) {
    throw std::invalid_argument("no_queue_capacity: bad threshold");
  }
  for (int users = 1; users <= 100000; ++users) {
    if (no_queue_overflow_loss(users) > threshold) return users - 1;
  }
  return 100000;
}

}  // namespace charisma::analysis
