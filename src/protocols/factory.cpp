#include "protocols/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "protocols/drma.hpp"
#include "protocols/dtdma.hpp"
#include "protocols/prma.hpp"
#include "protocols/rama.hpp"
#include "protocols/rmav.hpp"

namespace charisma::protocols {

const std::vector<ProtocolId>& all_protocols() {
  static const std::vector<ProtocolId> kAll = {
      ProtocolId::kCharisma, ProtocolId::kDtdmaVr, ProtocolId::kDrma,
      ProtocolId::kRama,     ProtocolId::kDtdmaFr, ProtocolId::kRmav,
  };
  return kAll;
}

std::string protocol_name(ProtocolId id) {
  switch (id) {
    case ProtocolId::kCharisma: return "CHARISMA";
    case ProtocolId::kDtdmaVr: return "D-TDMA/VR";
    case ProtocolId::kDrma: return "DRMA";
    case ProtocolId::kRama: return "RAMA";
    case ProtocolId::kDtdmaFr: return "D-TDMA/FR";
    case ProtocolId::kRmav: return "RMAV";
    case ProtocolId::kPrma: return "PRMA";
  }
  throw std::invalid_argument("protocol_name: unknown id");
}

ProtocolId parse_protocol(const std::string& name) {
  std::string key;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (key == "charisma") return ProtocolId::kCharisma;
  if (key == "dtdmavr") return ProtocolId::kDtdmaVr;
  if (key == "dtdmafr") return ProtocolId::kDtdmaFr;
  if (key == "drma") return ProtocolId::kDrma;
  if (key == "rama") return ProtocolId::kRama;
  if (key == "rmav") return ProtocolId::kRmav;
  if (key == "prma") return ProtocolId::kPrma;
  throw std::invalid_argument("parse_protocol: unknown protocol '" + name +
                              "'");
}

std::unique_ptr<mac::ProtocolEngine> make_protocol(
    ProtocolId id, const mac::ScenarioParams& params,
    const core::CharismaOptions& charisma_options) {
  switch (id) {
    case ProtocolId::kCharisma:
      return std::make_unique<core::CharismaProtocol>(params,
                                                      charisma_options);
    case ProtocolId::kDtdmaVr:
      return std::make_unique<DtdmaProtocol>(
          params, DtdmaProtocol::PhyVariant::kVariableRate);
    case ProtocolId::kDtdmaFr:
      return std::make_unique<DtdmaProtocol>(
          params, DtdmaProtocol::PhyVariant::kFixedRate);
    case ProtocolId::kDrma:
      return std::make_unique<DrmaProtocol>(params);
    case ProtocolId::kRama:
      return std::make_unique<RamaProtocol>(params);
    case ProtocolId::kRmav:
      return std::make_unique<RmavProtocol>(params);
    case ProtocolId::kPrma:
      return std::make_unique<PrmaProtocol>(params);
  }
  throw std::invalid_argument("make_protocol: unknown id");
}

}  // namespace charisma::protocols
