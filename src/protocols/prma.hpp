// PRMA — Packet Reservation Multiple Access (Goodman et al., 1989), the
// common ancestor of the paper's D-TDMA baselines ("the first improved
// PRMA type of protocol", §3.4). Provided as an extension baseline: the
// frame is information slots only; a device contends by transmitting its
// *packet* directly in an available slot (p-persistent), so a collision
// burns a whole information slot — the cost D-TDMA's dedicated request
// minislots were introduced to avoid. A successful voice transmission
// reserves that slot position for the rest of the talkspurt; data wins
// carry exactly one packet. Fixed-throughput PHY.
//
// Not part of the paper's six-protocol comparison; factory id kPrma.
#pragma once

#include <string>

#include "mac/engine.hpp"
#include "mac/reservation.hpp"

namespace charisma::protocols {

struct PrmaOptions {
  /// Information slots per frame; the shared symbol budget fits 11 (no
  /// request or pilot subframes).
  int info_slots = 11;
};

class PrmaProtocol : public mac::ProtocolEngine {
 public:
  PrmaProtocol(const mac::ScenarioParams& params, PrmaOptions options = {});

  std::string name() const override { return "PRMA"; }

  int reservations_held() const { return grid_.occupied_total(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;

 private:
  PrmaOptions options_;
  mac::ReservationGrid grid_;
};

}  // namespace charisma::protocols
