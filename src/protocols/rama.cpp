#include "protocols/rama.hpp"

#include <cassert>
#include <algorithm>
#include <limits>
#include <vector>

namespace charisma::protocols {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

RamaProtocol::RamaProtocol(const mac::ScenarioParams& params,
                           RamaOptions options)
    : mac::ProtocolEngine(params),
      options_(options),
      grid_(params.geometry.frames_per_voice_period,
            params.geometry.num_info_slots) {}

void RamaProtocol::on_user_detached(common::UserId id) {
  grid_.release(id);
  queue_.remove(id);
}

void RamaProtocol::on_user_attached([[maybe_unused]] common::UserId id) {
  // A (re-)attaching user must arrive clean of earlier-stay state.
  assert(!grid_.has_reservation(id));
  assert(!queue_.contains(id));
}

void RamaProtocol::release_finished_talkspurts() {
  for (auto& u : users()) {
    if (u.is_voice() && grid_.has_reservation(u.id()) &&
        !u.voice().in_talkspurt() && !u.voice().has_packet()) {
      grid_.release(u.id());
    }
  }
}

bool RamaProtocol::serve_request(const mac::PendingRequest& request, int phase,
                                 int& free_slots) {
  auto& u = user(request.user);
  if (request.type == mac::RequestType::kVoice) {
    if (!u.voice().has_packet()) return true;
    if (free_slots <= 0) return false;
    if (!grid_.reserve(phase, request.user)) return false;
    transmit_voice_fixed(u);
    --free_slots;
    return true;
  }
  // A data auction win is worth one information slot per frame (§3.1).
  // With the request queue the request persists until the burst drains
  // (one slot each frame); without it the device re-enters the auction
  // for the rest of its burst.
  if (u.data().backlog() == 0) return true;
  if (free_slots <= 0) return false;
  transmit_data_fixed(u);
  --free_slots;
  return u.data().backlog() == 0 || !params_.request_queue;
}

common::Time RamaProtocol::process_frame() {
  release_finished_talkspurts();
  queue_.purge_expired_voice(now());

  const int phase =
      static_cast<int>(frame_index() % geom_.frames_per_voice_period);
  offer_info_slots(geom_.num_info_slots);

  // This frame's dense read set: reservation holders transmit below; the
  // auction itself never reads the channel (ID digits arbitrate), so
  // winners and served requests materialize on read.
  const auto due = grid_.due_in_phase(phase);
  touch_channels(due);
  for (common::UserId uid : due) {
    transmit_voice_fixed(user(uid));
  }
  int free_slots = geom_.num_info_slots - static_cast<int>(due.size());

  // Queued requests go first (FCFS).
  std::vector<mac::PendingRequest> to_serve(queue_.entries().begin(),
                                            queue_.entries().end());
  queue_.clear();

  // The auction: every active device participates (no permission
  // probability — the bidding process is the arbitration). Each auction
  // slot resolves one winner; voice IDs dominate data IDs.
  std::vector<common::UserId> voice_contenders;
  std::vector<common::UserId> data_contenders;
  for (auto& u : users()) {
    if (!u.present()) continue;
    if (queue_.contains(u.id())) continue;
    const bool queued = std::any_of(
        to_serve.begin(), to_serve.end(),
        [&u](const mac::PendingRequest& r) { return r.user == u.id(); });
    if (queued) continue;
    if (u.is_voice()) {
      // RAMA has no permission probability, so the barring gate is the
      // only admission control in front of the auction.
      if (!grid_.has_reservation(u.id()) && u.voice().in_talkspurt() &&
          u.voice().has_packet() && !barring_blocks(u)) {
        voice_contenders.push_back(u.id());
      }
    } else if (u.data().backlog() > 0 && !barring_blocks(u)) {
      data_contenders.push_back(u.id());
    }
  }

  mac::ContentionTally tally;
  tally.minislots = options_.auction_slots;
  // An auction slot spans ~3 minislots of digit rounds; every remaining
  // contender transmits its ID digits in every auction slot.
  const double auction_symbols = 3.0 * geom_.minislot_symbols;
  for (int a = 0; a < options_.auction_slots; ++a) {
    std::vector<common::UserId>* pool =
        !voice_contenders.empty() ? &voice_contenders
        : !data_contenders.empty() ? &data_contenders
                                   : nullptr;
    if (pool == nullptr) {
      ++tally.idle;
      continue;
    }
    const int bidders = static_cast<int>(voice_contenders.size() +
                                         data_contenders.size());
    note_request_energy(bidders, auction_symbols, /*useful=*/1);
    tally.transmissions += bidders;
    if (options_.id_collision_prob > 0.0 &&
        bs_rng_.bernoulli(options_.id_collision_prob)) {
      ++tally.collisions;  // two devices drew identical IDs
      continue;
    }
    // IDs are random per auction slot: the winner is uniform over the
    // dominant class.
    const int pick = bs_rng_.uniform_int(static_cast<int>(pool->size()));
    const common::UserId winner = (*pool)[static_cast<std::size_t>(pick)];
    pool->erase(pool->begin() + pick);
    ++tally.successes;

    mac::PendingRequest request;
    request.user = winner;
    auto& u = user(winner);
    if (u.is_voice()) {
      request.type = mac::RequestType::kVoice;
      request.deadline = u.voice().packet().deadline;
      request.packets_requested = 1;
    } else {
      request.type = mac::RequestType::kData;
      request.deadline = kInf;
      request.packets_requested = u.data().backlog();
    }
    request.acked_at = now();
    to_serve.push_back(request);
  }
  note_contention(tally);

  // Voice outranks data (paper §1): serve all voice requests before any
  // data request, FCFS within each class.
  std::stable_partition(to_serve.begin(), to_serve.end(),
                        [](const mac::PendingRequest& r) {
                          return r.type == mac::RequestType::kVoice;
                        });
  for (auto& request : to_serve) {
    const bool finished = serve_request(request, phase, free_slots);
    if (!finished && params_.request_queue) {
      ++request.frames_waited;
      queue_.push(request);
    }
  }
  return geom_.frame_duration;
}

}  // namespace charisma::protocols
