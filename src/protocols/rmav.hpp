// RMAV — reservation-based multiple access with variable frame (Jeong,
// Choi & Jeon [12], paper §3.2): the frame contains only assigned
// information slots plus a single trailing "competitive" request slot, so
// the frame length tracks the load (short delay when idle, high throughput
// when busy). A winner of the competitive slot is assigned slots in the
// *next* frame: one slot for a voice packet, up to Pmax slots for a data
// burst. Because there is exactly one contention opportunity per frame —
// and, in this data-oriented design, every pending packet (voice included)
// must win it — the protocol thrashes once a moderate number of users
// contend, which is exactly the instability the paper reports ("RMAV
// quickly becomes unstable even with a moderate number of voice users").
// RMAV inherently has no request queue (footnote 3): the single
// competitive slot yields at most one winner, who is always served next
// frame. The fixed-throughput PHY is used.
#pragma once

#include <string>
#include <vector>

#include "mac/engine.hpp"

namespace charisma::protocols {

struct RmavOptions {
  int pmax = 10;  ///< max information slots per data grant (paper: 10)
  /// RMAV's LAN-oriented design contends aggressively in the single
  /// competitive slot (p = 0.5 here, versus the 0.2-0.3 of the
  /// TDMA-framed protocols, whose many minislots can afford throttling).
  /// With one opportunity per frame, concurrent contenders collide and
  /// accumulate — the mechanism behind the paper's "RMAV quickly becomes
  /// unstable even with a moderate number of voice users" observation.
  double permission_prob = 0.5;
};

class RmavProtocol : public mac::ProtocolEngine {
 public:
  RmavProtocol(const mac::ScenarioParams& params, RmavOptions options = {});

  std::string name() const override { return "RMAV"; }

  std::size_t grants_outstanding() const { return grants_.size(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;

 private:
  RmavOptions options_;
  std::vector<common::UserId> grants_;  ///< winners to serve this frame
};

}  // namespace charisma::protocols
