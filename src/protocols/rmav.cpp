#include "protocols/rmav.hpp"

#include <algorithm>
#include <cassert>

namespace charisma::protocols {

RmavProtocol::RmavProtocol(const mac::ScenarioParams& params,
                           RmavOptions options)
    : mac::ProtocolEngine(params), options_(options) {}

void RmavProtocol::on_user_detached(common::UserId id) {
  std::erase(grants_, id);
}

void RmavProtocol::on_user_attached([[maybe_unused]] common::UserId id) {
  // A (re-)attaching user must arrive clean of earlier-stay grants.
  assert(std::find(grants_.begin(), grants_.end(), id) == grants_.end());
}

common::Time RmavProtocol::process_frame() {
  int served_slots = 0;

  // Touch set: last frame's grant holders are the only users this frame
  // reads (RMAV's competitive slot goes through run_request_phase
  // directly, not run_contention, and contenders' channels are never read
  // during the request itself).
  touch_channels(grants_);

  // Serve the grants won in the previous frame's competitive slot.
  for (common::UserId uid : grants_) {
    auto& u = user(uid);
    if (u.is_voice()) {
      if (u.voice().has_packet()) {
        transmit_voice_fixed(u);
        ++served_slots;
      }
      // A grant covers exactly one packet; the next packet contends anew.
    } else {
      const int slots = std::min(options_.pmax, u.data().backlog());
      for (int s = 0; s < slots; ++s) {
        transmit_data_fixed(u);
      }
      served_slots += slots;
    }
  }
  grants_.clear();

  // The single competitive slot at the frame's tail.
  std::vector<common::UserId> candidates;
  for (auto& u : users()) {
    if (!u.present()) continue;
    if (u.is_voice()) {
      if (u.voice().has_packet() && !barring_blocks(u)) {
        candidates.push_back(u.id());
      }
    } else if (u.data().backlog() > 0 && !barring_blocks(u)) {
      candidates.push_back(u.id());
    }
  }
  auto outcome = mac::run_request_phase(
      candidates, 1,
      [this](common::UserId id) {
        return options_.permission_prob * user(id).backoff_scale();
      },
      [this](common::UserId id) -> common::TrafficRng& {
        return user(id).rng();
      });
  note_contention(outcome.tally);
  for (common::UserId id : outcome.transmitted) {
    user(id).note_contention_collision();
  }
  for (common::UserId id : outcome.winners) {
    user(id).note_contention_success();
  }
  // The competitive slot is a full information slot (Fig. 2b).
  note_request_energy(outcome.tally.transmissions, geom_.slot_symbols,
                      static_cast<int>(outcome.winners.size()));
  if (!outcome.winners.empty()) {
    grants_.push_back(outcome.winners.front());
  }

  offer_info_slots(served_slots);

  // Frame duration follows the content: served slots plus the competitive
  // slot, which in RMAV is a full information slot (Fig. 2b — it is "the
  // last slot" of the frame). A fully idle system hops at the nominal
  // frame cadence, which changes nothing observable (nobody is waiting)
  // but avoids spinning on micro-frames.
  if (served_slots == 0 && candidates.empty()) {
    return geom_.frame_duration;
  }
  return static_cast<double>(served_slots + 1) * geom_.slot_duration();
}

}  // namespace charisma::protocols
