// RAMA — Resource Auction Multiple Access (Amitay & Greenstein [2], paper
// §3.1): instead of random-access contention, every active contender joins
// a digit-by-digit ID auction in each auction slot; the auction
// deterministically yields exactly one winner per slot (collision
// avoidance), so progress is maintained no matter how high the load — the
// paper's exemplar of graceful degradation. Voice users draw IDs from a
// higher range than data users, so any contending voice user outbids all
// data users. The fixed-throughput PHY is used.
#pragma once

#include <string>

#include "mac/engine.hpp"
#include "mac/request_queue.hpp"
#include "mac/reservation.hpp"

namespace charisma::protocols {

struct RamaOptions {
  /// Auction slots per frame. An auction slot is ~3 minislots long (the
  /// digit rounds), so the default 4 fits the shared symbol budget.
  int auction_slots = 4;
  /// Probability that an auction fails to resolve (two contenders drew the
  /// same full ID). With realistic ID lengths this is negligible.
  double id_collision_prob = 0.0;
};

class RamaProtocol : public mac::ProtocolEngine {
 public:
  RamaProtocol(const mac::ScenarioParams& params, RamaOptions options = {});

  std::string name() const override { return "RAMA"; }

  std::size_t queue_size() const { return queue_.size(); }
  int reservations_held() const { return grid_.occupied_total(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;
  std::int64_t pending_request_count() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

 private:
  void release_finished_talkspurts();
  /// Serves an auction winner / queued request; true when finished.
  bool serve_request(const mac::PendingRequest& request, int phase,
                     int& free_slots);

  RamaOptions options_;
  mac::ReservationGrid grid_;
  mac::RequestQueue queue_;
};

}  // namespace charisma::protocols
