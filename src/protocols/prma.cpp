#include "protocols/prma.hpp"

#include <cassert>
#include <vector>

namespace charisma::protocols {

PrmaProtocol::PrmaProtocol(const mac::ScenarioParams& params,
                           PrmaOptions options)
    : mac::ProtocolEngine(params),
      options_(options),
      grid_(params.geometry.frames_per_voice_period, options.info_slots) {}

void PrmaProtocol::on_user_detached(common::UserId id) { grid_.release(id); }

void PrmaProtocol::on_user_attached([[maybe_unused]] common::UserId id) {
  // A (re-)attaching user must arrive clean of earlier-stay reservations.
  assert(!grid_.has_reservation(id));
}

common::Time PrmaProtocol::process_frame() {
  // Release reservations of finished talkspurts.
  for (auto& u : users()) {
    if (u.is_voice() && grid_.has_reservation(u.id()) &&
        !u.voice().in_talkspurt() && !u.voice().has_packet()) {
      grid_.release(u.id());
    }
  }

  const int phase =
      static_cast<int>(frame_index() % geom_.frames_per_voice_period);
  offer_info_slots(options_.info_slots);

  // Touch set: this phase's reservation holders transmit unconditionally;
  // direct-transmission winners are sparse and materialize on read.
  std::vector<common::UserId> owners;
  for (int slot = 0; slot < options_.info_slots; ++slot) {
    const common::UserId owner = grid_.user_at(phase, slot);
    if (owner != common::kNoUser) owners.push_back(owner);
  }
  touch_channels(owners);

  mac::ContentionTally tally;
  for (int slot = 0; slot < options_.info_slots; ++slot) {
    const common::UserId owner = grid_.user_at(phase, slot);
    if (owner != common::kNoUser) {
      transmit_voice_fixed(user(owner));
      continue;
    }

    // Available slot: contenders transmit their packet directly.
    std::vector<common::UserId> transmitters;
    for (auto& u : users()) {
      if (!u.present()) continue;
      const bool active = u.is_voice()
                              ? (!grid_.has_reservation(u.id()) &&
                                 u.voice().in_talkspurt() &&
                                 u.voice().has_packet())
                              : u.data().backlog() > 0;
      if (!active) continue;
      if (barring_blocks(u)) continue;
      if (u.rng().bernoulli(permission_prob(u) * u.backoff_scale())) {
        transmitters.push_back(u.id());
      }
    }
    ++tally.minislots;
    tally.transmissions += static_cast<int>(transmitters.size());

    if (transmitters.empty()) {
      ++tally.idle;
      continue;
    }
    if (transmitters.size() > 1) {
      // Collision: a whole information slot is burned, every transmitted
      // packet is lost from the air (it stays queued at the device).
      ++tally.collisions;
      note_request_energy(static_cast<int>(transmitters.size()),
                          geom_.slot_symbols, /*useful=*/0);
      for (common::UserId id : transmitters) {
        user(id).note_contention_collision();
      }
      continue;
    }

    // Exactly one transmitter: the packet itself went over the air.
    ++tally.successes;
    auto& winner = user(transmitters.front());
    winner.note_contention_success();
    if (winner.is_voice()) {
      // The slot position becomes the talkspurt's reservation.
      grid_.reserve_at(phase, slot, winner.id());
      transmit_voice_fixed(winner);
    } else {
      transmit_data_fixed(winner);
    }
  }
  note_contention(tally);
  return geom_.frame_duration;
}

}  // namespace charisma::protocols
