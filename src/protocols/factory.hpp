// Construction of any of the six protocols by identifier — the entry point
// the experiment framework, benches and examples use to run the paper's
// cross-protocol comparisons.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/charisma.hpp"
#include "mac/engine.hpp"

namespace charisma::protocols {

enum class ProtocolId {
  kCharisma,
  kDtdmaVr,
  kDrma,
  kRama,
  kDtdmaFr,
  kRmav,
  /// Extension baseline (not part of the paper's comparison): classic
  /// PRMA, the ancestor of the D-TDMA designs.
  kPrma,
};

/// The paper's six protocols in its typical ranking order (PRMA, an
/// extension baseline, is constructible but not listed here).
const std::vector<ProtocolId>& all_protocols();

std::string protocol_name(ProtocolId id);

/// Parses "charisma", "d-tdma/fr", "dtdma_fr", "rama", ... (case
/// insensitive); throws std::invalid_argument on unknown names.
ProtocolId parse_protocol(const std::string& name);

/// Builds a ready-to-run engine. CHARISMA takes its options separately so
/// ablations can tweak them.
std::unique_ptr<mac::ProtocolEngine> make_protocol(
    ProtocolId id, const mac::ScenarioParams& params,
    const core::CharismaOptions& charisma_options = {});

}  // namespace charisma::protocols
