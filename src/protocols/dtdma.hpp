// D-TDMA/FR and D-TDMA/VR (paper §3.4/§3.5): the classical improved-PRMA
// dynamic TDMA with a static frame (N_r request minislots + N_i information
// slots) and first-come-first-served assignment — slots are granted
// immediately as each request succeeds, with no view of channel state.
//
//  * FR runs the fixed-throughput PHY: one packet per slot, errors follow
//    the instantaneous channel.
//  * VR runs the variable-throughput adaptive PHY (Kawagishi et al. [14]):
//    each transmission picks its mode from fresh receiver CSI feedback, but
//    the MAC remains CSI-blind — the paper's foil showing that adaptation
//    *without* MAC interaction captures only part of the gain.
#pragma once

#include <string>
#include <vector>

#include "mac/engine.hpp"
#include "mac/request_queue.hpp"
#include "mac/reservation.hpp"

namespace charisma::protocols {

class DtdmaProtocol : public mac::ProtocolEngine {
 public:
  enum class PhyVariant { kFixedRate, kVariableRate };

  DtdmaProtocol(const mac::ScenarioParams& params, PhyVariant variant);

  std::string name() const override {
    return variant_ == PhyVariant::kFixedRate ? "D-TDMA/FR" : "D-TDMA/VR";
  }

  std::size_t queue_size() const { return queue_.size(); }
  int reservations_held() const { return grid_.occupied_total(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;
  std::int64_t pending_request_count() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

 private:
  void release_finished_talkspurts();
  /// Serves one request (voice: reserve + transmit; data: leftover slots).
  /// Returns true when the request is finished (served or dead) and must
  /// not be re-queued.
  bool serve_request(const mac::PendingRequest& request, int phase,
                     int& free_slots);
  void transmit_voice(mac::MobileUser& u);
  int transmit_data_slot(mac::MobileUser& u);

  PhyVariant variant_;
  mac::ReservationGrid grid_;
  mac::RequestQueue queue_;
  // Reused across frames so the steady-state serve path (queued requests +
  // this frame's winners, voice first) allocates nothing — the frame_alloc
  // pin drives a retransmitting data queue through here.
  std::vector<mac::PendingRequest> winner_scratch_;
  std::vector<mac::PendingRequest> serve_scratch_;
};

}  // namespace charisma::protocols
