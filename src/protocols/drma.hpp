// DRMA — Dynamic Reservation Multiple Access (Qiu & Li [19], paper §3.3):
// the frame carries only information slots; before each slot the base
// station announces whether it is assigned. An unassigned slot is
// "converted" into N_x request minislots on the fly, and each successful
// request is served in a later free slot of the same frame (voice winners
// keep that slot position as their reservation). Because conversions only
// happen when slots are idle, the request load is automatically throttled
// at high load — DRMA's built-in stability ("distributed requests
// queueing", §5.1). The fixed-throughput PHY is used.
#pragma once

#include <string>

#include "mac/engine.hpp"
#include "mac/request_queue.hpp"
#include "mac/reservation.hpp"

namespace charisma::protocols {

struct DrmaOptions {
  /// Information slots per frame (N_k). The DRMA frame has no dedicated
  /// request subframe, so the shared symbol budget fits one more slot than
  /// the CHARISMA layout.
  int info_slots = 11;
  /// Request minislots one converted slot yields (N_x).
  int minislots_per_conversion = 8;
};

class DrmaProtocol : public mac::ProtocolEngine {
 public:
  DrmaProtocol(const mac::ScenarioParams& params, DrmaOptions options = {});

  std::string name() const override { return "DRMA"; }

  std::size_t queue_size() const { return queue_.size(); }
  int reservations_held() const { return grid_.occupied_total(); }

 protected:
  common::Time process_frame() override;
  void on_user_detached(common::UserId id) override;
  void on_user_attached(common::UserId id) override;
  std::int64_t pending_request_count() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

 private:
  DrmaOptions options_;
  mac::ReservationGrid grid_;
  mac::RequestQueue queue_;
};

}  // namespace charisma::protocols
