#include "protocols/drma.hpp"

#include <cassert>
#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_set>
#include <vector>

namespace charisma::protocols {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DrmaProtocol::DrmaProtocol(const mac::ScenarioParams& params,
                           DrmaOptions options)
    : mac::ProtocolEngine(params),
      options_(options),
      grid_(params.geometry.frames_per_voice_period, options.info_slots) {}

void DrmaProtocol::on_user_detached(common::UserId id) {
  grid_.release(id);
  queue_.remove(id);
}

void DrmaProtocol::on_user_attached([[maybe_unused]] common::UserId id) {
  // A (re-)attaching user must arrive clean of earlier-stay state.
  assert(!grid_.has_reservation(id));
  assert(!queue_.contains(id));
}

common::Time DrmaProtocol::process_frame() {
  // Release reservations of finished talkspurts.
  for (auto& u : users()) {
    if (u.is_voice() && grid_.has_reservation(u.id()) &&
        !u.voice().in_talkspurt() && !u.voice().has_packet()) {
      grid_.release(u.id());
    }
  }
  queue_.purge_expired_voice(now());

  const int phase =
      static_cast<int>(frame_index() % geom_.frames_per_voice_period);
  offer_info_slots(options_.info_slots);

  // Requests awaiting service: yesterday's queue first (with-queue mode),
  // then winners of this frame's conversions as they happen.
  std::deque<mac::PendingRequest> pending(queue_.entries().begin(),
                                          queue_.entries().end());
  queue_.clear();
  std::unordered_set<common::UserId> engaged;  // queued or won this frame
  for (const auto& r : pending) engaged.insert(r.user);

  // Touch set: reservation holders of this phase plus the queued users a
  // free slot may serve; conversion contenders are covered by
  // run_contention's own touch.
  std::vector<common::UserId> touched;
  for (int slot = 0; slot < options_.info_slots; ++slot) {
    const common::UserId owner = grid_.user_at(phase, slot);
    if (owner != common::kNoUser) touched.push_back(owner);
  }
  for (const auto& r : pending) touched.push_back(r.user);
  touch_channels(touched);

  for (int slot = 0; slot < options_.info_slots; ++slot) {
    const common::UserId owner = grid_.user_at(phase, slot);
    if (owner != common::kNoUser) {
      // Reserved slot: its voice user transmits (or idles it away).
      transmit_voice_fixed(user(owner));
      continue;
    }

    // Drop dead pending entries (expired voice packet, drained burst).
    std::erase_if(pending, [this, &engaged](const mac::PendingRequest& r) {
      auto& u = user(r.user);
      const bool dead = r.type == mac::RequestType::kVoice
                            ? !u.voice().has_packet()
                            : u.data().backlog() == 0;
      if (dead) engaged.erase(r.user);
      return dead;
    });

    if (!pending.empty()) {
      // Serve the oldest pending request in this free slot, voice first
      // (voice outranks data in every protocol of the study).
      auto pick = pending.begin();
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->type == mac::RequestType::kVoice) {
          pick = it;
          break;
        }
      }
      auto request = *pick;
      pending.erase(pick);
      auto& u = user(request.user);
      if (request.type == mac::RequestType::kVoice) {
        // The served slot position becomes the talkspurt's reservation.
        grid_.reserve_at(phase, slot, request.user);
        transmit_voice_fixed(u);
        engaged.erase(request.user);
      } else {
        // One information slot per successful data request (§3.3): the
        // device contends again for the rest of its burst. (Persisting data
        // requests in the queue would let a handful of data users occupy
        // every otherwise-free slot, which starves the conversions new
        // voice talkspurts need — the queue stores only requests that got
        // *no* slot, per §4.5.)
        transmit_data_fixed(u);
        engaged.erase(request.user);
      }
      continue;
    }

    // Free slot with nothing to serve: convert it into N_x request
    // minislots.
    std::vector<common::UserId> candidates;
    for (auto& u : users()) {
      if (!u.present()) continue;
      if (engaged.count(u.id())) continue;
      if (u.is_voice()) {
        if (!grid_.has_reservation(u.id()) && u.voice().in_talkspurt() &&
            u.voice().has_packet() && !barring_blocks(u)) {
          candidates.push_back(u.id());
        }
      } else if (u.data().backlog() > 0 && !barring_blocks(u)) {
        candidates.push_back(u.id());
      }
    }
    if (candidates.empty()) continue;  // slot stays idle

    auto outcome = run_contention(candidates, options_.minislots_per_conversion);
    for (common::UserId uid : outcome.winners) {
      mac::PendingRequest request;
      request.user = uid;
      auto& u = user(uid);
      if (u.is_voice()) {
        request.type = mac::RequestType::kVoice;
        request.deadline = u.voice().packet().deadline;
        request.packets_requested = 1;
      } else {
        request.type = mac::RequestType::kData;
        request.deadline = kInf;
        request.packets_requested = u.data().backlog();
      }
      request.acked_at = now();
      pending.push_back(request);
      engaged.insert(uid);
    }
  }

  // Winners/queue entries that found no slot this frame.
  if (params_.request_queue) {
    for (auto& request : pending) {
      ++request.frames_waited;
      queue_.push(request);
    }
  }
  return geom_.frame_duration;
}

}  // namespace charisma::protocols
