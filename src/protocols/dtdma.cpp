#include "protocols/dtdma.hpp"

#include <cassert>
#include <limits>
#include <vector>

namespace charisma::protocols {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DtdmaProtocol::DtdmaProtocol(const mac::ScenarioParams& params,
                             PhyVariant variant)
    : mac::ProtocolEngine(params),
      variant_(variant),
      grid_(params.geometry.frames_per_voice_period,
            params.geometry.num_info_slots) {}

void DtdmaProtocol::on_user_detached(common::UserId id) {
  grid_.release(id);
  queue_.remove(id);
}

void DtdmaProtocol::on_user_attached([[maybe_unused]] common::UserId id) {
  // A (re-)attaching user must arrive clean of earlier-stay state.
  assert(!grid_.has_reservation(id));
  assert(!queue_.contains(id));
}

void DtdmaProtocol::release_finished_talkspurts() {
  for (auto& u : users()) {
    if (u.is_voice() && grid_.has_reservation(u.id()) &&
        !u.voice().in_talkspurt() && !u.voice().has_packet()) {
      grid_.release(u.id());
    }
  }
}

void DtdmaProtocol::transmit_voice(mac::MobileUser& u) {
  if (variant_ == PhyVariant::kFixedRate) {
    transmit_voice_fixed(u);
    return;
  }
  // VR: the transmitter adapts its mode from fresh receiver feedback; an
  // outage (or the sub-packet mode 0) ships nothing and the slot is wasted.
  const auto mode = fresh_mode_estimate(u);
  if (!mode) {
    note_assigned_slot();
    note_wasted_slot();
    return;
  }
  transmit_voice_adaptive(u, *mode);
}

int DtdmaProtocol::transmit_data_slot(mac::MobileUser& u) {
  if (variant_ == PhyVariant::kFixedRate) {
    return transmit_data_fixed(u);
  }
  const auto mode = fresh_mode_estimate(u);
  if (!mode) {
    note_assigned_slot();
    note_wasted_slot();
    return 0;
  }
  return transmit_data_adaptive(u, *mode,
                                adaptive_phy_.packets_per_slot(*mode));
}

bool DtdmaProtocol::serve_request(const mac::PendingRequest& request,
                                  int phase, int& free_slots) {
  auto& u = user(request.user);
  if (request.type == mac::RequestType::kVoice) {
    if (!u.voice().has_packet()) return true;  // packet expired meanwhile
    if (free_slots <= 0) return false;
    if (!grid_.reserve(phase, request.user)) {
      // Current phase fully booked: FCFS assignment is frame-local (§3.4),
      // so the request waits (queue) or dies (no queue).
      return false;
    }
    transmit_voice(u);
    --free_slots;
    return true;
  }
  // Data: leftover slots only, head-of-line burst, slot by slot.
  if (u.data().backlog() == 0) return true;
  while (free_slots > 0 && u.data().backlog() > 0) {
    transmit_data_slot(u);
    --free_slots;
  }
  return u.data().backlog() == 0;
}

common::Time DtdmaProtocol::process_frame() {
  release_finished_talkspurts();
  queue_.purge_expired_voice(now());

  const int phase =
      static_cast<int>(frame_index() % geom_.frames_per_voice_period);
  offer_info_slots(geom_.num_info_slots);

  // 1. Reserved voice users transmit in their owned slots. They are this
  //    frame's dense read set, so declare them to a lazy bank in one batch
  //    (queued to_serve users are sparse and materialize on read).
  const auto due = grid_.due_in_phase(phase);
  touch_channels(due);
  for (common::UserId uid : due) {
    transmit_voice(user(uid));
  }
  int free_slots = geom_.num_info_slots - static_cast<int>(due.size());

  // 2. Request phase: N_r contention minislots.
  std::vector<common::UserId> candidates;
  for (auto& u : users()) {
    if (!u.present()) continue;
    if (queue_.contains(u.id())) continue;
    if (u.is_voice()) {
      if (!grid_.has_reservation(u.id()) && u.voice().in_talkspurt() &&
          u.voice().has_packet() && !barring_blocks(u)) {
        candidates.push_back(u.id());
      }
    } else if (u.data().backlog() > 0 && !barring_blocks(u)) {
      candidates.push_back(u.id());
    }
  }
  auto outcome = run_contention(candidates, geom_.num_request_slots);

  // 3. FCFS service: queued requests first (oldest), then this frame's
  //    winners in minislot order. Unserved requests stay queued only in
  //    the with-queue configuration (§4.5). Voice outranks data in every
  //    protocol of the study (paper §1): serve all voice requests before
  //    any data request, FCFS within each class — the class-by-class
  //    two-pass build below reproduces a stable voice-first partition of
  //    [queue entries, winners] in reused member scratch, so the
  //    steady-state serve path allocates nothing.
  winner_scratch_.clear();
  for (common::UserId uid : outcome.winners) {
    mac::PendingRequest request;
    request.user = uid;
    auto& u = user(uid);
    if (u.is_voice()) {
      request.type = mac::RequestType::kVoice;
      request.deadline = u.voice().packet().deadline;
      request.packets_requested = 1;
    } else {
      request.type = mac::RequestType::kData;
      request.deadline = kInf;
      request.packets_requested = u.data().backlog();
    }
    request.acked_at = now();
    winner_scratch_.push_back(request);
  }
  serve_scratch_.clear();
  for (auto type : {mac::RequestType::kVoice, mac::RequestType::kData}) {
    for (const auto& request : queue_.entries()) {
      if (request.type == type) serve_scratch_.push_back(request);
    }
    for (const auto& request : winner_scratch_) {
      if (request.type == type) serve_scratch_.push_back(request);
    }
  }
  queue_.clear();
  for (auto& request : serve_scratch_) {
    const bool finished = serve_request(request, phase, free_slots);
    if (!finished && params_.request_queue) {
      ++request.frames_waited;
      queue_.push(request);
    }
  }
  return geom_.frame_duration;
}

}  // namespace charisma::protocols
