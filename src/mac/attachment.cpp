#include "mac/attachment.hpp"

#include <stdexcept>

namespace charisma::mac {

int strongest_with_hysteresis(std::span<const double> pilot_db, int attached,
                              double hysteresis_db) {
  if (pilot_db.empty()) {
    throw std::invalid_argument("strongest_with_hysteresis: no stations");
  }
  if (attached < 0 || attached >= static_cast<int>(pilot_db.size())) {
    throw std::invalid_argument("strongest_with_hysteresis: bad attachment");
  }
  const double bar =
      pilot_db[static_cast<std::size_t>(attached)] + hysteresis_db;
  int best = attached;
  double best_pilot = bar;
  for (std::size_t s = 0; s < pilot_db.size(); ++s) {
    if (static_cast<int>(s) == attached) continue;
    if (pilot_db[s] > best_pilot) {
      best = static_cast<int>(s);
      best_pilot = pilot_db[s];
    }
  }
  return best;
}

}  // namespace charisma::mac
