// A mobile device: its service type, traffic source, radio channel and a
// private random stream for MAC-level draws (contention permissions,
// packet-error realizations). All per-user randomness is seeded from the
// scenario seed and the user id, so populations are reproducible and
// protocols see identical worlds.
#pragma once

#include <algorithm>
#include <optional>

#include "channel/user_channel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mac/scenario.hpp"
#include "traffic/data_source.hpp"
#include "traffic/voice_source.hpp"

namespace charisma::mac {

enum class ServiceType { kVoice, kData };

class MobileUser {
 public:
  /// When `bank` is non-null the user's channel is registered in that
  /// shared ChannelBank (the engine's batched hot path); otherwise the
  /// channel is standalone. Seeding is identical either way, so the same
  /// user sees the same channel in both modes.
  MobileUser(common::UserId id, ServiceType service,
             const ScenarioParams& params,
             channel::ChannelBank* bank = nullptr);

  common::UserId id() const { return id_; }
  ServiceType service() const { return service_; }
  bool is_voice() const { return service_ == ServiceType::kVoice; }
  bool is_data() const { return service_ == ServiceType::kData; }

  channel::UserChannel& channel() { return channel_; }
  const channel::UserChannel& channel() const { return channel_; }

  traffic::VoiceSource& voice() { return *voice_; }
  const traffic::VoiceSource& voice() const { return *voice_; }
  traffic::DataSource& data() { return *data_; }
  const traffic::DataSource& data() const { return *data_; }

  common::RngStream& rng() { return rng_; }

  // ---- Multi-cell presence (CellularWorld) ----
  // Every cell's engine instantiates the full population; a user is
  // `present` only in the cell it is attached to. Absent users generate no
  // traffic and never contend — their channel keeps evolving so the
  // attachment policy can measure their pilot.

  bool present() const { return present_; }
  void set_present(bool present) { present_ = present; }

  /// Carries the user's service state into this cell on handoff: traffic
  /// sources (talkspurt phase, pending packets, data backlog — the
  /// continuity a handoff must preserve) and the contention backoff scale.
  /// The channel is *not* carried: each cell's link fades independently.
  void adopt_service_state(const MobileUser& other) {
    voice_ = other.voice_;
    data_ = other.data_;
    backoff_scale_ = other.backoff_scale_;
  }

  /// Drops the in-flight voice packet, if any (lost in transit during a
  /// handoff). Returns the number of packets dropped (0 or 1).
  int drop_pending_voice() {
    if (!voice_ || !voice_->has_packet()) return 0;
    voice_->consume_packet();
    return 1;
  }

  // ---- Contention backoff stabilization ----
  // Slotted-ALOHA-style request phases are bistable: once the contender
  // population exceeds ~1/p, collisions starve everyone (thrashing). Real
  // PRMA deployments stabilize this with multiplicative backoff: a device
  // that transmitted a request and saw no acknowledgment halves its
  // permission scale; a success resets it. The scale multiplies the class
  // permission probability p_v/p_d.

  double backoff_scale() const { return backoff_scale_; }
  void note_contention_success() { backoff_scale_ = 1.0; }
  void note_contention_collision() {
    backoff_scale_ = std::max(backoff_scale_ * 0.5, 1.0 / 64.0);
  }

 private:
  double backoff_scale_ = 1.0;
  bool present_ = true;
  common::UserId id_;
  ServiceType service_;
  common::RngStream rng_;
  channel::UserChannel channel_;
  std::optional<traffic::VoiceSource> voice_;
  std::optional<traffic::DataSource> data_;
};

}  // namespace charisma::mac
