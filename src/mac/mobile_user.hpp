// A mobile device: its service type, traffic source, radio channel and a
// private random stream for MAC-level draws (contention permissions,
// packet-error realizations). All per-user randomness is seeded from the
// scenario seed and the user id, so populations are reproducible and
// protocols see identical worlds.
//
// Sparse presence: a user object can be constructed as a band-resident
// *shell* — channel row live in the cell's bank (the attachment policy
// needs its pilot), traffic sources and MAC stream deferred until the user
// actually attaches (ensure_traffic). A shell is ~a hundred bytes; the
// mt19937_64-backed streams it defers are ~2.5 KB each, which is what
// makes band-local worlds with very large populations affordable. Under
// ScenarioParams::traffic_rng = kCompact the deferred streams themselves
// shrink to ~24 bytes (splitmix64 counters), so even *attached* users stay
// cheap — the remaining per-user cost is the channel row and the sources'
// queues.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>

#include "channel/user_channel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mac/scenario.hpp"
#include "traffic/data_source.hpp"
#include "traffic/voice_source.hpp"

namespace charisma::mac {

enum class ServiceType { kVoice, kData };

class MobileUser {
 public:
  /// Fully materialized user, present, visit 0: the historical single-cell
  /// constructor. When `bank` is non-null the user's channel is registered
  /// in that shared ChannelBank (the engine's batched hot path); otherwise
  /// the channel is standalone. Seeding is identical either way, so the
  /// same user sees the same channel in both modes.
  MobileUser(common::UserId id, ServiceType service,
             const ScenarioParams& params,
             channel::ChannelBank* bank = nullptr);

  /// Band-shell constructor (sparse presence): acquires a channel row in
  /// `bank` but defers the traffic sources and the MAC stream until
  /// ensure_traffic; the user starts absent. `visit` is the per-(user,
  /// cell) band-entry counter: visit 0 draws from the plain scenario seed
  /// (bit-identical to the historical constructor), visit v > 0 derives a
  /// fresh rebirth seed, so what a re-entering user's row draws depends
  /// only on (seed, id, visit) — never on the presence history of the rest
  /// of the population or on which bank slot the free-list handed back.
  MobileUser(common::UserId id, ServiceType service,
             const ScenarioParams& params, channel::ChannelBank& bank,
             std::uint32_t visit);

  common::UserId id() const { return id_; }
  ServiceType service() const { return service_; }
  bool is_voice() const { return service_ == ServiceType::kVoice; }
  bool is_data() const { return service_ == ServiceType::kData; }

  channel::UserChannel& channel() { return channel_; }
  const channel::UserChannel& channel() const { return channel_; }

  traffic::VoiceSource& voice() { return *voice_; }
  const traffic::VoiceSource& voice() const { return *voice_; }
  traffic::DataSource& data() { return *data_; }
  const traffic::DataSource& data() const { return *data_; }

  common::TrafficRng& rng() { return *rng_; }

  /// True once the MAC stream (and, unless adopted, the traffic source)
  /// exist. Shells must ensure_traffic before first presence.
  bool traffic_ready() const { return rng_.has_value(); }

  /// Materializes the deferred per-user state: the MAC stream always, the
  /// traffic source only when none exists yet (a handoff adopts the
  /// source from the previous cell first — that continuity wins over a
  /// fresh draw). Seeded from this user's visit-derived seed, so a first
  /// attach draws exactly what the historical constructor drew. Idempotent.
  void ensure_traffic(const ScenarioParams& params);

  // ---- Multi-cell presence (CellularWorld) ----
  // A user holds engine state only in the cells whose band it occupies,
  // and is `present` only in the cell it is attached to. Absent users
  // generate no traffic and never contend — their channel keeps evolving
  // so the attachment policy can measure their pilot.

  bool present() const { return present_; }
  void set_present(bool present) { present_ = present; }

  /// Carries the user's service state into this cell on handoff: traffic
  /// sources (talkspurt phase, pending packets, data backlog — the
  /// continuity a handoff must preserve) and the contention backoff scale.
  /// The channel is *not* carried: each cell's link fades independently.
  void adopt_service_state(const MobileUser& other) {
    voice_ = other.voice_
                 ? std::make_unique<traffic::VoiceSource>(*other.voice_)
                 : nullptr;
    data_ = other.data_ ? std::make_unique<traffic::DataSource>(*other.data_)
                        : nullptr;
    backoff_scale_ = other.backoff_scale_;
  }

  /// Drops the in-flight voice packet, if any (lost in transit during a
  /// handoff). Returns the number of packets dropped (0 or 1).
  int drop_pending_voice() {
    if (!voice_ || !voice_->has_packet()) return 0;
    voice_->consume_packet();
    return 1;
  }

  // ---- Contention backoff stabilization ----
  // Slotted-ALOHA-style request phases are bistable: once the contender
  // population exceeds ~1/p, collisions starve everyone (thrashing). Real
  // PRMA deployments stabilize this with multiplicative backoff: a device
  // that transmitted a request and saw no acknowledgment halves its
  // permission scale; a success resets it. The scale multiplies the class
  // permission probability p_v/p_d.

  double backoff_scale() const { return backoff_scale_; }
  void note_contention_success() { backoff_scale_ = 1.0; }
  void note_contention_collision() {
    backoff_scale_ = std::max(backoff_scale_ * 0.5, 1.0 / 64.0);
  }

 private:
  double backoff_scale_ = 1.0;
  bool present_ = true;
  common::UserId id_;
  ServiceType service_;
  std::uint64_t seed_;  // visit-derived scenario seed (visit 0: the plain one)
  std::optional<common::TrafficRng> rng_;
  channel::UserChannel channel_;
  std::unique_ptr<traffic::VoiceSource> voice_;
  std::unique_ptr<traffic::DataSource> data_;
};

}  // namespace charisma::mac
