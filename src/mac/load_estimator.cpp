#include "mac/load_estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace charisma::mac {

LoadEstimator::LoadEstimator(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("LoadEstimator: alpha must be in (0, 1]");
  }
}

void LoadEstimator::observe(const LoadSignals& raw) {
  if (windows_ == 0) {
    level_ = raw;  // seed: no zero history to drag through warmup
  } else {
    const double a = alpha_;
    level_.attached_users += a * (raw.attached_users - level_.attached_users);
    level_.collision_ratio +=
        a * (raw.collision_ratio - level_.collision_ratio);
    level_.queue_depth += a * (raw.queue_depth - level_.queue_depth);
    level_.interference_db +=
        a * (raw.interference_db - level_.interference_db);
  }
  ++windows_;
}

double LoadEstimator::overload_index() const {
  // Collision ratio is the primary congestion signal (it is what collapses
  // first under a flash crowd). A backed-up request queue — more than one
  // pending request per attached user — means admitted requests are not
  // being served either, so it inflates the index; this is what lets
  // queue-centric protocols (RAMA, D-TDMA) report overload even when their
  // auction absorbs collisions.
  const double users = std::max(1.0, level_.attached_users);
  const double queue_pressure =
      std::min(1.0, level_.queue_depth / users);
  const double idx = level_.collision_ratio + 0.5 * queue_pressure;
  return std::clamp(idx, 0.0, 1.0);
}

}  // namespace charisma::mac
