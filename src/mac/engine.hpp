// ProtocolEngine: the "common simulation platform" (paper §5) every
// protocol runs on. It owns the world (users, channels, sources), the
// discrete-event simulator, both physical layers, the CSI estimator and
// the metrics, and drives a self-rescheduling frame event. Subclasses
// implement process_frame() with their access-control rules and return the
// frame duration they consumed — constant for the static-frame protocols,
// data-dependent for RMAV/DRMA.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "channel/channel_bank.hpp"
#include "channel/csi.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mac/barring.hpp"
#include "mac/contention.hpp"
#include "mac/load_estimator.hpp"
#include "mac/metrics.hpp"
#include "mac/mobile_user.hpp"
#include "mac/scenario.hpp"
#include "phy/adaptive_phy.hpp"
#include "phy/fixed_phy.hpp"
#include "sim/simulator.hpp"

namespace charisma::mac {

/// One band-resident user of an engine: its id and the storage slot its
/// state occupies (== its ChannelBank row). The band is kept sorted by id,
/// so iterating it reproduces the historical ascending-id loops bit for
/// bit; the slot is where a reused free-list row actually lives.
struct BandMember {
  common::UserId id;
  std::uint32_t slot;
};

class MobileUser;

/// Range view over an engine's band-resident users in ascending user-id
/// order — the sparse-presence replacement for the historical
/// `std::vector<MobileUser>&` that users() returned. Protocols range-for
/// it exactly as before; the indirection through slots is the only change.
class UserBand {
 public:
  class iterator {
   public:
    iterator(const BandMember* m, const std::unique_ptr<MobileUser>* slots)
        : m_(m), slots_(slots) {}
    MobileUser& operator*() const { return *slots_[m_->slot]; }
    MobileUser* operator->() const { return slots_[m_->slot].get(); }
    iterator& operator++() {
      ++m_;
      return *this;
    }
    bool operator==(const iterator& o) const { return m_ == o.m_; }
    bool operator!=(const iterator& o) const { return m_ != o.m_; }

   private:
    const BandMember* m_;
    const std::unique_ptr<MobileUser>* slots_;
  };

  UserBand(const std::vector<BandMember>& band,
           const std::vector<std::unique_ptr<MobileUser>>& slots)
      : band_(&band), slots_(&slots) {}
  iterator begin() const { return {band_->data(), slots_->data()}; }
  iterator end() const {
    return {band_->data() + band_->size(), slots_->data()};
  }
  std::size_t size() const { return band_->size(); }
  bool empty() const { return band_->empty(); }

 private:
  const std::vector<BandMember>* band_;
  const std::vector<std::unique_ptr<MobileUser>>* slots_;
};

class ProtocolEngine {
 public:
  explicit ProtocolEngine(const ScenarioParams& params);
  virtual ~ProtocolEngine() = default;
  ProtocolEngine(const ProtocolEngine&) = delete;
  ProtocolEngine& operator=(const ProtocolEngine&) = delete;

  virtual std::string name() const = 0;

  /// Runs `warmup` seconds (statistics discarded), then `measure` seconds,
  /// and returns the metrics collected during measurement. Both durations
  /// are relative to now(), so repeated calls are window-monotonic: each
  /// call continues the same simulation and measures its own fresh window.
  /// warmup must be >= 0 and measure > 0.
  const ProtocolMetrics& run(common::Time warmup, common::Time measure);

  /// Advances the simulation `duration` seconds past now() without touching
  /// the accumulated metrics — the building block CellularWorld uses to
  /// interleave frames with mobility/attachment epochs. No-op when
  /// duration <= 0.
  void advance_by(common::Time duration);

  /// Discards everything measured so far (run() does this after warmup).
  /// Also re-baselines the bank's materialization counters, so warmup
  /// materializations never leak into the first measured frame's
  /// users_advanced/skipped accounting.
  void reset_metrics() {
    metrics_.reset();
    const auto stats = bank_.lazy_stats();
    lazy_events_seen_ = stats.jump_events;
    lazy_frames_seen_ = stats.jump_frames;
  }

  // ---- Sparse presence: band membership (CellularWorld) ----
  // A cell's engine holds state only for the users inside its pilot band.
  // The historical dense mode is the special case where the whole
  // population is admitted at construction and never released.

  /// Admits `id` into this engine's band: acquires a ChannelBank row
  /// (reusing a released slot when one matches) and constructs the user's
  /// shell there. With `materialize_traffic` the user is also made present
  /// with live traffic sources — the historical at-construction semantics,
  /// used for the dense population and by tests; the world instead admits
  /// shells and attaches separately. What the new row draws depends only
  /// on (scenario seed, id, per-(user,cell) visit count) — never on the
  /// presence history of the rest of the population or on which slot the
  /// free list handed back. Throws on a double admit or a bad id.
  MobileUser& band_admit(common::UserId id, bool materialize_traffic);

  /// Releases `id` from the band: destroys its shell and frees its bank
  /// row for reuse. The user must be detached first (throws logic_error
  /// otherwise); its next admit here draws a fresh rebirth seed.
  void band_release(common::UserId id);

  /// First-time attachment during world construction: makes the user
  /// present with live traffic, *without* counting a handoff — the initial
  /// placement is not a hand-in (dense initialize_attachments never
  /// counted one either).
  void attach_user_initial(common::UserId id);

  /// Slot-indexed view of the band storage: the user occupying bank row
  /// `slot`, or nullptr when the row is vacant (or past the storage). A
  /// pure read of quiescent state — the sharded plane tasks walk disjoint
  /// row ranges through here between the band-maintenance phases.
  const MobileUser* user_at_slot(std::size_t slot) const {
    return slot < users_.size() ? users_[slot].get() : nullptr;
  }

  /// Band membership, ascending by user id. slot is the user's storage /
  /// ChannelBank row index.
  const std::vector<BandMember>& band() const { return band_; }
  std::size_t band_size() const { return band_.size(); }
  bool band_resident(common::UserId id) const;

  // ---- Multi-cell attachment (CellularWorld) ----

  /// Removes the user from this cell's active population: the protocol
  /// releases any per-user state it holds (reservation, queued requests),
  /// in-flight voice packets are dropped and counted as
  /// voice_dropped_handoff, and the user stops generating traffic or
  /// contending here. No-op when already detached.
  void detach_user(common::UserId id);

  /// (Re-)admits the user to this cell's active population. The caller is
  /// responsible for carrying the user's service state in first
  /// (MobileUser::adopt_service_state). No-op when already attached.
  void attach_user(common::UserId id);

  /// Forced removal because this cell went dark (outage schedule): like
  /// detach_user, but the move is counted as an outage eviction and the
  /// in-flight voice as voice_dropped_outage rather than as a hysteresis
  /// handoff. No-op when already detached.
  void evict_user(common::UserId id);

  /// Records one decision epoch of the world's inter-cell interference
  /// plane for this cell: the mean SINR penalty (dB) across the per-user
  /// plane just fed to the ChannelBank. Called by CellularWorld inside
  /// the (share-nothing) per-cell epoch task; single-cell runs never
  /// record a sample.
  void note_interference_epoch(double mean_penalty_db) {
    metrics_.interference_db.add(mean_penalty_db);
    last_interference_db_ = mean_penalty_db;
  }

  /// Current access-class admission factors (1.0 when barring is off or
  /// has not tightened) — bench/test visibility into the closed loop.
  double barring_voice_factor() const {
    return barring_ ? barring_->voice_factor() : 1.0;
  }
  double barring_data_factor() const {
    return barring_ ? barring_->data_factor() : 1.0;
  }

  const ProtocolMetrics& metrics() const { return metrics_; }
  const ScenarioParams& params() const { return params_; }
  common::Time now() const { return sim_.now(); }
  common::FrameIndex frame_index() const { return frame_index_; }

  /// The band-resident users in ascending user-id order (historically: the
  /// whole population).
  UserBand users() { return {band_, users_}; }
  MobileUser& user(common::UserId id);

  /// The shared SoA channel state all users' channels view into; exposed
  /// for benchmarks and tests of the batched hot path.
  channel::ChannelBank& channel_bank() { return bank_; }
  const channel::ChannelBank& channel_bank() const { return bank_; }

  /// Read-only view of the engine's simulator, exposed so tests can pin the
  /// frame loop's allocation behavior (queue_events_scheduled stays zero
  /// while frames advance through the periodic slot).
  const sim::Simulator& simulator() const { return sim_; }

 protected:
  /// One frame of protocol operation at sim time now(); returns the frame
  /// duration consumed (> 0).
  virtual common::Time process_frame() = 0;

  /// Protocol hook run by detach_user before the user goes absent: release
  /// every per-user structure the protocol holds (reservations, queue
  /// entries, grants, CSI cache). Default: nothing to release.
  virtual void on_user_detached(common::UserId /*id*/) {}

  /// Twin hook run by attach_user / attach_user_initial after the user
  /// becomes present: construct (or debug-verify the absence of) per-user
  /// protocol state. Every stock protocol keys its state by user id and
  /// releases it in on_user_detached, so the default — and the overrides —
  /// do no release-mode work; overrides assert no stale residue survived a
  /// detach/release cycle. Never fired for the dense at-construction
  /// population (protocol constructors run after admission).
  virtual void on_user_attached(common::UserId /*id*/) {}

  /// Number of requests the protocol is holding at the base station
  /// (admitted but unserved) — the LoadEstimator's queue-depth signal.
  /// Default: no queue.
  virtual std::int64_t pending_request_count() const { return 0; }

  // ---- World helpers ----

  /// Advances channels and sources to the current frame boundary and
  /// accounts packet generation/expiry. With params.lazy_channel the
  /// channel side is an O(1) clock move (bank_.set_time); per-user state
  /// materializes when the frame touches or reads it.
  void advance_world();

  /// Declares the users this frame is about to read (slot owners, due
  /// lists, contention candidates, grant queues): a lazy bank
  /// materializes them as one dense strip-mined batch instead of paying
  /// scattered on-read jumps; an eager bank (the default) needs nothing.
  /// The touch set is an optimization, not an obligation — any user read
  /// without being declared still materializes transparently, so protocol
  /// hooks only need to cover their hot sets.
  void touch_channels(std::span<const common::UserId> users) {
    if (bank_.lazy()) bank_.materialize_users(users);
  }

  /// This user's permission probability (paper §2, p_v / p_d).
  double permission_prob(const MobileUser& u) const;

  /// Access-class barring gate at contention entry: true when the user is
  /// barred from contending this frame. With barring disabled, or the
  /// user's class factor at 1, returns false without drawing RNG — the
  /// legacy bit-for-bit path. Protocols call this exactly where a user
  /// would become a NEW contention candidate (never on users already
  /// holding a reservation or a queued request).
  bool barring_blocks(MobileUser& u);

  /// Runs a contention phase over `candidates` with the class permission
  /// probabilities scaled by each device's backoff state, records the
  /// tally, charges request energy, injects downlink-ACK loss, and updates
  /// backoff (winners reset, collided losers halve; a winner whose ACK was
  /// lost behaves like a collided loser and is dropped from the winners).
  /// `symbols_per_request` defaults to a request minislot; RMAV's
  /// full-slot competitive requests pass the slot size.
  ContentionOutcome run_contention(const std::vector<common::UserId>& candidates,
                                   int minislots,
                                   int symbols_per_request = -1);

  // ---- Energy accounting (paper §1, motivation 2) ----

  /// Joules for an uplink burst of `symbols` at this geometry's rate.
  double burst_energy(double symbols) const;
  /// Charges request-phase energy: `bursts` transmissions of
  /// `symbols_each`, of which `useful` carried a winning request.
  void note_request_energy(int bursts, double symbols_each, int useful);
  /// Charges a pilot response to a CSI poll.
  void note_pilot_energy();

  /// Pilot-based CSI estimate of the user's current channel.
  channel::CsiEstimate estimate_csi(MobileUser& u);

  /// The D-TDMA/VR path: per-transmission mode choice from a fresh CSI
  /// estimate fed back by the receiver (no MAC interaction).
  std::optional<int> fresh_mode_estimate(MobileUser& u);

  // ---- Transmissions (update metrics; caller owns slot assignment) ----

  /// Voice packet over the fixed-throughput PHY. Consumes the packet;
  /// counts delivery or channel-error loss.
  void transmit_voice_fixed(MobileUser& u);

  /// Voice packet over the adaptive PHY in the announced `mode`. A mode
  /// carrying less than one packet per slot ships nothing (wasted slot;
  /// packet stays pending until its deadline).
  void transmit_voice_adaptive(MobileUser& u, int mode);

  /// Data packets over the fixed PHY (one per slot). Returns delivered
  /// count (0 or 1); failures stay queued for ARQ retransmission.
  int transmit_data_fixed(MobileUser& u);

  /// Data packets over the adaptive PHY: up to min(packets_per_slot(mode),
  /// max_packets) head-of-line packets in one slot. Returns delivered
  /// count.
  int transmit_data_adaptive(MobileUser& u, int mode, int max_packets);

  // ---- Accounting helpers ----
  void note_contention(const ContentionTally& tally);
  /// Credits delivered packets to the user's fairness ledger.
  void note_user_delivery(common::UserId id, int packets);
  void offer_info_slots(int n) { metrics_.info_slots_offered += n; }
  void note_assigned_slot() { ++metrics_.info_slots_assigned; }
  void note_wasted_slot() { ++metrics_.info_slots_wasted; }

  ScenarioParams params_;
  FrameGeometry geom_;
  sim::Simulator sim_;
  channel::ChannelBank bank_;  // declared before users_: views into it
  // Slot-indexed storage mirroring the bank's rows one-for-one (null at
  // vacant slots), plus the ascending-id membership index over it. In the
  // dense population slot == id and band_ is the identity.
  std::vector<std::unique_ptr<MobileUser>> users_;
  std::vector<BandMember> band_;
  ProtocolMetrics metrics_;
  phy::FixedPhy fixed_phy_;
  phy::AdaptivePhy adaptive_phy_;
  channel::CsiEstimator csi_estimator_;
  common::RngStream bs_rng_;
  common::FrameIndex frame_index_ = 0;
  /// Failed-arrival scratch for transmit_data_adaptive, reused across
  /// frames so steady-state ARQ retransmissions stay allocation-free.
  std::vector<common::Time> retx_scratch_;

 private:
  /// One firing of the simulator's periodic slot: advance the world, run
  /// the protocol frame, and return the consumed duration as the delay to
  /// the next tick.
  common::Time frame_tick();
  /// Closes one barring control window: freeze the raw load signals, fold
  /// them into the estimator, step the controller, sample the factors.
  void barring_control_step();
  bool started_ = false;

  /// True while slot == id for every band member with no vacancies — the
  /// dense population's invariant, letting user(id) skip the binary
  /// search. Cleared (permanently) by the first out-of-order admit or any
  /// release.
  bool identity_ = true;
  /// Per-user count of completed band visits *here*: how many times the
  /// user has been released from this cell's band. Seeds the rebirth
  /// stream on re-admission. Empty for the dense population.
  std::unordered_map<common::UserId, std::uint32_t> rebirths_;

  // Closed-loop barring state (engaged only when params.barring.enabled;
  // the estimator/controller live inside this cell's engine, so the
  // parallel world's share-nothing guarantee is untouched).
  std::optional<LoadEstimator> load_estimator_;
  std::optional<BarringController> barring_;
  double last_interference_db_ = 0.0;
  // Bank-counter snapshot already attributed to metrics_ (frame_tick
  // scrapes deltas; reset_metrics re-baselines).
  std::int64_t lazy_events_seen_ = 0;
  std::int64_t lazy_frames_seen_ = 0;
  std::int64_t barr_win_minislots_ = 0;
  std::int64_t barr_win_collisions_ = 0;
  std::int64_t barr_win_user_frames_ = 0;
  int barr_win_frames_ = 0;
};

}  // namespace charisma::mac
