// Per-run protocol statistics, matching the paper's three reported metrics
// (voice packet loss Eq. (3), data throughput, data delay) plus the
// internal counters needed to explain them (contention efficiency, slot
// utilization, CSI bookkeeping).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace charisma::mac {

struct ProtocolMetrics {
  /// Geometry of the data-delay histogram (shared with the experiment
  /// aggregators so replications merge exactly).
  static constexpr double kDelayHistLo = 0.0;
  static constexpr double kDelayHistHi = 5.0;
  static constexpr std::size_t kDelayHistBins = 500;

  // Measurement window.
  std::int64_t frames = 0;
  common::Time measured_time = 0.0;

  // Voice accounting. loss = dropped (deadline) + error (channel) +
  // dropped (handoff).
  std::int64_t voice_generated = 0;
  std::int64_t voice_delivered = 0;
  std::int64_t voice_dropped_deadline = 0;
  std::int64_t voice_error_lost = 0;

  // Data accounting.
  std::int64_t data_generated = 0;
  std::int64_t data_delivered = 0;
  std::int64_t data_tx_attempts = 0;
  std::int64_t data_retransmissions = 0;
  common::Accumulator data_delay_s;  ///< arrival -> successful tx start
  /// Delay distribution for tail quantiles; out-of-range mass is tracked in
  /// the histogram's underflow/overflow tails (histogram_clip_warning).
  common::Histogram data_delay_hist{kDelayHistLo, kDelayHistHi,
                                    kDelayHistBins};

  // Multi-cell mobility accounting (CellularWorld). In a single-cell run
  // the handoff counters stay zero; attached_user_frames still counts the
  // full (always-present) population.
  std::int64_t handoffs_in = 0;   ///< users handed into this cell
  std::int64_t handoffs_out = 0;  ///< users handed out of this cell
  /// Voice packets in flight at the instant of a handoff out (lost in
  /// transit; part of voice_loss_rate()).
  std::int64_t voice_dropped_handoff = 0;
  /// Sum over frames of the attached-population size — per-cell load;
  /// divide by frames for the mean (mean_attached_users()).
  std::int64_t attached_user_frames = 0;

  // Cell-outage fault injection (CellularWorld outage schedule). Users on
  // a cell that goes dark are force-evicted to the best lit neighbour;
  // their in-flight voice is dropped and counted here (part of
  // voice_loss_rate()). outage_evictions plays the role handoffs_out plays
  // for hysteresis moves, so across a world
  // sum(handoffs_in) == sum(handoffs_out) + sum(outage_evictions).
  std::int64_t outage_evictions = 0;
  std::int64_t voice_dropped_outage = 0;

  // Access-class barring (closed-loop overload control; BarringController).
  // A "check" is one contention entry evaluated against a class factor
  // below 1; with barring disabled (or the factor at 1) nothing is counted
  // and no RNG is drawn, preserving legacy results bit for bit.
  std::int64_t barring_checks = 0;
  std::int64_t barring_barred_voice = 0;
  std::int64_t barring_barred_data = 0;
  /// One sample per control window: the class admission factors in force.
  common::Accumulator barring_factor_voice;
  common::Accumulator barring_factor_data;

  // Inter-cell interference accounting (CellularWorld's uplink SINR
  // plane). One sample per decision epoch: the mean SINR penalty (dB,
  // 10·log10(1 + I/N)) across this cell's per-user interference plane.
  // count() stays 0 when the interference plane is disabled (single-cell
  // runs, legacy worlds).
  common::Accumulator interference_db;

  // Request-phase accounting (per minislot).
  std::int64_t request_slots = 0;
  std::int64_t request_successes = 0;
  std::int64_t request_collisions = 0;
  std::int64_t request_idle = 0;

  // Information-slot accounting.
  std::int64_t info_slots_offered = 0;
  std::int64_t info_slots_assigned = 0;
  /// Assigned but carried zero packets (reserved user idle, or granted mode
  /// below one packet per slot — the paper's "wasted allocation").
  std::int64_t info_slots_wasted = 0;

  // CHARISMA-specific bookkeeping.
  std::int64_t csi_polls = 0;
  std::int64_t csi_stale_allocations = 0;

  // Downlink acknowledgment failures (injected; see ScenarioParams).
  std::int64_t acks_lost = 0;

  // Channel-materialization accounting (ScenarioParams::lazy_channel
  // observability; eager runs report every user advanced every frame).
  // users_advanced_frames counts user-frames where a jump executed;
  // users_skipped_frames counts user-frames covered lazily by a later
  // jump. advanced + skipped = user-frames of channel evolution observed;
  // mean_materialization_stride() = their ratio to jumps executed.
  std::int64_t users_advanced_frames = 0;
  std::int64_t users_skipped_frames = 0;

  // Mobile-device energy accounting (paper §1, motivation 2).
  double energy_request_j = 0.0;  ///< request/auction/competitive bursts
  double energy_info_j = 0.0;     ///< information-slot transmissions
  double energy_pilot_j = 0.0;    ///< CSI-poll pilot responses
  double energy_wasted_j = 0.0;   ///< joules that delivered no packet

  /// Packets delivered per user id (voice + data) — the fairness view
  /// needed by the §6 capacity-fair extension. Sized by the engine.
  std::vector<std::int64_t> per_user_delivered;

  void reset() { *this = ProtocolMetrics{}; }

  /// Exact equality over every field (counters, accumulators, histogram,
  /// per-user ledger; doubles compared with ==). This is the single
  /// definition of "bit-identical metrics" used by the parallel-vs-serial
  /// determinism test and bench_world's exit-code cross-check — a field
  /// added here (and to merge()) is covered by both automatically.
  bool operator==(const ProtocolMetrics&) const = default;

  /// Accumulates another cell's (or replication's) counters into this one —
  /// the aggregate view CellularWorld reports. Counters add; accumulators
  /// and histograms merge; measured_time takes the max (cells run in
  /// lockstep, so their windows coincide rather than concatenate).
  void merge(const ProtocolMetrics& other);

  // ---- Derived quantities (guard against empty windows) ----

  /// Paper Eq. (3): fraction of voice packets not received intact
  /// (deadline drops + channel errors + handoff drops + outage drops).
  double voice_loss_rate() const;
  /// Deadline-drop component only.
  double voice_drop_rate() const;
  /// Channel-error component only.
  double voice_error_rate() const;
  /// Handoff-drop component only.
  double voice_handoff_drop_rate() const;
  /// Outage-eviction component only.
  double voice_outage_drop_rate() const;

  /// Fraction of barring checks that barred the user (all classes);
  /// 0 when barring never engaged.
  double effective_barring_probability() const;

  /// Paper §5.2: average data packets successfully received per frame.
  double data_throughput_per_frame() const;
  /// Mean data delay in seconds.
  double mean_data_delay_s() const;

  double request_success_ratio() const;
  double slot_utilization() const;
  double slot_waste_ratio() const;

  /// Mean number of attached users per frame (per-cell load).
  double mean_attached_users() const;
  /// Mean per-epoch SINR penalty (dB); 0 when no interference plane ran.
  double mean_interference_db() const;
  /// User-frames of channel evolution per executed jump: exactly 1 under
  /// eager advancement, the lazy win factor otherwise. 0 on empty windows.
  double mean_materialization_stride() const;
  /// Fraction of observed user-frames whose per-frame jump was skipped
  /// (folded into a later materialization). 0 under eager advancement.
  double skipped_user_frame_fraction() const;
  /// Handoffs out of this cell per measured second.
  double handoff_rate_hz() const;

  /// Jain's fairness index over per-user delivered packets restricted to
  /// the users in [first, last]: (sum x)^2 / (n * sum x^2); 1 = perfectly
  /// even, 1/n = one user takes everything. Returns 1 when nothing was
  /// delivered. Pass the data-user id range to judge data fairness.
  double jain_fairness_index(std::size_t first, std::size_t last) const;

  /// Total uplink transmit energy across all devices, joules.
  double total_energy_j() const;
  /// Millijoules of transmit energy per successfully delivered packet
  /// (voice + data); 0 when nothing was delivered.
  double energy_per_delivered_packet_mj() const;
  /// Fraction of transmit energy that delivered nothing.
  double energy_waste_ratio() const;
};

}  // namespace charisma::mac
