// Scenario description for one simulation run: user population, traffic,
// radio environment and PHY operating point. The same ScenarioParams feeds
// all six protocols, realizing the paper's "common simulation platform".
#pragma once

#include <cstdint>

#include "channel/user_channel.hpp"
#include "common/rng.hpp"
#include "mac/barring.hpp"
#include "mac/energy.hpp"
#include "mac/geometry.hpp"
#include "phy/adaptive_phy.hpp"

namespace charisma::mac {

struct ScenarioParams {
  // Population (paper: N_v voice users, N_d data users).
  int num_voice_users = 0;
  int num_data_users = 0;

  /// Whether the base station keeps a request queue for requests that
  /// survive contention but get no information slot (paper §4.5).
  bool request_queue = true;

  std::uint64_t seed = 1;

  FrameGeometry geometry{};
  channel::ChannelConfig channel{};
  phy::PhyConfig phy{};

  /// Design point (dB) of the fixed-throughput PHY used by the
  /// non-adaptive baselines (DESIGN.md calibration).
  double fixed_phy_reference_db = 9.75;

  // Traffic model (paper §2).
  double mean_talkspurt_s = 1.0;
  double mean_silence_s = 1.35;
  double mean_data_interarrival_s = 1.0;
  double mean_burst_packets = 100.0;

  // Markov-modulated (two-state) data arrivals beyond the plain Poisson
  // bursts: in the high state bursts arrive mmpp_rate_ratio times faster;
  // state sojourns are exponential with the given mean. ratio = 1 or
  // sojourn = 0 disables modulation (no extra RNG draws; legacy results
  // stay bit-identical).
  double data_mmpp_rate_ratio = 1.0;
  double data_mmpp_mean_sojourn_s = 0.0;

  /// Closed-loop access-class barring (overload survival; off by default —
  /// the disabled path preserves every legacy result bit for bit).
  BarringConfig barring{};

  /// Demand-driven channel materialization (off by default — eager
  /// advancement preserves every legacy result bit for bit). When on, the
  /// per-frame bank pass becomes an O(1) clock move and only touched/read
  /// users pay jumps: statistically exact (the closed-form jump is the
  /// k-step AR(1)/OU composition) and invariant to thread count, strip
  /// width and touch batching, but a different realization than eager —
  /// a k-jump consumes one innovation set where k unit steps consume k.
  bool lazy_channel = false;

  /// Which generator backs the per-user traffic/MAC streams (kMt — the
  /// default — keeps the historical mt19937_64 streams and reproduces
  /// every pinned sequence and golden metric bit for bit; kCompact swaps
  /// in ~24-byte splitmix64-counter streams, collapsing the per-attached-
  /// user RNG footprint by two orders of magnitude at the price of a
  /// different — statistically equivalent — realization, like lazy_channel).
  /// Channel and base-station streams are unaffected either way.
  common::RngKind traffic_rng = common::RngKind::kMt;

  /// Sparse presence (CellularWorld): when true the engine starts with an
  /// *empty* population and the world admits users into each cell's band
  /// on demand (ProtocolEngine::band_admit). false — the historical
  /// behaviour — materializes the full population at construction.
  bool defer_population = false;

  // Request contention model (paper §2): permission probabilities.
  double voice_permission_prob = 0.3;
  double data_permission_prob = 0.2;

  // CSI estimation (paper §4.4): pilot-based estimates carry log-domain
  // noise and stay valid for two frames.
  double csi_error_sigma_db = 0.5;
  int csi_validity_frames = 2;

  /// Per-user link-budget disparity: each device's mean SNR is offset by a
  /// fixed N(0, snr_spread_db) draw — the "geographically scattered mobile
  /// devices ... suffer from different degrees of fading and shadowing"
  /// of §1. 0 = homogeneous cell (the figure benches' default); > 0
  /// exercises the capacity-fair scheduling extension (§6 / [22]).
  double snr_spread_db = 0.0;

  /// Mobile-device transmit-energy model (paper §1, motivation 2).
  EnergyModel energy{};

  /// Probability that a downlink acknowledgment is lost, in which case the
  /// device never learns its request succeeded and retries (paper §4.1's
  /// ACK-timeout path; default off — enable for failure injection).
  double ack_loss_prob = 0.0;

  int total_users() const { return num_voice_users + num_data_users; }

  bool valid() const {
    return num_voice_users >= 0 && num_data_users >= 0 && geometry.valid() &&
           mean_talkspurt_s > 0.0 && mean_silence_s > 0.0 &&
           mean_data_interarrival_s > 0.0 && mean_burst_packets >= 1.0 &&
           voice_permission_prob > 0.0 && voice_permission_prob <= 1.0 &&
           data_permission_prob > 0.0 && data_permission_prob <= 1.0 &&
           csi_error_sigma_db >= 0.0 && csi_validity_frames > 0 &&
           snr_spread_db >= 0.0 && energy.tx_power_w >= 0.0 &&
           ack_loss_prob >= 0.0 && ack_loss_prob < 1.0 &&
           data_mmpp_rate_ratio >= 1.0 && data_mmpp_mean_sojourn_s >= 0.0 &&
           barring.valid();
  }
};

}  // namespace charisma::mac
