// Per-cell load estimation for the overload-survival layer. The estimator
// smooths the raw congestion signals a cell already produces every control
// window — attached population, request-phase collision ratio, base-station
// request-queue depth and the inter-cell interference penalty — into an
// EWMA state the BarringController can act on. It runs entirely inside the
// owning cell's engine (share-nothing), so the parallel world stays
// bit-identical to serial.
#pragma once

namespace charisma::mac {

/// One control window's worth of raw congestion signals, frozen by the
/// engine at the window boundary.
struct LoadSignals {
  double attached_users = 0.0;    ///< present population (mean over window)
  double collision_ratio = 0.0;   ///< request collisions / request minislots
  double queue_depth = 0.0;       ///< pending requests at the base station
  double interference_db = 0.0;   ///< last epoch's mean SINR penalty (dB)
};

/// Exponentially-weighted moving average over LoadSignals. alpha in (0, 1]:
/// the weight of the newest window (1 = no memory). The first observation
/// seeds the state directly so a fresh estimator does not drag a zero
/// history through the warmup.
class LoadEstimator {
 public:
  explicit LoadEstimator(double alpha);

  /// Folds one window of raw signals into the smoothed state.
  void observe(const LoadSignals& raw);

  /// The smoothed signal vector (all zeros until the first observe()).
  const LoadSignals& level() const { return level_; }

  /// Scalar congestion index in [0, 1]: the smoothed collision ratio,
  /// inflated when the request queue backs up beyond one pending request
  /// per attached user. This is the BarringController's input.
  double overload_index() const;

  long long windows_observed() const { return windows_; }

 private:
  double alpha_;
  LoadSignals level_{};
  long long windows_ = 0;
};

}  // namespace charisma::mac
