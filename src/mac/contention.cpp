#include "mac/contention.hpp"

#include <stdexcept>

namespace charisma::mac {

ContentionOutcome run_request_phase(
    const std::vector<common::UserId>& candidates, int minislots,
    const std::function<double(common::UserId)>& permission,
    const std::function<common::RngStream&(common::UserId)>& rng_of) {
  if (minislots < 0) {
    throw std::invalid_argument("run_request_phase: negative minislots");
  }
  ContentionOutcome outcome;
  outcome.tally.minislots = minislots;

  // Track candidates by index: `won[i]` removes them from contention,
  // `ever_transmitted[i]` feeds the backoff stabilization.
  std::vector<bool> won(candidates.size(), false);
  std::vector<bool> ever_transmitted(candidates.size(), false);
  std::size_t remaining = candidates.size();

  for (int slot = 0; slot < minislots && remaining > 0; ++slot) {
    std::size_t transmitter_index = candidates.size();
    int transmitted = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (won[i]) continue;
      if (rng_of(candidates[i]).bernoulli(permission(candidates[i]))) {
        ++transmitted;
        transmitter_index = i;
        ever_transmitted[i] = true;
      }
    }
    outcome.tally.transmissions += transmitted;
    if (transmitted == 1) {
      ++outcome.tally.successes;
      outcome.winners.push_back(candidates[transmitter_index]);
      won[transmitter_index] = true;
      --remaining;
    } else if (transmitted > 1) {
      ++outcome.tally.collisions;
    } else {
      ++outcome.tally.idle;
    }
  }
  // Minislots after the candidate pool empties are idle.
  outcome.tally.idle +=
      minislots - outcome.tally.successes - outcome.tally.collisions -
      outcome.tally.idle;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (ever_transmitted[i]) outcome.transmitted.push_back(candidates[i]);
  }
  return outcome;
}

}  // namespace charisma::mac
