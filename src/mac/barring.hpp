// Closed-loop access-class barring (overload survival). The controller
// turns the LoadEstimator's congestion index into per-class admission
// factors that every protocol's contention entry point multiplies into its
// candidate admission: a user barred this frame simply does not contend.
// The control law is multiplicative-increase / multiplicative-decrease on
// the smoothed collision ratio — the same family as "Measurement-Adaptive
// Cellular Random Access Protocols" (PAPERS.md) — with voice barred more
// gently than data (the paper's voice-priority stance).
#pragma once

namespace charisma::mac {

class LoadEstimator;

struct BarringConfig {
  /// Off by default: the disabled path draws no RNG and touches no metrics,
  /// so every legacy result is preserved bit for bit.
  bool enabled = false;

  /// Congestion band (LoadEstimator::overload_index). Above `target_high`
  /// the controller tightens; below `target_low` it relaxes; inside the
  /// band it holds — the hysteresis that stops limit-cycling.
  double target_high = 0.40;
  double target_low = 0.12;

  /// Multiplicative steps: tighten factor *= step_down, relax
  /// factor *= step_up (clamped to [min_factor, 1]).
  double step_down = 0.70;
  double step_up = 1.18;

  /// Floor of the common admission factor (data may sit on it; voice has
  /// its own, higher floor so a starved cell can still admit talkspurts).
  double min_factor = 1.0 / 128.0;
  double voice_floor = 1.0 / 16.0;

  /// Data is barred harder than voice: data factor = factor^exponent.
  double data_exponent = 2.0;

  /// Control-window length in frames (one LoadEstimator observation and
  /// one controller step per window).
  int update_interval_frames = 8;

  /// LoadEstimator smoothing weight for the newest window.
  double ewma_alpha = 0.35;

  bool valid() const {
    return target_high > target_low && target_low >= 0.0 &&
           target_high <= 1.0 && step_down > 0.0 && step_down < 1.0 &&
           step_up > 1.0 && min_factor > 0.0 && min_factor <= 1.0 &&
           voice_floor >= min_factor && voice_floor <= 1.0 &&
           data_exponent >= 1.0 && update_interval_frames > 0 &&
           ewma_alpha > 0.0 && ewma_alpha <= 1.0;
  }
};

class BarringController {
 public:
  explicit BarringController(const BarringConfig& cfg);

  /// One control step from the estimator's current congestion index.
  void update(const LoadEstimator& estimator);

  /// Admission probability applied to voice contention entry, in
  /// [voice_floor, 1]. 1 means voice is not barred (no RNG draw).
  double voice_factor() const;

  /// Admission probability applied to data contention entry, in
  /// [min_factor, 1]. Tracks factor^data_exponent, so data backs off
  /// first and deepest.
  double data_factor() const;

  /// The raw common factor (before class floors) — for tests/benches.
  double raw_factor() const { return factor_; }

 private:
  BarringConfig cfg_;
  double factor_ = 1.0;
};

}  // namespace charisma::mac
