#include "mac/mobile_user.hpp"

namespace charisma::mac {

namespace {
// Stream-id name spaces so a user's channel, source and MAC draws come from
// decorrelated streams.
constexpr std::uint64_t kChannelStream = 0x1000'0000ULL;
constexpr std::uint64_t kSourceStream = 0x2000'0000ULL;
constexpr std::uint64_t kMacStream = 0x3000'0000ULL;
constexpr std::uint64_t kLinkBudgetStream = 0x5000'0000ULL;
// Per-(user, cell) band re-entry counter stream: visit v > 0 re-seeds the
// user's cell-local randomness from derive_seed(seed, kRebirthStream + v).
constexpr std::uint64_t kRebirthStream = 0xA000'0000ULL;

std::uint64_t visit_seed(std::uint64_t seed, std::uint32_t visit) {
  if (visit == 0) return seed;  // first entry: the historical seed, bit for bit
  return common::derive_seed(seed, kRebirthStream + visit);
}

// The user's radio environment: the shared cell configuration plus this
// device's fixed link-budget offset (position in the cell). The offset is
// a static property of the user, so it always derives from the *plain*
// scenario seed — a band re-entry must not teleport the device.
channel::ChannelConfig user_channel_config(common::UserId id,
                                           const ScenarioParams& params) {
  channel::ChannelConfig cfg = params.channel;
  if (params.snr_spread_db > 0.0) {
    common::RngStream rng(params.seed,
                          kLinkBudgetStream + static_cast<std::uint64_t>(id));
    cfg.mean_snr_db += rng.normal(0.0, params.snr_spread_db);
  }
  return cfg;
}

channel::UserChannel make_channel(common::UserId id,
                                  const ScenarioParams& params,
                                  std::uint64_t seed,
                                  channel::ChannelBank* bank) {
  const channel::ChannelConfig cfg = user_channel_config(id, params);
  common::RngStream rng(seed,
                        kChannelStream + static_cast<std::uint64_t>(id));
  if (bank != nullptr) {
    return channel::UserChannel(*bank,
                                bank->acquire_user(cfg, std::move(rng)));
  }
  return channel::UserChannel(cfg, std::move(rng));
}
}  // namespace

MobileUser::MobileUser(common::UserId id, ServiceType service,
                       const ScenarioParams& params,
                       channel::ChannelBank* bank)
    : id_(id),
      service_(service),
      seed_(params.seed),
      channel_(make_channel(id, params, params.seed, bank)) {
  ensure_traffic(params);
}

MobileUser::MobileUser(common::UserId id, ServiceType service,
                       const ScenarioParams& params,
                       channel::ChannelBank& bank, std::uint32_t visit)
    : present_(false),
      id_(id),
      service_(service),
      seed_(visit_seed(params.seed, visit)),
      channel_(make_channel(id, params, seed_, &bank)) {}

void MobileUser::ensure_traffic(const ScenarioParams& params) {
  if (!rng_.has_value()) {
    rng_.emplace(params.traffic_rng, seed_,
                 kMacStream + static_cast<std::uint64_t>(id_));
  }
  if (voice_ != nullptr || data_ != nullptr) return;  // adopted on handoff
  common::TrafficRng source_rng(params.traffic_rng, seed_,
                                kSourceStream + static_cast<std::uint64_t>(id_));
  if (service_ == ServiceType::kVoice) {
    traffic::VoiceSourceConfig cfg;
    cfg.mean_talkspurt_s = params.mean_talkspurt_s;
    cfg.mean_silence_s = params.mean_silence_s;
    cfg.voice_period = params.geometry.voice_period();
    cfg.deadline = params.geometry.voice_period();
    voice_ = std::make_unique<traffic::VoiceSource>(cfg, std::move(source_rng));
  } else {
    traffic::DataSourceConfig cfg;
    cfg.mean_interarrival_s = params.mean_data_interarrival_s;
    cfg.mean_burst_packets = params.mean_burst_packets;
    cfg.frame_duration = params.geometry.frame_duration;
    cfg.mmpp_rate_ratio = params.data_mmpp_rate_ratio;
    cfg.mmpp_mean_sojourn_s = params.data_mmpp_mean_sojourn_s;
    data_ = std::make_unique<traffic::DataSource>(cfg, std::move(source_rng));
  }
}

}  // namespace charisma::mac
