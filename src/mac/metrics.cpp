#include "mac/metrics.hpp"

#include <algorithm>

namespace charisma::mac {

namespace {
double safe_div(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

void ProtocolMetrics::merge(const ProtocolMetrics& other) {
  frames += other.frames;
  measured_time = std::max(measured_time, other.measured_time);
  voice_generated += other.voice_generated;
  voice_delivered += other.voice_delivered;
  voice_dropped_deadline += other.voice_dropped_deadline;
  voice_error_lost += other.voice_error_lost;
  data_generated += other.data_generated;
  data_delivered += other.data_delivered;
  data_tx_attempts += other.data_tx_attempts;
  data_retransmissions += other.data_retransmissions;
  data_delay_s.merge(other.data_delay_s);
  data_delay_hist.merge(other.data_delay_hist);
  handoffs_in += other.handoffs_in;
  handoffs_out += other.handoffs_out;
  voice_dropped_handoff += other.voice_dropped_handoff;
  attached_user_frames += other.attached_user_frames;
  outage_evictions += other.outage_evictions;
  voice_dropped_outage += other.voice_dropped_outage;
  barring_checks += other.barring_checks;
  barring_barred_voice += other.barring_barred_voice;
  barring_barred_data += other.barring_barred_data;
  barring_factor_voice.merge(other.barring_factor_voice);
  barring_factor_data.merge(other.barring_factor_data);
  interference_db.merge(other.interference_db);
  request_slots += other.request_slots;
  request_successes += other.request_successes;
  request_collisions += other.request_collisions;
  request_idle += other.request_idle;
  info_slots_offered += other.info_slots_offered;
  info_slots_assigned += other.info_slots_assigned;
  info_slots_wasted += other.info_slots_wasted;
  csi_polls += other.csi_polls;
  csi_stale_allocations += other.csi_stale_allocations;
  acks_lost += other.acks_lost;
  users_advanced_frames += other.users_advanced_frames;
  users_skipped_frames += other.users_skipped_frames;
  energy_request_j += other.energy_request_j;
  energy_info_j += other.energy_info_j;
  energy_pilot_j += other.energy_pilot_j;
  energy_wasted_j += other.energy_wasted_j;
  if (per_user_delivered.size() < other.per_user_delivered.size()) {
    per_user_delivered.resize(other.per_user_delivered.size(), 0);
  }
  for (std::size_t i = 0; i < other.per_user_delivered.size(); ++i) {
    per_user_delivered[i] += other.per_user_delivered[i];
  }
}

double ProtocolMetrics::voice_loss_rate() const {
  return safe_div(
      static_cast<double>(voice_dropped_deadline + voice_error_lost +
                          voice_dropped_handoff + voice_dropped_outage),
      static_cast<double>(voice_generated));
}

double ProtocolMetrics::voice_drop_rate() const {
  return safe_div(static_cast<double>(voice_dropped_deadline),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::voice_error_rate() const {
  return safe_div(static_cast<double>(voice_error_lost),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::data_throughput_per_frame() const {
  return safe_div(static_cast<double>(data_delivered),
                  static_cast<double>(frames));
}

double ProtocolMetrics::mean_data_delay_s() const {
  return data_delay_s.mean();
}

double ProtocolMetrics::request_success_ratio() const {
  return safe_div(static_cast<double>(request_successes),
                  static_cast<double>(request_slots));
}

double ProtocolMetrics::slot_utilization() const {
  return safe_div(static_cast<double>(info_slots_assigned),
                  static_cast<double>(info_slots_offered));
}

double ProtocolMetrics::slot_waste_ratio() const {
  return safe_div(static_cast<double>(info_slots_wasted),
                  static_cast<double>(info_slots_offered));
}

double ProtocolMetrics::voice_handoff_drop_rate() const {
  return safe_div(static_cast<double>(voice_dropped_handoff),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::voice_outage_drop_rate() const {
  return safe_div(static_cast<double>(voice_dropped_outage),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::effective_barring_probability() const {
  return safe_div(
      static_cast<double>(barring_barred_voice + barring_barred_data),
      static_cast<double>(barring_checks));
}

double ProtocolMetrics::mean_attached_users() const {
  return safe_div(static_cast<double>(attached_user_frames),
                  static_cast<double>(frames));
}

double ProtocolMetrics::mean_interference_db() const {
  return interference_db.count() > 0 ? interference_db.mean() : 0.0;
}

double ProtocolMetrics::mean_materialization_stride() const {
  return safe_div(
      static_cast<double>(users_advanced_frames + users_skipped_frames),
      static_cast<double>(users_advanced_frames));
}

double ProtocolMetrics::skipped_user_frame_fraction() const {
  return safe_div(
      static_cast<double>(users_skipped_frames),
      static_cast<double>(users_advanced_frames + users_skipped_frames));
}

double ProtocolMetrics::handoff_rate_hz() const {
  return safe_div(static_cast<double>(handoffs_out), measured_time);
}

double ProtocolMetrics::jain_fairness_index(std::size_t first,
                                            std::size_t last) const {
  if (per_user_delivered.empty() || first > last ||
      last >= per_user_delivered.size()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  const auto n = static_cast<double>(last - first + 1);
  for (std::size_t i = first; i <= last; ++i) {
    const auto x = static_cast<double>(per_user_delivered[i]);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (n * sum_sq);
}

double ProtocolMetrics::total_energy_j() const {
  return energy_request_j + energy_info_j + energy_pilot_j;
}

double ProtocolMetrics::energy_per_delivered_packet_mj() const {
  return 1e3 * safe_div(total_energy_j(),
                        static_cast<double>(voice_delivered + data_delivered));
}

double ProtocolMetrics::energy_waste_ratio() const {
  return safe_div(energy_wasted_j, total_energy_j());
}

}  // namespace charisma::mac
