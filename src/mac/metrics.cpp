#include "mac/metrics.hpp"

namespace charisma::mac {

namespace {
double safe_div(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

double ProtocolMetrics::voice_loss_rate() const {
  return safe_div(
      static_cast<double>(voice_dropped_deadline + voice_error_lost),
      static_cast<double>(voice_generated));
}

double ProtocolMetrics::voice_drop_rate() const {
  return safe_div(static_cast<double>(voice_dropped_deadline),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::voice_error_rate() const {
  return safe_div(static_cast<double>(voice_error_lost),
                  static_cast<double>(voice_generated));
}

double ProtocolMetrics::data_throughput_per_frame() const {
  return safe_div(static_cast<double>(data_delivered),
                  static_cast<double>(frames));
}

double ProtocolMetrics::mean_data_delay_s() const {
  return data_delay_s.mean();
}

double ProtocolMetrics::request_success_ratio() const {
  return safe_div(static_cast<double>(request_successes),
                  static_cast<double>(request_slots));
}

double ProtocolMetrics::slot_utilization() const {
  return safe_div(static_cast<double>(info_slots_assigned),
                  static_cast<double>(info_slots_offered));
}

double ProtocolMetrics::slot_waste_ratio() const {
  return safe_div(static_cast<double>(info_slots_wasted),
                  static_cast<double>(info_slots_offered));
}

double ProtocolMetrics::jain_fairness_index(std::size_t first,
                                            std::size_t last) const {
  if (per_user_delivered.empty() || first > last ||
      last >= per_user_delivered.size()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  const auto n = static_cast<double>(last - first + 1);
  for (std::size_t i = first; i <= last; ++i) {
    const auto x = static_cast<double>(per_user_delivered[i]);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (n * sum_sq);
}

double ProtocolMetrics::total_energy_j() const {
  return energy_request_j + energy_info_j + energy_pilot_j;
}

double ProtocolMetrics::energy_per_delivered_packet_mj() const {
  return 1e3 * safe_div(total_energy_j(),
                        static_cast<double>(voice_delivered + data_delivered));
}

double ProtocolMetrics::energy_waste_ratio() const {
  return safe_div(energy_wasted_j, total_energy_j());
}

}  // namespace charisma::mac
