#include "mac/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace charisma::mac {

MobilityModel::MobilityModel(const MobilityConfig& config, int num_users,
                             common::RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  if (!config.valid() || num_users < 0) {
    throw std::invalid_argument("MobilityModel: invalid configuration");
  }
  users_.resize(static_cast<std::size_t>(num_users));
  for (auto& u : users_) {
    u.pos = {rng_.uniform(0.0, config_.field_width_m),
             rng_.uniform(0.0, config_.field_height_m)};
    if (config_.model == MobilityConfig::Model::kConstantVelocity) {
      const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
      u.vel = {config_.speed_mps * std::cos(heading),
               config_.speed_mps * std::sin(heading)};
    } else {
      pick_waypoint(u);
    }
  }
}

void MobilityModel::advance_to(common::Time t) {
  if (t < now_) {
    throw std::logic_error("MobilityModel::advance_to: time went backwards");
  }
  const common::Time dt = t - now_;
  if (dt <= 0.0 || config_.speed_mps <= 0.0) {
    now_ = t;
    return;
  }
  for (auto& u : users_) {
    if (config_.model == MobilityConfig::Model::kConstantVelocity) {
      advance_constant_velocity(u, dt);
    } else {
      advance_random_waypoint(u, now_, dt);
    }
  }
  now_ = t;
}

void MobilityModel::advance_constant_velocity(UserState& u, common::Time dt) {
  // Specular reflection: fold the unbounded straight-line position back
  // into the field. One axis at a time; each fold flips the velocity sign.
  auto reflect = [](double& x, double& v, double span) {
    // Fold into [0, 2*span) then mirror the upper half.
    x = std::fmod(x, 2.0 * span);
    if (x < 0.0) x += 2.0 * span;
    if (x >= span) {
      x = 2.0 * span - x;
      v = -v;
    }
  };
  u.pos.x += u.vel.x * dt;
  u.pos.y += u.vel.y * dt;
  reflect(u.pos.x, u.vel.x, config_.field_width_m);
  reflect(u.pos.y, u.vel.y, config_.field_height_m);
}

void MobilityModel::advance_random_waypoint(UserState& u, common::Time now,
                                            common::Time dt) {
  common::Time remaining = dt;
  common::Time t = now;
  walk_random_waypoint(u, t, remaining, /*allow_draw=*/true);
}

bool MobilityModel::walk_random_waypoint(UserState& u, common::Time& t,
                                         common::Time& remaining,
                                         bool allow_draw) {
  // Segment walk: pause -> leg to waypoint -> new waypoint, consuming the
  // epoch in pieces (an epoch can span several short legs).
  while (remaining > 0.0) {
    if (t < u.pause_until) {
      const common::Time wait = std::min(remaining, u.pause_until - t);
      t += wait;
      remaining -= wait;
      continue;
    }
    const double leg = distance_m(u.pos, u.waypoint);
    if (leg <= 1e-9) {
      if (!allow_draw) return false;  // suspend: (t, remaining) resumable
      pick_waypoint(u);
      if (config_.pause_s > 0.0) {
        u.pause_until = t + config_.pause_s;
        u.vel = {0.0, 0.0};
      }
      continue;
    }
    const common::Time travel = leg / config_.speed_mps;
    const double ux = (u.waypoint.x - u.pos.x) / leg;
    const double uy = (u.waypoint.y - u.pos.y) / leg;
    u.vel = {config_.speed_mps * ux, config_.speed_mps * uy};
    if (travel <= remaining) {
      u.pos = u.waypoint;
      t += travel;
      remaining -= travel;
    } else {
      u.pos.x += u.vel.x * remaining;
      u.pos.y += u.vel.y * remaining;
      remaining = 0.0;
    }
  }
  return true;
}

void MobilityModel::advance_span(common::Time t, int begin, int end,
                                 std::vector<Suspended>& out) {
  if (t < now_) {
    throw std::logic_error("MobilityModel::advance_span: time went backwards");
  }
  const common::Time dt = t - now_;
  if (dt <= 0.0 || config_.speed_mps <= 0.0) return;  // commit() moves now_
  begin = std::max(begin, 0);
  end = std::min(end, static_cast<int>(users_.size()));
  for (int i = begin; i < end; ++i) {
    UserState& u = users_[static_cast<std::size_t>(i)];
    if (config_.model == MobilityConfig::Model::kConstantVelocity) {
      advance_constant_velocity(u, dt);  // draw-free, always completes
      continue;
    }
    common::Time walk_t = now_;
    common::Time remaining = dt;
    if (!walk_random_waypoint(u, walk_t, remaining, /*allow_draw=*/false)) {
      out.push_back(Suspended{i, walk_t, remaining});
    }
  }
}

void MobilityModel::resume(const std::vector<Suspended>& suspended) {
  for (const Suspended& s : suspended) {
    common::Time t = s.t;
    common::Time remaining = s.remaining;
    walk_random_waypoint(users_[static_cast<std::size_t>(s.user)], t,
                         remaining, /*allow_draw=*/true);
  }
}

void MobilityModel::commit(common::Time t) {
  if (t < now_) {
    throw std::logic_error("MobilityModel::commit: time went backwards");
  }
  now_ = t;
}

void MobilityModel::pick_waypoint(UserState& u) {
  u.waypoint = {rng_.uniform(0.0, config_.field_width_m),
                rng_.uniform(0.0, config_.field_height_m)};
}

Vec2 MobilityModel::position(int user) const {
  return users_.at(static_cast<std::size_t>(user)).pos;
}

Vec2 MobilityModel::velocity(int user) const {
  const auto& u = users_.at(static_cast<std::size_t>(user));
  if (config_.model == MobilityConfig::Model::kRandomWaypoint &&
      now_ < u.pause_until) {
    return {0.0, 0.0};
  }
  return u.vel;
}

}  // namespace charisma::mac
