#include "mac/reservation.hpp"

#include <stdexcept>

namespace charisma::mac {

ReservationGrid::ReservationGrid(int phases, int slots_per_phase)
    : slots_per_phase_(slots_per_phase) {
  if (phases <= 0 || slots_per_phase <= 0) {
    throw std::invalid_argument("ReservationGrid: invalid dimensions");
  }
  grid_.assign(static_cast<std::size_t>(phases),
               std::vector<common::UserId>(
                   static_cast<std::size_t>(slots_per_phase), common::kNoUser));
}

std::optional<int> ReservationGrid::reserve(int phase, common::UserId user) {
  if (phase < 0 || phase >= phases()) {
    throw std::out_of_range("ReservationGrid::reserve: bad phase");
  }
  if (by_user_.count(user) > 0) return std::nullopt;
  auto& row = grid_[static_cast<std::size_t>(phase)];
  for (int s = 0; s < slots_per_phase_; ++s) {
    if (row[static_cast<std::size_t>(s)] == common::kNoUser) {
      row[static_cast<std::size_t>(s)] = user;
      by_user_[user] = Position{phase, s};
      return s;
    }
  }
  return std::nullopt;
}

bool ReservationGrid::reserve_at(int phase, int slot, common::UserId user) {
  if (phase < 0 || phase >= phases() || slot < 0 || slot >= slots_per_phase_) {
    throw std::out_of_range("ReservationGrid::reserve_at: bad position");
  }
  if (by_user_.count(user) > 0) return false;
  auto& cell = grid_[static_cast<std::size_t>(phase)][static_cast<std::size_t>(slot)];
  if (cell != common::kNoUser) return false;
  cell = user;
  by_user_[user] = Position{phase, slot};
  return true;
}

void ReservationGrid::release(common::UserId user) {
  auto it = by_user_.find(user);
  if (it == by_user_.end()) return;
  grid_[static_cast<std::size_t>(it->second.phase)]
       [static_cast<std::size_t>(it->second.slot)] = common::kNoUser;
  by_user_.erase(it);
}

bool ReservationGrid::has_reservation(common::UserId user) const {
  return by_user_.count(user) > 0;
}

std::optional<ReservationGrid::Position> ReservationGrid::position(
    common::UserId user) const {
  auto it = by_user_.find(user);
  if (it == by_user_.end()) return std::nullopt;
  return it->second;
}

std::vector<common::UserId> ReservationGrid::due_in_phase(int phase) const {
  if (phase < 0 || phase >= phases()) {
    throw std::out_of_range("ReservationGrid::due_in_phase: bad phase");
  }
  std::vector<common::UserId> due;
  for (common::UserId u : grid_[static_cast<std::size_t>(phase)]) {
    if (u != common::kNoUser) due.push_back(u);
  }
  return due;
}

common::UserId ReservationGrid::user_at(int phase, int slot) const {
  if (phase < 0 || phase >= phases() || slot < 0 || slot >= slots_per_phase_) {
    throw std::out_of_range("ReservationGrid::user_at: bad position");
  }
  return grid_[static_cast<std::size_t>(phase)][static_cast<std::size_t>(slot)];
}

int ReservationGrid::occupied_in_phase(int phase) const {
  return static_cast<int>(due_in_phase(phase).size());
}

int ReservationGrid::free_in_phase(int phase) const {
  return slots_per_phase_ - occupied_in_phase(phase);
}

}  // namespace charisma::mac
