#include "mac/cellular_world.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/math.hpp"
#include "mac/attachment.hpp"

namespace charisma::mac {

namespace {
// Stream-id name spaces (see mobile_user.cpp for the per-user ones).
constexpr std::uint64_t kMobilityStream = 0x8000'0000ULL;
constexpr std::uint64_t kCellSeedStream = 0x9000'0000ULL;
constexpr double kTimeEps = 1e-9;
constexpr double kLn10 = 2.302585092994046;
/// Pilot level of a dark cell: far below any real link budget, so neither
/// the hysteresis rule nor the initial argmax ever selects it.
constexpr double kDarkPilotDb = -1.0e9;

/// Scoped accumulator for the epoch-loop wall-clock split.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& bucket)
      : bucket_(bucket), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    bucket_ += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& bucket_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

CellularWorld::CellularWorld(const CellularConfig& config,
                             const EngineFactory& factory)
    : config_(config),
      mobility_(config.mobility, config.params.total_users(),
                common::RngStream(config.params.seed, kMobilityStream)) {
  if (!config.valid()) {
    throw std::invalid_argument("CellularWorld: invalid configuration");
  }
  if (!factory) {
    throw std::invalid_argument("CellularWorld: null engine factory");
  }
  layout_ = SiteLayout(config_.layout, config_.num_cells,
                       config_.mobility.field_width_m,
                       config_.mobility.field_height_m);
  cochannel_.reserve(static_cast<std::size_t>(config_.num_cells));
  for (int c = 0; c < config_.num_cells; ++c) {
    cochannel_.push_back(layout_.co_channel_interferers(c));
  }
  cells_.reserve(static_cast<std::size_t>(config_.num_cells));
  for (int c = 0; c < config_.num_cells; ++c) {
    // Decorrelated sub-seed per cell: the same user's links to different
    // base stations fade and shadow independently (independent sites),
    // which is precisely the diversity a handoff exploits.
    ScenarioParams cell_params = config_.params;
    cell_params.seed = common::derive_seed(
        config_.params.seed, kCellSeedStream + static_cast<std::uint64_t>(c));
    if (config_.shadow_decorrelation_m > 0.0 &&
        config_.mobility.speed_mps > 0.0) {
      // Shadowing decorrelates over distance travelled, not wall time.
      cell_params.channel.shadow_tau =
          config_.shadow_decorrelation_m / config_.mobility.speed_mps;
    }
    // Engines start empty; the world admits each cell's pilot band below
    // (update_bands), so per-cell state scales with band occupancy.
    cell_params.defer_population = true;
    auto engine = factory(cell_params);
    if (!engine) {
      throw std::invalid_argument("CellularWorld: factory returned null");
    }
    cells_.push_back(std::move(engine));
  }
  pilot_alpha_ =
      1.0 - std::exp(-config_.decision_interval / config_.pilot_filter_tau);

  // Hoist the path-loss log10 into the per-site closed form
  //   db(d) = C - (K/2) * ln(max(d, d_min)²)
  // with C = mean_db + K * ln(d0) and K = 10 n / ln 10. Squared distances
  // feed the ln directly, so the epoch plane pays neither sqrt nor log10.
  const double k = 10.0 * config_.path_loss_exponent / kLn10;
  path_loss_half_k_ = 0.5 * k;
  path_loss_c_db_ = config_.params.channel.mean_snr_db +
                    k * std::log(config_.reference_distance_m);
  min_distance_sq_m2_ = config_.min_distance_m * config_.min_distance_m;

  unsigned threads = config_.num_threads == 0
                         ? std::thread::hardware_concurrency()
                         : config_.num_threads;
  if (threads == 0) threads = 1;  // hardware_concurrency may report 0
  // Shard resolution: 0 = match the requested thread count (so a parallel
  // world shards its coordinator plane by default), clamped to the
  // population — an empty shard would never refresh its proposal arena.
  const auto users_u =
      static_cast<unsigned>(std::max(1, config_.params.total_users()));
  num_shards_ = config_.num_shards == 0 ? threads : config_.num_shards;
  num_shards_ = std::min(std::max(num_shards_, 1u), users_u);
  // A round never has more indices than max(cells, shards); surplus
  // workers would only be woken twice per epoch to claim nothing.
  threads = std::min(
      threads, std::max(static_cast<unsigned>(config_.num_cells), num_shards_));
  if (threads > 1) {
    pool_ = std::make_unique<experiment::WorkerPool>(threads);
  }
  // With spare workers (threads > cells) and an eager bank, each cell's
  // plane task splits into contiguous row strips. A lazy bank keeps one
  // task per cell: reading it back materializes deferred rows, which
  // mutates shared bank state.
  if (pool_ && !cells_[0]->channel_bank().lazy()) {
    plane_strips_ = std::max(
        1, static_cast<int>(pool_->thread_count()) / config_.num_cells);
  }

  const auto users = static_cast<std::size_t>(config_.params.total_users());
  site_index_.rebuild(layout_, config_.pilot_band_radius_m);
  attached_.assign(users, 0);
  band_.assign(users, {});
  shard_arenas_.resize(num_shards_);
  plane_rows_.assign(static_cast<std::size_t>(config_.num_cells), {});
  attach_counts_.assign(static_cast<std::size_t>(config_.num_cells), 0);
  cell_load_.assign(static_cast<std::size_t>(config_.num_cells), 0.0);
  if (interference_enabled()) {
    interference_rows_.assign(static_cast<std::size_t>(config_.num_cells), {});
  }
  if (!config_.outages.empty()) {
    dark_.assign(static_cast<std::size_t>(config_.num_cells), 0);
    prev_dark_ = dark_;
    update_outage_flags(0.0);
    prev_dark_ = dark_;  // no recovery transition at t = 0
  }
  // Admit the initial bands (attachment does not exist yet, so geometry
  // alone decides membership), then take the first pilot snapshot — it
  // sees zero loads (nobody is attached yet); initialize_attachments then
  // seeds the loads the first epoch uses.
  update_bands(/*include_attached=*/false);
  resize_plane_rows();
  update_snr_planes();
  initialize_attachments();
  update_cell_loads();
}

int CellularWorld::attached_count(int c) const {
  const int n = attach_counts_.at(static_cast<std::size_t>(c));
#ifndef NDEBUG
  int scan = 0;
  for (const int cell : attached_) scan += cell == c ? 1 : 0;
  assert(scan == n && "attach_counts_ out of sync with attached_");
#endif
  return n;
}

std::vector<int> CellularWorld::band_cells(common::UserId user) const {
  std::vector<int> out;
  const auto& band = band_.at(static_cast<std::size_t>(user));
  out.reserve(band.size());
  for (const BandPilot& e : band) out.push_back(e.cell);
  return out;
}

void CellularWorld::for_each_user_shard(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t users = attached_.size();
  if (pool_) {
    pool_->for_each_range(users, num_shards_, fn);
  } else {
    // Same decomposition formula as WorkerPool::for_each_range, so the
    // shard boundaries — and with them the proposal arenas — never depend
    // on whether a pool exists.
    const std::size_t shards = std::min<std::size_t>(num_shards_, users);
    for (std::size_t s = 0; s < shards; ++s) {
      fn(s, s * users / shards, (s + 1) * users / shards);
    }
  }
}

void CellularWorld::advance_mobility(common::Time t) {
  // Phase A (sharded): walk every trajectory draw-free, suspending
  // random-waypoint arrivals with their exact walk state.
  for_each_user_shard([this, t](std::size_t s, std::size_t begin,
                                std::size_t end) {
    auto& arena = shard_arenas_[s];
    arena.suspended.clear();
    mobility_.advance_span(t, static_cast<int>(begin), static_cast<int>(end),
                           arena.suspended);
  });
  // Phase B (coordinator): finish the suspended walks in ascending user
  // order — shards cover ascending contiguous ranges, so arena order is
  // user order — consuming the shared stream exactly as serial advance_to
  // would.
  for (auto& arena : shard_arenas_) {
    mobility_.resume(arena.suspended);
  }
  mobility_.commit(t);
}

void CellularWorld::propose_bands(bool include_attached) {
  for_each_user_shard([this, include_attached](std::size_t s,
                                               std::size_t begin,
                                               std::size_t end) {
    auto& arena = shard_arenas_[s];
    arena.band_cells.clear();
    arena.band_offsets.clear();
    arena.band_offsets.push_back(0);
    for (std::size_t u = begin; u < end; ++u) {
      const std::size_t tail = arena.band_cells.size();
      site_index_.cells_near(mobility_.position(static_cast<int>(u)),
                             arena.band_cells, arena.mark_scratch);
      if (include_attached) {
        // The attached cell is pinned into the band whatever the geometry
        // says: presence must never be released out from under the user.
        const int a = attached_[u];
        const auto first =
            arena.band_cells.begin() + static_cast<std::ptrdiff_t>(tail);
        const auto it = std::lower_bound(first, arena.band_cells.end(), a);
        if (it == arena.band_cells.end() || *it != a) {
          arena.band_cells.insert(it, a);
        }
      }
      arena.band_offsets.push_back(
          static_cast<std::uint32_t>(arena.band_cells.size()));
    }
  });
}

void CellularWorld::apply_band_proposals() {
  // Coordinator merge, ascending user id throughout: every engine sees
  // admits and releases in the same deterministic sequence regardless of
  // shard or thread count, so the banks' free lists — and with them every
  // later draw — are bit-identical between serial and parallel runs.
  const std::size_t users = attached_.size();
  const std::size_t shards = std::min<std::size_t>(num_shards_, users);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto& arena = shard_arenas_[s];
    const std::size_t begin = s * users / shards;
    const std::size_t end = (s + 1) * users / shards;
    for (std::size_t u = begin; u < end; ++u) {
      const std::size_t k = u - begin;
      const std::uint32_t lo = arena.band_offsets[k];
      const std::uint32_t hi = arena.band_offsets[k + 1];
      update_user_band(static_cast<int>(u),
                       {arena.band_cells.data() + lo, hi - lo});
    }
  }
}

void CellularWorld::update_user_band(int u, std::span<const int> cells) {
  auto& band = band_[static_cast<std::size_t>(u)];
  // Two-pointer diff old band vs. new cell set (both ascending).
  band_scratch_.clear();
  std::size_t i = 0;
  const auto uid = static_cast<common::UserId>(u);
  for (const int c : cells) {
    while (i < band.size() && band[i].cell < c) {
      cells_[static_cast<std::size_t>(band[i].cell)]->band_release(uid);
      ++i;
    }
    if (i < band.size() && band[i].cell == c) {
      band_scratch_.push_back(band[i]);  // staying: keep the filter state
      ++i;
    } else {
      MobileUser& mu =
          cells_[static_cast<std::size_t>(c)]->band_admit(uid, false);
      band_scratch_.push_back(BandPilot{
          c, static_cast<std::uint32_t>(mu.channel().index()), 0.0, true});
    }
  }
  while (i < band.size()) {
    cells_[static_cast<std::size_t>(band[i].cell)]->band_release(uid);
    ++i;
  }
  band.swap(band_scratch_);
}

void CellularWorld::update_bands(bool include_attached) {
  propose_bands(include_attached);
  apply_band_proposals();
}

void CellularWorld::resize_plane_rows() {
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::size_t rows = cells_[c]->channel_bank().size();
    if (plane_rows_[c].size() < rows) plane_rows_[c].resize(rows, 0.0);
    if (interference_enabled() && interference_rows_[c].size() < rows) {
      interference_rows_[c].resize(rows, 0.0);
    }
  }
}

bool CellularWorld::is_dark(int c, common::Time t) const {
  for (const auto& o : config_.outages) {
    if (o.cell == c && t >= o.start - kTimeEps && t < o.end - kTimeEps) {
      return true;
    }
  }
  return false;
}

void CellularWorld::update_outage_flags(common::Time t) {
  if (dark_.empty()) return;
  prev_dark_ = dark_;
  for (int c = 0; c < config_.num_cells; ++c) {
    dark_[static_cast<std::size_t>(c)] = is_dark(c, t) ? 1 : 0;
  }
}

double CellularWorld::mean_snr_at_distance_db(double d_m) const {
  const double d_sq = std::max(d_m * d_m, min_distance_sq_m2_);
  return path_loss_c_db_ - path_loss_half_k_ * std::log(d_sq);
}

void CellularWorld::for_each_cell(const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->for_each(cells_.size(), fn);
  } else {
    for (std::size_t c = 0; c < cells_.size(); ++c) fn(c);
  }
}

void CellularWorld::update_cell_snr_plane(int c) {
  // Share-nothing per-cell task: touches only this cell's bank and plane
  // rows, reading the (quiescent) mobility positions, band memberships
  // and the coordinator-frozen load vector. Work is O(band), never
  // users × cells. With the interference plane on, each member's SINR
  // penalty is computed directly here — each (user, interferer) term
  // recomputed in place with the dense world's exact expressions in the
  // same ascending order, so collapsing its stage-then-sum two-phase
  // split changes no bits.
  auto& cell = *cells_[static_cast<std::size_t>(c)];
  const auto& band = cell.band();
  auto& bank = cell.channel_bank();
  const std::size_t rows = bank.size();
  const bool interf = interference_enabled();
  double* row = plane_rows_[static_cast<std::size_t>(c)].data();
  double* irow =
      interf ? interference_rows_[static_cast<std::size_t>(c)].data()
             : nullptr;
  const std::vector<int>& interferers =
      cochannel_[static_cast<std::size_t>(c)];
  for (const BandMember& m : band) {
    const Vec2 pos = mobility_.position(static_cast<int>(m.id));
    const double d_sq =
        std::max(layout_.distance_sq(pos, c), min_distance_sq_m2_);
    row[m.slot] = path_loss_c_db_ - path_loss_half_k_ * std::log(d_sq);
    if (interf) {
      double inr = 0.0;
      for (const int s : interferers) {
        const double load = cell_load_[static_cast<std::size_t>(s)];
        if (load <= 0.0) continue;
        const double ds =
            std::max(layout_.distance_sq(pos, s), min_distance_sq_m2_);
        const double db = path_loss_c_db_ - path_loss_half_k_ * std::log(ds);
        inr += load * common::from_db(db);
      }
      irow[m.slot] = common::to_db(1.0 + inr);
    }
  }
  // Same per-cell bank-op order as the dense world: mean plane,
  // interference plane, pilot snapshot. The snapshot reads every band
  // member, so under a lazy bank the epoch is a full band re-anchor,
  // bounding any member's deferred-jump stride by the epoch period. A
  // dark cell's bank is still fed the true plane (fading state and draw
  // order must not depend on the outage schedule); only the *broadcast*
  // pilot vanishes, which the blend imposes from the dark flags without
  // ever reading the snapshot. The per-epoch penalty-mean metric is
  // replayed by the coordinator (note_interference_epochs) after the
  // barrier.
  bank.set_mean_snr_db_all({row, rows});
  if (interf) {
    bank.set_interference_db_all({irow, rows});
  }
  bank.snr_db_all({row, rows});
}

void CellularWorld::update_plane_strip(int c, int strip) {
  // Rows [strip, strip+1) of the cell's plane_strips_-way contiguous row
  // partition: the same per-row arithmetic as update_cell_snr_plane,
  // iterated by bank row instead of band member. The occupied rows biject
  // with the band, every write is per-row, and the bank's range APIs skip
  // vacant rows — so the strip count never changes a bit anywhere.
  auto& cell = *cells_[static_cast<std::size_t>(c)];
  auto& bank = cell.channel_bank();
  const std::size_t rows = bank.size();
  const auto strips = static_cast<std::size_t>(plane_strips_);
  const std::size_t r0 = static_cast<std::size_t>(strip) * rows / strips;
  const std::size_t r1 = (static_cast<std::size_t>(strip) + 1) * rows / strips;
  if (r0 == r1) return;
  const bool interf = interference_enabled();
  double* row = plane_rows_[static_cast<std::size_t>(c)].data();
  double* irow =
      interf ? interference_rows_[static_cast<std::size_t>(c)].data()
             : nullptr;
  const std::vector<int>& interferers =
      cochannel_[static_cast<std::size_t>(c)];
  for (std::size_t r = r0; r < r1; ++r) {
    const MobileUser* mu = cell.user_at_slot(r);
    if (mu == nullptr) continue;  // vacant row
    const Vec2 pos = mobility_.position(static_cast<int>(mu->id()));
    const double d_sq =
        std::max(layout_.distance_sq(pos, c), min_distance_sq_m2_);
    row[r] = path_loss_c_db_ - path_loss_half_k_ * std::log(d_sq);
    if (interf) {
      double inr = 0.0;
      for (const int s : interferers) {
        const double load = cell_load_[static_cast<std::size_t>(s)];
        if (load <= 0.0) continue;
        const double ds =
            std::max(layout_.distance_sq(pos, s), min_distance_sq_m2_);
        const double db = path_loss_c_db_ - path_loss_half_k_ * std::log(ds);
        inr += load * common::from_db(db);
      }
      irow[r] = common::to_db(1.0 + inr);
    }
  }
  bank.set_mean_snr_db_range(r0, {row + r0, r1 - r0});
  if (interf) {
    bank.set_interference_db_range(r0, {irow + r0, r1 - r0});
  }
  bank.snr_db_range(r0, {row + r0, r1 - r0});
}

void CellularWorld::note_interference_epochs() {
  if (!interference_enabled()) return;
  // Coordinator replay of each cell's penalty mean: band order is id
  // order, exactly the order the historical inline loop accumulated in,
  // so the sum — and the metric — is bitwise unchanged.
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    auto& cell = *cells_[c];
    const auto& band = cell.band();
    const double* irow = interference_rows_[c].data();
    double penalty_sum = 0.0;
    for (const BandMember& m : band) {
      penalty_sum += irow[m.slot];
    }
    cell.note_interference_epoch(
        band.empty() ? 0.0
                     : penalty_sum / static_cast<double>(band.size()));
  }
}

void CellularWorld::update_snr_planes() {
  if (pool_ && plane_strips_ > 1) {
    pool_->for_each(
        cells_.size() * static_cast<std::size_t>(plane_strips_),
        [this](std::size_t i) {
          const auto strips = static_cast<std::size_t>(plane_strips_);
          update_plane_strip(static_cast<int>(i / strips),
                             static_cast<int>(i % strips));
        });
  } else {
    for_each_cell([this](std::size_t c) {
      update_cell_snr_plane(static_cast<int>(c));
    });
  }
  note_interference_epochs();
}

void CellularWorld::update_cell_loads() {
  if (!interference_enabled()) return;
  std::fill(cell_load_.begin(), cell_load_.end(), 0.0);
  for (const int c : attached_) {
    cell_load_[static_cast<std::size_t>(c)] += config_.interference_activity;
  }
}

void CellularWorld::blend_user_pilots(std::size_t u, double alpha) {
  // Band-local pilot filtering: the user's band entries blend their
  // cell's slot-indexed snapshot row, cell-ascending — the dense plane's
  // exact per-user scan order. Per-user arithmetic is independent, so the
  // shards' interleaving across users cannot change a bit.
  const bool outages = !dark_.empty();
  for (BandPilot& e : band_[u]) {
    const auto c = static_cast<std::size_t>(e.cell);
    if (outages) {
      if (dark_[c]) {
        // No pilot to filter: hard floor. The entry counts as seeded —
        // recovery restarts the filter from a fresh snapshot anyway.
        e.pilot_db = kDarkPilotDb;
        e.fresh = false;
        continue;
      }
      if (prev_dark_[c]) {
        // Recovery: restart the filter from the fresh snapshot instead
        // of decaying away from the sentinel over ~5 tau.
        e.pilot_db = plane_rows_[c][e.slot];
        e.fresh = false;
        continue;
      }
    }
    if (e.fresh) {
      // First snapshot this entry ever sees (band entry, or the world's
      // initial blend): the pilot *is* the snapshot. At alpha = 1 this
      // equals 0 + 1.0 * (snap - 0) bit for bit, so the dense initial
      // blend is reproduced exactly.
      e.pilot_db = plane_rows_[c][e.slot];
      e.fresh = false;
      continue;
    }
    e.pilot_db += alpha * (plane_rows_[c][e.slot] - e.pilot_db);
  }
}

void CellularWorld::blend_pilots(double alpha) {
  const std::size_t users = attached_.size();
  for (std::size_t u = 0; u < users; ++u) {
    blend_user_pilots(u, alpha);
  }
}

void CellularWorld::initialize_attachments() {
  blend_pilots(1.0);  // no history yet: the pilot *is* the first snapshot
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    const auto& band = band_[static_cast<std::size_t>(u)];
    // Strict-> argmax over the band in ascending cell order — the dense
    // all-cells scan, restricted to residency.
    std::size_t best = 0;
    for (std::size_t i = 1; i < band.size(); ++i) {
      if (band[i].pilot_db > band[best].pilot_db) best = i;
    }
    const int best_cell = band[best].cell;
    attached_[static_cast<std::size_t>(u)] = best_cell;
    ++attach_counts_[static_cast<std::size_t>(best_cell)];
    // Initial placement, not a handoff: presence plus traffic, no
    // counters, no state carry. Band shells elsewhere stay absent.
    cells_[static_cast<std::size_t>(best_cell)]->attach_user_initial(
        static_cast<common::UserId>(u));
  }
}

bool CellularWorld::decide_user(int u, ShardArena& arena, AttachMove& move) {
  const auto& band = band_[static_cast<std::size_t>(u)];
  const int from = attached_[static_cast<std::size_t>(u)];
  if (cell_dark(from)) {
    // Forced eviction: the serving cell went dark. Hysteresis does not
    // apply — there is nothing to stick to — so the user takes its
    // strongest lit band pilot. With the whole band dark the user stays
    // put and rides out the outage on the dead cell.
    std::size_t best = band.size();
    for (std::size_t i = 0; i < band.size(); ++i) {
      if (cell_dark(band[i].cell)) continue;
      if (best == band.size() || band[i].pilot_db > band[best].pilot_db) {
        best = i;
      }
    }
    if (best < band.size()) {
      move = AttachMove{u, band[best].cell, /*evict=*/true};
      return true;
    }
    return false;
  }
  // Gather the band's pilots contiguously for the shared attachment
  // rule; the attached cell is always band-resident (the band update pins
  // it), so its index is well-defined.
  arena.pilot_scratch.clear();
  arena.cell_of_scratch.clear();
  int attached_idx = -1;
  for (std::size_t i = 0; i < band.size(); ++i) {
    arena.pilot_scratch.push_back(band[i].pilot_db);
    arena.cell_of_scratch.push_back(band[i].cell);
    if (band[i].cell == from) attached_idx = static_cast<int>(i);
  }
  assert(attached_idx >= 0 && "attached cell missing from band");
  const int pick = strongest_with_hysteresis(
      {arena.pilot_scratch.data(), arena.pilot_scratch.size()}, attached_idx,
      config_.handoff_hysteresis_db);
  const int to = arena.cell_of_scratch[static_cast<std::size_t>(pick)];
  if (to != from) {
    move = AttachMove{u, to, /*evict=*/false};
    return true;
  }
  return false;
}

void CellularWorld::decide_attachments() {
  // Sharded blend + decision. Every blend reads only the frozen snapshot
  // rows and the user's own band entries; every decision reads only the
  // user's own blended pilots and attached cell. Nothing a proposed move
  // will later mutate (engines, attached_, attach_counts_) feeds another
  // user's same-epoch decision, so deferring the moves to the coordinator
  // replay is bit-equivalent to the historical interleaved execution.
  for_each_user_shard([this](std::size_t s, std::size_t begin,
                             std::size_t end) {
    auto& arena = shard_arenas_[s];
    arena.moves.clear();
    AttachMove move;
    for (std::size_t u = begin; u < end; ++u) {
      blend_user_pilots(u, pilot_alpha_);
      if (decide_user(static_cast<int>(u), arena, move)) {
        arena.moves.push_back(move);
      }
    }
  });
}

void CellularWorld::apply_attachment_moves() {
  // Coordinator replay, ascending user id (shards cover ascending
  // contiguous ranges): every engine mutation and RNG draw lands in the
  // serial execution order.
  const std::size_t shards =
      std::min<std::size_t>(num_shards_, attached_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    for (const AttachMove& m : shard_arenas_[s].moves) {
      const int from = attached_[static_cast<std::size_t>(m.user)];
      if (m.evict) {
        evict(static_cast<common::UserId>(m.user), from, m.to);
      } else {
        handoff(static_cast<common::UserId>(m.user), from, m.to);
      }
    }
  }
}

void CellularWorld::handoff(common::UserId user, int from, int to) {
  auto& source = *cells_[static_cast<std::size_t>(from)];
  auto& target = *cells_[static_cast<std::size_t>(to)];
  // Carry the service state over, then drop what cannot survive the break:
  // the in-flight voice packet dies in transit (counted by the source cell
  // as voice_dropped_handoff); the data backlog rides along.
  target.user(user).adopt_service_state(source.user(user));
  target.user(user).drop_pending_voice();
  source.detach_user(user);
  target.attach_user(user);
  attached_[static_cast<std::size_t>(user)] = to;
  --attach_counts_[static_cast<std::size_t>(from)];
  ++attach_counts_[static_cast<std::size_t>(to)];
  ++handoffs_;
}

void CellularWorld::evict(common::UserId user, int from, int to) {
  // Same state carry as a handoff, but the source books the move as an
  // outage eviction (in-flight voice -> voice_dropped_outage, not a
  // hysteresis handoff). The target side still counts handoffs_in, so
  // world-wide: sum(handoffs_in) == sum(handoffs_out) + sum(evictions).
  auto& source = *cells_[static_cast<std::size_t>(from)];
  auto& target = *cells_[static_cast<std::size_t>(to)];
  target.user(user).adopt_service_state(source.user(user));
  target.user(user).drop_pending_voice();
  source.evict_user(user);
  target.attach_user(user);
  attached_[static_cast<std::size_t>(user)] = to;
  --attach_counts_[static_cast<std::size_t>(from)];
  ++attach_counts_[static_cast<std::size_t>(to)];
}

void CellularWorld::apply_traffic_modulation(common::Time t) {
  if (config_.modulation.kind == traffic::TrafficModulationConfig::Kind::kNone) {
    return;
  }
  // Sharded: each user's rescale touches only its own sources (a pure
  // member write), and the engine lookup is a read-only binary search.
  for_each_user_shard([this, t](std::size_t, std::size_t begin,
                                std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) {
      const Vec2 pos = mobility_.position(static_cast<int>(u));
      const double scale =
          traffic::rate_scale(config_.modulation, t, pos.x, pos.y);
      auto& mu = cells_[static_cast<std::size_t>(attached_[u])]->user(
          static_cast<common::UserId>(u));
      if (mu.is_voice()) {
        mu.voice().set_rate_scale(scale);
      } else {
        mu.data().set_rate_scale(scale);
      }
    }
  });
}

void CellularWorld::run_window(common::Time duration) {
  common::Time remaining = duration;
  while (remaining > kTimeEps) {
    const common::Time dt = std::min(config_.decision_interval, remaining);
    // Epoch structure: the world plane — mobility, band rosters, pilot
    // blending, the attachment rule — is computed in parallel over
    // contiguous user-id shards that emit proposals; the coordinator
    // merges every proposal in ascending user-id order between the
    // barriers (those steps consume RNG and mutate pairs of engines);
    // each cell re-anchors its SNR/SINR plane and burns an epoch of MAC
    // frames in share-nothing parallel cell (or row-strip) tasks. Every
    // RNG-consuming or engine-mutating step runs on the coordinator in
    // the serial order, so metrics are bit-identical at any shard and
    // thread count.
    {
      PhaseTimer timer(timings_.shard_plane_s);
      advance_mobility(now_ + dt);
    }
    {
      // Outage flags for the epoch [now_, now_ + dt) are frozen here,
      // before the parallel plane tasks read them.
      PhaseTimer timer(timings_.serial_plane_s);
      update_outage_flags(now_);
    }
    {
      // Band maintenance from the new positions: entering users are
      // admitted, leavers released — except each user's attached cell,
      // which stays pinned until a handoff moves the user.
      PhaseTimer timer(timings_.shard_plane_s);
      propose_bands(/*include_attached=*/true);
    }
    {
      PhaseTimer timer(timings_.serial_plane_s);
      apply_band_proposals();
      // The plane rows grow to any new bank rows before the parallel
      // tasks use them.
      resize_plane_rows();
    }
    {
      PhaseTimer timer(timings_.cell_plane_s);
      update_snr_planes();
    }
    {
      PhaseTimer timer(timings_.shard_plane_s);
      decide_attachments();
    }
    {
      PhaseTimer timer(timings_.serial_plane_s);
      apply_attachment_moves();
    }
    {
      PhaseTimer timer(timings_.shard_plane_s);
      apply_traffic_modulation(now_);
    }
    {
      // The load aggregation that drives the next epoch's interference.
      PhaseTimer timer(timings_.serial_plane_s);
      update_cell_loads();
    }
    {
      PhaseTimer timer(timings_.cell_plane_s);
      for_each_cell([this, dt](std::size_t c) { cells_[c]->advance_by(dt); });
    }
    ++timings_.epochs;
    now_ += dt;
    remaining -= dt;
  }
}

void CellularWorld::advance(common::Time duration) {
  if (duration < 0.0) {
    throw std::invalid_argument("CellularWorld::advance: negative duration");
  }
  run_window(duration);
}

void CellularWorld::run(common::Time warmup, common::Time measure) {
  if (warmup < 0.0 || measure <= 0.0) {
    throw std::invalid_argument("CellularWorld::run: invalid durations");
  }
  run_window(warmup);
  for (auto& cell : cells_) {
    cell->reset_metrics();
  }
  handoffs_ = 0;
  timings_ = EpochTimings{};
  run_window(measure);
}

ProtocolMetrics CellularWorld::aggregate_metrics() const {
  ProtocolMetrics aggregate;
  for (const auto& cell : cells_) {
    aggregate.merge(cell->metrics());
  }
  return aggregate;
}

}  // namespace charisma::mac
