#include "mac/cellular_world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math.hpp"
#include "mac/attachment.hpp"

namespace charisma::mac {

namespace {
// Stream-id name spaces (see mobile_user.cpp for the per-user ones).
constexpr std::uint64_t kMobilityStream = 0x8000'0000ULL;
constexpr std::uint64_t kCellSeedStream = 0x9000'0000ULL;
constexpr double kTimeEps = 1e-9;
constexpr double kLn10 = 2.302585092994046;
/// Pilot level of a dark cell: far below any real link budget, so neither
/// the hysteresis rule nor the initial argmax ever selects it.
constexpr double kDarkPilotDb = -1.0e9;
}  // namespace

CellularWorld::CellularWorld(const CellularConfig& config,
                             const EngineFactory& factory)
    : config_(config),
      mobility_(config.mobility, config.params.total_users(),
                common::RngStream(config.params.seed, kMobilityStream)) {
  if (!config.valid()) {
    throw std::invalid_argument("CellularWorld: invalid configuration");
  }
  if (!factory) {
    throw std::invalid_argument("CellularWorld: null engine factory");
  }
  layout_ = SiteLayout(config_.layout, config_.num_cells,
                       config_.mobility.field_width_m,
                       config_.mobility.field_height_m);
  cochannel_.reserve(static_cast<std::size_t>(config_.num_cells));
  for (int c = 0; c < config_.num_cells; ++c) {
    cochannel_.push_back(layout_.co_channel_interferers(c));
  }
  cells_.reserve(static_cast<std::size_t>(config_.num_cells));
  for (int c = 0; c < config_.num_cells; ++c) {
    // Decorrelated sub-seed per cell: the same user's links to different
    // base stations fade and shadow independently (independent sites),
    // which is precisely the diversity a handoff exploits.
    ScenarioParams cell_params = config_.params;
    cell_params.seed = common::derive_seed(
        config_.params.seed, kCellSeedStream + static_cast<std::uint64_t>(c));
    if (config_.shadow_decorrelation_m > 0.0 &&
        config_.mobility.speed_mps > 0.0) {
      // Shadowing decorrelates over distance travelled, not wall time.
      cell_params.channel.shadow_tau =
          config_.shadow_decorrelation_m / config_.mobility.speed_mps;
    }
    auto engine = factory(cell_params);
    if (!engine) {
      throw std::invalid_argument("CellularWorld: factory returned null");
    }
    cells_.push_back(std::move(engine));
  }
  pilot_alpha_ =
      1.0 - std::exp(-config_.decision_interval / config_.pilot_filter_tau);

  // Hoist the path-loss log10 into the per-site closed form
  //   db(d) = C - (K/2) * ln(max(d, d_min)²)
  // with C = mean_db + K * ln(d0) and K = 10 n / ln 10. Squared distances
  // feed the ln directly, so the epoch plane pays neither sqrt nor log10.
  const double k = 10.0 * config_.path_loss_exponent / kLn10;
  path_loss_half_k_ = 0.5 * k;
  path_loss_c_db_ = config_.params.channel.mean_snr_db +
                    k * std::log(config_.reference_distance_m);
  min_distance_sq_m2_ = config_.min_distance_m * config_.min_distance_m;

  unsigned threads = config_.num_threads == 0
                         ? std::thread::hardware_concurrency()
                         : config_.num_threads;
  // A round never has more than num_cells indices; surplus workers would
  // only be woken twice per epoch to claim nothing.
  threads = std::min(threads, static_cast<unsigned>(config_.num_cells));
  if (threads > 1) {
    pool_ = std::make_unique<experiment::WorkerPool>(threads);
  }

  const auto users = static_cast<std::size_t>(config_.params.total_users());
  attached_.assign(users, 0);
  pilot_db_.assign(users * static_cast<std::size_t>(config_.num_cells), 0.0);
  snr_scratch_.assign(pilot_db_.size(), 0.0);
  cell_load_.assign(static_cast<std::size_t>(config_.num_cells), 0.0);
  if (interference_enabled()) {
    interference_scratch_.assign(pilot_db_.size(), 0.0);
    interference_contrib_.assign(pilot_db_.size(), 0.0);
  }
  if (!config_.outages.empty()) {
    dark_.assign(static_cast<std::size_t>(config_.num_cells), 0);
    prev_dark_ = dark_;
    update_outage_flags(0.0);
    prev_dark_ = dark_;  // no recovery transition at t = 0
  }
  // The first pilot snapshot sees zero loads (nobody is attached yet);
  // initialize_attachments then seeds the loads the first epoch uses.
  update_snr_planes();
  initialize_attachments();
  update_cell_loads();
}

int CellularWorld::attached_count(int c) const {
  int n = 0;
  for (const int cell : attached_) n += cell == c ? 1 : 0;
  return n;
}

bool CellularWorld::is_dark(int c, common::Time t) const {
  for (const auto& o : config_.outages) {
    if (o.cell == c && t >= o.start - kTimeEps && t < o.end - kTimeEps) {
      return true;
    }
  }
  return false;
}

void CellularWorld::update_outage_flags(common::Time t) {
  if (dark_.empty()) return;
  prev_dark_ = dark_;
  for (int c = 0; c < config_.num_cells; ++c) {
    dark_[static_cast<std::size_t>(c)] = is_dark(c, t) ? 1 : 0;
  }
}

double CellularWorld::mean_snr_at_distance_db(double d_m) const {
  const double d_sq = std::max(d_m * d_m, min_distance_sq_m2_);
  return path_loss_c_db_ - path_loss_half_k_ * std::log(d_sq);
}

void CellularWorld::for_each_cell(const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->for_each(cells_.size(), fn);
  } else {
    for (std::size_t c = 0; c < cells_.size(); ++c) fn(c);
  }
}

void CellularWorld::update_cell_snr_plane(int c) {
  // Share-nothing per-cell task: touches only this cell's bank and rows
  // of the scratch planes, reading the (quiescent) mobility positions and
  // the coordinator-frozen load vector. The SNR row first stages the
  // path-loss dB plane fed to set_mean_snr_db_all. With the interference
  // plane on, the task also stages this cell's *own* linear interference
  // contribution at every user position — load × INR, one from_db per
  // (user, cell) instead of one per (user, interferer) in the summing
  // phase — and the pilot snapshot moves to finalize_cell_interference,
  // after the barrier freezes every cell's contribution row.
  const std::size_t users = attached_.size();
  const bool interf = interference_enabled();
  double* row = snr_scratch_.data() + static_cast<std::size_t>(c) * users;
  double* contrib = interf ? interference_contrib_.data() +
                                 static_cast<std::size_t>(c) * users
                           : nullptr;
  const double load = interf ? cell_load_[static_cast<std::size_t>(c)] : 0.0;
  for (std::size_t u = 0; u < users; ++u) {
    const Vec2 pos = mobility_.position(static_cast<int>(u));
    const double d_sq =
        std::max(layout_.distance_sq(pos, c), min_distance_sq_m2_);
    row[u] = path_loss_c_db_ - path_loss_half_k_ * std::log(d_sq);
    if (interf) {
      contrib[u] = load * common::from_db(row[u]);
    }
  }
  auto& bank = cells_[static_cast<std::size_t>(c)]->channel_bank();
  bank.set_mean_snr_db_all({row, users});
  if (!interf) {
    // Pilot snapshot reads every user, so under a lazy bank the epoch is a
    // full re-anchor: snr_db_all materializes the whole population, which
    // bounds any user's deferred-jump stride by the epoch period.
    bank.snr_db_all({row, users});
    if (cell_dark(c)) {
      // The bank was fed the true plane (its fading state and draw order
      // must not depend on the outage schedule); only the *broadcast*
      // pilot vanishes while the transmitter is dark.
      std::fill(row, row + users, kDarkPilotDb);
    }
  }
}

void CellularWorld::finalize_cell_interference(int c) {
  // Second barrier phase (interference worlds only): sum the co-channel
  // cells' frozen contribution rows into this cell's SINR penalties —
  // same arithmetic, same ascending-site order as the reference
  // mac::interference_penalty_db — then take the pilot snapshot. Reads
  // every cell's contribution row (read-only after the barrier), writes
  // only this cell's bank, metrics and scratch rows.
  const std::size_t users = attached_.size();
  double* row = snr_scratch_.data() + static_cast<std::size_t>(c) * users;
  double* irow =
      interference_scratch_.data() + static_cast<std::size_t>(c) * users;
  const std::vector<int>& interferers =
      cochannel_[static_cast<std::size_t>(c)];
  double penalty_sum = 0.0;
  for (std::size_t u = 0; u < users; ++u) {
    double inr = 0.0;
    for (const int s : interferers) {
      if (cell_load_[static_cast<std::size_t>(s)] <= 0.0) continue;
      inr += interference_contrib_[static_cast<std::size_t>(s) * users + u];
    }
    const double penalty = common::to_db(1.0 + inr);
    irow[u] = penalty;
    penalty_sum += penalty;
  }
  auto& cell = *cells_[static_cast<std::size_t>(c)];
  cell.channel_bank().set_interference_db_all({irow, users});
  cell.note_interference_epoch(
      users > 0 ? penalty_sum / static_cast<double>(users) : 0.0);
  cell.channel_bank().snr_db_all({row, users});
  if (cell_dark(c)) {
    std::fill(row, row + users, kDarkPilotDb);  // see update_cell_snr_plane
  }
}

void CellularWorld::update_snr_planes() {
  for_each_cell([this](std::size_t c) {
    update_cell_snr_plane(static_cast<int>(c));
  });
  if (interference_enabled()) {
    for_each_cell([this](std::size_t c) {
      finalize_cell_interference(static_cast<int>(c));
    });
  }
}

void CellularWorld::update_cell_loads() {
  if (!interference_enabled()) return;
  std::fill(cell_load_.begin(), cell_load_.end(), 0.0);
  for (const int c : attached_) {
    cell_load_[static_cast<std::size_t>(c)] += config_.interference_activity;
  }
}

void CellularWorld::blend_pilots(double alpha) {
  // Shared pilot-scan loop: the scratch plane is cell-major (each cell's
  // task wrote its own contiguous row); the filtered plane is user-major
  // (the attachment rule reads one user's row as a span).
  const std::size_t users = attached_.size();
  const std::size_t cells = cells_.size();
  const bool outages = !dark_.empty();
  for (std::size_t u = 0; u < users; ++u) {
    double* pilots = pilot_db_.data() + u * cells;
    for (std::size_t c = 0; c < cells; ++c) {
      if (outages) {
        if (dark_[c]) {
          pilots[c] = kDarkPilotDb;  // no pilot to filter: hard floor
          continue;
        }
        if (prev_dark_[c]) {
          // Recovery: restart the filter from the fresh snapshot instead of
          // decaying away from the sentinel over ~5 tau.
          pilots[c] = snr_scratch_[c * users + u];
          continue;
        }
      }
      pilots[c] += alpha * (snr_scratch_[c * users + u] - pilots[c]);
    }
  }
}

void CellularWorld::initialize_attachments() {
  blend_pilots(1.0);  // no history yet: the pilot *is* the first snapshot
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    const auto pilots = pilot_row(static_cast<std::size_t>(u));
    int best = 0;
    for (int c = 1; c < config_.num_cells; ++c) {
      if (pilots[static_cast<std::size_t>(c)] >
          pilots[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    attached_[static_cast<std::size_t>(u)] = best;
    // Initial placement, not a handoff: no counters, no state carry.
    for (int c = 0; c < config_.num_cells; ++c) {
      if (c != best) {
        cells_[static_cast<std::size_t>(c)]
            ->user(static_cast<common::UserId>(u))
            .set_present(false);
      }
    }
  }
}

void CellularWorld::update_pilots_and_attachments() {
  blend_pilots(pilot_alpha_);
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    const int from = attached_[static_cast<std::size_t>(u)];
    if (cell_dark(from)) {
      // Forced eviction: the serving cell went dark. Hysteresis does not
      // apply — there is nothing to stick to — so the user takes its
      // strongest lit pilot. With every cell dark (total blackout, out of
      // scope for the schedule's single-cell fault model) the user stays
      // put and rides out the outage on the dead cell.
      const auto pilots = pilot_row(static_cast<std::size_t>(u));
      int best = -1;
      for (int c = 0; c < config_.num_cells; ++c) {
        if (cell_dark(c)) continue;
        if (best < 0 ||
            pilots[static_cast<std::size_t>(c)] >
                pilots[static_cast<std::size_t>(best)]) {
          best = c;
        }
      }
      if (best >= 0) {
        evict(static_cast<common::UserId>(u), from, best);
      }
      continue;
    }
    const int to =
        strongest_with_hysteresis(pilot_row(static_cast<std::size_t>(u)),
                                  from, config_.handoff_hysteresis_db);
    if (to != from) {
      handoff(static_cast<common::UserId>(u), from, to);
    }
  }
}

void CellularWorld::handoff(common::UserId user, int from, int to) {
  auto& source = *cells_[static_cast<std::size_t>(from)];
  auto& target = *cells_[static_cast<std::size_t>(to)];
  // Carry the service state over, then drop what cannot survive the break:
  // the in-flight voice packet dies in transit (counted by the source cell
  // as voice_dropped_handoff); the data backlog rides along.
  target.user(user).adopt_service_state(source.user(user));
  target.user(user).drop_pending_voice();
  source.detach_user(user);
  target.attach_user(user);
  attached_[static_cast<std::size_t>(user)] = to;
  ++handoffs_;
}

void CellularWorld::evict(common::UserId user, int from, int to) {
  // Same state carry as a handoff, but the source books the move as an
  // outage eviction (in-flight voice -> voice_dropped_outage, not a
  // hysteresis handoff). The target side still counts handoffs_in, so
  // world-wide: sum(handoffs_in) == sum(handoffs_out) + sum(evictions).
  auto& source = *cells_[static_cast<std::size_t>(from)];
  auto& target = *cells_[static_cast<std::size_t>(to)];
  target.user(user).adopt_service_state(source.user(user));
  target.user(user).drop_pending_voice();
  source.evict_user(user);
  target.attach_user(user);
  attached_[static_cast<std::size_t>(user)] = to;
}

void CellularWorld::apply_traffic_modulation(common::Time t) {
  if (config_.modulation.kind == traffic::TrafficModulationConfig::Kind::kNone) {
    return;
  }
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    const Vec2 pos = mobility_.position(u);
    const double scale = traffic::rate_scale(config_.modulation, t, pos.x,
                                             pos.y);
    auto& mu = cells_[static_cast<std::size_t>(
                          attached_[static_cast<std::size_t>(u)])]
                   ->user(static_cast<common::UserId>(u));
    if (mu.is_voice()) {
      mu.voice().set_rate_scale(scale);
    } else {
      mu.data().set_rate_scale(scale);
    }
  }
}

void CellularWorld::run_window(common::Time duration) {
  common::Time remaining = duration;
  while (remaining > kTimeEps) {
    const common::Time dt = std::min(config_.decision_interval, remaining);
    // Epoch structure: mobility moves everyone (coordinator), each cell
    // re-anchors its SNR/SINR plane (parallel, share-nothing, reading the
    // frozen previous-epoch loads), attachment and handoffs run between
    // the barriers (coordinator — they mutate pairs of engines) followed
    // by the load aggregation that drives the next epoch's interference,
    // then every cell burns an epoch of MAC frames (parallel). Serial and
    // parallel execution perform the identical per-cell arithmetic in the
    // identical order, so metrics are bit-identical at any thread count.
    mobility_.advance_to(now_ + dt);
    // Outage flags for the epoch [now_, now_ + dt) are frozen here, before
    // the parallel plane tasks read them.
    update_outage_flags(now_);
    update_snr_planes();
    update_pilots_and_attachments();
    apply_traffic_modulation(now_);
    update_cell_loads();
    for_each_cell([this, dt](std::size_t c) { cells_[c]->advance_by(dt); });
    now_ += dt;
    remaining -= dt;
  }
}

void CellularWorld::run(common::Time warmup, common::Time measure) {
  if (warmup < 0.0 || measure <= 0.0) {
    throw std::invalid_argument("CellularWorld::run: invalid durations");
  }
  run_window(warmup);
  for (auto& cell : cells_) {
    cell->reset_metrics();
  }
  handoffs_ = 0;
  run_window(measure);
}

ProtocolMetrics CellularWorld::aggregate_metrics() const {
  ProtocolMetrics aggregate;
  for (const auto& cell : cells_) {
    aggregate.merge(cell->metrics());
  }
  return aggregate;
}

}  // namespace charisma::mac
