#include "mac/cellular_world.hpp"

#include <cmath>
#include <stdexcept>

#include "mac/attachment.hpp"

namespace charisma::mac {

namespace {
// Stream-id name spaces (see mobile_user.cpp for the per-user ones).
constexpr std::uint64_t kMobilityStream = 0x8000'0000ULL;
constexpr std::uint64_t kCellSeedStream = 0x9000'0000ULL;
constexpr double kTimeEps = 1e-9;
}  // namespace

CellularWorld::CellularWorld(const CellularConfig& config,
                             const EngineFactory& factory)
    : config_(config),
      mobility_(config.mobility, config.params.total_users(),
                common::RngStream(config.params.seed, kMobilityStream)) {
  if (!config.valid()) {
    throw std::invalid_argument("CellularWorld: invalid configuration");
  }
  if (!factory) {
    throw std::invalid_argument("CellularWorld: null engine factory");
  }
  place_sites();
  cells_.reserve(static_cast<std::size_t>(config_.num_cells));
  for (int c = 0; c < config_.num_cells; ++c) {
    // Decorrelated sub-seed per cell: the same user's links to different
    // base stations fade and shadow independently (independent sites),
    // which is precisely the diversity a handoff exploits.
    ScenarioParams cell_params = config_.params;
    cell_params.seed = common::derive_seed(
        config_.params.seed, kCellSeedStream + static_cast<std::uint64_t>(c));
    if (config_.shadow_decorrelation_m > 0.0 &&
        config_.mobility.speed_mps > 0.0) {
      // Shadowing decorrelates over distance travelled, not wall time.
      cell_params.channel.shadow_tau =
          config_.shadow_decorrelation_m / config_.mobility.speed_mps;
    }
    auto engine = factory(cell_params);
    if (!engine) {
      throw std::invalid_argument("CellularWorld: factory returned null");
    }
    cells_.push_back(std::move(engine));
  }
  pilot_alpha_ =
      1.0 - std::exp(-config_.decision_interval / config_.pilot_filter_tau);

  const auto users = static_cast<std::size_t>(config_.params.total_users());
  attached_.assign(users, 0);
  pilot_db_.assign(users, std::vector<double>(
                              static_cast<std::size_t>(config_.num_cells)));
  update_mean_snrs();
  initialize_attachments();
}

void CellularWorld::place_sites() {
  // Sites evenly spaced along the field's horizontal midline: users moving
  // across the width sweep through every cell boundary.
  sites_.clear();
  const double step =
      config_.mobility.field_width_m / static_cast<double>(config_.num_cells);
  for (int c = 0; c < config_.num_cells; ++c) {
    sites_.push_back({(static_cast<double>(c) + 0.5) * step,
                      config_.mobility.field_height_m * 0.5});
  }
}

double CellularWorld::mean_snr_at_distance_db(double d_m) const {
  const double d = std::max(d_m, config_.min_distance_m);
  return config_.params.channel.mean_snr_db -
         10.0 * config_.path_loss_exponent *
             std::log10(d / config_.reference_distance_m);
}

void CellularWorld::update_mean_snrs() {
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    const Vec2 pos = mobility_.position(u);
    for (int c = 0; c < config_.num_cells; ++c) {
      const double db = mean_snr_at_distance_db(
          distance_m(pos, sites_[static_cast<std::size_t>(c)]));
      cells_[static_cast<std::size_t>(c)]->channel_bank().set_mean_snr_db(
          static_cast<std::size_t>(u), db);
    }
  }
}

void CellularWorld::initialize_attachments() {
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    auto& pilots = pilot_db_[static_cast<std::size_t>(u)];
    int best = 0;
    for (int c = 0; c < config_.num_cells; ++c) {
      pilots[static_cast<std::size_t>(c)] =
          cells_[static_cast<std::size_t>(c)]->channel_bank().snr_db(
              static_cast<std::size_t>(u));
      if (pilots[static_cast<std::size_t>(c)] >
          pilots[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    attached_[static_cast<std::size_t>(u)] = best;
    // Initial placement, not a handoff: no counters, no state carry.
    for (int c = 0; c < config_.num_cells; ++c) {
      if (c != best) {
        cells_[static_cast<std::size_t>(c)]
            ->user(static_cast<common::UserId>(u))
            .set_present(false);
      }
    }
  }
}

void CellularWorld::update_pilots_and_attachments() {
  const int users = config_.params.total_users();
  for (int u = 0; u < users; ++u) {
    auto& pilots = pilot_db_[static_cast<std::size_t>(u)];
    for (int c = 0; c < config_.num_cells; ++c) {
      const double inst =
          cells_[static_cast<std::size_t>(c)]->channel_bank().snr_db(
              static_cast<std::size_t>(u));
      auto& pilot = pilots[static_cast<std::size_t>(c)];
      pilot += pilot_alpha_ * (inst - pilot);
    }
    const int from = attached_[static_cast<std::size_t>(u)];
    const int to =
        strongest_with_hysteresis(pilots, from, config_.handoff_hysteresis_db);
    if (to != from) {
      handoff(static_cast<common::UserId>(u), from, to);
    }
  }
}

void CellularWorld::handoff(common::UserId user, int from, int to) {
  auto& source = *cells_[static_cast<std::size_t>(from)];
  auto& target = *cells_[static_cast<std::size_t>(to)];
  // Carry the service state over, then drop what cannot survive the break:
  // the in-flight voice packet dies in transit (counted by the source cell
  // as voice_dropped_handoff); the data backlog rides along.
  target.user(user).adopt_service_state(source.user(user));
  target.user(user).drop_pending_voice();
  source.detach_user(user);
  target.attach_user(user);
  attached_[static_cast<std::size_t>(user)] = to;
  ++handoffs_;
}

void CellularWorld::run_window(common::Time duration) {
  common::Time remaining = duration;
  while (remaining > kTimeEps) {
    const common::Time dt = std::min(config_.decision_interval, remaining);
    mobility_.advance_to(now_ + dt);
    update_mean_snrs();
    update_pilots_and_attachments();
    for (auto& cell : cells_) {
      cell->advance_by(dt);
    }
    now_ += dt;
    remaining -= dt;
  }
}

void CellularWorld::run(common::Time warmup, common::Time measure) {
  if (warmup < 0.0 || measure <= 0.0) {
    throw std::invalid_argument("CellularWorld::run: invalid durations");
  }
  run_window(warmup);
  for (auto& cell : cells_) {
    cell->reset_metrics();
  }
  handoffs_ = 0;
  run_window(measure);
}

ProtocolMetrics CellularWorld::aggregate_metrics() const {
  ProtocolMetrics aggregate;
  for (const auto& cell : cells_) {
    aggregate.merge(cell->metrics());
  }
  return aggregate;
}

}  // namespace charisma::mac
