// Mobile-device energy accounting.
//
// The paper's second motivation (§1): "when channel state is bad ... much
// of the mobile device's energy is wasted" on transmissions that never
// deliver. The engine charges every uplink burst — request minislots,
// auction rounds, pilot responses, information slots — at the device's
// transmit power for its air time, and classifies the joules that shipped
// no packet (collisions, corrupted packets, outage-wasted slots) as
// *wasted*. CHARISMA's CSI-aware packing should spend markedly fewer
// joules per delivered packet; bench_energy_efficiency quantifies it.
#pragma once

namespace charisma::mac {

struct EnergyModel {
  /// RF transmit power during an uplink burst, watts.
  double tx_power_w = 0.5;

  /// Joules for a burst of `symbols` at the given symbol rate.
  double burst_energy_j(double symbols, double symbol_rate) const {
    return tx_power_w * symbols / symbol_rate;
  }
};

}  // namespace charisma::mac
