// Sparse presence: the geometric side of band-local state. A SiteIndex
// answers "which cells' pilot bands cover this position?" — the set of
// sites within `radius_m` of the point under the layout's wrap metric —
// without scanning every site per query. Sites (including their wrap
// images) are bucketed once on a grid of cell size `radius_m`, so a query
// inspects at most the 3×3 bucket neighbourhood of the point.
//
// radius_m <= 0 is the all-cells band: every site covers every position —
// the dense world's semantics, and the configuration under which the
// sparse world reproduces it bit for bit.
//
// Queries return sites in ascending index order (the iteration order every
// world-plane loop relies on) and never return an empty set: a position
// outside every band falls back to its nearest site, so a user always has
// at least one candidate cell to attach to.
#pragma once

#include <vector>

#include "mac/geometry.hpp"
#include "mac/site_layout.hpp"

namespace charisma::mac {

class SiteIndex {
 public:
  SiteIndex() = default;

  /// Builds the bucket grid over `layout`'s sites and wrap images. The
  /// layout must outlive the index.
  SiteIndex(const SiteLayout& layout, double radius_m);

  /// (Re)builds the grid in place, reusing the bucket vectors' storage:
  /// after the first build at a given geometry, further rebuilds perform
  /// no heap allocation (buckets are clear()ed, never reassigned), so a
  /// caller refreshing the index in a steady-state loop allocates
  /// nothing. The layout must outlive the index.
  void rebuild(const SiteLayout& layout, double radius_m);

  /// All sites covering the band: every site whose (wrap-metric) distance
  /// to `p` is at most the radius, appended to `out` in ascending site
  /// order; the nearest site alone when none is in range; every site when
  /// the radius is <= 0. `out` is not cleared. Uses mutable mark scratch —
  /// coordinator-only, not safe to call concurrently.
  void cells_near(const Vec2& p, std::vector<int>& out) const;

  /// Concurrency-safe variant for sharded callers: identical results, but
  /// the per-site dedup scratch is caller-owned (one per shard), so
  /// queries on distinct scratches may run in parallel. `scratch` is
  /// resized on first use and must not be shared between concurrent
  /// callers; its entries must be (and are left) all-zero.
  void cells_near(const Vec2& p, std::vector<int>& out,
                  std::vector<char>& scratch) const;

  /// True in all-cells mode (radius <= 0): band membership is the whole
  /// layout and never changes.
  bool all_cells() const { return radius_m_ <= 0.0; }
  double radius_m() const { return radius_m_; }

 private:
  struct Entry {
    int site;
    Vec2 pos;  // site position or one of its wrap images
  };

  std::size_t bucket_of(double x, double y) const;

  const SiteLayout* layout_ = nullptr;
  double radius_m_ = 0.0;
  double radius_sq_m2_ = 0.0;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  double inv_bucket_ = 0.0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::vector<Entry>> buckets_;
  mutable std::vector<char> mark_;  ///< per-site dedup scratch
};

}  // namespace charisma::mac
