// The cell-attachment decision rule shared by CellularWorld and the
// experiment-layer handoff study.
#pragma once

#include <span>

namespace charisma::mac {

/// Among stations whose filtered pilot exceeds the *attached* station's
/// pilot by more than `hysteresis_db`, returns the strongest; returns
/// `attached` when none qualifies. Every challenger is measured against the
/// attached pilot — measuring challengers against the running maximum (the
/// historical bug) let a weaker station scanned earlier raise the bar and
/// block the strongest one, so the handoff target was scan-order dependent
/// and not the strongest eligible pilot.
///
/// Takes a span so CellularWorld's flat users×cells pilot plane can pass
/// one user's row without copying it into a vector per decision.
int strongest_with_hysteresis(std::span<const double> pilot_db, int attached,
                              double hysteresis_db);

}  // namespace charisma::mac
