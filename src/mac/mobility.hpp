// User mobility — the "nomadic" in nomadic computing (paper §1, §6). Every
// user gets a position trajectory over a rectangular service area:
//
//   * kConstantVelocity — random initial position and heading, fixed speed,
//     specular reflection at the field boundary (the classic "billiard"
//     model; stationary long-run position distribution is uniform).
//   * kRandomWaypoint — pick a uniform waypoint, travel to it at the
//     configured speed, pause, repeat (Johnson & Maltz). The standard
//     mobility model of the ad-hoc/cellular simulation literature.
//
// Positions feed the distance-based path loss that CellularWorld turns
// into each cell's time-varying mean SNR, which is what makes handoff a
// *channel-quality* decision rather than a scripted event.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mac/geometry.hpp"  // Vec2 / distance_m

namespace charisma::mac {

struct MobilityConfig {
  enum class Model { kConstantVelocity, kRandomWaypoint };

  Model model = Model::kRandomWaypoint;
  double field_width_m = 2000.0;
  double field_height_m = 1000.0;
  common::Speed speed_mps = common::km_per_hour(50.0);
  /// Random-waypoint pause on arrival (0 = keep moving immediately).
  common::Time pause_s = 0.0;

  bool valid() const {
    return field_width_m > 0.0 && field_height_m > 0.0 && speed_mps >= 0.0 &&
           pause_s >= 0.0;
  }
};

class MobilityModel {
 public:
  /// All randomness (initial placement, headings, waypoints) comes from
  /// `rng`, so trajectories are reproducible and independent of the
  /// channel/traffic streams.
  MobilityModel(const MobilityConfig& config, int num_users,
                common::RngStream rng);

  /// Advances every user to absolute time `t` (non-decreasing calls).
  void advance_to(common::Time t);

  // ---- Sharded two-phase advancement (CellularWorld epoch coordinator) --
  // A serial advance_to(t) draws waypoints from the one shared stream in
  // ascending user order, each user's draws completing before the next
  // user's begin. The sharded protocol reproduces that draw sequence
  // exactly: phase A (advance_span, parallel on disjoint user ranges)
  // walks each trajectory with the identical arithmetic but *stops* at the
  // first point that needs a draw, recording the user's exact walk state;
  // phase B (resume, coordinator, ascending user id) finishes the
  // suspended walks with draws enabled — the only RNG consumers — so the
  // stream advances precisely as the serial loop would have advanced it.
  // commit(t) then moves the epoch clock. Constant-velocity users never
  // draw and complete entirely in phase A.

  /// One suspended random-waypoint walk: the user, and the exact (t,
  /// remaining) pair the serial segment loop held when it hit a draw.
  struct Suspended {
    int user = 0;
    common::Time t = 0.0;
    common::Time remaining = 0.0;
  };

  /// Phase A: advances users [begin, end) toward absolute time `t`
  /// without consuming RNG; users needing a waypoint draw are appended to
  /// `out` (ascending, since the range is walked in order) with their walk
  /// state. Safe to call concurrently on disjoint ranges. Positions of
  /// suspended users are not final until resume() runs.
  void advance_span(common::Time t, int begin, int end,
                    std::vector<Suspended>& out);
  /// Phase B (coordinator): completes suspended walks, drawing waypoints
  /// from the shared stream. Callers must present records in ascending
  /// user order across all calls of the epoch.
  void resume(const std::vector<Suspended>& suspended);
  /// Commits the epoch clock after phases A/B (non-decreasing, like
  /// advance_to).
  void commit(common::Time t);

  int size() const { return static_cast<int>(users_.size()); }
  Vec2 position(int user) const;
  /// Current velocity (m/s); zero while a random-waypoint user pauses.
  Vec2 velocity(int user) const;
  const MobilityConfig& config() const { return config_; }

 private:
  struct UserState {
    Vec2 pos;
    Vec2 vel;
    Vec2 waypoint;                  // random-waypoint target
    common::Time pause_until = 0.0; // random-waypoint dwell end
  };

  void advance_constant_velocity(UserState& u, common::Time dt);
  void advance_random_waypoint(UserState& u, common::Time now,
                               common::Time dt);
  /// The random-waypoint segment loop shared by the serial and two-phase
  /// paths: walks `u` forward consuming `remaining`, updating `t` with the
  /// serial code's exact arithmetic. Returns true when the interval is
  /// consumed; returns false — with (t, remaining) holding the resumable
  /// walk state — when a waypoint draw is needed but `allow_draw` is off.
  bool walk_random_waypoint(UserState& u, common::Time& t,
                            common::Time& remaining, bool allow_draw);
  void pick_waypoint(UserState& u);

  MobilityConfig config_;
  common::RngStream rng_;
  std::vector<UserState> users_;
  common::Time now_ = 0.0;
};

}  // namespace charisma::mac
