// Slotted request contention (paper §2, "Request Contention Model"):
// in each request minislot every still-unserved contender transmits with
// its class's permission probability; the minislot succeeds iff exactly one
// device transmitted (no capture effect). The base station acknowledges the
// winner immediately on the downlink, so winners stop contending within the
// same request phase.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/units.hpp"

namespace charisma::mac {

struct ContentionTally {
  int minislots = 0;
  int successes = 0;
  int collisions = 0;
  int idle = 0;
  /// Total request transmissions across all minislots (energy accounting).
  int transmissions = 0;
};

struct ContentionOutcome {
  /// Winning user ids in minislot order.
  std::vector<common::UserId> winners;
  /// Users that transmitted a request in at least one minislot (winners
  /// included). Losers among these experienced a collision, which drives
  /// the backoff stabilization.
  std::vector<common::UserId> transmitted;
  ContentionTally tally;
};

/// Runs `minislots` request slots over `candidates`. `permission(id)` gives
/// each user's permission probability; `rng_of(id)` must return that user's
/// private stream — any stream type with a bernoulli(double) draw
/// (RngStream, CompactRngStream or the TrafficRng dispatcher) — which
/// keeps runs reproducible regardless of candidate-set composition.
/// Winners are removed from contention as they succeed.
template <typename Permission, typename RngOf>
ContentionOutcome run_request_phase(
    const std::vector<common::UserId>& candidates, int minislots,
    Permission&& permission, RngOf&& rng_of) {
  if (minislots < 0) {
    throw std::invalid_argument("run_request_phase: negative minislots");
  }
  ContentionOutcome outcome;
  outcome.tally.minislots = minislots;

  // Track candidates by index: `won[i]` removes them from contention,
  // `ever_transmitted[i]` feeds the backoff stabilization.
  std::vector<bool> won(candidates.size(), false);
  std::vector<bool> ever_transmitted(candidates.size(), false);
  std::size_t remaining = candidates.size();

  for (int slot = 0; slot < minislots && remaining > 0; ++slot) {
    std::size_t transmitter_index = candidates.size();
    int transmitted = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (won[i]) continue;
      if (rng_of(candidates[i]).bernoulli(permission(candidates[i]))) {
        ++transmitted;
        transmitter_index = i;
        ever_transmitted[i] = true;
      }
    }
    outcome.tally.transmissions += transmitted;
    if (transmitted == 1) {
      ++outcome.tally.successes;
      outcome.winners.push_back(candidates[transmitter_index]);
      won[transmitter_index] = true;
      --remaining;
    } else if (transmitted > 1) {
      ++outcome.tally.collisions;
    } else {
      ++outcome.tally.idle;
    }
  }
  // Minislots after the candidate pool empties are idle.
  outcome.tally.idle +=
      minislots - outcome.tally.successes - outcome.tally.collisions -
      outcome.tally.idle;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (ever_transmitted[i]) outcome.transmitted.push_back(candidates[i]);
  }
  return outcome;
}

}  // namespace charisma::mac
