// Slotted request contention (paper §2, "Request Contention Model"):
// in each request minislot every still-unserved contender transmits with
// its class's permission probability; the minislot succeeds iff exactly one
// device transmitted (no capture effect). The base station acknowledges the
// winner immediately on the downlink, so winners stop contending within the
// same request phase.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace charisma::mac {

struct ContentionTally {
  int minislots = 0;
  int successes = 0;
  int collisions = 0;
  int idle = 0;
  /// Total request transmissions across all minislots (energy accounting).
  int transmissions = 0;
};

struct ContentionOutcome {
  /// Winning user ids in minislot order.
  std::vector<common::UserId> winners;
  /// Users that transmitted a request in at least one minislot (winners
  /// included). Losers among these experienced a collision, which drives
  /// the backoff stabilization.
  std::vector<common::UserId> transmitted;
  ContentionTally tally;
};

/// Runs `minislots` request slots over `candidates`. `permission(id)` gives
/// each user's permission probability; `rng_of(id)` must return that user's
/// private stream (keeps runs reproducible regardless of candidate-set
/// composition). Winners are removed from contention as they succeed.
ContentionOutcome run_request_phase(
    const std::vector<common::UserId>& candidates, int minislots,
    const std::function<double(common::UserId)>& permission,
    const std::function<common::RngStream&(common::UserId)>& rng_of);

}  // namespace charisma::mac
