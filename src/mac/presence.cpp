#include "mac/presence.hpp"

#include <algorithm>
#include <cmath>

namespace charisma::mac {

SiteIndex::SiteIndex(const SiteLayout& layout, double radius_m) {
  rebuild(layout, radius_m);
}

void SiteIndex::rebuild(const SiteLayout& layout, double radius_m) {
  layout_ = &layout;
  radius_m_ = radius_m;
  // Clear in place: the inner vectors keep their capacity, so a rebuild at
  // unchanged (or smaller) geometry allocates nothing. Stale buckets past
  // the new grid extent are cleared too — bucket_of never addresses them,
  // but leaving entries there would pin dead Entry storage forever.
  for (auto& bucket : buckets_) bucket.clear();
  if (radius_m_ <= 0.0) return;  // all-cells mode: no grid needed
  radius_sq_m2_ = radius_m_ * radius_m_;

  // Bounding box over every site image; bucket edge = radius, so any
  // point's in-range images live in the 3×3 neighbourhood of its bucket.
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  bool first = true;
  const auto& offsets = layout.wrap_offsets();
  for (int s = 0; s < layout.num_sites(); ++s) {
    const Vec2 site = layout.position(s);
    for (const Vec2& off : offsets) {
      const double x = site.x + off.x;
      const double y = site.y + off.y;
      if (first) {
        min_x = max_x = x;
        min_y = max_y = y;
        first = false;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  origin_x_ = min_x;
  origin_y_ = min_y;
  // Bucket edge = max(radius, extent/1024 per axis). Any edge >= the
  // radius keeps the 3x3-neighbourhood query exact (an in-range image is
  // within one bucket of the query's); the floor stops a degenerate
  // radius from exploding the grid — without it a 1 mm band on a km-scale
  // field would ask for ~1e12 buckets.
  constexpr double kMaxBucketsPerAxis = 1024.0;
  const double edge =
      std::max({radius_m_, (max_x - min_x) / kMaxBucketsPerAxis,
                (max_y - min_y) / kMaxBucketsPerAxis});
  inv_bucket_ = 1.0 / edge;
  nx_ = std::max(1, static_cast<int>((max_x - min_x) * inv_bucket_) + 1);
  ny_ = std::max(1, static_cast<int>((max_y - min_y) * inv_bucket_) + 1);
  const std::size_t grid =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  // Grow-only: resize keeps the existing inner vectors (and their
  // capacity) when the grid shrinks or stays put.
  if (buckets_.size() < grid) buckets_.resize(grid);
  for (int s = 0; s < layout.num_sites(); ++s) {
    const Vec2 site = layout.position(s);
    for (const Vec2& off : offsets) {
      const Vec2 img{site.x + off.x, site.y + off.y};
      buckets_[bucket_of(img.x, img.y)].push_back(Entry{s, img});
    }
  }
  const auto sites = static_cast<std::size_t>(layout.num_sites());
  if (mark_.size() < sites) {
    mark_.assign(sites, 0);
  } else {
    std::fill(mark_.begin(), mark_.end(), 0);
  }
}

std::size_t SiteIndex::bucket_of(double x, double y) const {
  int bx = static_cast<int>(std::floor((x - origin_x_) * inv_bucket_));
  int by = static_cast<int>(std::floor((y - origin_y_) * inv_bucket_));
  bx = std::clamp(bx, 0, nx_ - 1);
  by = std::clamp(by, 0, ny_ - 1);
  return static_cast<std::size_t>(by) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(bx);
}

void SiteIndex::cells_near(const Vec2& p, std::vector<int>& out) const {
  cells_near(p, out, mark_);
}

void SiteIndex::cells_near(const Vec2& p, std::vector<int>& out,
                           std::vector<char>& scratch) const {
  const int sites = layout_->num_sites();
  if (radius_m_ <= 0.0) {
    for (int s = 0; s < sites; ++s) out.push_back(s);
    return;
  }
  if (scratch.size() < static_cast<std::size_t>(sites)) {
    scratch.assign(static_cast<std::size_t>(sites), 0);
  }
  // Clamping the centre bucket keeps out-of-box queries correct: an image
  // within the radius of an outside point is at most one bucket past the
  // nearest edge bucket, which the 3×3 neighbourhood still covers.
  const int cx = static_cast<int>(
      std::clamp(std::floor((p.x - origin_x_) * inv_bucket_),
                 0.0, static_cast<double>(nx_ - 1)));
  const int cy = static_cast<int>(
      std::clamp(std::floor((p.y - origin_y_) * inv_bucket_),
                 0.0, static_cast<double>(ny_ - 1)));
  bool found = false;
  for (int by = std::max(0, cy - 1); by <= std::min(ny_ - 1, cy + 1); ++by) {
    for (int bx = std::max(0, cx - 1); bx <= std::min(nx_ - 1, cx + 1); ++bx) {
      const auto& bucket =
          buckets_[static_cast<std::size_t>(by) *
                       static_cast<std::size_t>(nx_) +
                   static_cast<std::size_t>(bx)];
      for (const Entry& e : bucket) {
        const double dx = p.x - e.pos.x;
        const double dy = p.y - e.pos.y;
        if (dx * dx + dy * dy > radius_sq_m2_) continue;
        if (!scratch[static_cast<std::size_t>(e.site)]) {
          scratch[static_cast<std::size_t>(e.site)] = 1;
          found = true;
        }
      }
    }
  }
  if (!found) {
    // No band covers the position: the user still needs a serving
    // candidate, so fall back to the nearest site under the wrap metric.
    int best = 0;
    double best_sq = layout_->distance_sq(p, 0);
    for (int s = 1; s < sites; ++s) {
      const double d = layout_->distance_sq(p, s);
      if (d < best_sq) {
        best_sq = d;
        best = s;
      }
    }
    out.push_back(best);
    return;
  }
  for (int s = 0; s < sites; ++s) {
    if (scratch[static_cast<std::size_t>(s)]) {
      out.push_back(s);
      scratch[static_cast<std::size_t>(s)] = 0;
    }
  }
}

}  // namespace charisma::mac
