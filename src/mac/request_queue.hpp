// The base-station request queue (paper §4.5): requests that survive
// contention but fail to get information slots wait here instead of being
// discarded. Baselines serve it first-come-first-served; CHARISMA treats
// its entries as backlog requests ranked by the priority metric. Voice
// entries whose packet deadline has passed are purged (the packet is
// dropped at the device).
#pragma once

#include <deque>
#include <optional>

#include "channel/csi.hpp"
#include "common/units.hpp"

namespace charisma::mac {

enum class RequestType { kVoice, kData };

struct PendingRequest {
  common::UserId user = common::kNoUser;
  RequestType type = RequestType::kVoice;
  /// Packets the device asked to transmit (1 for voice; burst backlog for
  /// data, updated as slots are granted).
  int packets_requested = 1;
  common::Time acked_at = 0.0;            ///< when contention succeeded
  common::Time deadline = 0.0;            ///< voice-packet deadline; data: +inf
  channel::CsiEstimate csi{};             ///< last pilot-based estimate
  /// Frames spent waiting since the ACK (the T_w of Eq. (2)).
  int frames_waited = 0;
};

class RequestQueue {
 public:
  void push(PendingRequest request) { entries_.push_back(request); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  std::deque<PendingRequest>& entries() { return entries_; }
  const std::deque<PendingRequest>& entries() const { return entries_; }

  bool contains(common::UserId user) const;

  /// Removes the given user's request (after full service or expiry).
  void remove(common::UserId user);

  /// Purges voice requests whose deadline passed. Returns how many were
  /// purged (their packets are accounted as deadline drops by the source).
  int purge_expired_voice(common::Time now);

  /// Increments every entry's waiting-frame counter (call once per frame).
  void age_all();

  void clear() { entries_.clear(); }

 private:
  std::deque<PendingRequest> entries_;
};

}  // namespace charisma::mac
