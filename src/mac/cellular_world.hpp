// Multi-cell mobility scenario layer — the paper's §6 future-work question
// ("to which new base station should the user attach, from a channel
// quality point of view?") promoted from a side study to a first-class
// simulation workload.
//
// A CellularWorld owns one ProtocolEngine per cell. Presence is sparse
// and band-local: a user holds materialized channel/engine state only in
// the cells whose pilot band covers it — the sites within
// `pilot_band_radius_m` of its position (wrap-aware, SiteIndex), plus
// always its attached cell — and is *present* (generating traffic,
// contending, holding reservations) in exactly one of them. Radius 0 (the
// default) puts every user in every cell's band, which reproduces the
// historical dense users×cells world bit for bit; a finite radius makes
// per-cell memory and epoch work O(band occupancy) instead of
// O(population), which is what makes million-user worlds affordable.
// Each decision epoch the world:
//
//   1. moves every user (MobilityModel) and updates band membership from
//      the new positions — engines admit entering users
//      (ProtocolEngine::band_admit: a fresh ChannelBank row, or a
//      recycled one re-seeded from the per-(user, cell) visit counter)
//      and release leavers (band_release),
//   2. re-anchors each band-resident (user, cell) link's mean SNR from
//      distance-based path loss, computes the cell's per-user co-channel
//      interference penalties (from the *previous* epoch's attached-user
//      loads) fed through ChannelBank::set_interference_db_all, and
//      snapshots each cell's instantaneous pilot plane
//      (set_mean_snr_db_all / snr_db_all — fading/shadowing state and RNG
//      draw order untouched). With interference enabled, pilots and
//      in-cell SNR are SINR.
//   3. updates per-(user, cell) filtered pilots and applies the
//      strongest-with-hysteresis attachment rule
//      (mac::strongest_with_hysteresis — every challenger measured
//      against the *attached* pilot), executing handoffs that carry the
//      user's traffic/backoff state into the target cell while the source
//      protocol releases its reservation and queued requests, then
//      aggregates the new per-cell attached-user loads that drive the
//      next epoch's interference plane,
//   4. advances every engine by one epoch of MAC frames.
//
// Sites sit on a mac::SiteLayout — the historical line, or hexagonal
// rings with an optional frequency-reuse pattern (only co-channel cells
// interfere) and wrap-around distances for edge-free full-ring clusters.
//
// Cells are share-nothing — each engine owns its simulator, ChannelBank
// and RNG streams — so steps 2 and 4 dispatch one task per cell across a
// persistent experiment::WorkerPool (num_threads in the config). The
// cross-cell steps (pilot filtering, attachment, handoff, load
// aggregation) stay on the coordinating thread between the pool's
// barriers, and each cell's interference row is computed inside its own
// task from the frozen load vector, which keeps the world's results
// bit-identical to a serial run at any thread count — interference
// included (tests/mac/world_determinism_test.cpp).
//
// Handoffs, voice packets dropped in transit, and per-cell load all land in
// ProtocolMetrics, so the existing reporting stack works unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "experiment/worker_pool.hpp"
#include "mac/engine.hpp"
#include "mac/mobility.hpp"
#include "mac/presence.hpp"
#include "mac/scenario.hpp"
#include "mac/site_layout.hpp"
#include "traffic/modulation.hpp"

namespace charisma::mac {

/// One scheduled cell outage: the cell is dark during [start, end).
struct CellOutageWindow {
  int cell = 0;
  common::Time start = 0.0;
  common::Time end = 0.0;

  bool valid(int num_cells) const {
    return cell >= 0 && cell < num_cells && start >= 0.0 && end > start;
  }
};

struct CellularConfig {
  int num_cells = 2;

  /// Per-cell protocol scenario. The population is the whole world's (every
  /// engine instantiates all of it); `params.seed` roots the world — cells
  /// derive decorrelated sub-seeds so the same user fades independently on
  /// each cell's link. `params.channel.mean_snr_db` is re-interpreted as
  /// the link budget at `reference_distance_m` from a base station.
  ScenarioParams params{};

  MobilityConfig mobility{};

  /// Site geometry + frequency-reuse partition. The default (line layout,
  /// spacing derived from the field width, reuse 1) reproduces the
  /// historical site positions exactly.
  SiteLayoutConfig layout{};

  /// Per-attached-user transmit activity factor feeding the inter-cell
  /// uplink interference plane: each cell's aggregate load is
  /// activity × attached users, placed at its site, and co-channel loads
  /// raise every neighbour link's SINR penalty. 0 (the default) disables
  /// interference entirely — the legacy interference-free SNR world, bit
  /// for bit. A voice-dominated population transmits roughly
  /// talkspurt / (talkspurt + silence) ≈ 0.4 of the time.
  double interference_activity = 0.0;

  /// Worker threads stepping the share-nothing cells in parallel: 1 (the
  /// default) runs serially on the caller, 0 picks the hardware
  /// concurrency. Results are bit-identical at every setting.
  unsigned num_threads = 1;

  /// Coordinator shards: the world plane — mobility stepping, SiteIndex
  /// band-roster computation, pilot blending and the attachment rule — is
  /// computed over this many contiguous user-id ranges in parallel on the
  /// worker pool, each shard emitting proposal lists (suspended mobility
  /// walks, new band rosters, handoff/eviction candidates) that the
  /// coordinator merges in ascending user-id order. Free-list state, RNG
  /// derivation and every downstream draw are therefore byte-for-byte
  /// independent of the shard *and* thread count. 0 (the default) matches
  /// the resolved worker-thread count; 1 computes the plane in one range
  /// (inline when the world is serial).
  unsigned num_shards = 0;

  /// Pilot-band radius (m): a user holds channel/engine state only in the
  /// cells whose site is within this distance (wrap-aware), plus always
  /// its attached cell. 0 (the default) is the all-cells band — the
  /// historical dense world, bit for bit. A finite radius must cover the
  /// attachment geometry (≳ the site spacing) to leave handoffs a target;
  /// memory and epoch work then scale with band occupancy, not with
  /// users × cells.
  double pilot_band_radius_m = 0.0;

  /// Attachment policy (mac::strongest_with_hysteresis inputs).
  double handoff_hysteresis_db = 4.0;
  /// Pilot low-pass filter time constant (s) — suppresses fading-rate
  /// ping-pong.
  common::Time pilot_filter_tau = 0.2;
  /// Mobility/attachment decision cadence (s).
  common::Time decision_interval = 20e-3;

  // ---- Distance -> mean SNR (log-distance path loss) ----
  double path_loss_exponent = 3.5;
  double reference_distance_m = 200.0;
  /// Distances clamp here so a user standing on a site keeps a finite SNR.
  double min_distance_m = 10.0;

  /// Shadowing decorrelation *distance* (Gudmundson): when > 0 and users
  /// move, each cell's shadow_tau is derived as distance / speed, so slow
  /// users see slowly evolving shadowing and vehicular users churn through
  /// it — which is what makes the handoff rate speed-dependent. 0 keeps
  /// params.channel.shadow_tau as configured.
  double shadow_decorrelation_m = 25.0;

  /// Cell-outage fault schedule. While a cell is dark its pilot reads the
  /// sentinel floor (nobody attaches), its attached users are force-evicted
  /// to their strongest lit neighbour — in-flight voice dropped and counted
  /// as voice_dropped_outage — and on recovery the pilot filter restarts
  /// from a fresh snapshot so re-attachment is not delayed by a stale
  /// filtered history. An epoch is dark iff its start time falls inside a
  /// window. Empty (the default) preserves legacy runs bit for bit.
  std::vector<CellOutageWindow> outages{};

  /// Spatio-temporal traffic modulation (flash crowds, diurnal tides):
  /// the coordinator rescales every user's source intensity each epoch
  /// from its position. kNone (the default) applies nothing.
  traffic::TrafficModulationConfig modulation{};

  bool valid() const {
    for (const auto& o : outages) {
      if (!o.valid(num_cells)) return false;
    }
    return num_cells >= 1 && params.valid() && mobility.valid() &&
           layout.valid() && pilot_band_radius_m >= 0.0 &&
           interference_activity >= 0.0 &&
           interference_activity <= 1.0 && handoff_hysteresis_db >= 0.0 &&
           pilot_filter_tau > 0.0 && decision_interval > 0.0 &&
           path_loss_exponent > 0.0 && reference_distance_m > 0.0 &&
           min_distance_m > 0.0 && shadow_decorrelation_m >= 0.0 &&
           modulation.valid();
  }
};

/// Builds the protocol engine for one cell (typically wraps
/// protocols::make_protocol; injected to keep mac/ independent of the
/// protocol catalogue).
using EngineFactory =
    std::function<std::unique_ptr<ProtocolEngine>(const ScenarioParams&)>;

class CellularWorld {
 public:
  CellularWorld(const CellularConfig& config, const EngineFactory& factory);

  /// Runs `warmup` seconds (all metrics then reset, handoff counter
  /// included), then `measure` seconds, in decision-interval epochs. May be
  /// called repeatedly; windows are monotone like ProtocolEngine::run.
  void run(common::Time warmup, common::Time measure);

  /// Advances the world by `duration` seconds of epochs with NO metric
  /// reset — counters keep accumulating across calls. This is run()'s
  /// measurement loop without the warmup bookkeeping; the frame_alloc
  /// suite wraps it in a counting allocator to pin the steady-state epoch
  /// path (band maintenance included) as allocation-free.
  void advance(common::Time duration);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  ProtocolEngine& cell(int c) { return *cells_.at(static_cast<std::size_t>(c)); }
  const ProtocolMetrics& cell_metrics(int c) const {
    return cells_.at(static_cast<std::size_t>(c))->metrics();
  }
  /// Sum/merge of every cell's metrics — the whole-world view.
  ProtocolMetrics aggregate_metrics() const;

  /// Handoffs executed since the last metrics reset.
  std::int64_t handoffs() const { return handoffs_; }
  int attached_cell(common::UserId user) const {
    return attached_.at(static_cast<std::size_t>(user));
  }
  Vec2 site_position(int c) const { return layout_.position(c); }
  const SiteLayout& layout() const { return layout_; }
  /// Whether the uplink interference plane is active
  /// (interference_activity > 0).
  bool interference_enabled() const {
    return config_.interference_activity > 0.0;
  }
  /// Current SINR penalty (dB, >= 0) on the (user, cell) link; exactly 0
  /// when the plane is disabled or the cell has no co-channel load. The
  /// user must be resident in cell `c`'s band.
  double interference_db(common::UserId user, int c) const {
    auto& cell = *cells_.at(static_cast<std::size_t>(c));
    return cell.channel_bank().interference_db(cell.user(user).channel().index());
  }
  /// The aggregate load (activity × attached users) cell `c` contributed
  /// to the current epoch's interference plane.
  double cell_load(int c) const {
    return cell_load_.at(static_cast<std::size_t>(c));
  }
  const MobilityModel& mobility() const { return mobility_; }
  common::Time now() const { return now_; }
  unsigned thread_count() const { return pool_ ? pool_->thread_count() : 1; }
  /// Resolved coordinator shard count (num_shards after the 0 = auto and
  /// population clamps).
  unsigned shard_count() const { return num_shards_; }
  /// Row strips each cell's SNR-plane task is split into (> 1 only when
  /// the pool has more workers than cells and the bank is eager).
  int plane_strips() const { return plane_strips_; }

  /// Cumulative wall-clock split of the epoch loop since the last run()
  /// measurement window began (reset together with the metrics):
  /// coordinator-only merge/apply work vs the sharded world-plane
  /// barriers vs the per-cell plane/frame barriers.
  struct EpochTimings {
    double serial_plane_s = 0.0;  ///< coordinator merge/apply/aggregate
    double shard_plane_s = 0.0;   ///< sharded world-plane phases
    double cell_plane_s = 0.0;    ///< per-cell SNR plane + MAC frames
    std::uint64_t epochs = 0;
  };
  const EpochTimings& epoch_timings() const { return timings_; }

  /// Whether cell `c` is dark in the current epoch (always false without
  /// an outage schedule).
  bool cell_dark(int c) const {
    return !dark_.empty() && dark_[static_cast<std::size_t>(c)] != 0;
  }
  /// Number of users currently attached to cell `c` — an O(1) read of the
  /// per-cell counter maintained by initialize_attachments / handoff /
  /// evict (debug builds reconcile it against the full scan).
  int attached_count(int c) const;

  /// Cells whose pilot band currently contains `user`, ascending — test
  /// visibility into the sparse-presence bookkeeping.
  std::vector<int> band_cells(common::UserId user) const;

  /// Mean SNR (dB) the path-loss model assigns at distance `d_m` — exposed
  /// for tests and the bench's sanity prints.
  double mean_snr_at_distance_db(double d_m) const;

 private:
  /// One (user, cell) band residency: the cell, the user's engine/bank
  /// slot there, and the filtered pilot. `fresh` marks entries admitted
  /// this epoch: their first blend starts the filter from the snapshot
  /// instead of decaying from an empty history.
  struct BandPilot {
    int cell = 0;
    std::uint32_t slot = 0;
    double pilot_db = 0.0;
    bool fresh = true;
  };

  /// One attachment-phase proposal: user moves to cell `to`, either as an
  /// ordinary hysteresis handoff or as a forced outage eviction.
  struct AttachMove {
    int user = 0;
    int to = 0;
    bool evict = false;
  };

  /// Per-shard proposal arena — everything a world-plane shard writes.
  /// Shards own disjoint arenas, so the parallel phases share nothing;
  /// vectors are clear()ed per epoch and reach steady capacity, after
  /// which the epoch path allocates nothing.
  struct ShardArena {
    std::vector<MobilityModel::Suspended> suspended;
    /// Concatenated per-user new band rosters (ascending cells per user)
    /// with offsets[k] .. offsets[k+1] delimiting the k-th user of the
    /// shard's range.
    std::vector<int> band_cells;
    std::vector<std::uint32_t> band_offsets;
    std::vector<AttachMove> moves;
    /// Attachment-rule gather scratch (one user's pilots + cell ids).
    std::vector<double> pilot_scratch;
    std::vector<int> cell_of_scratch;
    /// SiteIndex query dedup scratch (the thread-safe overload).
    std::vector<char> mark_scratch;
  };

  /// Runs fn(shard, begin, end) over the contiguous user-id ranges of the
  /// resolved shard decomposition — on the pool when configured, inline
  /// otherwise. The decomposition depends only on (users, num_shards_),
  /// never on the thread count.
  void for_each_user_shard(
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Sharded mobility step to absolute time `t`: phase A advances every
  /// shard's trajectories draw-free (suspending random-waypoint arrivals),
  /// phase B resumes the suspended walks on the coordinator in ascending
  /// user order — consuming the shared mobility stream in exactly the
  /// serial advance_to draw sequence.
  void advance_mobility(common::Time t);

  /// Sharded band-roster proposals: each shard queries SiteIndex for its
  /// users' new cell sets (plus the pinned attached cell when
  /// `include_attached`) into its arena. Pure computation — no engine is
  /// touched.
  void propose_bands(bool include_attached);
  /// Coordinator merge of the band proposals in ascending user-id order:
  /// admits entrants into / releases leavers from the cell engines and
  /// rebuilds band_[u]. The deterministic admit/release order is what
  /// keeps the banks' free lists, and therefore the whole world,
  /// bit-identical at any shard/thread count.
  void apply_band_proposals();
  /// The two-pointer diff of one user's old band against its proposed
  /// cell set (both ascending), issuing band_release/band_admit.
  void update_user_band(int u, std::span<const int> cells);
  /// propose + apply (construction; epochs call the phases directly).
  void update_bands(bool include_attached);
  /// Grows each cell's plane scratch rows to the bank's current row count
  /// (vacant rows are never read; they only keep the spans full-size).
  void resize_plane_rows();
  void initialize_attachments();
  /// Per-cell epoch task (runs on the pool): over the cell's band — never
  /// users × cells — re-anchor the mean-SNR plane from the members'
  /// positions, compute each member's co-channel SINR penalty directly
  /// from the coordinator-frozen load vector (one pass; the dense world's
  /// stage-contributions-then-sum split collapses because each (user,
  /// interferer) term is recomputed in place, same expressions in the
  /// same order), feed the bank, and take the pilot snapshot into this
  /// cell's slot-indexed plane row.
  void update_cell_snr_plane(int c);
  /// One contiguous row strip of update_cell_snr_plane — the same per-row
  /// math over rows [strip, strip+1) of the cell's plane_strips_-way row
  /// partition, fed to the bank through the contiguous-span range APIs.
  /// Pure per-row writes, so the strip count never changes a bit.
  void update_plane_strip(int c, int strip);
  /// The per-epoch plane update: one share-nothing barrier (cells, or
  /// cells × strips when the pool has spare workers), interference
  /// included, followed by the coordinator's penalty-mean replay.
  void update_snr_planes();
  /// Coordinator replay of each cell's per-member interference penalties
  /// (band order == id order) into the engines' penalty-mean metric —
  /// hoisted out of the cell tasks so strips need no accumulator, summing
  /// the same values in the same order as the historical inline loop.
  void note_interference_epochs();
  /// Coordinator step after attachment: refreshes cell_load_ (activity ×
  /// attached users per cell) for the next epoch's interference plane.
  void update_cell_loads();
  /// Low-pass blend of the per-cell snapshot rows into one user's band
  /// entries; alpha = 1 overwrites (initial attachment), pilot_alpha_
  /// filters. Fresh entries restart from the snapshot.
  void blend_user_pilots(std::size_t u, double alpha);
  /// blend_user_pilots over the whole population (construction).
  void blend_pilots(double alpha);
  /// Sharded attachment phase: each shard blends its users' pilots and
  /// evaluates the outage-eviction / strongest-with-hysteresis rule
  /// against the frozen epoch snapshot, emitting AttachMove proposals.
  /// Valid because a user's decision reads only its own band pilots and
  /// its own attached cell — nothing another user's same-epoch move
  /// mutates.
  void decide_attachments();
  /// One user's blend + decision; returns true when a move is proposed.
  bool decide_user(int u, ShardArena& arena, AttachMove& move);
  /// Coordinator replay of the proposed moves in ascending user-id order:
  /// executes handoff/evict so every engine mutation (and RNG draw) lands
  /// in the serial order.
  void apply_attachment_moves();
  void handoff(common::UserId user, int from, int to);
  /// True when the outage schedule darkens cell `c` at time `t`.
  bool is_dark(int c, common::Time t) const;
  /// Rolls the per-epoch dark flags forward to epoch-start time `t`
  /// (prev_dark_ keeps the previous epoch's flags for the recovery reset).
  void update_outage_flags(common::Time t);
  /// Forced move off a dark cell: like handoff, but counted as an outage
  /// eviction (voice in flight -> voice_dropped_outage) and exempt from
  /// hysteresis.
  void evict(common::UserId user, int from, int to);
  /// Rescales every user's traffic sources from the modulation config and
  /// its current position (coordinator step; no-op for kNone).
  void apply_traffic_modulation(common::Time t);
  /// Runs fn(c) for every cell — on the pool when configured, inline
  /// otherwise.
  void for_each_cell(const std::function<void(std::size_t)>& fn);
  void run_window(common::Time duration);

  CellularConfig config_;
  std::vector<std::unique_ptr<ProtocolEngine>> cells_;
  SiteLayout layout_;
  SiteIndex site_index_;
  MobilityModel mobility_;
  std::unique_ptr<experiment::WorkerPool> pool_;  ///< null when serial
  std::vector<int> attached_;          ///< per-user cell index
  /// Per-user band residencies, ascending by cell — the sparse
  /// replacement for the dense users×cells filtered-pilot plane.
  std::vector<std::vector<BandPilot>> band_;
  /// Per-cell slot-indexed epoch scratch: the mean-SNR/pilot snapshot row
  /// fed to (and read back from) the cell's bank. Only band members'
  /// slots are written or read.
  std::vector<std::vector<double>> plane_rows_;
  /// Per-cell slot-indexed SINR penalty rows; empty when the plane is
  /// disabled.
  std::vector<std::vector<double>> interference_rows_;
  /// Per-cell attached-user counters (mirrors counting attached_; the
  /// scan is debug-assert only).
  std::vector<int> attach_counts_;
  /// Coordinator scratch: band-diff merge target.
  std::vector<BandPilot> band_scratch_;
  /// Per-shard proposal arenas (size num_shards_; arena s is written only
  /// by shard s's task and read only by the coordinator between barriers).
  std::vector<ShardArena> shard_arenas_;
  /// Per-cell aggregate load (activity × attached users) frozen by the
  /// coordinator each epoch; read-only inside the parallel cell tasks.
  std::vector<double> cell_load_;
  /// Per-cell co-channel interferer site lists (reuse partition).
  std::vector<std::vector<int>> cochannel_;
  /// Per-epoch outage flags (empty when no outage schedule): frozen by the
  /// coordinator before the parallel plane tasks read them.
  std::vector<char> dark_;
  std::vector<char> prev_dark_;
  double pilot_alpha_ = 1.0;
  // Path loss in per-site precomputed form: db = C - K/2 * ln(d²) with the
  // reference-distance log10 folded into C, so the per-(user, cell) epoch
  // cost is one ln of the squared distance — no sqrt, no division-by-d0.
  double path_loss_c_db_ = 0.0;
  double path_loss_half_k_ = 0.0;
  double min_distance_sq_m2_ = 0.0;
  unsigned num_shards_ = 1;
  int plane_strips_ = 1;
  EpochTimings timings_;
  std::int64_t handoffs_ = 0;
  common::Time now_ = 0.0;
};

}  // namespace charisma::mac
