#include "mac/barring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mac/load_estimator.hpp"

namespace charisma::mac {

BarringController::BarringController(const BarringConfig& cfg) : cfg_(cfg) {
  if (!cfg.valid()) {
    throw std::invalid_argument("BarringController: invalid config");
  }
}

void BarringController::update(const LoadEstimator& estimator) {
  const double idx = estimator.overload_index();
  if (idx > cfg_.target_high) {
    factor_ *= cfg_.step_down;
  } else if (idx < cfg_.target_low) {
    factor_ *= cfg_.step_up;
  }
  factor_ = std::clamp(factor_, cfg_.min_factor, 1.0);
}

double BarringController::voice_factor() const {
  return std::max(factor_, cfg_.voice_floor);
}

double BarringController::data_factor() const {
  return std::max(std::pow(factor_, cfg_.data_exponent), cfg_.min_factor);
}

}  // namespace charisma::mac
