// Base-station site geometry for the multi-cell world: where the sites
// stand, which sites share a frequency channel, and how distances behave
// at the layout's edge.
//
//   * kLine — sites evenly spaced along the field's horizontal midline,
//     the historical CellularWorld placement (spacing 0 derives
//     field_width / num_cells, reproducing the PR 3 positions exactly).
//   * kHex — the classic hexagonal ring layout: site 0 at the field
//     centre, ring k adding 6k sites at spacing `site_spacing_m`, filled
//     in spiral order. Full rings hold 1 / 7 / 19 / 37 ... sites.
//
// A frequency-reuse factor N partitions the sites into N channel groups;
// only co-channel sites interfere with each other. The hex partition is
// the standard rhombic-lattice colouring (N = i² + ij + j², so
// N ∈ {1, 3, 4, 7, 9, 12, 13, ...}): co-channel sites sit √N spacings
// apart, adjacent sites never share a channel (for N > 1). The line
// partition is round-robin.
//
// Full-ring hex clusters can optionally wrap around: distances are taken
// as the minimum over the cluster's seven toroidal images (the cluster
// tiles the plane under translations of norm √num_sites · spacing), which
// removes the edge cells' interference advantage in small layouts.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "mac/geometry.hpp"

namespace charisma::mac {

struct SiteLayoutConfig {
  enum class Kind { kLine, kHex };

  Kind kind = Kind::kLine;

  /// Distance between adjacent sites, metres. Line layouts accept 0 and
  /// derive field_width / num_cells (the historical placement); hex
  /// layouts require an explicit spacing.
  double site_spacing_m = 0.0;

  /// Frequency-reuse factor: sites are partitioned into this many channel
  /// groups and only co-channel sites interfere. 1 = every site on the
  /// same channel (worst-case interference). Hex layouts require a
  /// rhombic number (1, 3, 4, 7, 9, 12, ...).
  int reuse_factor = 1;

  /// Wrap distances around the cluster (hex full-ring layouts only:
  /// 1, 7, 19, ... sites). Removes layout-edge effects. The reuse
  /// pattern must be wrap-consistent: either the cluster translation
  /// maps co-channel cells onto co-channel images (always true for
  /// reuse 1), or no co-channel pair exists at all — every cell on its
  /// own channel, e.g. 7 cells at reuse 7 or 19 at reuse 19 — so only
  /// serving-link distances wrap. Inconsistent combinations are
  /// rejected at construction.
  bool wrap_around = false;

  bool valid() const { return site_spacing_m >= 0.0 && reuse_factor >= 1; }
};

class SiteLayout {
 public:
  SiteLayout() = default;

  /// Builds the site map for `num_cells` sites over the given field.
  /// Throws std::invalid_argument for inconsistent configurations (hex
  /// without a spacing, non-rhombic hex reuse, wrap-around outside a
  /// full-ring hex cluster).
  SiteLayout(const SiteLayoutConfig& config, int num_cells,
             double field_width_m, double field_height_m);

  int num_sites() const { return static_cast<int>(sites_.size()); }
  Vec2 position(int site) const {
    return sites_.at(static_cast<std::size_t>(site));
  }
  const std::vector<Vec2>& positions() const { return sites_; }
  const SiteLayoutConfig& config() const { return config_; }

  /// The site's frequency channel, in [0, reuse_factor).
  int reuse_channel(int site) const {
    return channel_.at(static_cast<std::size_t>(site));
  }
  bool co_channel(int a, int b) const {
    return channel_.at(static_cast<std::size_t>(a)) ==
           channel_.at(static_cast<std::size_t>(b));
  }
  /// Every co-channel site other than `site` — the interferers of its
  /// cell. CellularWorld precomputes these lists once per world.
  std::vector<int> co_channel_interferers(int site) const;

  /// Cartesian translations under which distances are taken (always
  /// contains {0, 0}; seven entries for a wrap-around hex cluster).
  const std::vector<Vec2>& wrap_offsets() const { return wrap_offsets_; }
  bool wraps() const { return wrap_offsets_.size() > 1; }

  /// Squared distance from `p` to `site` under the wrap metric (minimum
  /// over the layout's images). The no-wrap fast path is the plain
  /// squared distance, bit-identical to the historical computation.
  double distance_sq(const Vec2& p, int site) const {
    const Vec2 s = sites_[static_cast<std::size_t>(site)];
    double best = distance_sq_m2(p, s);
    for (std::size_t i = 1; i < wrap_offsets_.size(); ++i) {
      const Vec2 image{s.x + wrap_offsets_[i].x, s.y + wrap_offsets_[i].y};
      const double d = distance_sq_m2(p, image);
      if (d < best) best = d;
    }
    return best;
  }

  /// Sites in a hex layout of `rings` full rings: 3k(k+1) + 1.
  static int hex_sites_for_rings(int rings);
  /// Whether `n` is a full-ring hex site count (1, 7, 19, 37, ...).
  static bool is_full_ring_count(int n);
  /// Whether `n` is representable as i² + ij + j² (a valid hex reuse
  /// factor): 1, 3, 4, 7, 9, 12, 13, ...
  static bool is_rhombic_number(int n);
  /// Field (width, height) that contains the hex grid with one spacing of
  /// margin on every side — what charisma_sim sizes the mobility field
  /// with for layout=hex.
  static std::pair<double, double> hex_field_extent(int num_cells,
                                                    double site_spacing_m);

 private:
  SiteLayoutConfig config_{};
  std::vector<Vec2> sites_;
  std::vector<int> channel_;
  std::vector<Vec2> wrap_offsets_{Vec2{0.0, 0.0}};
};

/// Per-(user, serving-cell) SINR penalty of the uplink interference plane:
/// 10·log10(1 + Σ_s load[s] · INR_s(p)) over the serving site's co-channel
/// `interferers`, where INR_s is the interference-to-noise ratio of site
/// s's aggregate load placed at the site under the world's path-loss model
/// (db(d) = C − K/2 · ln(max(d², d_min²))). Exactly 0 when every
/// interferer load is 0, and monotone non-decreasing in each load — the
/// properties tests/mac/cellular_world_test.cpp pins.
double interference_penalty_db(const SiteLayout& layout,
                               std::span<const int> interferers,
                               std::span<const double> cell_load,
                               const Vec2& p, double path_loss_c_db,
                               double path_loss_half_k,
                               double min_distance_sq_m2);

/// Convenience overload for tests: interferers resolved from the layout's
/// reuse partition (every co-channel site except `serving`).
double interference_penalty_db(const SiteLayout& layout, int serving,
                               std::span<const double> cell_load,
                               const Vec2& p, double path_loss_c_db,
                               double path_loss_half_k,
                               double min_distance_sq_m2);

}  // namespace charisma::mac
