#include "mac/engine.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace charisma::mac {

namespace {
constexpr std::uint64_t kBaseStationStream = 0x4000'0000ULL;
}

ProtocolEngine::ProtocolEngine(const ScenarioParams& params)
    : params_(params),
      geom_(params.geometry),
      fixed_phy_(params.fixed_phy_reference_db, params.phy.target_ber,
                 params.geometry.packet_bits),
      adaptive_phy_(phy::ModeTable::abicm6(params.phy.target_ber),
                    [&params] {
                      phy::PhyConfig cfg = params.phy;
                      cfg.slot_symbols = params.geometry.slot_symbols;
                      cfg.packet_bits = params.geometry.packet_bits;
                      return cfg;
                    }()),
      csi_estimator_(params.csi_error_sigma_db,
                     params.csi_validity_frames *
                         params.geometry.frame_duration),
      bs_rng_(params.seed, kBaseStationStream) {
  if (!params.valid()) {
    throw std::invalid_argument("ProtocolEngine: invalid scenario parameters");
  }
  if (params.barring.enabled) {
    load_estimator_.emplace(params.barring.ewma_alpha);
    barring_.emplace(params.barring);
  }
  // The channel grid step must match the frame cadence so per-frame draws
  // line up with the coherence model.
  params_.channel.sample_interval = geom_.frame_duration;
  // Opt-in demand-driven materialization: advance_world moves the bank
  // clock in O(1) and the frame's touch sets / reads materialize users.
  bank_.set_lazy(params_.lazy_channel);
  if (!params_.defer_population) {
    // Dense (historical) population: every user admitted in id order —
    // slot == id throughout — present with live traffic from the start.
    // defer_population leaves the engine empty; the world admits each
    // cell's pilot band instead, so memory scales with band occupancy
    // rather than with the population.
    const auto total = static_cast<std::size_t>(params.total_users());
    bank_.reserve(total);
    users_.reserve(total);
    band_.reserve(total);
    for (int i = 0; i < params.total_users(); ++i) {
      band_admit(static_cast<common::UserId>(i), true);
    }
  }
}

MobileUser& ProtocolEngine::user(common::UserId id) {
  if (identity_) {
    if (id < 0 || id >= static_cast<common::UserId>(users_.size())) {
      throw std::out_of_range("ProtocolEngine::user: bad id");
    }
    return *users_[static_cast<std::size_t>(id)];
  }
  const auto it = std::lower_bound(
      band_.begin(), band_.end(), id,
      [](const BandMember& m, common::UserId v) { return m.id < v; });
  if (it == band_.end() || it->id != id) {
    throw std::out_of_range("ProtocolEngine::user: not band-resident");
  }
  return *users_[it->slot];
}

bool ProtocolEngine::band_resident(common::UserId id) const {
  const auto it = std::lower_bound(
      band_.begin(), band_.end(), id,
      [](const BandMember& m, common::UserId v) { return m.id < v; });
  return it != band_.end() && it->id == id;
}

MobileUser& ProtocolEngine::band_admit(common::UserId id,
                                       bool materialize_traffic) {
  if (id < 0 || id >= static_cast<common::UserId>(params_.total_users())) {
    throw std::out_of_range("ProtocolEngine::band_admit: bad id");
  }
  const auto pos = std::lower_bound(
      band_.begin(), band_.end(), id,
      [](const BandMember& m, common::UserId v) { return m.id < v; });
  if (pos != band_.end() && pos->id == id) {
    throw std::logic_error("ProtocolEngine::band_admit: already resident");
  }
  const ServiceType service = id < params_.num_voice_users
                                  ? ServiceType::kVoice
                                  : ServiceType::kData;
  std::uint32_t visit = 0;
  if (!rebirths_.empty()) {
    const auto it = rebirths_.find(id);
    if (it != rebirths_.end()) visit = it->second;
  }
  auto u = std::make_unique<MobileUser>(id, service, params_, bank_, visit);
  // The bank decides the slot (fresh row or a reused free-list one); the
  // engine's storage mirrors the bank's rows one-for-one.
  const std::size_t slot = u->channel().index();
  if (slot == users_.size()) {
    users_.push_back(std::move(u));
  } else {
    users_[slot] = std::move(u);
  }
  if (slot != static_cast<std::size_t>(id)) identity_ = false;
  band_.insert(pos, BandMember{id, static_cast<std::uint32_t>(slot)});
  MobileUser& ref = *users_[slot];
  if (materialize_traffic) {
    ref.ensure_traffic(params_);
    ref.set_present(true);
  }
  return ref;
}

void ProtocolEngine::band_release(common::UserId id) {
  const auto it = std::lower_bound(
      band_.begin(), band_.end(), id,
      [](const BandMember& m, common::UserId v) { return m.id < v; });
  if (it == band_.end() || it->id != id) {
    throw std::logic_error("ProtocolEngine::band_release: not band-resident");
  }
  const std::uint32_t slot = it->slot;
  if (users_[slot]->present()) {
    throw std::logic_error("ProtocolEngine::band_release: still attached");
  }
  ++rebirths_[id];
  users_[slot].reset();
  bank_.release_user(slot);
  band_.erase(it);
  identity_ = false;
}

const ProtocolMetrics& ProtocolEngine::run(common::Time warmup,
                                           common::Time measure) {
  if (warmup < 0.0 || measure <= 0.0) {
    throw std::invalid_argument("ProtocolEngine::run: invalid durations");
  }
  // Durations are relative to now(): a second run() continues the same
  // simulation and measures its own window. (Absolute durations would make
  // a repeated call with warmup <= now() silently return a zero-frame
  // window whose rate helpers divide by zero.)
  advance_by(warmup);
  metrics_.reset();
  advance_by(measure);
  return metrics_;
}

void ProtocolEngine::advance_by(common::Time duration) {
  if (duration <= 0.0) return;
  if (!started_) {
    started_ = true;
    // The frame loop rides the simulator's periodic slot: one closure
    // installed here, rescheduled by returning the next frame's duration.
    // Steady-state frame advancement therefore allocates nothing — no
    // EventQueue node, no per-frame std::function.
    sim_.set_periodic(sim_.now(), [this] { return frame_tick(); });
  }
  sim_.run_until(sim_.now() + duration);
}

void ProtocolEngine::detach_user(common::UserId id) {
  auto& u = user(id);
  if (!u.present()) return;
  on_user_detached(id);
  if (u.is_voice()) {
    metrics_.voice_dropped_handoff += u.drop_pending_voice();
  }
  ++metrics_.handoffs_out;
  u.set_present(false);
}

void ProtocolEngine::attach_user(common::UserId id) {
  auto& u = user(id);
  if (u.present()) return;
  ++metrics_.handoffs_in;
  // A shell admitted into the band gets its MAC stream here; the traffic
  // sources were already adopted from the previous cell (handoff
  // continuity wins over a fresh draw), so ensure_traffic only fills gaps.
  u.ensure_traffic(params_);
  u.set_present(true);
  on_user_attached(id);
}

void ProtocolEngine::attach_user_initial(common::UserId id) {
  auto& u = user(id);
  u.ensure_traffic(params_);
  u.set_present(true);
  on_user_attached(id);
}

void ProtocolEngine::evict_user(common::UserId id) {
  auto& u = user(id);
  if (!u.present()) return;
  on_user_detached(id);
  if (u.is_voice()) {
    metrics_.voice_dropped_outage += u.drop_pending_voice();
  }
  ++metrics_.outage_evictions;
  u.set_present(false);
}

common::Time ProtocolEngine::frame_tick() {
  advance_world();
  const common::Time duration = process_frame();
  if (duration <= 0.0) {
    throw std::logic_error("process_frame returned non-positive duration");
  }
  ++frame_index_;
  ++metrics_.frames;
  metrics_.measured_time += duration;
  // Materialization accounting: fold the bank's counter deltas into the
  // metrics. jump-event delta = users that did channel work this frame;
  // covered-frames delta beyond that = user-frames lazily skipped earlier
  // and paid for by one jump now. Eager banks report stride exactly 1.
  {
    const auto stats = bank_.lazy_stats();
    const std::int64_t events = stats.jump_events - lazy_events_seen_;
    const std::int64_t frames = stats.jump_frames - lazy_frames_seen_;
    metrics_.users_advanced_frames += events;
    metrics_.users_skipped_frames += frames - events;
    lazy_events_seen_ = stats.jump_events;
    lazy_frames_seen_ = stats.jump_frames;
  }
  if (barring_ &&
      ++barr_win_frames_ >= params_.barring.update_interval_frames) {
    barring_control_step();
  }
  return duration;  // RMAV/DRMA: data-dependent; static protocols: constant
}

void ProtocolEngine::barring_control_step() {
  LoadSignals raw;
  raw.attached_users =
      static_cast<double>(barr_win_user_frames_) / barr_win_frames_;
  raw.collision_ratio =
      barr_win_minislots_ > 0
          ? static_cast<double>(barr_win_collisions_) / barr_win_minislots_
          : 0.0;
  raw.queue_depth = static_cast<double>(pending_request_count());
  raw.interference_db = last_interference_db_;
  load_estimator_->observe(raw);
  barring_->update(*load_estimator_);
  metrics_.barring_factor_voice.add(barring_->voice_factor());
  metrics_.barring_factor_data.add(barring_->data_factor());
  barr_win_minislots_ = 0;
  barr_win_collisions_ = 0;
  barr_win_user_frames_ = 0;
  barr_win_frames_ = 0;
}

void ProtocolEngine::advance_world() {
  const common::Time t = sim_.now();
  // Eager (default): one batched SoA pass over every user's
  // fading/shadowing state instead of per-user pointer-chasing walks.
  // Detached users' channels keep evolving (their pilots are what the
  // attachment policy measures and the draw order must not depend on the
  // attachment pattern); only their traffic is frozen — the attached
  // cell's copy is authoritative and is carried over on handoff.
  //
  // Lazy (params.lazy_channel): an O(1) clock move. Users materialize via
  // the protocol's touch_channels sets or transparently on first read —
  // an idle user's whole gap collapses into one closed-form jump when it
  // next matters (detached users' included, at the epoch pilot plane).
  if (params_.lazy_channel) {
    bank_.set_time(t);
  } else {
    bank_.advance_all_to(t);
  }
  std::int64_t present = 0;
  for (auto& u : users()) {
    if (!u.present()) continue;
    ++present;
    if (u.is_voice()) {
      const auto update = u.voice().on_frame(t);
      metrics_.voice_generated += update.packets_generated;
      metrics_.voice_dropped_deadline += update.packets_expired;
    } else {
      const auto update = u.data().on_frame(t);
      metrics_.data_generated += update.packets_arrived;
    }
  }
  metrics_.attached_user_frames += present;
  if (barring_) barr_win_user_frames_ += present;
}

double ProtocolEngine::permission_prob(const MobileUser& u) const {
  return u.is_voice() ? params_.voice_permission_prob
                      : params_.data_permission_prob;
}

bool ProtocolEngine::barring_blocks(MobileUser& u) {
  if (!barring_) return false;
  const double f =
      u.is_voice() ? barring_->voice_factor() : barring_->data_factor();
  if (f >= 1.0) return false;  // open gate: no draw, no count
  ++metrics_.barring_checks;
  if (u.rng().bernoulli(f)) return false;
  ++(u.is_voice() ? metrics_.barring_barred_voice
                  : metrics_.barring_barred_data);
  return true;
}

ContentionOutcome ProtocolEngine::run_contention(
    const std::vector<common::UserId>& candidates, int minislots,
    int symbols_per_request) {
  // Contenders are this frame's dense read set (winners get CSI estimates,
  // CHARISMA ranks them by channel): one batched materialization beats the
  // scattered on-read jumps a lazy bank would otherwise pay.
  touch_channels(candidates);
  auto outcome = run_request_phase(
      candidates, minislots,
      [this](common::UserId id) {
        const auto& u = user(id);
        return permission_prob(u) * u.backoff_scale();
      },
      [this](common::UserId id) -> common::TrafficRng& {
        return user(id).rng();
      });
  note_contention(outcome.tally);

  // Downlink ACK loss: the base station acknowledged, but the device never
  // heard it — it will time out and retry, and the base station's copy of
  // the request is dropped (it would be superseded by the retry anyway).
  if (params_.ack_loss_prob > 0.0) {
    std::erase_if(outcome.winners, [this](common::UserId) {
      if (bs_rng_.bernoulli(params_.ack_loss_prob)) {
        ++metrics_.acks_lost;
        return true;
      }
      return false;
    });
  }

  for (common::UserId id : outcome.transmitted) {
    user(id).note_contention_collision();
  }
  for (common::UserId id : outcome.winners) {
    user(id).note_contention_success();
  }

  const double symbols = symbols_per_request > 0
                             ? symbols_per_request
                             : geom_.minislot_symbols;
  note_request_energy(outcome.tally.transmissions, symbols,
                      static_cast<int>(outcome.winners.size()));
  return outcome;
}

double ProtocolEngine::burst_energy(double symbols) const {
  return params_.energy.burst_energy_j(symbols, geom_.symbol_rate());
}

void ProtocolEngine::note_request_energy(int bursts, double symbols_each,
                                         int useful) {
  const double total = bursts * burst_energy(symbols_each);
  metrics_.energy_request_j += total;
  const int wasted_bursts = std::max(0, bursts - useful);
  metrics_.energy_wasted_j += wasted_bursts * burst_energy(symbols_each);
}

void ProtocolEngine::note_pilot_energy() {
  metrics_.energy_pilot_j += burst_energy(geom_.minislot_symbols);
}

channel::CsiEstimate ProtocolEngine::estimate_csi(MobileUser& u) {
  return csi_estimator_.estimate(u.channel().snr_linear(), sim_.now(),
                                 u.rng());
}

std::optional<int> ProtocolEngine::fresh_mode_estimate(MobileUser& u) {
  return adaptive_phy_.select_mode(estimate_csi(u).snr_linear);
}

void ProtocolEngine::transmit_voice_fixed(MobileUser& u) {
  note_assigned_slot();
  auto& src = u.voice();
  if (!src.has_packet()) {
    note_wasted_slot();
    return;  // device stays silent: no energy spent
  }
  const bool ok = fixed_phy_.transmit_packet(u.channel().snr_linear(), u.rng());
  src.consume_packet();
  const double energy = burst_energy(geom_.slot_symbols);
  metrics_.energy_info_j += energy;
  if (ok) {
    ++metrics_.voice_delivered;
    note_user_delivery(u.id(), 1);
  } else {
    ++metrics_.voice_error_lost;
    metrics_.energy_wasted_j += energy;  // the paper's motivation 2
  }
}

void ProtocolEngine::transmit_voice_adaptive(MobileUser& u, int mode) {
  note_assigned_slot();
  auto& src = u.voice();
  if (!src.has_packet()) {
    note_wasted_slot();
    return;
  }
  if (adaptive_phy_.packets_per_slot(mode) < 1) {
    // Mode too low to carry a whole packet: the allocation is wasted and
    // the packet stays pending (it may still make a later frame before its
    // deadline). The adaptive transmitter stays silent — its energy
    // advantage over the blind fixed PHY.
    note_wasted_slot();
    return;
  }
  const bool ok =
      adaptive_phy_.transmit_packet(mode, u.channel().snr_linear(), u.rng());
  src.consume_packet();
  const double energy = burst_energy(geom_.slot_symbols);
  metrics_.energy_info_j += energy;
  if (ok) {
    ++metrics_.voice_delivered;
    note_user_delivery(u.id(), 1);
  } else {
    ++metrics_.voice_error_lost;
    metrics_.energy_wasted_j += energy;
  }
}

int ProtocolEngine::transmit_data_fixed(MobileUser& u) {
  note_assigned_slot();
  auto& src = u.data();
  if (src.empty()) {
    note_wasted_slot();
    return 0;
  }
  const common::Time arrival = src.head_arrival();
  src.pop_head();
  ++metrics_.data_tx_attempts;
  const double energy = burst_energy(geom_.slot_symbols);
  metrics_.energy_info_j += energy;
  if (fixed_phy_.transmit_packet(u.channel().snr_linear(), u.rng())) {
    ++metrics_.data_delivered;
    metrics_.data_delay_s.add(sim_.now() - arrival);
    metrics_.data_delay_hist.add(sim_.now() - arrival);
    note_user_delivery(u.id(), 1);
    return 1;
  }
  ++metrics_.data_retransmissions;
  metrics_.energy_wasted_j += energy;
  src.push_front(std::span<const common::Time>(&arrival, 1));
  return 0;
}

int ProtocolEngine::transmit_data_adaptive(MobileUser& u, int mode,
                                           int max_packets) {
  note_assigned_slot();
  auto& src = u.data();
  const int cap = std::min(adaptive_phy_.packets_per_slot(mode), max_packets);
  if (cap < 1 || src.empty()) {
    note_wasted_slot();
    return 0;
  }
  const double snr = u.channel().snr_linear();
  const common::Time t = sim_.now();
  const int to_send = std::min(cap, src.backlog());
  int delivered = 0;
  // Reused across frames: a steady-state retransmission burst must not
  // allocate (the frame_alloc pin covers this path).
  std::vector<common::Time>& failed = retx_scratch_;
  failed.clear();
  for (int i = 0; i < to_send; ++i) {
    const common::Time arrival = src.head_arrival();
    src.pop_head();
    ++metrics_.data_tx_attempts;
    if (adaptive_phy_.transmit_packet(mode, snr, u.rng())) {
      ++metrics_.data_delivered;
      metrics_.data_delay_s.add(t - arrival);
      metrics_.data_delay_hist.add(t - arrival);
      ++delivered;
    } else {
      ++metrics_.data_retransmissions;
      failed.push_back(arrival);
    }
  }
  src.push_front(failed);
  if (delivered > 0) note_user_delivery(u.id(), delivered);
  // One slot burst regardless of fill; the corrupted fraction is waste.
  const double energy = burst_energy(geom_.slot_symbols);
  metrics_.energy_info_j += energy;
  if (to_send > 0 && delivered < to_send) {
    metrics_.energy_wasted_j +=
        energy * static_cast<double>(to_send - delivered) /
        static_cast<double>(to_send);
  }
  return delivered;
}

void ProtocolEngine::note_contention(const ContentionTally& tally) {
  metrics_.request_slots += tally.minislots;
  metrics_.request_successes += tally.successes;
  metrics_.request_collisions += tally.collisions;
  metrics_.request_idle += tally.idle;
  if (barring_) {
    barr_win_minislots_ += tally.minislots;
    barr_win_collisions_ += tally.collisions;
  }
}

void ProtocolEngine::note_user_delivery(common::UserId id, int packets) {
  auto& ledger = metrics_.per_user_delivered;
  // users_ is slot-count, not population: a band-resident id can exceed
  // it, so size to whichever is larger. The dense population still gets
  // the historical users_.size()-sized ledger.
  const std::size_t need =
      std::max(users_.size(), static_cast<std::size_t>(id) + 1);
  if (ledger.size() < need) ledger.resize(need, 0);
  ledger[static_cast<std::size_t>(id)] += packets;
}


}  // namespace charisma::mac
