#include "mac/request_queue.hpp"

#include <algorithm>

namespace charisma::mac {

namespace {
constexpr double kTimeEps = 1e-9;
}

bool RequestQueue::contains(common::UserId user) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [user](const PendingRequest& r) { return r.user == user; });
}

void RequestQueue::remove(common::UserId user) {
  std::erase_if(entries_,
                [user](const PendingRequest& r) { return r.user == user; });
}

int RequestQueue::purge_expired_voice(common::Time now) {
  const auto before = entries_.size();
  std::erase_if(entries_, [now](const PendingRequest& r) {
    return r.type == RequestType::kVoice && now + kTimeEps >= r.deadline;
  });
  return static_cast<int>(before - entries_.size());
}

void RequestQueue::age_all() {
  for (auto& r : entries_) ++r.frames_waited;
}

}  // namespace charisma::mac
