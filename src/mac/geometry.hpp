// Geometry shared by every protocol on the common simulation platform:
// the TDMA frame layout (paper Fig. 4 for CHARISMA; the baselines
// re-divide the same symbol budget according to their own frame
// structures, see each protocol's header) and the planar vector type the
// spatial layers (mobility, site layout, interference) are built on.
#pragma once

#include <cmath>

#include "common/units.hpp"

namespace charisma::mac {

/// A point (or displacement) in the service area, metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Squared Euclidean distance — the path-loss planes work on squared
/// distances so the hot loops pay no sqrt.
inline double distance_sq_m2(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two points, metres.
inline double distance_m(const Vec2& a, const Vec2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

struct FrameGeometry {
  common::Time frame_duration = 2.5e-3;  ///< paper §4.1
  int num_request_slots = 12;   ///< N_r request minislots (uplink), > N_i
  int num_info_slots = 10;      ///< N_i information slots
  int num_pilot_slots = 4;      ///< N_b pilot/poll slots (CHARISMA)
  int slot_symbols = 160;       ///< symbols per information slot
  int minislot_symbols = 16;    ///< symbols per request/pilot minislot
  int packet_bits = 160;        ///< one 20 ms voice packet at 8 kbps
  int frames_per_voice_period = 8;  ///< 20 ms / 2.5 ms

  /// Symbols consumed by one uplink frame in the CHARISMA layout.
  int frame_symbols() const {
    return num_request_slots * minislot_symbols +
           num_info_slots * slot_symbols + num_pilot_slots * minislot_symbols;
  }

  /// Implied air-interface symbol rate, symbols/s.
  double symbol_rate() const {
    return static_cast<double>(frame_symbols()) / frame_duration;
  }

  common::Time voice_period() const {
    return frame_duration * frames_per_voice_period;
  }

  common::Time slot_duration() const {
    return static_cast<double>(slot_symbols) / symbol_rate();
  }

  common::Time minislot_duration() const {
    return static_cast<double>(minislot_symbols) / symbol_rate();
  }

  bool valid() const {
    return frame_duration > 0.0 && num_request_slots > 0 &&
           num_info_slots > 0 && num_pilot_slots >= 0 && slot_symbols > 0 &&
           minislot_symbols > 0 && packet_bits > 0 &&
           frames_per_voice_period > 0;
  }
};

}  // namespace charisma::mac
