// Voice reservation grid for the reservation-based baselines (D-TDMA/FR,
// D-TDMA/VR, RAMA, DRMA): a reserved voice user owns one (phase, slot)
// position — one information slot in every `frames_per_voice_period`-th
// frame, matching "the user can use a time slot in each frame every 20 msec
// until the current talkspurt terminates" (§3.4). The grid capacity is
// phases x slots positions; a full phase blocks new reservations in frames
// of that phase even if other phases have room, which is the packing
// inefficiency the paper's FCFS baselines pay.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace charisma::mac {

class ReservationGrid {
 public:
  ReservationGrid(int phases, int slots_per_phase);

  /// Reserves the lowest free slot in `phase` for `user`; nullopt when the
  /// phase is fully booked or the user already holds a reservation.
  std::optional<int> reserve(int phase, common::UserId user);

  /// Reserves the specific (phase, slot) position (used by DRMA, where a
  /// voice winner is served in — and keeps — a particular slot). Returns
  /// false if the position is taken or the user already holds one.
  bool reserve_at(int phase, int slot, common::UserId user);

  /// Releases the user's reservation; no-op when none is held.
  void release(common::UserId user);

  bool has_reservation(common::UserId user) const;

  /// The user's (phase, slot) position; nullopt when not reserved.
  struct Position {
    int phase = 0;
    int slot = 0;
  };
  std::optional<Position> position(common::UserId user) const;

  /// Users whose reservation falls in the given phase, in slot order.
  std::vector<common::UserId> due_in_phase(int phase) const;

  /// Occupant of a specific position (kNoUser when free).
  common::UserId user_at(int phase, int slot) const;

  int occupied_in_phase(int phase) const;
  int free_in_phase(int phase) const;
  int occupied_total() const { return static_cast<int>(by_user_.size()); }

  int phases() const { return static_cast<int>(grid_.size()); }
  int slots_per_phase() const { return slots_per_phase_; }

 private:
  int slots_per_phase_;
  std::vector<std::vector<common::UserId>> grid_;  ///< [phase][slot] -> user
  std::unordered_map<common::UserId, Position> by_user_;
};

}  // namespace charisma::mac
