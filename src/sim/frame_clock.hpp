// Frame arithmetic shared by the fixed-frame protocols: maps between
// simulation time and TDMA frame indices, and locates voice-packet periods
// (one packet per 8 frames at the paper's 2.5 ms frame / 20 ms voice
// period).
#pragma once

#include <cmath>

#include "common/units.hpp"

namespace charisma::sim {

class FrameClock {
 public:
  FrameClock(common::Time frame_duration, int frames_per_voice_period)
      : frame_duration_(frame_duration),
        frames_per_voice_period_(frames_per_voice_period) {}

  common::Time frame_duration() const { return frame_duration_; }
  int frames_per_voice_period() const { return frames_per_voice_period_; }

  common::Time frame_start(common::FrameIndex frame) const {
    return static_cast<double>(frame) * frame_duration_;
  }

  common::FrameIndex frame_at(common::Time t) const {
    return static_cast<common::FrameIndex>(std::floor(t / frame_duration_ +
                                                      1e-9));
  }

  /// The voice-period phase of a frame: frames with equal phase are exactly
  /// N voice periods apart. Used by the reservation grid.
  int voice_phase(common::FrameIndex frame) const {
    return static_cast<int>(frame % frames_per_voice_period_);
  }

  common::Time voice_period() const {
    return frame_duration_ * frames_per_voice_period_;
  }

 private:
  common::Time frame_duration_;
  int frames_per_voice_period_;
};

}  // namespace charisma::sim
