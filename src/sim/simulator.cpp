#include "sim/simulator.hpp"

#include <stdexcept>

namespace charisma::sim {

EventId Simulator::schedule_at(common::Time when, EventCallback callback) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.schedule(when, std::move(callback));
}

EventId Simulator::schedule_in(common::Time delay, EventCallback callback) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(callback));
}

void Simulator::set_periodic(common::Time first, PeriodicCallback tick) {
  if (periodic_tick_) {
    throw std::logic_error("Simulator::set_periodic: slot already installed");
  }
  if (!tick) {
    throw std::invalid_argument("Simulator::set_periodic: null callback");
  }
  if (first < now_) {
    throw std::invalid_argument("Simulator::set_periodic: time in the past");
  }
  periodic_tick_ = std::move(tick);
  periodic_next_ = first;
}

void Simulator::dispatch_one() {
  auto fired = queue_.pop();
  now_ = fired.time;
  ++events_processed_;
  fired.callback();
}

void Simulator::dispatch_periodic() {
  now_ = periodic_next_;
  ++events_processed_;
  const common::Time delay = periodic_tick_();
  if (delay <= 0.0) {
    throw std::logic_error(
        "Simulator: periodic tick returned non-positive delay");
  }
  periodic_next_ = now_ + delay;
}

void Simulator::run_until(common::Time end_time) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const bool queue_has = !queue_.empty();
    const bool periodic_has = static_cast<bool>(periodic_tick_);
    if (!queue_has && !periodic_has) break;
    // The slot fires before queue events stamped at the same instant: the
    // self-rescheduling frame event historically carried the lowest
    // sequence number at its firing time, and frame-before-arrivals is the
    // ordering every protocol comparison was produced under.
    if (periodic_has &&
        (!queue_has || periodic_next_ <= queue_.next_time())) {
      if (periodic_next_ > end_time) break;
      dispatch_periodic();
    } else {
      if (queue_.next_time() > end_time) break;
      dispatch_one();
    }
  }
  // Park the clock at the boundary — but not after request_stop(): work may
  // remain before end_time (the periodic slot always does), and
  // fast-forwarding past it would make the next run_until dispatch that
  // work with now() jumping backwards.
  if (!stop_requested_ && now_ < end_time) now_ = end_time;
}

void Simulator::run() {
  if (periodic_tick_) {
    throw std::logic_error(
        "Simulator::run: a periodic slot never drains; use run_until");
  }
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) dispatch_one();
}

}  // namespace charisma::sim
