#include "sim/simulator.hpp"

#include <stdexcept>

namespace charisma::sim {

EventId Simulator::schedule_at(common::Time when, EventCallback callback) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.schedule(when, std::move(callback));
}

EventId Simulator::schedule_in(common::Time delay, EventCallback callback) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(callback));
}

void Simulator::dispatch_one() {
  auto fired = queue_.pop();
  now_ = fired.time;
  ++events_processed_;
  fired.callback();
}

void Simulator::run_until(common::Time end_time) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > end_time) break;
    dispatch_one();
  }
  if (now_ < end_time) now_ = end_time;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) dispatch_one();
}

}  // namespace charisma::sim
