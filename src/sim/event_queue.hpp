// Pending-event set for the discrete-event engine: a binary min-heap keyed
// by (time, sequence). The sequence number makes ordering of simultaneous
// events deterministic (FIFO in scheduling order), which the protocol
// comparisons rely on for reproducibility.
//
// Cancellation is a tombstone: cancel() marks the node in place and pop()
// skims dead nodes off the top. The schedule/pop fast path therefore never
// touches an auxiliary lookup structure — the frame loop never cancels, and
// the historical pending_/cancelled_ hash sets charged every event two hash
// probes for a feature almost nobody used. cancel() pays a linear scan
// instead, which is the right trade for a cancel-rare workload.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"

namespace charisma::sim {

using EventCallback = std::function<void()>;

/// Opaque handle used to cancel a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  /// Inserts an event; returns a handle usable with cancel().
  EventId schedule(common::Time time, EventCallback callback);

  /// Lazily cancels the event with the given handle. Returns false when the
  /// event already fired, was already cancelled, or the id is unknown.
  /// O(pending) scan — cancellation is rare; scheduling is not.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  common::Time next_time();

  /// Extracts and returns the earliest live event. Requires !empty().
  struct Fired {
    common::Time time;
    EventCallback callback;
  };
  Fired pop();

  /// Total schedule() calls over this queue's lifetime — each one is a heap
  /// node (and usually a std::function allocation). The allocation-free
  /// frame-loop tests pin this to zero across steady-state advancement.
  std::uint64_t scheduled_total() const { return scheduled_total_; }

 private:
  struct Node {
    common::Time time;
    std::uint64_t seq;
    EventId id;
    bool cancelled;
    EventCallback callback;
  };
  struct NodeOrder {
    // std::push_heap et al. build a max-heap; invert for earliest-first,
    // with sequence as the deterministic tie-break.
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled nodes sitting at the top of the heap.
  void skim();

  std::vector<Node> heap_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::uint64_t scheduled_total_ = 0;
};

}  // namespace charisma::sim
