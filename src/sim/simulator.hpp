// The discrete-event simulator: a monotonic clock plus the pending-event
// set. Protocol engines schedule their frame-processing events here; the
// variable-frame protocols (RMAV, DRMA) simply schedule their next frame at
// a data-dependent offset, which is why a general DES (rather than a fixed
// frame loop) is the substrate.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace charisma::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  common::Time now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Schedules `callback` at absolute time `when` (>= now).
  EventId schedule_at(common::Time when, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (delay >= 0).
  EventId schedule_in(common::Time delay, EventCallback callback);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `end_time`, whichever
  /// comes first. Events at exactly `end_time` are processed.
  void run_until(common::Time end_time);

  /// Runs until the queue drains.
  void run();

  /// Makes run()/run_until() return after the in-flight event completes.
  void request_stop() { stop_requested_ = true; }

  bool has_pending_events() const { return !queue_.empty(); }

 private:
  void dispatch_one();

  EventQueue queue_;
  common::Time now_ = 0.0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace charisma::sim
