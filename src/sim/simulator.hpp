// The discrete-event simulator: a monotonic clock plus the pending-event
// set. Protocol engines schedule their frame-processing events here; the
// variable-frame protocols (RMAV, DRMA) simply schedule their next frame at
// a data-dependent offset, which is why a general DES (rather than a fixed
// frame loop) is the substrate.
//
// The frame loop itself runs in a dedicated periodic slot: one callback,
// installed once, that returns the delay to its own next firing. The slot
// lives outside the event queue, so steady-state frame advancement performs
// zero heap allocations — the historical self-rescheduling frame_event paid
// a heap node plus a std::function per simulated frame. Variable frame
// durations cost nothing extra: the tick just returns a different delay.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace charisma::sim {

/// Periodic-slot callback: does one tick's work at now() and returns the
/// delay (> 0) until its next firing.
using PeriodicCallback = std::function<common::Time()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  common::Time now() const { return now_; }
  /// Dispatches performed: queue events plus periodic-slot firings.
  std::uint64_t events_processed() const { return events_processed_; }

  /// Schedules `callback` at absolute time `when` (>= now).
  EventId schedule_at(common::Time when, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (delay >= 0).
  EventId schedule_in(common::Time delay, EventCallback callback);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Installs the simulator's one self-rescheduling slot: `tick` first runs
  /// at absolute time `first` (>= now) and thereafter at the delay each
  /// invocation returns. Rescheduling allocates nothing. A slot firing at
  /// the same instant as queue events runs before them (it is the oldest
  /// standing appointment). At most one slot per simulator.
  void set_periodic(common::Time first, PeriodicCallback tick);
  bool has_periodic() const { return static_cast<bool>(periodic_tick_); }

  /// Runs until no work remains at or before `end_time` or the clock passes
  /// it, whichever comes first. Events at exactly `end_time` are processed.
  void run_until(common::Time end_time);

  /// Runs until the queue drains. Unavailable once a periodic slot is
  /// installed (it never drains); use run_until.
  void run();

  /// Makes run()/run_until() return after the in-flight event completes.
  void request_stop() { stop_requested_ = true; }

  bool has_pending_events() const { return !queue_.empty(); }

  /// Queue-node schedule count (see EventQueue::scheduled_total) — the
  /// allocation-free frame-loop tests read this through the engine.
  std::uint64_t queue_events_scheduled() const {
    return queue_.scheduled_total();
  }

 private:
  void dispatch_one();
  void dispatch_periodic();

  EventQueue queue_;
  PeriodicCallback periodic_tick_;
  common::Time periodic_next_ = 0.0;
  common::Time now_ = 0.0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace charisma::sim
