#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace charisma::sim {

EventId EventQueue::schedule(common::Time time, EventCallback callback) {
  const EventId id = next_id_++;
  heap_.push_back(Node{time, next_seq_++, id, std::move(callback)});
  std::push_heap(heap_.begin(), heap_.end(), NodeOrder{});
  pending_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), NodeOrder{});
    heap_.pop_back();
  }
}

common::Time EventQueue::next_time() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), NodeOrder{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(node.id);
  assert(live_count_ > 0);
  --live_count_;
  return Fired{node.time, std::move(node.callback)};
}

}  // namespace charisma::sim
