#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace charisma::sim {

EventId EventQueue::schedule(common::Time time, EventCallback callback) {
  const EventId id = next_id_++;
  heap_.push_back(Node{time, next_seq_++, id, false, std::move(callback)});
  std::push_heap(heap_.begin(), heap_.end(), NodeOrder{});
  ++live_count_;
  ++scheduled_total_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  for (auto& node : heap_) {
    if (node.id != id) continue;
    if (node.cancelled) return false;  // double cancel
    node.cancelled = true;
    node.callback = nullptr;  // release the closure now, not at pop time
    assert(live_count_ > 0);
    --live_count_;
    return true;
  }
  return false;  // already fired, or unknown id
}

void EventQueue::skim() {
  while (!heap_.empty() && heap_.front().cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), NodeOrder{});
    heap_.pop_back();
  }
}

common::Time EventQueue::next_time() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), NodeOrder{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  assert(live_count_ > 0);
  --live_count_;
  return Fired{node.time, std::move(node.callback)};
}

}  // namespace charisma::sim
