// Multi-base-station handoff scaffold — the paper's second future-work
// avenue (§6): "when a nomadic user travels into the range of some other
// base stations, to which new base station should the user attach, from a
// channel quality point of view?"
//
// The study models a user hearing several base stations through independent
// shadowing/fading processes and compares attachment policies:
//   * kStrongestPilot — re-attach whenever another station's filtered pilot
//     beats the current one by `hysteresis_db` (channel-quality handoff).
//   * kNearest — static attachment (distance proxy: station 0), the
//     no-handoff baseline.
// It reports the achieved mean SNR, outage fraction (below the ABICM mode-1
// threshold) and handoff rate — the quantities a CHARISMA-aware handoff
// decision would trade off.
#pragma once

#include <vector>

#include "channel/user_channel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mac/attachment.hpp"

namespace charisma::experiment {

enum class AttachmentPolicy { kNearest, kStrongestPilot };

struct HandoffConfig {
  int num_stations = 2;
  channel::ChannelConfig channel{};
  /// Per-station mean-SNR offsets (dB), e.g. {0, -3} for an asymmetric
  /// overlap region. Size must equal num_stations (empty = all 0).
  std::vector<double> station_offset_db{};
  double hysteresis_db = 3.0;
  /// Pilot filtering time constant (s) — avoids ping-pong handoffs.
  common::Time pilot_filter_tau = 0.2;
  common::Time sample_interval = 2.5e-3;
  double outage_threshold_db = 5.0;  ///< ABICM mode-1 threshold
};

struct HandoffResult {
  double mean_snr_db = 0.0;
  double outage_fraction = 0.0;
  double handoffs_per_second = 0.0;
};

/// The handoff decision rule lives with the MAC layer (CellularWorld uses
/// it too); re-exported here where the study's callers historically found
/// it. See mac/attachment.hpp for the rule and the bug it fixes.
using mac::strongest_with_hysteresis;

/// Simulates one user for `duration` seconds under the given policy.
HandoffResult run_handoff_study(const HandoffConfig& config,
                                AttachmentPolicy policy,
                                common::Time duration, std::uint64_t seed);

}  // namespace charisma::experiment
