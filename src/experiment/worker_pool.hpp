// A persistent barrier-style worker pool for work that recurs at a high
// rate on small index ranges — the multi-cell world dispatches one task per
// cell 50 times per simulated second, which ParallelRunner's
// spawn-threads-per-call design cannot serve (a thread spawn costs more
// than a whole 20 ms epoch of a small cell).
//
// Workers are spawned once and parked on a condition variable between
// jobs. for_each(n, fn) wakes them, the calling thread joins in, indices
// are claimed from a shared atomic, and the call returns only after every
// worker has finished the round (a full barrier) — so the caller may touch
// the results with no further synchronization. Share-nothing tasks (each
// cell owns its engine, bank and RNG streams) need exactly this and nothing
// more.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace charisma::experiment {

class WorkerPool {
 public:
  /// Total concurrency including the calling thread; 0 picks
  /// std::thread::hardware_concurrency() (min 1). threads == 1 spawns no
  /// workers at all — for_each degenerates to an inline loop.
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) across the workers plus the calling
  /// thread; returns after all n calls complete. The first exception thrown
  /// by any call is rethrown here (remaining indices are abandoned once a
  /// failure is seen), and the pool remains usable afterwards. Reentrant
  /// calls (fn itself calling for_each on the same pool) are not supported.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Scatter/gather over a contiguous index space: splits [0, total) into
  /// `shards` near-equal contiguous ranges and runs
  /// fn(shard, begin, end) for each, with the same barrier, exception and
  /// reentrancy contract as for_each. Shards in excess of `total` are
  /// dropped (no empty ranges); shard s covers
  /// [s*total/shards, (s+1)*total/shards). The decomposition depends only
  /// on (total, shards) — never on the thread count — which is what lets
  /// sharded callers keep bit-identical results at any concurrency.
  void for_each_range(
      std::size_t total, std::size_t shards,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and runs indices of the current round until they run out (or a
  /// failure short-circuits the round).
  void run_round();
  void run_task(std::size_t i);
  /// Dispatches one round (n_ indices over whichever of fn_/range_fn_ is
  /// set) across the workers plus the calling thread, with a full barrier.
  void dispatch_round();

  unsigned threads_;
  std::vector<std::jthread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;       ///< bumped per for_each; wakes the workers
  std::size_t workers_active_ = 0;  ///< workers not yet done with the round
  bool shutdown_ = false;
  std::exception_ptr error_;

  const std::function<void(std::size_t)>* fn_ = nullptr;
  const std::function<void(std::size_t, std::size_t, std::size_t)>*
      range_fn_ = nullptr;
  std::size_t range_total_ = 0;  ///< for_each_range: size of [0, total)
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace charisma::experiment
