// Report builders: renders sweep results as the rows/series the paper's
// figures report, and extracts capacity numbers (users supported at a QoS
// threshold) for the EXPERIMENTS.md comparisons.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/sweep.hpp"

namespace charisma::experiment {

using MetricSelector = std::function<double(const ReplicatedResult&)>;

/// One table per figure panel: first column the x axis, one column per
/// protocol, formatted with `formatter` (e.g. TextTable::sci for loss
/// probabilities).
common::TextTable figure_table(
    const std::string& title, const std::string& x_label,
    const std::vector<SweepCell>& cells,
    const std::vector<protocols::ProtocolId>& protocols_order,
    const MetricSelector& metric,
    const std::function<std::string(double)>& formatter);

/// Largest x for which the (monotonically interpolated) series stays at or
/// below `threshold`; nullopt when the first point already violates it,
/// and the largest swept x when no point does.
std::optional<double> capacity_at_threshold(
    const std::vector<std::pair<int, double>>& series, double threshold);

/// Warning line when more than `warn_fraction` of the histogram's mass fell
/// outside its [lo, hi) range — quantiles read off it are then clipped at
/// the range edges and should not be trusted. nullopt when the histogram is
/// healthy (or empty).
std::optional<std::string> histogram_clip_warning(
    const common::Histogram& histogram, const std::string& label,
    double warn_fraction = 0.01);

/// Capacity summary table: users supported at the threshold per protocol.
common::TextTable capacity_table(
    const std::string& title, const std::vector<SweepCell>& cells,
    const std::vector<protocols::ProtocolId>& protocols_order,
    const MetricSelector& metric, double threshold,
    const std::string& threshold_label);

}  // namespace charisma::experiment
