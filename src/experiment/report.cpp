#include "experiment/report.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace charisma::experiment {

std::optional<std::string> histogram_clip_warning(
    const common::Histogram& histogram, const std::string& label,
    double warn_fraction) {
  const double clipped = histogram.clipped_fraction();
  if (histogram.count() == 0 || clipped <= warn_fraction) return std::nullopt;
  std::ostringstream out;
  out << "WARNING: " << label << ": " << histogram.underflow() << " below "
      << histogram.lo() << " and " << histogram.overflow() << " at/above "
      << histogram.hi() << " of " << histogram.count() << " samples ("
      << common::TextTable::num(100.0 * clipped, 1)
      << "%) fell outside the histogram range; tail quantiles are clipped.";
  return out.str();
}

common::TextTable figure_table(
    const std::string& title, const std::string& x_label,
    const std::vector<SweepCell>& cells,
    const std::vector<protocols::ProtocolId>& protocols_order,
    const MetricSelector& metric,
    const std::function<std::string(double)>& formatter) {
  common::TextTable table(title);
  std::vector<std::string> header{x_label};
  for (auto p : protocols_order) header.push_back(protocols::protocol_name(p));
  table.set_header(std::move(header));

  std::set<int> xs;
  std::map<std::pair<int, int>, double> values;
  for (const auto& cell : cells) {
    xs.insert(cell.x);
    values[{cell.x, static_cast<int>(cell.protocol)}] = metric(cell.result);
  }
  for (int x : xs) {
    std::vector<std::string> row{std::to_string(x)};
    for (auto p : protocols_order) {
      auto it = values.find({x, static_cast<int>(p)});
      row.push_back(it != values.end() ? formatter(it->second) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::optional<double> capacity_at_threshold(
    const std::vector<std::pair<int, double>>& series, double threshold) {
  if (series.empty()) return std::nullopt;
  auto sorted = series;
  std::sort(sorted.begin(), sorted.end());

  // Loss-versus-load is monotone in expectation but the measured points
  // are noisy — especially for protocols sitting flat on an error floor
  // near the threshold, where raw interpolation would read capacity off a
  // single noise spike. Fit the best non-decreasing curve first (isotonic
  // regression via pool-adjacent-violators), then interpolate.
  std::vector<double> level;
  std::vector<double> weight;
  for (const auto& [x, y] : sorted) {
    level.push_back(y);
    weight.push_back(1.0);
    while (level.size() > 1 && level[level.size() - 2] > level.back()) {
      const double w = weight[weight.size() - 2] + weight.back();
      const double v = (level[level.size() - 2] * weight[weight.size() - 2] +
                        level.back() * weight.back()) /
                       w;
      level.pop_back();
      weight.pop_back();
      level.back() = v;
      weight.back() = w;
    }
  }
  std::vector<double> fitted;
  for (std::size_t block = 0; block < level.size(); ++block) {
    for (int i = 0; i < static_cast<int>(weight[block] + 0.5); ++i) {
      fitted.push_back(level[block]);
    }
  }

  if (fitted.front() > threshold) return std::nullopt;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (fitted[i] > threshold) {
      const double y0 = fitted[i - 1];
      const double y1 = fitted[i];
      const double t = y1 > y0 ? (threshold - y0) / (y1 - y0) : 1.0;
      return static_cast<double>(sorted[i - 1].first) +
             t * static_cast<double>(sorted[i].first - sorted[i - 1].first);
    }
  }
  return static_cast<double>(sorted.back().first);
}

common::TextTable capacity_table(
    const std::string& title, const std::vector<SweepCell>& cells,
    const std::vector<protocols::ProtocolId>& protocols_order,
    const MetricSelector& metric, double threshold,
    const std::string& threshold_label) {
  common::TextTable table(title);
  table.set_header({"protocol", "capacity @ " + threshold_label});
  for (auto p : protocols_order) {
    auto series = series_of(cells, p, metric);
    const auto cap = capacity_at_threshold(series, threshold);
    table.add_row({protocols::protocol_name(p),
                   cap ? common::TextTable::num(*cap, 1) : "< min swept"});
  }
  return table;
}

}  // namespace charisma::experiment
