// A small work-stealing-free thread pool for embarrassingly parallel
// simulation jobs (independent replications / sweep points). Each job owns
// its entire world (engine, RNG streams), so jobs share nothing and the
// pool needs no synchronization beyond the work index.
#pragma once

#include <functional>
#include <vector>

namespace charisma::experiment {

class ParallelRunner {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ParallelRunner(unsigned threads = 0);

  unsigned thread_count() const { return threads_; }

  /// Executes the jobs; blocks until the workers drain. The first exception
  /// thrown by any job is rethrown here, and once a job has failed the
  /// workers stop claiming new jobs (jobs already in flight finish), so a
  /// broken sweep fails fast instead of burning the rest of the grid.
  void run(const std::vector<std::function<void()>>& jobs) const;

 private:
  unsigned threads_;
};

}  // namespace charisma::experiment
