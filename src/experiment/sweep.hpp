// Load sweeps: the x-axes of the paper's Figs. 11-13 (number of voice or
// data users) run for a set of protocols, parallelized over (point,
// protocol) cells with common random numbers per point.
#pragma once

#include <vector>

#include "experiment/parallel.hpp"
#include "experiment/runner.hpp"

namespace charisma::experiment {

enum class SweepAxis { kVoiceUsers, kDataUsers };

struct SweepConfig {
  RunSpec spec{};  ///< base scenario; the axis field is overwritten
  SweepAxis axis = SweepAxis::kVoiceUsers;
  std::vector<int> x_values;
  std::vector<protocols::ProtocolId> protocols_to_run;
};

struct SweepCell {
  int x = 0;
  protocols::ProtocolId protocol{};
  ReplicatedResult result;
};

/// Runs the full grid; cells come back ordered by (x, protocol).
std::vector<SweepCell> run_sweep(const SweepConfig& config,
                                 const ParallelRunner& runner);

/// Extracts the series (x, metric(result)) for one protocol from sweep
/// cells, in x order.
template <typename MetricFn>
std::vector<std::pair<int, double>> series_of(
    const std::vector<SweepCell>& cells, protocols::ProtocolId protocol,
    MetricFn&& metric) {
  std::vector<std::pair<int, double>> series;
  for (const auto& cell : cells) {
    if (cell.protocol == protocol) {
      series.emplace_back(cell.x, metric(cell.result));
    }
  }
  return series;
}

}  // namespace charisma::experiment
