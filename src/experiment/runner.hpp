// Replicated execution of one (protocol, scenario) cell: runs R independent
// replications (different seeds, common across protocols for variance
// reduction) and aggregates the paper's metrics with confidence intervals.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "core/charisma.hpp"
#include "mac/metrics.hpp"
#include "mac/scenario.hpp"
#include "protocols/factory.hpp"

namespace charisma::experiment {

struct RunSpec {
  mac::ScenarioParams params{};
  double warmup_s = 3.0;
  double measure_s = 15.0;
  int replications = 2;
  core::CharismaOptions charisma{};
};

/// Aggregate over replications of one protocol on one scenario.
struct ReplicatedResult {
  std::string protocol;
  int num_voice_users = 0;
  int num_data_users = 0;
  bool request_queue = true;
  int replications = 0;

  // Across-replication accumulators of the derived metrics.
  common::Accumulator voice_loss;
  common::Accumulator voice_drop;
  common::Accumulator voice_error;
  common::Accumulator data_throughput;   ///< packets per frame
  common::Accumulator data_delay_s;
  common::Accumulator slot_utilization;
  common::Accumulator slot_waste;
  common::Accumulator request_success;
  /// User-frames of channel evolution per executed jump (exactly 1 under
  /// the default eager advancement; the lazy-channel win factor otherwise).
  common::Accumulator materialization_stride;

  // Pooled raw counters (for Wilson intervals on proportions).
  common::RatioCounter voice_loss_pooled;  ///< "success" = packet lost

  /// Pooled data-delay distribution across replications (tail quantiles;
  /// check histogram_clip_warning before trusting them).
  common::Histogram data_delay_pooled{mac::ProtocolMetrics::kDelayHistLo,
                                      mac::ProtocolMetrics::kDelayHistHi,
                                      mac::ProtocolMetrics::kDelayHistBins};

  void add(const mac::ProtocolMetrics& metrics);
};

/// Seed for replication `rep` of the sweep point keyed by `point_key`.
/// Protocol-independent, so every protocol sees the same channel/traffic
/// world (common random numbers).
std::uint64_t replication_seed(std::uint64_t base_seed,
                               std::uint64_t point_key, int rep);

/// Runs all replications of `protocol` under `spec` serially (callers
/// parallelize across cells with ParallelRunner).
ReplicatedResult run_replications(protocols::ProtocolId protocol,
                                  const RunSpec& spec,
                                  std::uint64_t point_key = 0);

}  // namespace charisma::experiment
