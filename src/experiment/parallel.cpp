#include "experiment/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace charisma::experiment {

ParallelRunner::ParallelRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void ParallelRunner::run(const std::vector<std::function<void()>>& jobs) const {
  if (jobs.empty()) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    // Stop claiming new jobs once any job has failed; the sweep's results
    // are void anyway and the caller sees the error sooner.
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        jobs[i]();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
      }
    }
  };

  const unsigned n = std::min<unsigned>(
      threads_, static_cast<unsigned>(jobs.size()));
  std::vector<std::jthread> pool;
  pool.reserve(n > 1 ? n - 1 : 0);
  for (unsigned t = 1; t < n; ++t) pool.emplace_back(worker);
  worker();  // this thread participates
  pool.clear();  // join

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace charisma::experiment
