#include "experiment/runner.hpp"

#include "common/rng.hpp"

namespace charisma::experiment {

void ReplicatedResult::add(const mac::ProtocolMetrics& metrics) {
  ++replications;
  voice_loss.add(metrics.voice_loss_rate());
  voice_drop.add(metrics.voice_drop_rate());
  voice_error.add(metrics.voice_error_rate());
  data_throughput.add(metrics.data_throughput_per_frame());
  data_delay_s.add(metrics.mean_data_delay_s());
  slot_utilization.add(metrics.slot_utilization());
  slot_waste.add(metrics.slot_waste_ratio());
  request_success.add(metrics.request_success_ratio());
  materialization_stride.add(metrics.mean_materialization_stride());
  voice_loss_pooled.add_many(
      metrics.voice_dropped_deadline + metrics.voice_error_lost +
          metrics.voice_dropped_handoff,
      metrics.voice_generated);
  data_delay_pooled.merge(metrics.data_delay_hist);
}

std::uint64_t replication_seed(std::uint64_t base_seed,
                               std::uint64_t point_key, int rep) {
  // Chain two derivations instead of packing (point_key, rep) into one
  // stream id: `point_key * 1024 + rep` collides as soon as rep >= 1024 or
  // two point keys differ by rep/1024, silently reusing a replication's
  // whole world.
  return common::derive_seed(common::derive_seed(base_seed, point_key),
                             static_cast<std::uint64_t>(rep));
}

ReplicatedResult run_replications(protocols::ProtocolId protocol,
                                  const RunSpec& spec,
                                  std::uint64_t point_key) {
  ReplicatedResult result;
  result.protocol = protocols::protocol_name(protocol);
  result.num_voice_users = spec.params.num_voice_users;
  result.num_data_users = spec.params.num_data_users;
  result.request_queue = spec.params.request_queue;

  for (int rep = 0; rep < spec.replications; ++rep) {
    mac::ScenarioParams params = spec.params;
    params.seed = replication_seed(spec.params.seed, point_key, rep);
    auto engine = protocols::make_protocol(protocol, params, spec.charisma);
    const auto& metrics = engine->run(spec.warmup_s, spec.measure_s);
    result.add(metrics);
  }
  return result;
}

}  // namespace charisma::experiment
