#include "experiment/worker_pool.hpp"

#include <algorithm>

namespace charisma::experiment {

WorkerPool::WorkerPool(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  // Join here, explicitly: workers_ is declared before the mutex and the
  // condition variables, so leaving the join to the implicit jthread
  // destructors would tear the synchronization out from under any worker
  // still waking up.
  workers_.clear();
}

void WorkerPool::run_task(std::size_t i) {
  if (range_fn_ != nullptr) {
    // Shard i of the round's range decomposition: the bounds are a pure
    // function of (total, shards), so claiming order cannot change them.
    const std::size_t begin = i * range_total_ / n_;
    const std::size_t end = (i + 1) * range_total_ / n_;
    (*range_fn_)(i, begin, end);
  } else {
    (*fn_)(i);
  }
}

void WorkerPool::run_round() {
  while (!failed_.load(std::memory_order_acquire)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      run_task(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || round_ != seen; });
      if (shutdown_) return;
      seen = round_;
    }
    run_round();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::dispatch_round() {
  start_cv_.notify_all();
  run_round();  // the calling thread participates
  std::unique_lock<std::mutex> lock(mutex_);
  // Full barrier: every worker has wound down this round (each wakes
  // exactly once per round, and the next round cannot start before this
  // wait clears), so the caller sees all writes made by the tasks.
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  range_fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void WorkerPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Single-thread pool: the inline loop keeps serial runs free of any
    // synchronization (and of this object entirely in the common path).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    range_fn_ = nullptr;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    workers_active_ = workers_.size();
    ++round_;
  }
  dispatch_round();
}

void WorkerPool::for_each_range(
    std::size_t total, std::size_t shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (total == 0 || shards == 0) return;
  shards = std::min(shards, total);  // never an empty shard
  if (workers_.empty()) {
    for (std::size_t s = 0; s < shards; ++s) {
      fn(s, s * total / shards, (s + 1) * total / shards);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = nullptr;
    range_fn_ = &fn;
    range_total_ = total;
    n_ = shards;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    workers_active_ = workers_.size();
    ++round_;
  }
  dispatch_round();
}

}  // namespace charisma::experiment
