#include "experiment/worker_pool.hpp"

#include <algorithm>

namespace charisma::experiment {

WorkerPool::WorkerPool(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  // Join here, explicitly: workers_ is declared before the mutex and the
  // condition variables, so leaving the join to the implicit jthread
  // destructors would tear the synchronization out from under any worker
  // still waking up.
  workers_.clear();
}

void WorkerPool::run_round() {
  while (!failed_.load(std::memory_order_acquire)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || round_ != seen; });
      if (shutdown_) return;
      seen = round_;
    }
    run_round();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Single-thread pool: the inline loop keeps serial runs free of any
    // synchronization (and of this object entirely in the common path).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    workers_active_ = workers_.size();
    ++round_;
  }
  start_cv_.notify_all();
  run_round();  // the calling thread participates
  std::unique_lock<std::mutex> lock(mutex_);
  // Full barrier: every worker has wound down this round (each wakes
  // exactly once per round, and the next round cannot start before this
  // wait clears), so the caller sees all writes made by the tasks.
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace charisma::experiment
