#include "experiment/handoff_study.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/math.hpp"
#include "common/stats.hpp"

namespace charisma::experiment {

HandoffResult run_handoff_study(const HandoffConfig& config,
                                AttachmentPolicy policy,
                                common::Time duration, std::uint64_t seed) {
  if (config.num_stations < 1 || duration <= 0.0) {
    throw std::invalid_argument("run_handoff_study: invalid configuration");
  }
  std::vector<double> offsets = config.station_offset_db;
  if (offsets.empty()) offsets.assign(static_cast<std::size_t>(config.num_stations), 0.0);
  if (offsets.size() != static_cast<std::size_t>(config.num_stations)) {
    throw std::invalid_argument("run_handoff_study: offset list size mismatch");
  }

  // One independent link per station.
  std::vector<std::unique_ptr<channel::UserChannel>> links;
  for (int s = 0; s < config.num_stations; ++s) {
    channel::ChannelConfig cfg = config.channel;
    cfg.mean_snr_db += offsets[static_cast<std::size_t>(s)];
    cfg.sample_interval = config.sample_interval;
    links.push_back(std::make_unique<channel::UserChannel>(
        cfg, common::RngStream(seed, 0x7000u + static_cast<std::uint64_t>(s))));
  }

  const double alpha =
      1.0 - std::exp(-config.sample_interval / config.pilot_filter_tau);
  std::vector<double> pilot_db(links.size());
  int attached = 0;
  long handoffs = 0;
  common::Accumulator snr_db_acc;
  long outage_steps = 0;
  long steps = 0;

  const auto total_steps =
      static_cast<long>(std::floor(duration / config.sample_interval));
  for (long step = 1; step <= total_steps; ++step) {
    const common::Time t =
        static_cast<double>(step) * config.sample_interval;
    for (std::size_t s = 0; s < links.size(); ++s) {
      links[s]->advance_to(t);
      const double inst_db = links[s]->snr_db();
      pilot_db[s] = step == 1 ? inst_db
                              : pilot_db[s] + alpha * (inst_db - pilot_db[s]);
    }
    if (policy == AttachmentPolicy::kStrongestPilot) {
      const int best =
          strongest_with_hysteresis(pilot_db, attached, config.hysteresis_db);
      if (best != attached) {
        attached = best;
        ++handoffs;
      }
    }
    const double snr_db = links[static_cast<std::size_t>(attached)]->snr_db();
    snr_db_acc.add(snr_db);
    if (snr_db < config.outage_threshold_db) ++outage_steps;
    ++steps;
  }

  HandoffResult result;
  result.mean_snr_db = snr_db_acc.mean();
  result.outage_fraction =
      steps > 0 ? static_cast<double>(outage_steps) / static_cast<double>(steps)
                : 0.0;
  result.handoffs_per_second =
      duration > 0.0 ? static_cast<double>(handoffs) / duration : 0.0;
  return result;
}

}  // namespace charisma::experiment
