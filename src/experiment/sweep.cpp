#include "experiment/sweep.hpp"

#include <algorithm>
#include <stdexcept>

namespace charisma::experiment {

std::vector<SweepCell> run_sweep(const SweepConfig& config,
                                 const ParallelRunner& runner) {
  if (config.x_values.empty() || config.protocols_to_run.empty()) {
    throw std::invalid_argument("run_sweep: empty grid");
  }
  std::vector<SweepCell> cells(config.x_values.size() *
                               config.protocols_to_run.size());
  std::vector<std::function<void()>> jobs;
  jobs.reserve(cells.size());

  std::size_t cell_index = 0;
  for (std::size_t xi = 0; xi < config.x_values.size(); ++xi) {
    for (std::size_t pi = 0; pi < config.protocols_to_run.size(); ++pi) {
      const int x = config.x_values[xi];
      const auto protocol = config.protocols_to_run[pi];
      SweepCell& cell = cells[cell_index++];
      cell.x = x;
      cell.protocol = protocol;
      jobs.push_back([&cell, &config, x, protocol, xi] {
        RunSpec spec = config.spec;
        if (config.axis == SweepAxis::kVoiceUsers) {
          spec.params.num_voice_users = x;
        } else {
          spec.params.num_data_users = x;
        }
        // The point key depends only on the x index, so all protocols at a
        // point share seeds (common random numbers).
        cell.result = run_replications(protocol, spec,
                                       static_cast<std::uint64_t>(xi));
      });
    }
  }
  runner.run(jobs);
  return cells;
}

}  // namespace charisma::experiment
