// Umbrella header: the public API of the CHARISMA library.
//
//   #include "charisma.hpp"
//
//   charisma::mac::ScenarioParams params;
//   params.num_voice_users = 80;
//   auto engine = charisma::protocols::make_protocol(
//       charisma::protocols::ProtocolId::kCharisma, params);
//   const auto& metrics = engine->run(/*warmup=*/3.0, /*measure=*/15.0);
//
// See examples/quickstart.cpp for a tour.
#pragma once

#include "analysis/fading_statistics.hpp"
#include "analysis/slotted_aloha.hpp"
#include "analysis/voice_capacity.hpp"
#include "channel/channel_bank.hpp"
#include "channel/csi.hpp"
#include "channel/fading.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/shadowing.hpp"
#include "channel/user_channel.hpp"
#include "common/config.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/charisma.hpp"
#include "core/fairness.hpp"
#include "core/priority.hpp"
#include "experiment/handoff_study.hpp"
#include "experiment/parallel.hpp"
#include "experiment/report.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "mac/attachment.hpp"
#include "mac/cellular_world.hpp"
#include "mac/contention.hpp"
#include "mac/engine.hpp"
#include "mac/geometry.hpp"
#include "mac/metrics.hpp"
#include "mac/mobile_user.hpp"
#include "mac/mobility.hpp"
#include "mac/request_queue.hpp"
#include "mac/reservation.hpp"
#include "mac/scenario.hpp"
#include "mac/site_layout.hpp"
#include "phy/adaptive_phy.hpp"
#include "phy/fixed_phy.hpp"
#include "phy/modes.hpp"
#include "protocols/drma.hpp"
#include "protocols/dtdma.hpp"
#include "protocols/factory.hpp"
#include "protocols/prma.hpp"
#include "protocols/rama.hpp"
#include "protocols/rmav.hpp"
#include "sim/event_queue.hpp"
#include "sim/frame_clock.hpp"
#include "sim/simulator.hpp"
#include "traffic/data_source.hpp"
#include "traffic/voice_source.hpp"
