// Engine micro-benchmarks (google-benchmark): the hot paths of the common
// simulation platform — event queue churn, per-frame channel evolution,
// contention resolution, and one full protocol frame for each protocol.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "bench_support.hpp"
#include "charisma.hpp"

namespace {

using namespace charisma;

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < batch; ++i) {
      queue.schedule(static_cast<double>((i * 7919) % batch), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleDispatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_UserChannelFrameStep(benchmark::State& state) {
  channel::UserChannel ch(channel::ChannelConfig{}, common::RngStream(1));
  double t = 0.0;
  for (auto _ : state) {
    t += 2.5e-3;
    ch.advance_to(t);
    benchmark::DoNotOptimize(ch.snr_linear());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UserChannelFrameStep);

void BM_RngNormal(benchmark::State& state) {
  // In-house Box-Muller (cached spare) — the innovation generator of the
  // batched channel hot path.
  common::RngStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormal);

void BM_RngNormalFast(benchmark::State& state) {
  // Ziggurat generator feeding the batched channel innovations.
  common::RngStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal_fast());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormalFast);

void BM_RngNormalStdBaseline(benchmark::State& state) {
  // What RngStream::normal() used to do: a fresh std::normal_distribution
  // per call over the same engine.
  common::RngStream rng(1);
  for (auto _ : state) {
    std::normal_distribution<double> dist(0.0, 1.0);
    benchmark::DoNotOptimize(dist(rng.engine()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormalStdBaseline);

void BM_RngUniformInt(benchmark::State& state) {
  common::RngStream rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_int(12));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniformInt);

channel::ChannelBank make_bank(int n) {
  channel::ChannelBank bank;
  bank.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bank.add_user(channel::ChannelConfig{},
                  common::RngStream(static_cast<std::uint64_t>(i) + 1));
  }
  return bank;
}

void BM_PerUserAdvanceBaseline(benchmark::State& state) {
  // The pre-ChannelBank hot path (heap-scattered per-user walks, fresh
  // std::normal_distribution per draw) — see bench::LegacyChannelWalk.
  const int n = static_cast<int>(state.range(0));
  bench::LegacyChannelWalk walk(n);
  for (auto _ : state) {
    walk.step_all();
    benchmark::DoNotOptimize(walk.power_gain(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PerUserAdvanceBaseline)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ChannelBankAdvance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto bank = make_bank(n);
  const double dt = channel::ChannelConfig{}.sample_interval;
  double t = 0.0;
  for (auto _ : state) {
    t += dt;
    bank.advance_all_to(t);
    benchmark::DoNotOptimize(bank.snr_linear(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelBankAdvance)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ChannelBankJump(benchmark::State& state) {
  // O(1)-in-k check: cost per advance must not scale with the stride.
  const auto k = static_cast<double>(state.range(0));
  auto bank = make_bank(1000);
  const double dt = channel::ChannelConfig{}.sample_interval;
  double t = 0.0;
  for (auto _ : state) {
    t += k * dt;
    bank.advance_all_to(t);
    benchmark::DoNotOptimize(bank.snr_linear(0));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelBankJump)->Arg(1)->Arg(64);

void BM_ChannelBankLazyAdvance(benchmark::State& state) {
  // Lazy touch-set advancement at 10/50/100% of the population read per
  // frame (rotating window, the protocol frame-loop shape). 100% is the
  // lazy-bookkeeping overhead bound vs BM_ChannelBankAdvance/10000.
  const int n = 10000;
  const int pct = static_cast<int>(state.range(0));
  const int window = std::max(1, n * pct / 100);
  auto bank = make_bank(n);
  bank.set_lazy(true);
  // Doubled id array so every rotating window is one contiguous span.
  std::vector<common::UserId> ids(static_cast<std::size_t>(n) * 2);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<common::UserId>(i % static_cast<std::size_t>(n));
  }
  const double dt = channel::ChannelConfig{}.sample_interval;
  double t = 0.0;
  std::int64_t frame = 0;
  for (auto _ : state) {
    t += dt;
    const std::size_t lo = static_cast<std::size_t>((frame * window) % n);
    bank.advance_users_to({ids.data() + lo, static_cast<std::size_t>(window)},
                          t);
    benchmark::DoNotOptimize(bank.fading_power(ids[lo]));
    ++frame;
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_ChannelBankLazyAdvance)->Arg(10)->Arg(50)->Arg(100);

void BM_JakesSample(benchmark::State& state) {
  common::RngStream rng(2);
  channel::JakesFadingGenerator gen(100.0, 32, rng);
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-3;
    benchmark::DoNotOptimize(gen.power_gain(t));
  }
}
BENCHMARK(BM_JakesSample);

void BM_ContentionPhase(benchmark::State& state) {
  const int contenders = static_cast<int>(state.range(0));
  std::vector<common::UserId> candidates;
  std::vector<common::RngStream> rngs;
  for (int i = 0; i < contenders; ++i) {
    candidates.push_back(i);
    rngs.emplace_back(static_cast<std::uint64_t>(i) + 7);
  }
  for (auto _ : state) {
    auto outcome = mac::run_request_phase(
        candidates, 12, [](common::UserId) { return 0.3; },
        [&rngs](common::UserId id) -> common::RngStream& {
          return rngs[static_cast<std::size_t>(id)];
        });
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_ContentionPhase)->Arg(2)->Arg(10)->Arg(50);

void BM_ModeSelection(benchmark::State& state) {
  const auto table = phy::ModeTable::abicm6();
  common::RngStream rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.select(rng.uniform(0.5, 200.0)));
  }
}
BENCHMARK(BM_ModeSelection);

template <protocols::ProtocolId kId>
void BM_ProtocolSecond(benchmark::State& state) {
  // Cost of one simulated second (400 frames) at a moderate mixed load.
  for (auto _ : state) {
    state.PauseTiming();
    mac::ScenarioParams params;
    params.num_voice_users = 60;
    params.num_data_users = 10;
    params.seed = 11;
    auto engine = protocols::make_protocol(kId, params);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run(0.0, 1.0));
  }
}
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kCharisma>)
    ->Name("BM_ProtocolSecond/CHARISMA")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kDtdmaVr>)
    ->Name("BM_ProtocolSecond/DTDMA_VR")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kDtdmaFr>)
    ->Name("BM_ProtocolSecond/DTDMA_FR")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kDrma>)
    ->Name("BM_ProtocolSecond/DRMA")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kRama>)
    ->Name("BM_ProtocolSecond/RAMA")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProtocolSecond<protocols::ProtocolId::kRmav>)
    ->Name("BM_ProtocolSecond/RMAV")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
