// Table 1 — simulation parameters. Echoes the scenario the other benches
// run, with the derived quantities (symbol rate, activity factor, mode
// thresholds) that the calibration in DESIGN.md fixes.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace charisma;
  bench::print_banner("Table 1: simulation parameters",
                      "Kwok & Lau, Table 1 / Sections 2, 4, 5");

  const mac::ScenarioParams p;  // library defaults = Table 1 reproduction
  const auto phy = phy::AdaptivePhy::abicm6();

  common::TextTable traffic("Traffic and contention model (paper Sec. 2)");
  traffic.set_header({"parameter", "value", "source"});
  traffic.add_row({"mean talkspurt", "1.0 s exponential", "paper (Gruber)"});
  traffic.add_row({"mean silence", "1.35 s exponential", "paper (Gruber)"});
  traffic.add_row({"voice activity factor",
                   common::TextTable::num(1.0 / 2.35, 4), "derived"});
  traffic.add_row({"voice codec", "8 kbps, 160-bit packet / 20 ms", "paper"});
  traffic.add_row({"voice deadline", "20 ms", "paper fn. 4"});
  traffic.add_row({"data burst interarrival", "1 s exponential", "paper"});
  traffic.add_row({"data burst size", "100 packets exponential", "paper"});
  traffic.add_row({"permission prob p_v",
                   common::TextTable::num(p.voice_permission_prob, 2),
                   "calibrated"});
  traffic.add_row({"permission prob p_d",
                   common::TextTable::num(p.data_permission_prob, 2),
                   "calibrated"});
  traffic.print(std::cout);
  std::cout << '\n';

  common::TextTable frame("TDMA frame geometry (paper Sec. 4.1 / Fig. 4)");
  frame.set_header({"parameter", "value"});
  frame.add_row({"frame duration",
                 common::TextTable::num(p.geometry.frame_duration * 1e3, 2) +
                     " ms"});
  frame.add_row({"request minislots N_r",
                 std::to_string(p.geometry.num_request_slots)});
  frame.add_row({"information slots N_i",
                 std::to_string(p.geometry.num_info_slots)});
  frame.add_row({"pilot/poll slots N_b",
                 std::to_string(p.geometry.num_pilot_slots)});
  frame.add_row({"info slot size",
                 std::to_string(p.geometry.slot_symbols) + " symbols"});
  frame.add_row({"minislot size",
                 std::to_string(p.geometry.minislot_symbols) + " symbols"});
  frame.add_row({"implied symbol rate",
                 common::TextTable::num(p.geometry.symbol_rate() / 1e3, 1) +
                     " ksym/s"});
  frame.add_row({"frames per voice period",
                 std::to_string(p.geometry.frames_per_voice_period)});
  frame.print(std::cout);
  std::cout << '\n';

  common::TextTable radio("Radio environment (paper Sec. 4.2, calibrated)");
  radio.set_header({"parameter", "value"});
  radio.add_row({"mean link SNR",
                 common::TextTable::num(p.channel.mean_snr_db, 1) + " dB"});
  radio.add_row({"shadowing sigma",
                 common::TextTable::num(p.channel.shadow_sigma_db, 1) + " dB"});
  radio.add_row({"shadowing time constant",
                 common::TextTable::num(p.channel.shadow_tau, 2) + " s"});
  radio.add_row({"Doppler spread",
                 common::TextTable::num(p.channel.doppler_hz, 0) +
                     " Hz (~50 km/h)"});
  radio.add_row({"diversity branches",
                 std::to_string(p.channel.diversity_branches)});
  radio.add_row({"CSI estimate noise",
                 common::TextTable::num(p.csi_error_sigma_db, 2) + " dB"});
  radio.add_row({"CSI validity",
                 std::to_string(p.csi_validity_frames) + " frames"});
  radio.add_row({"fixed PHY design point",
                 common::TextTable::num(p.fixed_phy_reference_db, 1) + " dB"});
  radio.print(std::cout);
  std::cout << '\n';

  common::TextTable modes("ABICM transmission modes (paper Sec. 4.2 / Fig. 7)");
  modes.set_header({"mode", "bits/symbol", "threshold (dB)",
                    "packets per 160-sym slot"});
  for (const auto& mode : phy.table().modes()) {
    modes.add_row({std::to_string(mode.index),
                   common::TextTable::num(mode.bits_per_symbol, 1),
                   common::TextTable::num(mode.threshold_db, 1),
                   std::to_string(phy.packets_per_slot(mode.index))});
  }
  modes.print(std::cout);
  return 0;
}
